// Reproduces Table I: INA226 sensor availability across ARM-FPGA SoC
// evaluation boards — the survey motivating AmpereBleed's applicability.

#include <cstdio>

#include "amperebleed/core/report.hpp"
#include "amperebleed/sensors/board.hpp"
#include "amperebleed/util/cli.hpp"
#include "amperebleed/util/strings.hpp"
#include "obs_session.hpp"

int main(int argc, char** argv) {
  using namespace amperebleed;
  const util::CliArgs args(argc, argv);
  bench::ObsSession session(args, "table1_boards");

  std::puts("Table I: Integrated INA226 sensors on ARM-FPGA SoC boards");
  std::puts("(paper Table I; static survey data encoded in sensors/board)");
  std::puts("");

  core::TextTable table({"Board", "FPGA Family", "FPGA Voltage (V)",
                         "CPU Model", "DRAM", "INA Sensors", "Price ($)"});
  for (const auto& b : sensors::board_catalog()) {
    table.add_row({
        b.name,
        std::string(sensors::fpga_family_name(b.family)),
        util::format("%.3f ~ %.3f", b.fpga_voltage_min, b.fpga_voltage_max),
        b.cpu_model,
        util::format("%d GB", b.dram_gb),
        util::format("%d", b.ina226_count),
        util::format("%d", b.price_usd),
    });
  }
  std::fputs(table.render().c_str(), stdout);

  std::puts("");
  std::puts("Every surveyed board integrates INA226 sensors; all expose them");
  std::puts("through the unprivileged hwmon interface AmpereBleed exploits.");

  session.record().set_integer(
      "boards", static_cast<std::int64_t>(sensors::board_catalog().size()));
  session.finish();
  return 0;
}
