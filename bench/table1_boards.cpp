// Reproduces Table I: INA226 sensor availability across ARM-FPGA SoC
// evaluation boards — the survey motivating AmpereBleed's applicability.

#include <cstdio>

#include "amperebleed/core/report.hpp"
#include "amperebleed/sensors/board.hpp"
#include "amperebleed/util/strings.hpp"

int main() {
  using namespace amperebleed;

  std::puts("Table I: Integrated INA226 sensors on ARM-FPGA SoC boards");
  std::puts("(paper Table I; static survey data encoded in sensors/board)");
  std::puts("");

  core::TextTable table({"Board", "FPGA Family", "FPGA Voltage (V)",
                         "CPU Model", "DRAM", "INA Sensors", "Price ($)"});
  for (const auto& b : sensors::board_catalog()) {
    table.add_row({
        b.name,
        std::string(sensors::fpga_family_name(b.family)),
        util::format("%.3f ~ %.3f", b.fpga_voltage_min, b.fpga_voltage_max),
        b.cpu_model,
        util::format("%d GB", b.dram_gb),
        util::format("%d", b.ina226_count),
        util::format("%d", b.price_usd),
    });
  }
  std::fputs(table.render().c_str(), stdout);

  std::puts("");
  std::puts("Every surveyed board integrates INA226 sensors; all expose them");
  std::puts("through the unprivileged hwmon interface AmpereBleed exploits.");
  return 0;
}
