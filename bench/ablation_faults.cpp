// Ablation A11: acquisition robustness under hwmon fault injection. Sweeps
// a seeded chaos schedule (EAGAIN storms, driver rebinds, permission flaps,
// torn/garbage text, frozen registers) over the Table III fingerprinting
// pipeline, with the resilience policy off (strict legacy semantics: the
// first failed read aborts the collection) and on (bounded retries with
// deterministic backoff, per-channel health tracking, gap-aware traces).
//
// Headline: the resilient attacker retains nearly all of the clean-run
// fingerprinting accuracy even at a 10% per-read fault rate, while the
// strict attacker cannot finish a single collection. The whole sweep is
// byte-reproducible: fault schedules, retry jitter and gap positions are
// pure functions of the seeds, independent of the worker-pool size.
//
// Flags: --models N      zoo subset size (default 10; 6 with --quick)
//        --traces N      traces per model (default 10; 6 with --quick)
//        --trees N       forest size (default 60; 30 with --quick)
//        --folds N       CV folds (default 3)
//        --threads N     worker threads (default: hardware concurrency)
//        --seed S        pipeline seed (default 0xdf3)
//        --fault-seed S  chaos-plan seed (default: AMPEREBLEED_FAULT_SEED
//                        or 0xfa17)

#include <cstdio>
#include <vector>

#include "amperebleed/core/fingerprint.hpp"
#include "amperebleed/core/report.hpp"
#include "amperebleed/core/sampler.hpp"
#include "amperebleed/faults/faults.hpp"
#include "amperebleed/obs/obs.hpp"
#include "amperebleed/util/cli.hpp"
#include "amperebleed/util/strings.hpp"
#include "obs_session.hpp"

namespace {

using namespace amperebleed;

struct Leg {
  bool completed = false;      // collection ran to the end
  double top1 = 0.0;           // FPGA-current top-1 at the 1 s window
  std::uint64_t injected = 0;  // faults injected across the leg
  std::uint64_t retries = 0;
  std::uint64_t gaps = 0;
  std::uint64_t samples = 0;   // total samples collected (all channels)
};

Leg run_leg(core::FingerprintConfig config, double rate, bool resilient,
            std::uint64_t fault_seed) {
  // Per-leg counters: the schedule/retry/gap totals are sums of per-run
  // deterministic schedules, so they diff clean at any thread count.
  obs::reset_data();

  if (rate > 0.0) {
    config.fault_plan = faults::FaultPlan::chaos(fault_seed, rate);
  }
  config.resilience.enabled = resilient;

  Leg leg;
  try {
    const auto traces = core::collect_fingerprint_traces(config);
    const auto result = core::evaluate_fingerprint(traces, config);
    leg.completed = true;
    leg.top1 = result.cells[3].back().top1;  // FPGA current row
    leg.samples = static_cast<std::uint64_t>(
        traces.per_channel.size() * traces.per_channel.front().size() *
        traces.samples_per_trace);
  } catch (const core::SamplingError&) {
    // Strict mode under chaos: the first exhausted read aborts the whole
    // collection. The message is deliberately not printed — parallel
    // fail-fast surfaces whichever worker threw first, and this bench's
    // stdout must stay byte-identical across pool sizes.
    leg.completed = false;
  }
  leg.injected = obs::metrics().counter_value("faults.injected_total");
  leg.retries = obs::metrics().counter_value("sampler.retries");
  leg.gaps = obs::metrics().counter_value("sampler.gap_samples");
  return leg;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  bench::ObsSession session(args, "ablation_faults");

  core::FingerprintConfig config;
  config.model_limit = static_cast<std::size_t>(
      args.get_int("models", args.has("quick") ? 6 : 10));
  config.traces_per_model = static_cast<std::size_t>(
      args.get_int("traces", args.has("quick") ? 6 : 10));
  config.forest.n_trees = static_cast<std::size_t>(
      args.get_int("trees", args.has("quick") ? 30 : 60));
  config.forest.tree.max_depth = 32;
  config.folds = static_cast<std::size_t>(args.get_int("folds", 3));
  config.threads = static_cast<std::size_t>(args.get_int("threads", 0));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 0xdf3));
  config.trace_duration = sim::seconds(1);
  config.durations_s = {1.0};

  std::uint64_t fault_seed = faults::FaultPlan::from_env().seed;
  if (args.has("fault-seed")) {
    fault_seed = static_cast<std::uint64_t>(args.get_int("fault-seed", 0));
  }

  // Metrics only (no tracing/audit accumulation): the leg counters above
  // come from the obs registry. Deterministic regardless of pool size.
  obs::init(obs::ObsConfig{.enabled = true,
                           .metrics = true,
                           .tracing = false,
                           .audit = false});

  std::printf("Ablation A11: fault injection vs acquisition resilience — "
              "%zu models, %zu traces each,\nRF(%zu trees), %zu-fold CV, "
              "1 s window, chaos seed 0x%llx\n\n",
              config.model_limit, config.traces_per_model,
              config.forest.n_trees, config.folds,
              static_cast<unsigned long long>(fault_seed));

  const double rates[] = {0.0, 0.02, 0.05, 0.10};

  core::TextTable table({"Fault rate", "Strict top-1", "Resilient top-1",
                         "Retention", "Faults", "Retries", "Gaps"});
  double clean_top1 = 0.0;
  std::vector<std::pair<double, double>> retentions;  // (rate, retention)
  for (const double rate : rates) {
    const Leg strict = run_leg(config, rate, /*resilient=*/false, fault_seed);
    const Leg res = run_leg(config, rate, /*resilient=*/true, fault_seed);
    if (rate == 0.0) clean_top1 = res.top1;
    const double retention =
        clean_top1 > 0.0 && res.completed ? res.top1 / clean_top1 : 0.0;
    if (rate > 0.0) retentions.emplace_back(rate, retention);
    const double gap_pct =
        res.samples == 0 ? 0.0
                         : 100.0 * static_cast<double>(res.gaps) /
                               static_cast<double>(res.samples);
    table.add_row(
        {util::format("%.0f%%", rate * 100.0),
         strict.completed ? core::fmt(strict.top1, 3) : "aborts",
         res.completed ? core::fmt(res.top1, 3) : "aborts",
         util::format("%.3f", retention),
         util::format("%llu", static_cast<unsigned long long>(res.injected)),
         util::format("%llu", static_cast<unsigned long long>(res.retries)),
         util::format("%llu (%.1f%%)",
                      static_cast<unsigned long long>(res.gaps), gap_pct)});
  }
  std::fputs(table.render().c_str(), stdout);

  std::puts("\nReading: without the retry/health layer a single exhausted");
  std::puts("read kills the whole offline collection; with it the attack");
  std::puts("degrades gracefully — gaps are reconstructed (hold-last) and");
  std::puts("the classifier keeps nearly all of its clean-run accuracy.");

  session.record().set_number("fpga_current_top1_clean", clean_top1);
  for (const auto& [rate, retention] : retentions) {
    session.record().set_number(
        util::format("accuracy_retention_r%02.0f", rate * 100.0), retention);
  }
  session.finish();
  return 0;
}
