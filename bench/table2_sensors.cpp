// Reproduces Table II: the four security-sensitive INA226 sensors on the
// ZCU102 that allow unprivileged access through hwmon — verified live
// against the simulated SoC's sysfs tree.

#include <cstdio>

#include "amperebleed/core/report.hpp"
#include "amperebleed/sensors/board.hpp"
#include "amperebleed/soc/soc.hpp"
#include "amperebleed/util/cli.hpp"
#include "amperebleed/util/strings.hpp"
#include "obs_session.hpp"

int main(int argc, char** argv) {
  using namespace amperebleed;
  const util::CliArgs args(argc, argv);
  bench::ObsSession session(args, "table2_sensors");

  std::puts("Table II: Sensitive sensors with unprivileged hwmon access "
            "(ZCU102)");
  std::puts("");

  core::TextTable table({"Sensor", "Rail", "Description"});
  for (const auto& s : sensors::zcu102_sensitive_sensors()) {
    table.add_row({s.designator, std::string(power::rail_name(s.rail)),
                   s.description});
  }
  std::fputs(table.render().c_str(), stdout);

  // Live check: boot the simulated SoC and list the hwmon tree with an
  // unprivileged identity, confirming each sensor's attributes are readable.
  soc::Soc soc(soc::zcu102_config());
  soc.finalize();
  soc.advance_to(sim::milliseconds(40));

  std::puts("");
  std::puts("Unprivileged /sys/class/hwmon walk (live, simulated SoC):");
  const auto& fs = soc.hwmon().fs();
  for (const auto& dev : fs.list("/sys/class/hwmon")) {
    const std::string base = "/sys/class/hwmon/" + dev;
    const auto name = fs.read(base + "/name", /*privileged=*/false);
    const auto curr = fs.read(base + "/curr1_input", false);
    std::printf("  %s: name=%s curr1_input=%s mA (mode %04o)\n", base.c_str(),
                std::string(util::trim(name.data)).c_str(),
                std::string(util::trim(curr.data)).c_str(),
                fs.mode_of(base + "/curr1_input"));
  }

  session.record().set_integer(
      "hwmon_devices",
      static_cast<std::int64_t>(fs.list("/sys/class/hwmon").size()));
  session.finish();
  return 0;
}
