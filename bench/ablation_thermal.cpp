// Ablation A5: the temperature side channel (SYSMON/AMS) vs AmpereBleed's
// current channel. The paper's related work (ThermalScope, ThermalBleed)
// exploits thermal sensors; here both channels observe the same victim and
// the ~8 s thermal RC shows why current resolves victim activity orders of
// magnitude faster than temperature.

#include <cmath>
#include <cstdio>

#include "amperebleed/core/report.hpp"
#include "amperebleed/core/sampler.hpp"
#include "amperebleed/fpga/power_virus.hpp"
#include "amperebleed/soc/soc.hpp"
#include "amperebleed/util/cli.hpp"
#include "amperebleed/util/strings.hpp"
#include "obs_session.hpp"

int main(int argc, char** argv) {
  using namespace amperebleed;
  const util::CliArgs args(argc, argv);
  bench::ObsSession session(args, "ablation_thermal");

  // Victim: alternate between 0 and 120 active groups with several dwell
  // times; measure how much of the square wave each channel preserves.
  std::puts("Ablation: current (INA226) vs temperature (SYSMON) channel "
            "response\nto a 0 <-> 120-group victim square wave\n");

  core::TextTable table({"Dwell time", "Current swing (mA)",
                         "Temp swing (mC)", "Temp/steady (%)"});

  // Reference steady-state temperature swing for the same load delta,
  // measured with a very long dwell below.
  double steady_temp_swing_mc = 0.0;

  for (double dwell_s : {64.0, 16.0, 4.0, 1.0, 0.25}) {
    fpga::PowerVirus virus;
    const int cycles = 3;
    const sim::TimeNs dwell = sim::from_seconds(dwell_s);
    for (int i = 0; i < 2 * cycles; ++i) {
      virus.set_active_groups(
          sim::TimeNs{dwell.ns * (i + 1)}, (i % 2 == 0) ? 120 : 0);
    }

    soc::SocConfig config = soc::zcu102_config(0xab5);
    config.with_sysmon = true;
    soc::Soc soc(config);
    soc.fabric().deploy(virus.descriptor());
    soc.add_activity(virus.activity());
    soc.finalize();

    core::Sampler sampler(soc);
    // Observe the last full cycle (thermal transients settled as much as
    // they will).
    const sim::TimeNs obs_start{dwell.ns * (2 * cycles - 1)};
    const sim::TimeNs obs_end{dwell.ns * (2 * cycles + 1)};

    double curr_lo = 1e18;
    double curr_hi = -1e18;
    double temp_lo = 1e18;
    double temp_hi = -1e18;
    const int probes = 64;
    for (int i = 0; i <= probes; ++i) {
      const sim::TimeNs t{obs_start.ns +
                          (obs_end.ns - obs_start.ns) * i / probes};
      soc.advance_to(t);
      const double ma = sampler.read_now(
          {power::Rail::FpgaLogic, core::Quantity::Current});
      curr_lo = std::min(curr_lo, ma);
      curr_hi = std::max(curr_hi, ma);
      const auto temp_attr = soc.hwmon().fs().read(
          soc.hwmon().attr_path(soc.sysmon_hwmon_index(), "temp1_input"),
          /*privileged=*/false);
      const double mc =
          static_cast<double>(*util::parse_ll(temp_attr.data));
      temp_lo = std::min(temp_lo, mc);
      temp_hi = std::max(temp_hi, mc);
    }

    const double temp_swing = temp_hi - temp_lo;
    if (steady_temp_swing_mc == 0.0) steady_temp_swing_mc = temp_swing;
    table.add_row({
        util::format("%.2f s", dwell_s),
        core::fmt(curr_hi - curr_lo, 0),
        core::fmt(temp_swing, 0),
        core::fmt(100.0 * temp_swing / steady_temp_swing_mc, 1),
    });
  }
  std::fputs(table.render().c_str(), stdout);

  std::puts("\nReading: the current channel keeps its full ~4800 mA swing at");
  std::puts("every dwell time, while the thermal RC (~8 s) crushes the");
  std::puts("temperature channel as soon as the victim switches faster than");
  std::puts("seconds — why AmpereBleed samples current, not temperature.");
  session.finish();
  return 0;
}
