// Ablation A8: driver-level defenses against AmpereBleed, beyond the paper's
// all-or-nothing access restriction (Sec V). Each defense degrades the
// hwmon measurement path; we measure (a) how many RSA Hamming-weight classes
// the attacker can still separate and (b) the reporting error inflicted on
// benign monitoring — the security/utility trade-off an integrator faces.

#include <cmath>
#include <cstdio>

#include "amperebleed/core/report.hpp"
#include "amperebleed/core/sampler.hpp"
#include "amperebleed/crypto/rsa.hpp"
#include "amperebleed/fpga/rsa_circuit.hpp"
#include "amperebleed/soc/soc.hpp"
#include "amperebleed/stats/descriptive.hpp"
#include "amperebleed/stats/separability.hpp"
#include "amperebleed/util/cli.hpp"
#include "amperebleed/util/rng.hpp"
#include "amperebleed/util/strings.hpp"
#include "obs_session.hpp"

namespace {

using namespace amperebleed;

struct Outcome {
  std::size_t separable_groups = 0;
  double monitoring_error_ma = 0.0;  // mean |reported - true| for root tools
};

Outcome evaluate(const hwmon::HwmonPolicy& policy, std::size_t samples,
                 const std::vector<std::size_t>& weights) {
  Outcome outcome;
  std::vector<std::vector<double>> classes;
  double err_sum = 0.0;
  std::size_t err_count = 0;

  for (std::size_t k = 0; k < weights.size(); ++k) {
    crypto::RsaKey key;
    key.modulus = crypto::rsa1024_test_modulus();
    key.private_exponent = crypto::exponent_with_hamming_weight(
        1024, weights[k], util::hash_combine(0xdef3, weights[k]));
    fpga::RsaCircuit circuit(fpga::RsaCircuitConfig{}, std::move(key));

    soc::SocConfig config = soc::zcu102_config(util::hash_combine(0xab8, k));
    config.hwmon_policy = policy;
    soc::Soc soc(config);
    soc.fabric().deploy(circuit.descriptor());
    const sim::TimeNs start = sim::milliseconds(200);
    const sim::TimeNs end{start.ns +
                          sim::milliseconds(1).ns *
                              static_cast<std::int64_t>(samples) +
                          sim::milliseconds(100).ns};
    soc.add_activity(
        circuit.schedule(sim::milliseconds(50), end).activity);
    soc.finalize();

    core::Sampler sampler(soc);
    core::SamplerConfig sc;
    sc.period = sim::milliseconds(1);
    sc.sample_count = samples;
    const auto trace = sampler.collect(
        {power::Rail::FpgaLogic, core::Quantity::Current}, start, sc);
    classes.emplace_back(trace.values().begin(), trace.values().end());

    // Benign-monitoring fidelity: reported value vs ground-truth rail
    // current, probed at a human cadence (1 Hz).
    for (int probe = 0; probe < 5; ++probe) {
      const sim::TimeNs t{start.ns + sim::seconds(1).ns * probe / 2};
      soc.advance_to(std::max(t, soc.now()));
      const double reported = sampler.read_now(
          {power::Rail::FpgaLogic, core::Quantity::Current});
      const double truth =
          soc.rail_current(power::Rail::FpgaLogic).value_at(soc.now()) * 1e3;
      err_sum += std::abs(reported - truth);
      ++err_count;
    }
  }

  outcome.separable_groups = stats::count_separable_groups(classes, 0.95);
  outcome.monitoring_error_ma =
      err_count == 0 ? 0.0 : err_sum / static_cast<double>(err_count);
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  bench::ObsSession session(args, "ablation_defenses");
  const auto samples =
      static_cast<std::size_t>(args.get_int("samples", 2'000));
  const std::vector<std::size_t> weights = {1,   128, 256, 384, 512,
                                            640, 768, 896, 1024};

  std::printf("Ablation: driver-level hwmon defenses vs the RSA HW attack\n"
              "(%zu keys, %zu samples each; monitoring error = cost to "
              "benign root tooling)\n\n",
              weights.size(), samples);

  core::TextTable table({"Defense", "Separable HW groups",
                         "Monitoring error (mA)"});
  const auto row = [&](const char* name, const hwmon::HwmonPolicy& policy) {
    const Outcome o = evaluate(policy, samples, weights);
    table.add_row({name, util::format("%zu / %zu", o.separable_groups,
                                      weights.size()),
                   core::fmt(o.monitoring_error_ma, 1)});
  };

  row("none (stock driver)", hwmon::HwmonPolicy{});

  hwmon::HwmonPolicy quantize;
  quantize.quantize_factor = 100;  // report at 100 mA granularity
  row("quantize to 100 mA", quantize);

  hwmon::HwmonPolicy noise;
  noise.noise_lsb = 60.0;  // +/-60 mA uniform driver noise
  row("inject +/-60 mA noise", noise);

  hwmon::HwmonPolicy rate;
  rate.min_read_interval = sim::milliseconds(1000);
  row("rate-limit to 1 Hz", rate);

  hwmon::HwmonPolicy combo;
  combo.quantize_factor = 100;
  combo.min_read_interval = sim::milliseconds(1000);
  row("quantize + rate-limit", combo);

  std::fputs(table.render().c_str(), stdout);

  std::puts("\nReading: rate-limiting alone only slows the (already patient)");
  std::puts("attacker — every class stays separable. Quantization collapses");
  std::puts("the keys at sub-100 mA monitoring cost. Injected noise widens");
  std::puts("the distributions past the separability threshold at this trace");
  std::puts("length, but sample means stay unbiased, so a longer collection");
  std::puts("defeats it unless reads are also rate-limited.");
  session.finish();
  return 0;
}
