// Reproduces Table III: random-forest fingerprinting accuracy of DPU
// accelerators across the six hwmon observation channels and observation
// windows of 1-5 s (10-fold cross-validation, RF with 100 trees / depth 32).
//
// The full paper configuration (39 models) runs by default; use --models or
// --quick to scale down for smoke runs.
//
// Flags: --models N   zoo subset size (default 39 = full)
//        --traces N   traces per model (default 20)
//        --trees N    forest size (default 100)
//        --folds N    CV folds (default 10)
//        --threads N  worker threads (default: hardware concurrency)
//        --quick      = --models 10 --traces 10 --trees 40

#include <cstdio>

#include "amperebleed/core/fingerprint.hpp"
#include "amperebleed/core/report.hpp"
#include "amperebleed/util/cli.hpp"
#include "amperebleed/util/strings.hpp"
#include "obs_session.hpp"

int main(int argc, char** argv) {
  using namespace amperebleed;
  const util::CliArgs args(argc, argv);
  bench::ObsSession session(args, "table3_fingerprint");

  core::FingerprintConfig config;
  config.model_limit = static_cast<std::size_t>(
      args.get_int("models", args.has("quick") ? 10 : 39));
  config.traces_per_model = static_cast<std::size_t>(
      args.get_int("traces", args.has("quick") ? 10 : 20));
  config.forest.n_trees = static_cast<std::size_t>(
      args.get_int("trees", args.has("quick") ? 40 : 100));
  config.forest.tree.max_depth = 32;
  config.folds = static_cast<std::size_t>(args.get_int("folds", 10));
  config.threads = static_cast<std::size_t>(args.get_int("threads", 0));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 0xdf3));

  std::printf("Table III: encrypted-accelerator fingerprinting — %zu models, "
              "%zu traces each,\nRF(%zu trees, depth %d), %zu-fold CV\n\n",
              config.model_limit == 0 ? 39 : config.model_limit,
              config.traces_per_model, config.forest.n_trees,
              config.forest.tree.max_depth, config.folds);

  std::puts("Collecting traces (offline phase)...");
  const auto traces = core::collect_fingerprint_traces(config);
  std::printf("  %zu traces per channel, %zu features each\n\n",
              traces.per_channel.front().size(), traces.samples_per_trace);

  std::puts("Training / cross-validating (online phase)...");
  const auto result = core::evaluate_fingerprint(traces, config);

  std::vector<std::string> headers = {"Sensor", "Metric"};
  for (double d : result.durations_s) {
    headers.push_back(util::format("%.0f s", d));
  }
  core::TextTable table(std::move(headers));
  const char* paper_rows[] = {
      "Current (Full-power CPU)", "Current (Low-power CPU)",
      "Current (DRAM)",           "Current (FPGA)",
      "Voltage (FPGA)",           "Power (FPGA)",
  };
  for (std::size_t c = 0; c < result.cells.size(); ++c) {
    std::vector<std::string> top1 = {paper_rows[c], "Top-1"};
    std::vector<std::string> top5 = {"", "Top-5"};
    for (const auto& cell : result.cells[c]) {
      top1.push_back(core::fmt(cell.top1, 3));
      top5.push_back(core::fmt(cell.top5, 3));
    }
    table.add_row(top1);
    table.add_row(top5);
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf("\nRandom-guess baseline: %.4f\n", result.random_guess_top1());
  std::puts("Paper reference (5 s, top-1): FPD-I 0.837, LPD-I 0.557, "
            "DRAM-I 0.958,\n  FPGA-I 0.997, FPGA-V 0.116, FPGA-P 0.989");

  session.record().set_integer("models",
                               static_cast<std::int64_t>(config.model_limit));
  session.record().set_number("random_guess_top1", result.random_guess_top1());
  // Headline: FPGA-current top-1 at the longest observation window.
  if (!result.cells.empty() && !result.cells[3].empty()) {
    session.record().set_number("fpga_current_top1",
                                result.cells[3].back().top1);
  }
  session.finish();
  return 0;
}
