// Ablation A1: fingerprinting quality vs hwmon update interval. The INA226
// supports 2.2-35.2 ms update intervals, but reconfiguring it needs root —
// the unprivileged attacker is stuck at the 35 ms default. This ablation
// quantifies what root-level sampling would add: shorter conversions mean
// more (noisier) features per observation window.

#include <cstdio>

#include "amperebleed/core/fingerprint.hpp"
#include "amperebleed/core/report.hpp"
#include "amperebleed/util/cli.hpp"
#include "amperebleed/util/strings.hpp"
#include "obs_session.hpp"

int main(int argc, char** argv) {
  using namespace amperebleed;
  const util::CliArgs args(argc, argv);
  bench::ObsSession session(args, "ablation_update_interval");

  std::puts("Ablation: DPU fingerprinting accuracy vs hwmon update interval");
  std::puts("(reduced zoo; 2 s observation window)\n");

  core::TextTable table({"Update interval", "AVG setting", "Features (2 s)",
                         "Top-1", "Top-5"});

  struct Setting {
    std::uint16_t avg;
    const char* label;
  };
  // 2.2 ms per (shunt+bus) round at CT=1.1 ms; avg in {1,4,16}.
  const Setting settings[] = {{1, "2.2 ms"}, {4, "8.8 ms"}, {16, "35.2 ms"}};

  for (const auto& s : settings) {
    core::FingerprintConfig config;
    config.model_limit = static_cast<std::size_t>(args.get_int("models", 8));
    config.traces_per_model =
        static_cast<std::size_t>(args.get_int("traces", 10));
    config.forest.n_trees =
        static_cast<std::size_t>(args.get_int("trees", 40));
    config.trace_duration = sim::seconds(2);
    config.durations_s = {2.0};
    config.sample_period = sim::microseconds(2'200LL * s.avg);
    config.sensor_avg_override = s.avg;
    config.threads = static_cast<std::size_t>(args.get_int("threads", 0));
    config.seed = 0xab1;

    const auto traces = core::collect_fingerprint_traces(config);
    const auto result = core::evaluate_fingerprint(traces, config);
    // Row 3 of table3_channels() is FPGA current — the strongest channel.
    const auto& cell = result.cells[3][0];
    table.add_row({s.label, util::format("%u", s.avg),
                   util::format("%zu", traces.samples_per_trace),
                   core::fmt(cell.top1, 3), core::fmt(cell.top5, 3)});
  }
  std::fputs(table.render().c_str(), stdout);

  std::puts("\nReading: faster conversions trade on-chip averaging (AVG=16 ->");
  std::puts("1) for temporal detail; with raw-trace features the extra,");
  std::puts("noisier dimensions do not help. The 35 ms default an");
  std::puts("unprivileged attacker is stuck with loses nothing — root-only");
  std::puts("reconfiguration is not the binding constraint of the attack.");
  session.finish();
  return 0;
}
