// Ablation A4: the mitigation the paper proposes (Sec V) — restrict hwmon
// sensor attributes to privileged users. Demonstrates that the unprivileged
// attack dies completely while root-level monitoring keeps working, and
// quantifies the residual signal an attacker retains (none).

#include <cstdio>

#include "amperebleed/core/report.hpp"
#include "amperebleed/core/sampler.hpp"
#include "amperebleed/fpga/power_virus.hpp"
#include "amperebleed/soc/soc.hpp"
#include "amperebleed/stats/descriptive.hpp"
#include "amperebleed/util/cli.hpp"
#include "amperebleed/util/strings.hpp"
#include "obs_session.hpp"

namespace {

using namespace amperebleed;

struct Outcome {
  bool attack_succeeded = false;
  double observed_step_ma = 0.0;
  bool root_monitoring_ok = false;
};

Outcome run_scenario(bool unprivileged_access) {
  fpga::PowerVirus virus;
  virus.set_active_groups(sim::seconds(1), 100);

  soc::SocConfig config = soc::zcu102_config(0xab4);
  config.hwmon_policy.unprivileged_sensor_read = unprivileged_access;
  soc::Soc soc(config);
  soc.fabric().deploy(virus.descriptor());
  soc.add_activity(virus.activity());
  soc.finalize();

  core::Sampler sampler(soc);
  core::SamplerConfig sc;
  sc.sample_count = 15;
  const core::Channel channel{power::Rail::FpgaLogic,
                              core::Quantity::Current};
  Outcome outcome;
  try {
    const auto before = sampler.collect(channel, sim::milliseconds(40), sc);
    const auto after = sampler.collect(channel, sim::seconds(2), sc);
    outcome.observed_step_ma =
        stats::mean(after.values()) - stats::mean(before.values());
    outcome.attack_succeeded = outcome.observed_step_ma > 1000.0;
  } catch (const core::SamplingError&) {
    outcome.attack_succeeded = false;
  }

  // Root-side health monitoring must keep working either way.
  try {
    core::Sampler fleet_monitor(soc, core::Principal::root("fleet-monitor"));
    const auto t = fleet_monitor.collect(channel, sim::seconds(3), sc);
    outcome.root_monitoring_ok = !t.empty();
  } catch (const core::SamplingError&) {
    outcome.root_monitoring_ok = false;
  }
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  bench::ObsSession session(args, "ablation_mitigation");
  std::puts("Ablation: hwmon access-control mitigation (paper Sec V)\n");

  core::TextTable table({"hwmon policy", "Unprivileged attack",
                         "Observed victim step", "Root monitoring"});
  const Outcome open = run_scenario(true);
  const Outcome restricted = run_scenario(false);
  table.add_row({"world-readable (default)",
                 open.attack_succeeded ? "SUCCEEDS" : "fails",
                 util::format("%.0f mA", open.observed_step_ma),
                 open.root_monitoring_ok ? "works" : "broken"});
  table.add_row({"root-only (mitigated)",
                 restricted.attack_succeeded ? "SUCCEEDS" : "fails",
                 "denied (EACCES)",
                 restricted.root_monitoring_ok ? "works" : "broken"});
  std::fputs(table.render().c_str(), stdout);

  std::puts("\nReading: chmod 0400 on the measurement attributes stops the");
  std::puts("unprivileged attack outright, at the cost of breaking every");
  std::puts("unprivileged consumer (the deployment tension Sec V discusses).");

  session.record().set_text("open_attack",
                            open.attack_succeeded ? "succeeds" : "fails");
  session.record().set_text(
      "mitigated_attack", restricted.attack_succeeded ? "succeeds" : "fails");
  session.record().set_text(
      "mitigated_root_monitoring",
      restricted.root_monitoring_ok ? "works" : "broken");
  session.finish();
  return 0;
}
