#!/usr/bin/env sh
# Run the full bench suite and collect the per-run BENCH_*.json records into
# one trajectory directory. Usage:
#
#   bench/run_all.sh [--quick] [--out-dir DIR] [--build-dir DIR] [--obs]
#
#   --quick      scale every experiment down (CI-sized: seconds, not minutes)
#   --out-dir    where run records + per-bench stdout logs land
#                (default: bench/trajectory/<git-sha>-<date>/)
#   --build-dir  where the built binaries live (default: build)
#   --obs        additionally write metrics/trace/audit snapshots per bench
#
# Successive runs accumulate under bench/trajectory/ (gitignored), one
# directory per commit+day; the script ends by printing the
# tools/bench_compare invocation against the previous trajectory directory
# (or the committed bench/baseline/ seed) so regressions are one paste away.
#
# The script exits nonzero if any bench fails; the failing bench's log is
# printed. micro_primitives (google-benchmark) is run last; its custom main
# writes BENCH_micro_primitives.json with per-benchmark ns and the
# tree_fit/forest_predict_batch A/B speedup ratios.
set -u

repo_root=$(cd "$(dirname "$0")/.." && pwd)

# Provenance: run records stamp "env.git_sha" from this variable (falling
# back to the sha baked in at configure time).
git_sha=$(git -C "$repo_root" rev-parse --short=12 HEAD 2>/dev/null || echo unknown)
export AMPEREBLEED_GIT_SHA="$git_sha"

quick=0
obs=0
out_dir=""
build_dir="build"
while [ $# -gt 0 ]; do
  case "$1" in
    --quick) quick=1 ;;
    --obs) obs=1 ;;
    --out-dir) out_dir="$2"; shift ;;
    --build-dir) build_dir="$2"; shift ;;
    *) echo "unknown flag: $1" >&2; exit 2 ;;
  esac
  shift
done

trajectory_root="$repo_root/bench/trajectory"
if [ -z "$out_dir" ]; then
  out_dir="$trajectory_root/${git_sha}-$(date +%Y%m%d)"
fi

bench_dir="$build_dir/bench"
if [ ! -d "$bench_dir" ]; then
  echo "error: '$bench_dir' not found — build first: cmake -B $build_dir -S . && cmake --build $build_dir -j" >&2
  exit 1
fi
mkdir -p "$out_dir"
out_abs=$(cd "$out_dir" && pwd)

failures=0
run() {
  name="$1"
  shift
  bin="$bench_dir/$name"
  if [ ! -x "$bin" ]; then
    echo "SKIP  $name (not built)"
    return
  fi
  extra=""
  if [ "$obs" -eq 1 ]; then
    extra="--metrics-out $out_abs/${name}_metrics.json \
           --trace-out $out_abs/${name}_trace.json \
           --audit-out $out_abs/${name}_audit.json"
  fi
  start=$(date +%s)
  # shellcheck disable=SC2086
  if "$bin" "$@" --record-out "$out_abs/BENCH_${name}.json" $extra \
      > "$out_abs/${name}.log" 2>&1; then
    end=$(date +%s)
    echo "OK    $name ($((end - start)) s)"
  else
    echo "FAIL  $name — log follows:"
    cat "$out_abs/${name}.log"
    failures=$((failures + 1))
  fi
}

if [ "$quick" -eq 1 ]; then
  echo "Bench suite (quick scale) -> $out_abs"
  run table1_boards
  run table2_sensors
  run fig2_characterization --levels 11 --samples 100
  run fig3_dnn_traces --duration 1
  run table3_fingerprint --models 6 --traces 6 --folds 3 --trees 30
  run fig4_rsa_hamming --samples 2000
  run ablation_stabilizer --samples 500
  run ablation_resolution --samples 500
  run ablation_update_interval --models 6 --traces 10 --trees 30
  run ablation_mitigation
  run ablation_thermal
  run ablation_constant_time --samples 1000
  run ablation_classifier --models 6 --traces 6 --folds 3
  run ablation_defenses --samples 500
  run ablation_detection --duration 20
  run ablation_faults --quick
  run ablation_quality --quick
  run covert_channel
  run service_load --quick
else
  echo "Bench suite (paper scale) -> $out_abs"
  run table1_boards
  run table2_sensors
  run fig2_characterization --csv "$out_abs/fig2.csv"
  run fig3_dnn_traces --csv "$out_abs/fig3.csv"
  run table3_fingerprint
  run fig4_rsa_hamming --csv "$out_abs/fig4.csv"
  run ablation_stabilizer
  run ablation_resolution
  run ablation_update_interval
  run ablation_mitigation
  run ablation_thermal
  run ablation_constant_time
  run ablation_classifier
  run ablation_defenses
  run ablation_detection
  run ablation_faults
  run ablation_quality
  run covert_channel
  run service_load
fi

# google-benchmark micro suite (no ObsSession; own flag set). Its custom
# main mirrors results + A/B speedup ratios into BENCH_micro_primitives.json
# so the micro numbers ride the same trajectory as the table/figure records.
if [ -x "$bench_dir/micro_primitives" ]; then
  micro_args="--benchmark_out=$out_abs/micro_primitives.json --benchmark_out_format=json"
  micro_args="$micro_args --record-out $out_abs/BENCH_micro_primitives.json"
  [ "$quick" -eq 1 ] && micro_args="$micro_args --benchmark_min_time=0.01"
  # shellcheck disable=SC2086
  if "$bench_dir/micro_primitives" $micro_args \
      > "$out_abs/micro_primitives.log" 2>&1; then
    echo "OK    micro_primitives"
  else
    echo "FAIL  micro_primitives — log follows:"
    cat "$out_abs/micro_primitives.log"
    failures=$((failures + 1))
  fi
fi

records=$(ls "$out_abs"/BENCH_*.json 2>/dev/null | wc -l)
echo "Collected $records run records in $out_abs"

# Point at the previous trajectory directory (or the committed baseline) so
# the perf-regression check is copy-paste away.
compare_bin="$build_dir/tools/bench_compare"
previous=""
if [ -d "$trajectory_root" ]; then
  previous=$(ls -1d "$trajectory_root"/*/ 2>/dev/null \
    | grep -v -F "$out_abs" | sort | tail -n 1)
fi
[ -z "$previous" ] && [ -d "$repo_root/bench/baseline" ] && previous="$repo_root/bench/baseline"
if [ -n "$previous" ]; then
  echo ""
  echo "Compare against the previous run with:"
  echo "  $compare_bin $previous $out_abs"
fi

if [ "$failures" -gt 0 ]; then
  echo "$failures bench(es) failed" >&2
  exit 1
fi
