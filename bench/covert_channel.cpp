// Application bench: capacity of the INA226 covert channel (FPGA sender ->
// unprivileged CPU receiver). Sweeps the bit period and reports bit error
// rate and goodput; the ~35 ms sensor conversion interval — not the fabric —
// is the bandwidth bottleneck, mirroring the eavesdropping results.

#include <cstdio>

#include "amperebleed/core/covert.hpp"
#include "amperebleed/core/report.hpp"
#include "amperebleed/core/sampler.hpp"
#include "amperebleed/soc/soc.hpp"
#include "amperebleed/util/cli.hpp"
#include "amperebleed/util/strings.hpp"
#include "obs_session.hpp"

int main(int argc, char** argv) {
  using namespace amperebleed;
  const util::CliArgs args(argc, argv);
  bench::ObsSession session(args, "covert_channel");
  const std::string message =
      args.get_string("message", "AmpereBleed covert channel");
  const auto payload = core::bytes_to_bits(message);

  std::printf("Covert channel over hwmon current: %zu-bit payload "
              "(\"%s\")\n\n",
              payload.size(), message.c_str());

  core::TextTable table({"Bit period", "Raw rate (b/s)", "BER",
                         "Message recovered"});

  for (std::int64_t period_ms : {250, 140, 105, 70, 35, 20}) {
    core::CovertChannelConfig config;
    config.bit_period = sim::milliseconds(period_ms);

    const sim::TimeNs tx_start = sim::milliseconds(200);
    auto virus = core::encode_transmission(config, payload, tx_start);

    soc::Soc soc(soc::zcu102_config(0xc0 + static_cast<std::uint64_t>(period_ms)));
    soc.fabric().deploy(virus.descriptor());
    soc.add_activity(virus.activity());
    soc.finalize();

    core::Sampler receiver(soc);
    core::SamplerConfig sc;
    sc.period = sim::milliseconds(5);
    const sim::TimeNs span =
        core::transmission_duration(config, payload.size());
    sc.sample_count = static_cast<std::size_t>(span.ns / sc.period.ns) + 60;
    const auto trace = receiver.collect(
        {power::Rail::FpgaLogic, core::Quantity::Current}, tx_start, sc);

    const auto decoded =
        core::decode_transmission(config, trace, tx_start, payload.size());
    const double ber = core::bit_error_rate(payload, decoded.bits);
    const std::string recovered = core::bits_to_bytes(decoded.bits);

    table.add_row({
        util::format("%lld ms", static_cast<long long>(period_ms)),
        core::fmt(config.raw_bits_per_second(), 1),
        core::fmt(ber, 3),
        ber == 0.0 ? "yes" : (recovered == message ? "yes" : "no"),
    });
  }
  std::fputs(table.render().c_str(), stdout);

  std::puts("\nReading: the channel is clean down to ~2 sensor conversions");
  std::puts("per bit (~14 b/s) and collapses once bits outrun the 35 ms");
  std::puts("conversion interval — the same resolution limit that shapes the");
  std::puts("eavesdropping attacks.");
  session.record().set_integer("payload_bits",
                               static_cast<std::int64_t>(payload.size()));
  session.finish();
  return 0;
}
