// Ablation A6 (negative control): the same unprivileged current sampler
// that recovers RSA-1024 Hamming weights is pointed at an AES-128 core.
// AES's balanced round activity carries no key-dependent duty cycle, so the
// channel that separates all 17 RSA keys cannot separate even 2 AES keys —
// delimiting what AmpereBleed's coarse current channel can and cannot leak.

#include <cstdio>

#include "amperebleed/core/report.hpp"
#include "amperebleed/core/sampler.hpp"
#include "amperebleed/fpga/aes_circuit.hpp"
#include "amperebleed/soc/soc.hpp"
#include "amperebleed/stats/descriptive.hpp"
#include "amperebleed/stats/separability.hpp"
#include "amperebleed/util/cli.hpp"
#include "amperebleed/util/rng.hpp"
#include "amperebleed/util/strings.hpp"
#include "obs_session.hpp"

int main(int argc, char** argv) {
  using namespace amperebleed;
  const util::CliArgs args(argc, argv);
  bench::ObsSession session(args, "ablation_constant_time");
  const auto samples =
      static_cast<std::size_t>(args.get_int("samples", 3'000));

  // Keys with increasing Hamming weight — the exact axis that leaks for
  // RSA. For AES the key schedule diffuses it away.
  const std::size_t key_weights[] = {0, 16, 32, 64, 96, 128};

  std::printf("Ablation (negative control): AES-128 key separability via "
              "FPGA current\n(%zu samples per key at 1 kHz; compare with "
              "fig4_rsa_hamming)\n\n",
              samples);

  core::TextTable table({"Key Hamming weight", "Current mean (mA)",
                         "Current std", "Group"});
  std::vector<std::vector<double>> classes;

  for (std::size_t k = 0; k < std::size(key_weights); ++k) {
    crypto::Aes128::Key key{};
    util::Rng kr(util::hash_combine(0xae5, key_weights[k]));
    // Deterministically set exactly `weight` bits.
    std::size_t set = 0;
    while (set < key_weights[k]) {
      const auto bit = static_cast<std::size_t>(kr.uniform_below(128));
      auto& byte = key[bit / 8];
      const auto mask = static_cast<std::uint8_t>(1u << (bit % 8));
      if ((byte & mask) == 0) {
        byte = static_cast<std::uint8_t>(byte | mask);
        ++set;
      }
    }

    fpga::AesCircuit circuit(fpga::AesCircuitConfig{}, key);
    soc::Soc soc(soc::zcu102_config(util::hash_combine(0xab6, k)));
    soc.fabric().deploy(circuit.descriptor());
    const sim::TimeNs start = sim::milliseconds(200);
    const sim::TimeNs end{start.ns +
                          sim::milliseconds(1).ns *
                              static_cast<std::int64_t>(samples) +
                          sim::milliseconds(100).ns};
    soc.add_activity(
        circuit.schedule(sim::milliseconds(50), end, 0x9eed + k).activity);
    soc.finalize();

    core::Sampler sampler(soc);
    core::SamplerConfig sc;
    sc.period = sim::milliseconds(1);
    sc.sample_count = samples;
    const auto trace = sampler.collect(
        {power::Rail::FpgaLogic, core::Quantity::Current}, start, sc);
    classes.emplace_back(trace.values().begin(), trace.values().end());
  }

  const auto groups = stats::group_indistinguishable(classes, 0.95);
  for (std::size_t k = 0; k < std::size(key_weights); ++k) {
    const auto s = stats::summarize(classes[k]);
    table.add_row({util::format("%zu", key_weights[k]), core::fmt(s.mean, 1),
                   core::fmt(s.stddev, 2), util::format("%zu", groups[k])});
  }
  std::fputs(table.render().c_str(), stdout);

  const std::size_t n_groups = groups.back() + 1;
  std::printf("\nSeparable AES key groups: %zu of %zu (RSA under the same "
              "sampler: 17 of 17)\n",
              n_groups, std::size(key_weights));
  std::puts("Reading: AmpereBleed leaks *architecture-level duty cycles*");
  std::puts("(which multiplier ran, for how long), not data-level switching;");
  std::puts("a balanced-activity core like AES is outside the channel's");
  std::puts("reach at hwmon timescales.");
  session.record().set_integer("aes_key_groups",
                               static_cast<std::int64_t>(n_groups));
  session.finish();
  return n_groups == 1 ? 0 : 0;
}
