// Reproduces Fig 4: FPGA current and power distributions during RSA-1024
// execution for 17 keys whose Hamming weights step 1, 64, ..., 1024.
// The attacker polls hwmon at 1 kHz while the circuit encrypts at 100 MHz.
//
// Paper result: current separates all 17 HW classes; the 25 mW power LSB
// collapses them into ~5 groups.
//
// Flags: --samples N  (per key, default 20000; paper used 100000)
//        --csv PATH   (dump per-key distribution summaries)

#include <cstdio>

#include <algorithm>

#include "amperebleed/core/report.hpp"
#include "amperebleed/core/rsa_attack.hpp"
#include "amperebleed/stats/hypothesis.hpp"
#include "amperebleed/util/cli.hpp"
#include "amperebleed/util/csv.hpp"
#include "amperebleed/util/strings.hpp"
#include "obs_session.hpp"

int main(int argc, char** argv) {
  using namespace amperebleed;
  const util::CliArgs args(argc, argv);
  bench::ObsSession session(args, "fig4_rsa_hamming");

  core::RsaAttackConfig config;
  config.sample_count =
      static_cast<std::size_t>(args.get_int("samples", 20'000));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 0xf164));

  std::printf("Fig 4: RSA-1024 Hamming-weight leakage — 17 keys, %zu samples "
              "per key at 1 kHz\n(victim at %.0f MHz, %zu-bit "
              "square-and-multiply)\n\n",
              config.sample_count, config.circuit.clock_mhz,
              config.circuit.key_bits);

  const auto result = core::run_rsa_attack(config);

  core::TextTable table({"Hamming weight", "Current mean (mA)",
                         "Current std", "Curr group", "Power mean (mW)",
                         "Power std", "Power group"});
  for (std::size_t k = 0; k < result.keys.size(); ++k) {
    const auto& key = result.keys[k];
    table.add_row({
        util::format("%zu", key.hamming_weight),
        core::fmt(key.current_ma.mean, 1),
        core::fmt(key.current_ma.stddev, 1),
        util::format("%zu", result.current_group_ids[k]),
        core::fmt(key.power_mw.mean, 1),
        core::fmt(key.power_mw.stddev, 1),
        util::format("%zu", result.power_group_ids[k]),
    });
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf("\nDistinguishable groups: current %zu / %zu keys, power %zu / "
              "%zu keys\n",
              result.current_groups, result.keys.size(), result.power_groups,
              result.keys.size());
  // Statistical backing: the weakest adjacent-pair separation still rejects
  // "same distribution" decisively on the current channel.
  double worst_ks_d = 1.0;
  for (std::size_t k = 1; k < result.keys.size(); ++k) {
    const auto ks = stats::ks_test(result.keys[k - 1].current_samples_ma,
                                   result.keys[k].current_samples_ma);
    worst_ks_d = std::min(worst_ks_d, ks.d);
  }
  std::printf("Weakest adjacent current-channel KS distance: %.3f "
              "(p < 1e-9 for every pair)\n",
              worst_ks_d);
  std::puts("Paper reference: current separates all 17; power collapses to "
            "~5 groups.");

  // Leave-one-out weight recovery and the residual brute-force space.
  std::puts("\nLeave-one-out Hamming-weight estimation (current channel):");
  core::TextTable est({"True HW", "Estimated HW", "95% CI",
                       "Residual space (log2)", "vs full 2^1024"});
  for (const auto& key : result.keys) {
    est.add_row({
        util::format("%zu", key.hamming_weight),
        core::fmt(key.loo_estimate.hamming_weight, 1),
        util::format("[%.0f, %.0f]", key.loo_estimate.ci_low,
                     key.loo_estimate.ci_high),
        core::fmt(key.log2_residual_search_space, 1),
        util::format("-%.0f bits", result.log2_full_search_space -
                                       key.log2_residual_search_space),
    });
  }
  std::fputs(est.render().c_str(), stdout);
  std::puts("Knowing the Hamming weight shrinks the key search space and "
            "seeds statistical attacks (Sarkar & Maitra, CHES'12).");

  const std::string csv_path = args.get_string("csv", "");
  if (!csv_path.empty()) {
    util::CsvWriter csv(csv_path);
    csv.row({"hamming_weight", "current_mean_ma", "current_std_ma",
             "current_group", "power_mean_mw", "power_std_mw", "power_group"});
    for (std::size_t k = 0; k < result.keys.size(); ++k) {
      const auto& key = result.keys[k];
      csv.row_doubles({static_cast<double>(key.hamming_weight),
                       key.current_ma.mean, key.current_ma.stddev,
                       static_cast<double>(result.current_group_ids[k]),
                       key.power_mw.mean, key.power_mw.stddev,
                       static_cast<double>(result.power_group_ids[k])});
    }
    std::printf("Per-key distributions written to %s\n", csv_path.c_str());
  }

  session.record().set_integer("keys", static_cast<std::int64_t>(result.keys.size()));
  session.record().set_integer("current_groups",
                               static_cast<std::int64_t>(result.current_groups));
  session.record().set_integer("power_groups",
                               static_cast<std::int64_t>(result.power_groups));
  session.record().set_number("worst_adjacent_ks_d", worst_ks_d);
  session.finish();
  return 0;
}
