// Ablation A2: why the current channel beats the power channel. Sweep the
// sensor's current LSB (1 / 5 / 25 mA) and count how many of the 17 RSA
// Hamming-weight classes stay distinguishable. The paper's power channel is
// equivalent to a 25x-coarser current channel (power LSB = 25 x current
// LSB), which is exactly where the 17 classes collapse to a handful.

#include <cstdio>

#include "amperebleed/core/report.hpp"
#include "amperebleed/core/rsa_attack.hpp"
#include "amperebleed/core/sampler.hpp"
#include "amperebleed/crypto/rsa.hpp"
#include "amperebleed/fpga/rsa_circuit.hpp"
#include "amperebleed/soc/soc.hpp"
#include "amperebleed/stats/separability.hpp"
#include "amperebleed/util/cli.hpp"
#include "amperebleed/util/rng.hpp"
#include "amperebleed/util/strings.hpp"
#include "obs_session.hpp"

int main(int argc, char** argv) {
  using namespace amperebleed;
  const util::CliArgs args(argc, argv);
  bench::ObsSession session(args, "ablation_resolution");
  const auto samples =
      static_cast<std::size_t>(args.get_int("samples", 4'000));
  const auto weights = core::default_hamming_weights();

  std::printf("Ablation: distinguishable RSA Hamming-weight groups vs "
              "current-sensor LSB\n(17 keys, %zu samples per key)\n\n",
              samples);

  core::TextTable table(
      {"Current LSB", "Separable groups (of 17)", "Comment"});

  for (double lsb_ma : {1.0, 5.0, 25.0}) {
    std::vector<std::vector<double>> classes;
    for (std::size_t k = 0; k < weights.size(); ++k) {
      crypto::RsaKey key;
      key.modulus = crypto::rsa1024_test_modulus();
      key.private_exponent = crypto::exponent_with_hamming_weight(
          1024, weights[k], util::hash_combine(0xab2, weights[k]));
      fpga::RsaCircuit circuit(fpga::RsaCircuitConfig{}, std::move(key));

      soc::SocConfig config = soc::zcu102_config(util::hash_combine(17, k));
      config.sensor[power::rail_index(power::Rail::FpgaLogic)]
          .current_lsb_amps = lsb_ma * 1e-3;
      soc::Soc soc(config);
      soc.fabric().deploy(circuit.descriptor());
      const sim::TimeNs start = sim::milliseconds(50);
      const sim::TimeNs end{start.ns +
                            sim::milliseconds(1).ns *
                                static_cast<std::int64_t>(samples) +
                            sim::milliseconds(100).ns};
      soc.add_activity(circuit.schedule(start, end).activity);
      soc.finalize();

      core::Sampler sampler(soc);
      core::SamplerConfig sc;
      sc.period = sim::milliseconds(1);
      sc.sample_count = samples;
      const auto trace = sampler.collect(
          {power::Rail::FpgaLogic, core::Quantity::Current}, start, sc);
      classes.emplace_back(trace.values().begin(), trace.values().end());
    }
    const std::size_t groups = stats::count_separable_groups(classes, 0.95);
    const char* comment =
        lsb_ma == 1.0
            ? "hwmon current channel (paper default)"
            : (lsb_ma == 25.0 ? "equivalent to the 25 mW power channel"
                              : "intermediate resolution");
    table.add_row({util::format("%.0f mA", lsb_ma),
                   util::format("%zu", groups), comment});
  }
  std::fputs(table.render().c_str(), stdout);

  std::puts("\nReading: the 25x resolution gap between the CURRENT and POWER");
  std::puts("registers (INA226 datasheet) is alone enough to collapse the");
  std::puts("HW classes — matching Fig 4's current-vs-power comparison.");
  session.finish();
  return 0;
}
