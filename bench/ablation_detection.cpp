// Ablation A10: defender-side detectability of AmpereBleed's access pattern.
// The attack needs no privilege and no crafted circuit — but it cannot avoid
// *reading the sensor interface*, and the hwmon access-audit layer sees every
// read. This bench replays a mixed timeline of benign consumers (a health
// daemon reading four rails at 1 Hz, a user-space governor at 2 Hz) and two
// attacker profiles (the 35 ms characterization cadence and the 1 kHz RSA
// cadence) against one SoC, then runs the sliding-window read-rate detector
// over the audit trail and reports per-principal rates plus window-level
// TPR/FPR across a threshold sweep.
//
// Stated operating point: 10 reads/s per attribute sustained for 3
// consecutive 1 s windows. Both attacker cadences sit far above it (28.6 Hz
// and 1000 Hz on a single attribute); every benign consumer sits far below.
//
// Flags: --duration S (virtual seconds, default 60) --threshold R (reads/s)
//        plus the shared obs flags (see obs_session.hpp)

#include <cstdio>
#include <set>
#include <vector>

#include "amperebleed/core/report.hpp"
#include "amperebleed/core/sampler.hpp"
#include "amperebleed/fpga/power_virus.hpp"
#include "amperebleed/obs/obs.hpp"
#include "amperebleed/soc/soc.hpp"
#include "amperebleed/util/cli.hpp"
#include "amperebleed/util/strings.hpp"
#include "obs_session.hpp"

namespace {

using namespace amperebleed;

/// One sensor consumer on the shared timeline: reads its channels every
/// `period`, starting at `next`.
struct Actor {
  core::Sampler sampler;
  std::vector<core::Channel> channels;
  sim::TimeNs period;
  sim::TimeNs next;
};

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  bench::ObsSession session(args, "ablation_detection");

  const double duration_s = args.get_double("duration", 60.0);
  const double threshold = args.get_double("threshold", 10.0);

  // The detector consumes the audit trail, so this bench needs obs on even
  // without any --obs flag.
  if (!obs::audit_enabled()) obs::init();

  std::printf("Ablation: audit-layer detection of sensor-polling attackers\n"
              "(%.0f virtual seconds; benign daemons vs 35 ms and 1 kHz "
              "attacker cadences)\n\n",
              duration_s);

  // One victim platform; the workload is irrelevant to the detector (it only
  // sees the access pattern), but keep a real one so reads return live data.
  fpga::PowerVirus virus;
  virus.set_active_groups(sim::seconds(1), 60);
  soc::Soc soc(soc::zcu102_config(0xab10));
  soc.fabric().deploy(virus.descriptor());
  soc.add_activity(virus.activity());
  soc.finalize();

  const core::Channel fpga_i{power::Rail::FpgaLogic, core::Quantity::Current};
  const std::vector<core::Channel> all_rails = {
      {power::Rail::FpdCpu, core::Quantity::Current},
      {power::Rail::LpdCpu, core::Quantity::Current},
      {power::Rail::FpgaLogic, core::Quantity::Current},
      {power::Rail::Ddr, core::Quantity::Current},
  };

  // The merged timeline. Offsets desynchronize the actors the way real
  // daemons drift apart; every read lands in the audit log under the
  // actor's principal name via the Sampler's PrincipalScope.
  std::vector<Actor> actors;
  actors.push_back({core::Sampler(soc, core::Principal::root("health-daemon")),
                    all_rails, sim::seconds(1), sim::milliseconds(40)});
  actors.push_back({core::Sampler(soc, core::Principal::unprivileged("governor")),
                    {fpga_i}, sim::milliseconds(500), sim::milliseconds(140)});
  actors.push_back(
      {core::Sampler(soc, core::Principal::unprivileged("attacker-35ms")),
       {fpga_i}, sim::milliseconds(35), sim::milliseconds(60)});
  actors.push_back(
      {core::Sampler(soc, core::Principal::unprivileged("attacker-1khz")),
       {fpga_i}, sim::milliseconds(1), sim::milliseconds(75)});

  const sim::TimeNs end = sim::from_seconds(duration_s);
  for (;;) {
    // Next actor due on the merged timeline.
    Actor* due = nullptr;
    for (auto& a : actors) {
      if (due == nullptr || a.next < due->next) due = &a;
    }
    if (due->next >= end) break;
    soc.advance_to(due->next);
    for (const auto& c : due->channels) {
      static_cast<void>(due->sampler.read_now(c));
    }
    due->next = due->next + due->period;
  }

  // Detector at the stated operating point.
  obs::RateDetectorConfig det;
  det.window = sim::seconds(1);
  det.threshold_reads_per_s = threshold;
  det.consecutive_windows = 3;
  const auto report = obs::detect_rate_anomalies(obs::audit_log(), det);

  core::TextTable table({"Principal", "Accesses", "Peak rate (r/s)",
                         "Mean rate (r/s)", "Hot windows", "Flagged",
                         "Detected after"});
  for (const auto& p : report.principals) {
    table.add_row({
        p.principal,
        util::format("%llu", static_cast<unsigned long long>(p.accesses)),
        core::fmt(p.peak_path_rate_hz, 1),
        core::fmt(p.mean_rate_hz, 1),
        util::format("%zu / %zu", p.hot_windows, p.active_windows),
        p.flagged ? "YES" : "no",
        p.flagged ? util::format("%.1f s", p.detection_time.seconds())
                  : "-",
    });
  }
  std::fputs(table.render().c_str(), stdout);

  const std::set<std::string> attackers = {"attacker-35ms", "attacker-1khz"};
  const auto eval = obs::evaluate_detector(obs::audit_log(), det, attackers);
  std::printf("\nOperating point: %.0f reads/s/attr over %zu consecutive "
              "%.0f s windows\n",
              det.threshold_reads_per_s, det.consecutive_windows,
              det.window.seconds());
  std::printf("Window-level TPR = %.3f, FPR = %.3f  (tp=%llu fp=%llu "
              "tn=%llu fn=%llu)\n",
              eval.tpr(), eval.fpr(),
              static_cast<unsigned long long>(eval.tp),
              static_cast<unsigned long long>(eval.fp),
              static_cast<unsigned long long>(eval.tn),
              static_cast<unsigned long long>(eval.fn));

  // Threshold sweep: where does the detector's operating band sit between
  // the loudest benign consumer (4 r/s) and the quietest attacker (28.6 r/s)?
  std::puts("\nThreshold sweep (3 consecutive 1 s windows):");
  core::TextTable sweep({"Threshold (r/s)", "TPR", "FPR", "Verdict"});
  for (double t : {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 200.0}) {
    obs::RateDetectorConfig c = det;
    c.threshold_reads_per_s = t;
    const auto e = obs::evaluate_detector(obs::audit_log(), c, attackers);
    const char* verdict = (e.tpr() > 0.9 && e.fpr() == 0.0)
                              ? "separates cleanly"
                              : (e.fpr() > 0.0 ? "false alarms"
                                               : "misses attackers");
    sweep.add_row({core::fmt(t, 0), core::fmt(e.tpr(), 3),
                   core::fmt(e.fpr(), 3), verdict});
  }
  std::fputs(sweep.render().c_str(), stdout);

  std::puts("\nReading: the attack's polling loop is loud. Any threshold in");
  std::puts("the decade between the busiest benign consumer and the slowest");
  std::puts("useful attack cadence (35 ms) yields TPR ~1 at FPR 0 — the");
  std::puts("audit layer detects AmpereBleed without restricting access,");
  std::puts("complementing the paper's chmod-style mitigation (Sec V).");

  session.record().set_number("threshold_reads_per_s",
                              det.threshold_reads_per_s);
  session.record().set_number("tpr", eval.tpr());
  session.record().set_number("fpr", eval.fpr());
  const auto* atk = report.find("attacker-1khz");
  if (atk != nullptr) {
    session.record().set_number("attacker_1khz_peak_rate_hz",
                                atk->peak_path_rate_hz);
  }
  session.finish();
  return 0;
}
