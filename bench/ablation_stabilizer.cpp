// Ablation A3: why circuit-free beats crafted circuits on modern boards.
// Sweep the PDN stabilizer gain from 0 (legacy shared PDN) to 1 (ideal
// regulation) and measure how much victim signal each sensing channel keeps:
// the RO's per-level response collapses with stabilization while the hwmon
// current channel is untouched — the paper's core motivation (Sec III-B).

#include <cstdio>

#include "amperebleed/core/characterize.hpp"
#include "amperebleed/core/report.hpp"
#include "amperebleed/util/cli.hpp"
#include "obs_session.hpp"

int main(int argc, char** argv) {
  using namespace amperebleed;
  const util::CliArgs args(argc, argv);
  bench::ObsSession session(args, "ablation_stabilizer");

  std::puts("Ablation: sensing-channel response vs PDN stabilizer gain");
  std::puts("(17 activity levels, 40 mA per level)\n");

  core::TextTable table({"Stabilizer gain", "Current LSB/level",
                         "Current r", "RO counts/level", "RO r",
                         "TDC taps/level", "TDC r", "Current/RO ratio"});

  for (double gain : {0.0, 0.5, 0.9, 0.9875, 1.0}) {
    core::CharacterizationConfig config;
    config.levels = 17;
    config.samples_per_level =
        static_cast<std::size_t>(args.get_int("samples", 800));
    config.ro_samples_per_level = config.samples_per_level;
    config.virus.group_count = 16;
    config.virus.dynamic_current_per_instance_amps = 4e-6;  // 40 mA/group
    config.with_tdc = true;  // second crafted-circuit baseline
    config.seed = 0xab1a;

    // run_characterization builds the SoC internally from zcu102_config();
    // we mirror that here by adjusting the shared default through the
    // config's dedicated hook.
    config.stabilizer_gain_override = gain;

    const auto result = core::run_characterization(config);
    table.add_row({
        core::fmt(gain, 4),
        core::fmt(result.current.variation_lsb_per_level, 1),
        core::fmt(result.current.pearson_vs_level, 3),
        core::fmt(result.ro.variation_lsb_per_level, 3),
        core::fmt(result.ro.pearson_vs_level, 3),
        core::fmt(result.tdc->variation_lsb_per_level, 3),
        core::fmt(result.tdc->pearson_vs_level, 3),
        core::fmt(result.current_over_ro_variation, 1),
    });
  }
  std::fputs(table.render().c_str(), stdout);

  std::puts("\nReading: on a legacy PDN (gain 0) the RO is a usable sensor;");
  std::puts("as boards stabilize the rail, the RO loses its signal while the");
  std::puts("hwmon current channel keeps the full 40 LSB/level response.");
  session.finish();
  return 0;
}
