#pragma once
// Shared observability plumbing for the bench binaries. Every bench accepts
// the same flags:
//
//   --obs                 enable instrumentation without writing snapshots
//   --metrics-out PATH    enable obs; write a metrics snapshot (.json / .csv)
//   --trace-out PATH      enable obs; write a Chrome trace_event JSON
//   --audit-out PATH      enable obs; write the hwmon access-audit log JSON
//   --record-out PATH     run-record path (default BENCH_<name>.json)
//   --no-record           skip the run record entirely
//
// With none of the obs flags present, instrumentation stays disabled (the
// library's default) and the bench's stdout/CSV output is bit-identical to
// an uninstrumented build; only the small BENCH_<name>.json run record is
// written. Usage:
//
//   util::CliArgs args(argc, argv);
//   bench::ObsSession session(args, "fig2_characterization");
//   ... experiment; session.record().set_number("snr_db", snr) ...
//   session.finish();   // also runs from the destructor

#include <string>
#include <utility>

#include "amperebleed/obs/obs.hpp"
#include "amperebleed/obs/run_record.hpp"
#include "amperebleed/util/cli.hpp"

namespace amperebleed::bench {

class ObsSession {
 public:
  ObsSession(const util::CliArgs& args, std::string bench_name)
      : record_(std::move(bench_name)),
        metrics_out_(args.get_string("metrics-out", "")),
        trace_out_(args.get_string("trace-out", "")),
        audit_out_(args.get_string("audit-out", "")),
        record_out_(args.get_string("record-out", "")),
        write_record_(!args.has("no-record")) {
    const bool want_obs = args.has("obs") || !metrics_out_.empty() ||
                          !trace_out_.empty() || !audit_out_.empty();
    if (want_obs) obs::init();
  }

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;
  ~ObsSession() { finish(); }

  /// The bench's run record: add headline numbers as the experiment goes.
  [[nodiscard]] obs::RunRecord& record() { return record_; }

  /// Write all requested outputs exactly once, then disable obs again.
  void finish() {
    if (finished_) return;
    finished_ = true;
    if (obs::metrics_enabled()) {
      // Fold a few universal counters into the run record so the BENCH_*
      // files are comparable across benches without opening the snapshots.
      const auto& m = obs::metrics();
      record_.set_integer(
          "obs_hwmon_reads_ok",
          static_cast<std::int64_t>(m.counter_value("hwmon.vfs.read.ok")));
      record_.set_integer(
          "obs_hwmon_reads_denied",
          static_cast<std::int64_t>(
              m.counter_value("hwmon.vfs.read.permission-denied")));
      record_.set_integer(
          "obs_sampler_reads",
          static_cast<std::int64_t>(m.counter_value("sampler.reads")));
    }
    if (!metrics_out_.empty()) obs::metrics().write_snapshot(metrics_out_);
    if (!trace_out_.empty()) obs::tracer().write_chrome_trace(trace_out_);
    if (!audit_out_.empty()) obs::audit_log().write_json(audit_out_);
    if (write_record_) {
      record_.write(record_out_.empty() ? record_.default_path()
                                        : record_out_);
    }
    if (obs::enabled()) obs::shutdown();
  }

 private:
  obs::RunRecord record_;
  std::string metrics_out_;
  std::string trace_out_;
  std::string audit_out_;
  std::string record_out_;
  bool write_record_ = true;
  bool finished_ = false;
};

}  // namespace amperebleed::bench
