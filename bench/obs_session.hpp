#pragma once
// Shared observability plumbing for the bench binaries. Every bench accepts
// the same flags:
//
//   --obs                  enable instrumentation without writing snapshots
//   --metrics-out PATH     enable obs; write a metrics snapshot (.json/.csv)
//   --trace-out PATH       enable obs; write a Chrome trace_event JSON
//   --audit-out PATH       enable obs; write the hwmon access-audit log JSON
//   --serve-port N         enable obs; serve live telemetry over HTTP while
//                          the bench runs: GET /metrics (Prometheus text),
//                          /healthz, /runrecord. N=0 picks a free port (the
//                          chosen port is printed to stderr).
//   --snapshot-out PATH    enable obs; periodically write a JSON telemetry
//                          snapshot to PATH (atomic rename) while running
//   --flush-interval-ms N  exporter flush/snapshot cadence (default 500)
//   --record-out PATH      run-record path (default BENCH_<name>.json)
//   --no-record            skip the run record entirely
//   --threads N            size the global util::ThreadPool to N executors
//                          (N=1 forces exact serial execution). Without the
//                          flag the pool honours AMPEREBLEED_THREADS, else
//                          hardware concurrency. Results are bit-identical
//                          at any setting; only wall-clock changes.
//
// With none of the obs flags present, instrumentation stays disabled (the
// library's default), no exporter or HTTP thread is ever started, and the
// bench's stdout/CSV output is bit-identical to an uninstrumented build;
// only the small BENCH_<name>.json run record is written. Usage:
//
//   util::CliArgs args(argc, argv);
//   bench::ObsSession session(args, "fig2_characterization");
//   ... experiment; session.record().set_number("snr_db", snr) ...
//   session.finish();   // also runs from the destructor

#include <cstdio>
#include <memory>
#include <string>
#include <utility>

#include "amperebleed/obs/exporter.hpp"
#include "amperebleed/obs/http_exporter.hpp"
#include "amperebleed/obs/obs.hpp"
#include "amperebleed/obs/run_record.hpp"
#include "amperebleed/util/cli.hpp"
#include "amperebleed/util/thread_pool.hpp"

namespace amperebleed::bench {

class ObsSession {
 public:
  ObsSession(const util::CliArgs& args, std::string bench_name)
      : record_(std::move(bench_name)),
        metrics_out_(args.get_string("metrics-out", "")),
        trace_out_(args.get_string("trace-out", "")),
        audit_out_(args.get_string("audit-out", "")),
        snapshot_out_(args.get_string("snapshot-out", "")),
        record_out_(args.get_string("record-out", "")),
        write_record_(!args.has("no-record")) {
    // Pool sizing first, before any experiment code can touch the pool:
    // --threads beats AMPEREBLEED_THREADS beats hardware concurrency. Only
    // an explicit flag lands in the run record — the effective pool size is
    // host-dependent, and baking it into default records would make the
    // committed perf baseline compare thread counts across machines.
    if (args.has("threads")) {
      const auto threads = args.get_int("threads", 0);
      if (threads > 0) {
        util::ThreadPool::set_global_threads(
            static_cast<std::size_t>(threads));
      }
      record_.set_integer(
          "pool_threads",
          static_cast<std::int64_t>(util::ThreadPool::global().size()));
    }
    const bool want_serve = args.has("serve-port");
    const bool want_obs = args.has("obs") || !metrics_out_.empty() ||
                          !trace_out_.empty() || !audit_out_.empty() ||
                          !snapshot_out_.empty() || want_serve;
    if (!want_obs) return;
    obs::init();

    // Live export layer: only spun up when explicitly requested, so the
    // default path never starts a thread.
    if (want_serve || !snapshot_out_.empty()) {
      obs::ExporterConfig config;
      config.flush_interval_ms =
          static_cast<int>(args.get_int("flush-interval-ms", 500));
      exporter_ =
          std::make_unique<obs::Exporter>(obs::metrics(), config);
      if (!snapshot_out_.empty()) {
        exporter_->add_sink(
            std::make_unique<obs::SnapshotSink>(snapshot_out_));
      }
      exporter_->start();
    }
    if (want_serve) {
      obs::HttpExporter::Config http_config;
      http_config.port = static_cast<int>(args.get_int("serve-port", 0));
      http_ = std::make_unique<obs::HttpExporter>(obs::metrics(),
                                                  http_config);
      http_->set_runrecord_provider(
          [this]() { return record_.to_json(); });
      http_->start();
      // stderr so bench stdout stays exactly the experiment's output.
      std::fprintf(stderr,
                   "obs: serving /metrics /healthz /runrecord on "
                   "http://127.0.0.1:%d (flush every %d ms)\n",
                   http_->port(),
                   exporter_ ? exporter_->config().flush_interval_ms : 0);
    }
  }

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;
  ~ObsSession() { finish(); }

  /// The bench's run record: add headline numbers as the experiment goes.
  [[nodiscard]] obs::RunRecord& record() { return record_; }

  /// The live HTTP endpoint, when --serve-port was given (else nullptr).
  [[nodiscard]] obs::HttpExporter* http() { return http_.get(); }

  /// Write all requested outputs exactly once, then disable obs again.
  void finish() {
    if (finished_) return;
    finished_ = true;
    // Stop serving before tearing down data: the exporter drains its ring
    // (graceful shutdown), then the final snapshots are written.
    if (http_) http_->stop();
    if (exporter_) exporter_->stop();
    if (obs::metrics_enabled()) {
      // Fold a few universal counters into the run record so the BENCH_*
      // files are comparable across benches without opening the snapshots.
      const auto& m = obs::metrics();
      record_.set_integer(
          "obs_hwmon_reads_ok",
          static_cast<std::int64_t>(m.counter_value("hwmon.vfs.read.ok")));
      record_.set_integer(
          "obs_hwmon_reads_denied",
          static_cast<std::int64_t>(
              m.counter_value("hwmon.vfs.read.permission-denied")));
      record_.set_integer(
          "obs_sampler_reads",
          static_cast<std::int64_t>(m.counter_value("sampler.reads")));
    }
    if (!metrics_out_.empty()) obs::metrics().write_snapshot(metrics_out_);
    if (!trace_out_.empty()) obs::tracer().write_chrome_trace(trace_out_);
    if (!audit_out_.empty()) obs::audit_log().write_json(audit_out_);
    if (write_record_) {
      record_.write(record_out_.empty() ? record_.default_path()
                                        : record_out_);
    }
    if (obs::enabled()) obs::shutdown();
  }

 private:
  obs::RunRecord record_;
  std::string metrics_out_;
  std::string trace_out_;
  std::string audit_out_;
  std::string snapshot_out_;
  std::string record_out_;
  std::unique_ptr<obs::Exporter> exporter_;
  std::unique_ptr<obs::HttpExporter> http_;
  bool write_record_ = true;
  bool finished_ = false;
};

}  // namespace amperebleed::bench
