#pragma once
// Shared observability plumbing for the bench binaries. Every bench accepts
// the same flags:
//
//   --obs                  enable instrumentation without writing snapshots
//   --quality              enable obs AND the quality layer (drift + data-
//                          quality monitors, the /quality endpoint, and
//                          quality_*/drift_* run-record keys). Quality is
//                          strictly opt-in: plain --obs leaves it off.
//   --metrics-out PATH     enable obs; write a metrics snapshot (.json/.csv)
//   --trace-out PATH       enable obs; write a Chrome trace_event JSON
//   --audit-out PATH       enable obs; write the hwmon access-audit log JSON
//   --profile-out PATH     enable obs; write a collapsed-stack profile
//                          folded from the completed trace spans (input
//                          format of flame-graph renderers)
//   --serve-port N         enable obs; serve live telemetry over HTTP while
//                          the bench runs: GET /metrics (Prometheus text),
//                          /healthz, /runrecord, /flamegraph, /slo. N=0
//                          picks a free port (printed to stderr).
//   --snapshot-out PATH    enable obs; periodically write a JSON telemetry
//                          snapshot to PATH (atomic rename) while running
//   --flush-interval-ms N  exporter flush/snapshot cadence (default 500)
//   --record-out PATH      run-record path (default BENCH_<name>.json)
//   --no-record            skip the run record entirely
//   --threads N            size the global util::ThreadPool to N executors
//                          (N=1 forces exact serial execution). Without the
//                          flag the pool honours AMPEREBLEED_THREADS, else
//                          hardware concurrency. Results are bit-identical
//                          at any setting; only wall-clock changes.
//   --simd TIER            force the SIMD dispatch tier (off|scalar|
//                          interleaved|neon|avx2|auto). Without the flag the
//                          process honours AMPEREBLEED_SIMD, else the best
//                          tier the host supports. Every tier is
//                          bit-identical (DESIGN.md §14); only wall-clock
//                          changes. The tier lands in the run record's env
//                          provenance and the simd.tier gauge.
//
// With none of the obs flags present, instrumentation stays disabled (the
// library's default), no exporter or HTTP thread is ever started, and the
// bench's stdout/CSV output is bit-identical to an uninstrumented build;
// only the small BENCH_<name>.json run record is written. Usage:
//
//   util::CliArgs args(argc, argv);
//   bench::ObsSession session(args, "fig2_characterization");
//   ... experiment; session.record().set_number("snr_db", snr) ...
//   session.finish();   // also runs from the destructor

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>

#include "amperebleed/obs/exporter.hpp"
#include "amperebleed/obs/http_exporter.hpp"
#include "amperebleed/obs/obs.hpp"
#include "amperebleed/obs/quality.hpp"
#include "amperebleed/obs/run_record.hpp"
#include "amperebleed/util/cli.hpp"
#include "amperebleed/util/simd.hpp"
#include "amperebleed/util/thread_pool.hpp"

namespace amperebleed::bench {

class ObsSession {
 public:
  ObsSession(const util::CliArgs& args, std::string bench_name)
      : record_(std::move(bench_name)),
        metrics_out_(args.get_string("metrics-out", "")),
        trace_out_(args.get_string("trace-out", "")),
        audit_out_(args.get_string("audit-out", "")),
        profile_out_(args.get_string("profile-out", "")),
        snapshot_out_(args.get_string("snapshot-out", "")),
        record_out_(args.get_string("record-out", "")),
        write_record_(!args.has("no-record")) {
    // Pool sizing first, before any experiment code can touch the pool:
    // --threads beats AMPEREBLEED_THREADS beats hardware concurrency. Only
    // an explicit flag lands in the run record — the effective pool size is
    // host-dependent, and baking it into default records would make the
    // committed perf baseline compare thread counts across machines.
    if (args.has("threads")) {
      const auto threads = args.get_int("threads", 0);
      if (threads > 0) {
        util::ThreadPool::set_global_threads(
            static_cast<std::size_t>(threads));
      }
      record_.set_integer(
          "pool_threads",
          static_cast<std::int64_t>(util::ThreadPool::global().size()));
    }
    // SIMD tier next, still ahead of any experiment code: --simd beats
    // AMPEREBLEED_SIMD beats auto-detection (util::simd resolves the env on
    // first use). The run record captures the tier via env provenance
    // ("simd_tier") whether or not the flag was given.
    if (args.has("simd")) {
      util::simd::set_active_tier(
          util::simd::tier_from_name(args.get_string("simd", "auto")));
    }
    const bool want_serve = args.has("serve-port");
    const bool want_quality = args.has("quality");
    const bool want_obs = args.has("obs") || !metrics_out_.empty() ||
                          !trace_out_.empty() || !audit_out_.empty() ||
                          !profile_out_.empty() || !snapshot_out_.empty() ||
                          want_serve || want_quality;
    if (!want_obs) return;
    obs::init(obs::ObsConfig{.enabled = true, .quality = want_quality});

    // Selected dispatch tier as a gauge (numeric SimdTier value), so live
    // telemetry consumers can tell which kernels produced the numbers.
    obs::gauge_set("simd.tier", static_cast<double>(static_cast<int>(
                                    util::simd::active_tier())));

    // The bench root span: every stage span, parallel_for task span and
    // fault instant recorded on this thread (or captured into pool tasks)
    // nests under it, giving the trace and flame graph a single root.
    root_span_ = obs::span("bench." + record_.name(), "bench");

    // Default SLO objectives, evaluated in virtual time by the sampler.
    // acquire_virtual_latency is fully deterministic (virtual ns per
    // sample; retry backoff from injected faults shows up here);
    // classify_latency meters the wall-clock online-classify stage.
    obs::slos().add({.name = "acquire_virtual_latency",
                     .histogram = "sampler.sample_acquire_vns",
                     .threshold = 1.0e6,   // 1 ms of virtual time per sample
                     .target = 0.99});
    obs::slos().add({.name = "classify_latency",
                     .histogram = "pipeline.stage.classify_ns",
                     .threshold = 5.0e7,   // 50 ms wall per classify unit
                     .target = 0.95});

    // Live export layer: only spun up when explicitly requested, so the
    // default path never starts a thread.
    if (want_serve || !snapshot_out_.empty()) {
      obs::ExporterConfig config;
      config.flush_interval_ms =
          static_cast<int>(args.get_int("flush-interval-ms", 500));
      exporter_ =
          std::make_unique<obs::Exporter>(obs::metrics(), config);
      if (!snapshot_out_.empty()) {
        exporter_->add_sink(
            std::make_unique<obs::SnapshotSink>(snapshot_out_));
      }
      exporter_->start();
    }
    if (want_serve) {
      obs::HttpExporter::Config http_config;
      http_config.port = static_cast<int>(args.get_int("serve-port", 0));
      http_ = std::make_unique<obs::HttpExporter>(obs::metrics(),
                                                  http_config);
      http_->set_runrecord_provider(
          [this]() { return record_.to_json(); });
      http_->set_flamegraph_provider(
          []() { return obs::collapsed_stacks_text(obs::tracer()); });
      http_->set_slo_provider(
          []() { return obs::slos().to_json(obs::metrics()); });
      http_->set_quality_provider(
          []() { return obs::quality_hub().to_json(); });
      http_->start();
      // stderr so bench stdout stays exactly the experiment's output.
      std::fprintf(stderr,
                   "obs: serving /metrics /healthz /runrecord /flamegraph "
                   "/slo /quality on http://127.0.0.1:%d (flush every %d "
                   "ms)\n",
                   http_->port(),
                   exporter_ ? exporter_->config().flush_interval_ms : 0);
    }
  }

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;
  ~ObsSession() { finish(); }

  /// The bench's run record: add headline numbers as the experiment goes.
  [[nodiscard]] obs::RunRecord& record() { return record_; }

  /// The live HTTP endpoint, when --serve-port was given (else nullptr).
  [[nodiscard]] obs::HttpExporter* http() { return http_.get(); }

  /// Write all requested outputs exactly once, then disable obs again.
  void finish() {
    if (finished_) return;
    finished_ = true;
    // Stop serving before tearing down data: the exporter drains its ring
    // (graceful shutdown), then the final snapshots are written.
    if (http_) http_->stop();
    if (exporter_) exporter_->stop();
    // Close the bench root span before any trace-derived output: the
    // collapsed-stack folder and the Chrome trace only see finished spans.
    root_span_.finish();
    if (obs::metrics_enabled()) {
      // Fold a few universal counters into the run record so the BENCH_*
      // files are comparable across benches without opening the snapshots.
      const auto& m = obs::metrics();
      record_.set_integer(
          "obs_hwmon_reads_ok",
          static_cast<std::int64_t>(m.counter_value("hwmon.vfs.read.ok")));
      record_.set_integer(
          "obs_hwmon_reads_denied",
          static_cast<std::int64_t>(
              m.counter_value("hwmon.vfs.read.permission-denied")));
      record_.set_integer(
          "obs_sampler_reads",
          static_cast<std::int64_t>(m.counter_value("sampler.reads")));

      // Per-stage pipeline attribution: informational keys (prefixed
      // stage_ / slo_), excluded from the bench_compare perf gate.
      static constexpr obs::Stage kStages[] = {
          obs::Stage::Acquire, obs::Stage::Preprocess, obs::Stage::Features,
          obs::Stage::Classify};
      for (const obs::Stage stage : kStages) {
        const auto stats = obs::timeline().stage_stats(stage);
        const std::string prefix =
            std::string("stage_") + obs::stage_name(stage);
        record_.set_integer(prefix + "_count",
                            static_cast<std::int64_t>(stats.count));
        record_.set_number(prefix + "_total_ms", stats.total_ns / 1e6);
        record_.set_number(prefix + "_p50_ms",
                           approx_p50_ns(stats) / 1e6);
      }
      // Final SLO evaluation at the end of the virtual timeline.
      for (const auto& status : obs::slos().evaluate_all(obs::metrics())) {
        const std::string prefix = "slo_" + status.name;
        record_.set_number(prefix + "_compliance", status.compliance);
        record_.set_number(prefix + "_fast_burn", status.fast_burn);
        record_.set_number(prefix + "_slow_burn", status.slow_burn);
        record_.set_integer(prefix + "_breached", status.breached ? 1 : 0);
      }
    }
    if (obs::quality_enabled()) {
      // Quality telemetry: informational keys (prefixed quality_ / drift_),
      // excluded from the bench_compare perf gate like stage_/slo_.
      const auto& dq = obs::quality_hub().data_quality();
      double gap_max = 0.0;
      double clip_max = 0.0;
      std::int64_t frozen = 0;
      std::int64_t traces = 0;
      for (const auto& channel : dq.channels()) {
        gap_max = std::max(gap_max, channel.gap_fraction());
        clip_max = std::max(clip_max, channel.clip_rate());
        if (channel.frozen_events > 0) ++frozen;
        traces += static_cast<std::int64_t>(channel.traces);
      }
      record_.set_integer("quality_traces", traces);
      record_.set_number("quality_gap_fraction_max", gap_max);
      record_.set_number("quality_clip_rate_max", clip_max);
      record_.set_integer("quality_frozen_channels", frozen);
      record_.set_integer(
          "quality_gap_filled_total",
          static_cast<std::int64_t>(dq.gap_filled_total()));
    }
    if (!metrics_out_.empty()) obs::metrics().write_snapshot(metrics_out_);
    if (!trace_out_.empty()) obs::tracer().write_chrome_trace(trace_out_);
    if (!audit_out_.empty()) obs::audit_log().write_json(audit_out_);
    if (!profile_out_.empty()) {
      obs::write_collapsed_stacks(obs::tracer(), profile_out_);
    }
    if (write_record_) {
      record_.write(record_out_.empty() ? record_.default_path()
                                        : record_out_);
    }
    if (obs::enabled()) obs::shutdown();
  }

 private:
  /// Median estimate from the timeline's latency buckets: the upper bound
  /// of the bucket holding the count midpoint (0 when empty).
  [[nodiscard]] static double approx_p50_ns(
      const obs::PipelineTimeline::StageStats& stats) {
    if (stats.count == 0) return 0.0;
    const std::uint64_t midpoint = (stats.count + 1) / 2;
    std::uint64_t cumulative = 0;
    for (const auto& bucket : stats.buckets) {
      cumulative += bucket.count;
      if (cumulative >= midpoint) {
        // The overflow bucket has an infinite bound; report the stage max.
        return std::isfinite(bucket.upper_ns) ? bucket.upper_ns
                                              : stats.max_ns;
      }
    }
    return stats.max_ns;
  }

  obs::RunRecord record_;
  std::string metrics_out_;
  std::string trace_out_;
  std::string audit_out_;
  std::string profile_out_;
  std::string snapshot_out_;
  std::string record_out_;
  std::unique_ptr<obs::Exporter> exporter_;
  std::unique_ptr<obs::HttpExporter> http_;
  obs::ScopedSpan root_span_;  // inert unless obs was enabled
  bool write_record_ = true;
  bool finished_ = false;
};

}  // namespace amperebleed::bench
