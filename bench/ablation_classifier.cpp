// Ablation A7: how much of Table III is the channel vs. the classifier.
// Re-runs the fingerprinting CV on the FPGA-current channel with the
// paper's random forest, k-NN, and a nearest-centroid baseline. The channel
// is strong enough that even the trivial centroid model performs well —
// evidence that the leak, not the learner, carries the attack.

#include <cstdio>
#include <memory>

#include "amperebleed/core/fingerprint.hpp"
#include "amperebleed/core/report.hpp"
#include "amperebleed/ml/baselines.hpp"
#include "amperebleed/util/cli.hpp"
#include "amperebleed/util/strings.hpp"
#include "obs_session.hpp"

int main(int argc, char** argv) {
  using namespace amperebleed;
  const util::CliArgs args(argc, argv);
  bench::ObsSession session(args, "ablation_classifier");

  core::FingerprintConfig config;
  config.model_limit = static_cast<std::size_t>(args.get_int("models", 12));
  config.traces_per_model =
      static_cast<std::size_t>(args.get_int("traces", 12));
  config.trace_duration = sim::seconds(3);
  config.durations_s = {3.0};
  config.folds = static_cast<std::size_t>(args.get_int("folds", 6));
  config.seed = 0xab7;
  // Per-call concurrency cap for trace collection; the pool itself is sized
  // by ObsSession from --threads / AMPEREBLEED_THREADS. 0 = whole pool.
  config.threads = static_cast<std::size_t>(args.get_int("threads", 0));

  std::printf("Ablation: classifier choice on the FPGA-current channel "
              "(%zu models, %zu traces each, 3 s window)\n\n",
              config.model_limit, config.traces_per_model);

  std::puts("Collecting traces...");
  const auto traces = core::collect_fingerprint_traces(config);
  // Channel 3 of table3_channels() is FPGA current.
  const ml::Dataset& data = traces.per_channel[3];

  core::TextTable table({"Classifier", "Top-1 accuracy", "Notes"});
  const auto evaluate = [&](auto factory) {
    return ml::cross_validate_classifier(data, factory, config.folds,
                                         config.seed)
        .top1_accuracy;
  };

  const double forest = evaluate([&](std::uint64_t seed) {
    ml::ForestConfig fc;
    fc.n_trees = 100;
    fc.seed = seed;
    return std::make_unique<ml::ForestClassifier>(fc);
  });
  table.add_row({"Random forest (paper)", core::fmt(forest, 3),
                 "100 trees, depth 32"});

  const double knn = evaluate([](std::uint64_t) {
    return std::make_unique<ml::KnnClassifier>(5);
  });
  table.add_row({"k-NN (k=5)", core::fmt(knn, 3), "raw Euclidean"});

  const double centroid = evaluate([](std::uint64_t) {
    return std::make_unique<ml::CentroidClassifier>();
  });
  table.add_row({"Nearest centroid", core::fmt(centroid, 3),
                 "one mean trace per model"});

  std::fputs(table.render().c_str(), stdout);
  std::printf("\nRandom-guess baseline: %.3f\n",
              1.0 / static_cast<double>(config.model_limit));
  std::puts("Reading: even the trivial baselines are competitive with the");
  std::puts("paper's forest — the information lives in the current channel");
  std::puts("itself, not in the learner.");

  session.record().set_number("forest_top1", forest);
  session.record().set_number("knn_top1", knn);
  session.record().set_number("centroid_top1", centroid);
  session.finish();
  return 0;
}
