// Reproduces Fig 2: FPGA current / voltage / power (via hwmon) and RO counts
// versus the number of activated power-virus instances, including the Pearson
// correlations and per-level variations the paper reports.
//
// Paper targets: current r=0.999 at ~40 LSB/level; voltage r=0.958 at
// ~0.006 LSB/level; power r=0.999 at 1-2 LSB/level; RO r=-0.996; current
// variation ~261x the RO's.
//
// Flags: --levels N (default 161) --samples N (per level, default 1000)
//        --csv PATH (dump per-level series)
//        plus the shared obs flags (see obs_session.hpp):
//        --obs --metrics-out PATH --trace-out PATH --audit-out PATH

#include <cstdio>

#include "amperebleed/core/characterize.hpp"
#include "amperebleed/core/report.hpp"
#include "amperebleed/util/cli.hpp"
#include "amperebleed/util/csv.hpp"
#include "amperebleed/util/strings.hpp"
#include "obs_session.hpp"

int main(int argc, char** argv) {
  using namespace amperebleed;
  const util::CliArgs args(argc, argv);
  bench::ObsSession session(args, "fig2_characterization");

  core::CharacterizationConfig config;
  config.levels = static_cast<std::size_t>(args.get_int("levels", 161));
  config.samples_per_level =
      static_cast<std::size_t>(args.get_int("samples", 1000));
  config.ro_samples_per_level = config.samples_per_level;
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 0xf162));

  std::printf("Fig 2: characterization over %zu activity levels "
              "(%zu hwmon samples per level)\n\n",
              config.levels, config.samples_per_level);

  const auto result = core::run_characterization(config);

  const auto instances_per_level =
      config.virus.instance_count / config.virus.group_count;

  core::TextTable series({"Active instances", "Current (mA)", "Voltage (mV)",
                          "Power (mW)", "RO (counts)"});
  const std::size_t stride = config.levels > 20 ? config.levels / 16 : 1;
  const auto add_level = [&](std::size_t level) {
    series.add_row({
        util::format("%zuk", level * instances_per_level / 1000),
        core::fmt(result.current.mean_per_level[level], 1),
        core::fmt(result.voltage.mean_per_level[level], 3),
        core::fmt(result.power.mean_per_level[level] * 1e-3, 1),
        core::fmt(result.ro.mean_per_level[level], 2),
    });
  };
  std::size_t last_printed = 0;
  for (std::size_t level = 0; level < config.levels; level += stride) {
    add_level(level);
    last_printed = level;
  }
  if (last_printed != config.levels - 1) add_level(config.levels - 1);
  std::fputs(series.render().c_str(), stdout);

  core::TextTable summary({"Channel", "Pearson r vs level", "Slope per level",
                           "Variation (LSB/level)"});
  const auto add = [&](const char* name, const core::ChannelSeries& s,
                       int slope_decimals) {
    summary.add_row({name, core::fmt(s.pearson_vs_level, 3),
                     core::fmt(s.fit.slope, slope_decimals),
                     core::fmt(s.variation_lsb_per_level, 3)});
  };
  std::puts("");
  add("FPGA current (hwmon)", result.current, 2);
  add("FPGA voltage (hwmon)", result.voltage, 5);
  add("FPGA power  (hwmon)", result.power, 1);
  add("RO sensor (crafted)", result.ro, 4);
  std::fputs(summary.render().c_str(), stdout);

  std::printf("\nCurrent-vs-RO variation ratio: %.1fx (paper: ~261x)\n",
              result.current_over_ro_variation);
  std::printf("Paper reference: current r=0.999 @ ~40 LSB/level, voltage "
              "r=0.958 @ ~0.006 LSB/level,\n                 power r=0.999 @ "
              "1-2 LSB/level, RO r=-0.996\n");

  const std::string csv_path = args.get_string("csv", "");
  if (!csv_path.empty()) {
    util::CsvWriter csv(csv_path);
    csv.row({"level", "active_instances", "current_ma", "voltage_mv",
             "power_uw", "ro_counts"});
    for (std::size_t level = 0; level < config.levels; ++level) {
      csv.row_doubles({static_cast<double>(level),
                       static_cast<double>(level * instances_per_level),
                       result.current.mean_per_level[level],
                       result.voltage.mean_per_level[level],
                       result.power.mean_per_level[level],
                       result.ro.mean_per_level[level]});
    }
    std::printf("Per-level series written to %s\n", csv_path.c_str());
  }

  session.record().set_integer("levels", static_cast<std::int64_t>(config.levels));
  session.record().set_integer("samples_per_level",
                               static_cast<std::int64_t>(config.samples_per_level));
  session.record().set_number("current_pearson_r", result.current.pearson_vs_level);
  session.record().set_number("voltage_pearson_r", result.voltage.pearson_vs_level);
  session.record().set_number("power_pearson_r", result.power.pearson_vs_level);
  session.record().set_number("ro_pearson_r", result.ro.pearson_vs_level);
  session.record().set_number("current_over_ro_variation",
                              result.current_over_ro_variation);
  session.finish();
  return 0;
}
