// Ablation A12: inference-quality observability — does the drift/quality
// layer fire exactly when it should? An OnlineFingerprinter is enrolled on
// clean traces with drift monitoring on, then served four streams:
//
//   clean ×3 seeds  fresh traces from the enrolled victims. Expected:
//                   zero Warning/Drifted transitions (no false alerts).
//   frozen-sensor   traces recorded under a FrozenRegister + GarbageText
//                   chaos plan (resilient sampler, hold-last gap fill):
//                   flatlined runs + reconstructed gaps shift the feature
//                   distribution and scramble the predicted class mix.
//                   Expected: at least Warning (PSI + chi-square class-mix),
//                   with the data-quality monitors tallying the gaps and
//                   freeze runs that caused it.
//   dvfs-shift      clean traces with a thermal/DVFS-style amplitude scale
//                   (Hot Pixels-style operating-point shift). Expected:
//                   Drifted via PSI/KS on the raw current features.
//
// Detection latency (observations from stream start to the first Warning /
// Drifted transition) lands in the run record as drift_* keys. The whole
// bench is byte-reproducible at any thread-pool size: traces are pure
// functions of their seeds, classification feeds the monitor in input
// order, and the quality tallies are order-independent sums.
//
// Flags: --models N        enrolled victim count (default 6; 4 with --quick)
//        --train-traces N  enrollment traces per victim (default 8; 6 quick)
//        --batches N       live batches per stream (default 8; one trace per
//                          victim per batch)
//        --trees N         forest size (default 40; 24 with --quick)
//        --threads N       worker threads (default: hardware concurrency)
//        --seed S          pipeline seed (default 0x9a1)
//        --fault-seed S    chaos-plan seed (default AMPEREBLEED_FAULT_SEED
//                          or 0xfa17)
//        --shift X         amplitude scale of the dvfs-shift leg (1.10)

#include <cstdio>
#include <string>
#include <vector>

#include "amperebleed/core/online.hpp"
#include "amperebleed/core/preprocess.hpp"
#include "amperebleed/core/report.hpp"
#include "amperebleed/core/sampler.hpp"
#include "amperebleed/dnn/zoo.hpp"
#include "amperebleed/dpu/dpu.hpp"
#include "amperebleed/faults/faults.hpp"
#include "amperebleed/obs/obs.hpp"
#include "amperebleed/obs/quality.hpp"
#include "amperebleed/soc/soc.hpp"
#include "amperebleed/util/cli.hpp"
#include "amperebleed/util/parallel.hpp"
#include "amperebleed/util/rng.hpp"
#include "amperebleed/util/strings.hpp"
#include "obs_session.hpp"

namespace {

using namespace amperebleed;

constexpr core::Channel kChannel{power::Rail::FpgaLogic,
                                 core::Quantity::Current};

struct StreamConfig {
  const faults::FaultPlan* fault_plan = nullptr;  // nullptr: clean reads
  double scale = 1.0;  // amplitude factor applied to collected values
};

/// One victim run on a fresh SoC: DPU inference loop + single-channel
/// collection, optionally under a chaos plan (resilient sampler, hold-last
/// reconstruction) and/or an amplitude scale. Pure function of the seed.
core::Trace record_trace(const dnn::Model& model, std::size_t n_samples,
                         std::uint64_t seed, const StreamConfig& stream) {
  dpu::DpuAccelerator dpu;
  const sim::TimeNs run_end =
      sim::seconds(1) + sim::milliseconds(200);
  auto run = dpu.run(model, sim::TimeNs{0}, run_end,
                     util::hash_combine(seed, 0xd9));
  soc::Soc soc(soc::zcu102_config(util::hash_combine(seed, 0x50c)));
  soc.fabric().deploy(dpu.descriptor());
  soc.add_activity(run.activity);
  soc.finalize();

  std::optional<faults::FaultInjector> injector;
  if (stream.fault_plan != nullptr && stream.fault_plan->any()) {
    faults::FaultPlan plan = *stream.fault_plan;
    plan.seed = util::hash_combine(plan.seed, seed);
    injector.emplace(plan);
    injector->attach(soc.hwmon().fs());
  }

  core::Sampler sampler(soc);
  if (stream.fault_plan != nullptr) {
    core::ResilienceConfig resilience;
    resilience.enabled = true;
    sampler.set_resilience(resilience);
  }
  core::SamplerConfig sc;
  sc.sample_count = n_samples;
  core::Trace raw = sampler.collect(kChannel, sim::TimeNs{0}, sc);
  if (stream.fault_plan == nullptr && stream.scale == 1.0) return raw;

  // Reconstruct gaps (hold-last, the A11 policy) and apply the amplitude
  // scale, yielding the gapless trace the classifier actually consumes.
  std::vector<double> values =
      core::fill_gaps(raw, core::GapPolicy::HoldLast);
  core::Trace out(raw.channel(), raw.start(), raw.period());
  out.reserve(values.size());
  for (double v : values) out.push(v * stream.scale);
  return out;
}

/// Record `batches` batches — one trace per victim per batch — in parallel
/// into deterministic slots.
std::vector<std::vector<core::Trace>> record_batches(
    const std::vector<dnn::Model>& zoo, std::size_t batches,
    std::size_t n_samples, std::uint64_t stream_seed,
    const StreamConfig& stream, std::size_t threads) {
  // Trace has no default constructor; seed the slots with placeholder
  // copies that every worker overwrites.
  std::vector<core::Trace> flat(
      batches * zoo.size(),
      core::Trace(kChannel, sim::TimeNs{0}, sim::milliseconds(35)));
  util::parallel_for(
      flat.size(),
      [&](std::size_t i) {
        flat[i] = record_trace(zoo[i % zoo.size()], n_samples,
                               util::hash_combine(stream_seed, i), stream);
      },
      threads);
  std::vector<std::vector<core::Trace>> out(batches);
  for (std::size_t b = 0; b < batches; ++b) {
    out[b].assign(flat.begin() + static_cast<std::ptrdiff_t>(b * zoo.size()),
                  flat.begin() +
                      static_cast<std::ptrdiff_t>((b + 1) * zoo.size()));
  }
  return out;
}

struct LegResult {
  std::string name;
  obs::DriftReport report;
};

/// Serve one stream to the fingerprinter: reset the monitor's window, then
/// classify every batch (classify_many feeds the monitor in input order).
LegResult run_leg(core::OnlineFingerprinter& service, std::string name,
                  const std::vector<std::vector<core::Trace>>& batches) {
  service.reset_drift_window();
  for (const auto& batch : batches) {
    (void)service.classify_many(batch);
  }
  LegResult leg;
  leg.name = std::move(name);
  leg.report = service.drift_monitor()->report();
  return leg;
}

std::string fmt_obs(std::int64_t obs) {
  return obs < 0 ? "-" : util::format("%lld", static_cast<long long>(obs));
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  bench::ObsSession session(args, "ablation_quality");

  const bool quick = args.has("quick");
  const std::size_t n_models =
      static_cast<std::size_t>(args.get_int("models", quick ? 4 : 6));
  const std::size_t train_traces = static_cast<std::size_t>(
      args.get_int("train-traces", quick ? 6 : 8));
  const std::size_t batches =
      static_cast<std::size_t>(args.get_int("batches", 8));
  const std::size_t n_trees =
      static_cast<std::size_t>(args.get_int("trees", quick ? 24 : 40));
  const std::size_t threads =
      static_cast<std::size_t>(args.get_int("threads", 0));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 0x9a1));
  const double shift = args.get_double("shift", 1.10);
  std::uint64_t fault_seed = faults::FaultPlan::from_env().seed;
  if (args.has("fault-seed")) {
    fault_seed = static_cast<std::uint64_t>(args.get_int("fault-seed", 0));
  }
  const std::size_t n_samples = 28;  // 1 s at the 35 ms hwmon cadence

  // Metrics + quality only: leg tallies come from the quality hub, and
  // tracing/audit accumulation would add nothing to the table.
  obs::init(obs::ObsConfig{.enabled = true,
                           .metrics = true,
                           .tracing = false,
                           .audit = false,
                           .quality = true});

  auto zoo = dnn::build_zoo();
  if (n_models < zoo.size()) zoo.resize(n_models);

  std::printf(
      "Ablation A12: streaming drift detection and data quality — "
      "%zu victims, %zu train traces each,\nRF(%zu trees), %zu-sample "
      "features, %zu live batches per stream, chaos seed 0x%llx\n\n",
      zoo.size(), train_traces, n_trees, n_samples, batches,
      static_cast<unsigned long long>(fault_seed));

  // Enrollment: clean traces, recorded in parallel into ordered slots and
  // enrolled serially (enroll order fixes the class-label mapping).
  const StreamConfig clean_stream;
  std::vector<core::Trace> enroll_traces(
      zoo.size() * train_traces,
      core::Trace(kChannel, sim::TimeNs{0}, sim::milliseconds(35)));
  util::parallel_for(
      enroll_traces.size(),
      [&](std::size_t i) {
        enroll_traces[i] =
            record_trace(zoo[i / train_traces], n_samples,
                         util::hash_combine(seed, 0xe0000 + i), clean_stream);
      },
      threads);

  core::OnlineFingerprinterConfig config;
  config.forest.n_trees = n_trees;
  config.forest.tree.max_depth = 32;
  config.drift.enabled = true;
  config.drift.name = "ablation_quality";
  config.drift.window = 2 * zoo.size() + zoo.size() / 2;  // ~2.5 batches
  config.drift.stride = zoo.size();                       // once per batch
  config.drift.confirm = 2;
  core::OnlineFingerprinter service(config);
  for (std::size_t i = 0; i < enroll_traces.size(); ++i) {
    service.enroll(enroll_traces[i], zoo[i / train_traces].name);
  }
  service.train();

  // The three streams. Chaos plan: frozen registers with long bursts plus
  // occasional garbage reads — the classic degraded-sensor cocktail.
  faults::FaultPlan chaos;
  chaos.seed = fault_seed;
  chaos.rates[faults::FaultKind::FrozenRegister] = 0.35;
  chaos.rates[faults::FaultKind::GarbageText] = 0.15;
  chaos.burst.continue_probability = 0.95;
  chaos.burst.max_length = 96;
  StreamConfig frozen_stream;
  frozen_stream.fault_plan = &chaos;
  StreamConfig shift_stream;
  shift_stream.scale = shift;

  std::vector<LegResult> legs;
  for (std::uint64_t s = 0; s < 3; ++s) {
    legs.push_back(run_leg(
        service, util::format("clean-%llu", static_cast<unsigned long long>(s)),
        record_batches(zoo, batches, n_samples,
                       util::hash_combine(seed, 0xc1ea0 + s), clean_stream,
                       threads)));
  }
  legs.push_back(run_leg(
      service, "frozen-sensor",
      record_batches(zoo, batches, n_samples, util::hash_combine(seed, 0xf0),
                     frozen_stream, threads)));
  legs.push_back(run_leg(
      service, "dvfs-shift",
      record_batches(zoo, batches, n_samples, util::hash_combine(seed, 0xd0),
                     shift_stream, threads)));

  core::TextTable table({"Stream", "Obs", "Evals", "State", "First warn",
                         "First drift", "PSI mean", "KS min p"});
  std::uint64_t clean_false_alerts = 0;
  for (const auto& leg : legs) {
    const auto& r = leg.report;
    if (util::starts_with(leg.name, "clean")) {
      clean_false_alerts += r.warnings + r.drifts;
    }
    table.add_row({leg.name,
                   util::format("%llu", static_cast<unsigned long long>(
                                            r.observations)),
                   util::format("%llu", static_cast<unsigned long long>(
                                            r.evaluations)),
                   std::string(obs::drift_state_name(r.state)),
                   fmt_obs(r.first_warning_obs), fmt_obs(r.first_drifted_obs),
                   util::format("%.3f", r.last.psi_mean),
                   util::format("%.2e", r.last.ks_min_p)});
  }
  std::fputs(table.render().c_str(), stdout);

  // Acquisition-side data quality accumulated across every stream.
  const auto channels = obs::quality_hub().data_quality().channels();
  std::printf("\nData quality (all streams):\n");
  for (const auto& channel : channels) {
    std::printf(
        "  %-24s traces=%llu gap=%.4f clip=%.4f frozen_traces=%llu\n",
        channel.channel.c_str(),
        static_cast<unsigned long long>(channel.traces),
        channel.gap_fraction(), channel.clip_rate(),
        static_cast<unsigned long long>(channel.frozen_events));
  }

  std::puts("\nReading: clean streams never leave Ok — the thresholds have");
  std::puts("real margin, not luck. A frozen sensor raises Warning within a");
  std::puts("few batches (class-mix + PSI) with the data-quality tallies");
  std::puts("naming the guilty channel; a DVFS-style amplitude shift is a");
  std::puts("full covariate shift and lands in Drifted.");

  session.record().set_integer(
      "drift_clean_false_alerts",
      static_cast<std::int64_t>(clean_false_alerts));
  for (const auto& leg : legs) {
    if (util::starts_with(leg.name, "clean")) continue;
    const std::string prefix =
        "drift_" + std::string(util::starts_with(leg.name, "frozen")
                                   ? "frozen"
                                   : "shift");
    session.record().set_integer(prefix + "_first_warning_obs",
                                 leg.report.first_warning_obs);
    session.record().set_integer(prefix + "_first_drifted_obs",
                                 leg.report.first_drifted_obs);
    session.record().set_number(prefix + "_psi_mean",
                                leg.report.last.psi_mean);
    session.record().set_integer(
        prefix + "_detected",
        leg.report.first_warning_obs >= 0 ? 1 : 0);
  }
  session.finish();

  // Exit nonzero when the monitor misbehaved: any clean-stream alert, a
  // frozen stream that never alerted, or an amplitude shift that did not
  // reach Drifted.
  const bool frozen_ok = legs[3].report.first_warning_obs >= 0;
  const bool shift_ok = legs[4].report.state == obs::DriftState::Drifted;
  return (clean_false_alerts == 0 && frozen_ok && shift_ok) ? 0 : 1;
}
