// google-benchmark micro-benchmarks of the library's hot primitives:
// signal integration, INA226 conversion, the hwmon read path, bignum modular
// arithmetic, and random-forest training/inference.

#include <benchmark/benchmark.h>

#include "amperebleed/core/sampler.hpp"
#include "amperebleed/crypto/modexp.hpp"
#include "amperebleed/crypto/montgomery.hpp"
#include "amperebleed/crypto/rsa.hpp"
#include "amperebleed/fpga/power_virus.hpp"
#include "amperebleed/ml/random_forest.hpp"
#include "amperebleed/sim/signal.hpp"
#include "amperebleed/soc/soc.hpp"
#include "amperebleed/util/rng.hpp"

namespace {

using namespace amperebleed;

void BM_SignalIntegrate(benchmark::State& state) {
  sim::PiecewiseConstant signal(0.5);
  for (int i = 1; i <= state.range(0); ++i) {
    signal.append(sim::microseconds(100 * i), 0.5 + (i % 7) * 0.1);
  }
  const sim::TimeNs t0 = sim::microseconds(50);
  const sim::TimeNs t1 =
      sim::microseconds(100 * static_cast<int>(state.range(0)) / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(signal.integrate(t0, t1));
  }
}
BENCHMARK(BM_SignalIntegrate)->Arg(100)->Arg(10'000);

void BM_SignalValueAt(benchmark::State& state) {
  sim::PiecewiseConstant signal(0.5);
  for (int i = 1; i <= 10'000; ++i) {
    signal.append(sim::microseconds(100 * i), (i % 13) * 0.1);
  }
  std::int64_t t = 0;
  for (auto _ : state) {
    t = (t + 37'119) % 1'000'000'000;
    benchmark::DoNotOptimize(signal.value_at(sim::TimeNs{t}));
  }
}
BENCHMARK(BM_SignalValueAt);

void BM_Ina226Conversion(benchmark::State& state) {
  sim::PiecewiseConstant current(1.5);
  sim::PiecewiseConstant voltage(0.85);
  sensors::Ina226 dev(sensors::Ina226Config{}, power::RailNoiseConfig{}, 1);
  dev.bind(&current, &voltage);
  std::int64_t t = 0;
  for (auto _ : state) {
    t += 35'200'000;  // one full conversion per iteration
    dev.advance_to(sim::TimeNs{t});
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Ina226Conversion);

void BM_HwmonReadPath(benchmark::State& state) {
  soc::Soc soc(soc::zcu102_config(1));
  fpga::PowerVirus virus;
  soc.add_activity(virus.activity());
  soc.finalize();
  core::Sampler sampler(soc);
  std::int64_t t = 40'000'000;
  for (auto _ : state) {
    t += 1'000'000;
    soc.advance_to(sim::TimeNs{t});
    benchmark::DoNotOptimize(
        sampler.read_now({power::Rail::FpgaLogic, core::Quantity::Current}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HwmonReadPath);

void BM_ModMul1024(benchmark::State& state) {
  const crypto::BigUInt m = crypto::rsa1024_test_modulus();
  const crypto::BigUInt a =
      crypto::exponent_with_hamming_weight(1024, 512, 1).mod(m);
  const crypto::BigUInt b =
      crypto::exponent_with_hamming_weight(1024, 512, 2).mod(m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::modmul(a, b, m));
  }
}
BENCHMARK(BM_ModMul1024);

void BM_MontgomeryMul1024(benchmark::State& state) {
  const crypto::BigUInt m = crypto::rsa1024_test_modulus();
  const crypto::MontgomeryContext ctx(m);
  const crypto::BigUInt a =
      ctx.to_mont(crypto::exponent_with_hamming_weight(1024, 512, 1).mod(m));
  const crypto::BigUInt b =
      ctx.to_mont(crypto::exponent_with_hamming_weight(1024, 512, 2).mod(m));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.mul(a, b));
  }
}
BENCHMARK(BM_MontgomeryMul1024);

void BM_MontgomeryModExp1024(benchmark::State& state) {
  const crypto::BigUInt m = crypto::rsa1024_test_modulus();
  const crypto::MontgomeryContext ctx(m);
  const crypto::BigUInt base =
      crypto::exponent_with_hamming_weight(1024, 512, 3).mod(m);
  const crypto::BigUInt exp =
      crypto::exponent_with_hamming_weight(1024, 512, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.modexp(base, exp));
  }
}
BENCHMARK(BM_MontgomeryModExp1024)->Unit(benchmark::kMillisecond);

void BM_ModExp64(benchmark::State& state) {
  const crypto::BigUInt m(0xffffffffffffffc5ULL);
  const crypto::BigUInt base(0x123456789abcdefULL);
  const crypto::BigUInt exp =
      crypto::exponent_with_hamming_weight(64, 32, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::modexp(base, exp, m));
  }
}
BENCHMARK(BM_ModExp64);

ml::Dataset synthetic_dataset(int classes, int per_class, int features) {
  util::Rng rng(42);
  ml::Dataset d(static_cast<std::size_t>(features));
  std::vector<double> row(static_cast<std::size_t>(features));
  for (int c = 0; c < classes; ++c) {
    for (int i = 0; i < per_class; ++i) {
      for (int f = 0; f < features; ++f) {
        row[static_cast<std::size_t>(f)] =
            rng.gaussian(c * ((f % 5) + 1) * 0.3, 1.0);
      }
      d.add(row, c);
    }
  }
  return d;
}

void BM_ForestTrain(benchmark::State& state) {
  const ml::Dataset data = synthetic_dataset(10, 20, 140);
  ml::ForestConfig config;
  config.n_trees = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    ml::RandomForest forest(config);
    forest.fit(data);
    benchmark::DoNotOptimize(forest.tree_count());
  }
}
BENCHMARK(BM_ForestTrain)->Arg(10)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_ForestPredict(benchmark::State& state) {
  const ml::Dataset data = synthetic_dataset(10, 20, 140);
  ml::RandomForest forest;
  forest.fit(data);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.predict_top_k(data.row(i), 5));
    i = (i + 1) % data.size();
  }
}
BENCHMARK(BM_ForestPredict);

}  // namespace
