// google-benchmark micro-benchmarks of the library's hot primitives:
// signal integration, INA226 conversion, the hwmon read path, bignum modular
// arithmetic, trace preprocessing, and random-forest training/inference.
//
// Unlike the table/figure benches this binary has a custom main: it pins the
// thread pool to size 1 (so every A/B pair below measures single-thread
// algorithmic speedup, not parallelism), strips a --record-out PATH flag
// before google-benchmark sees the command line, and mirrors every result
// into an obs::RunRecord — BENCH_micro_primitives.json — alongside derived
// host-portable ratios (tree_fit_speedup, forest_predict_batch_speedup =
// reference ns / optimized ns measured in the same process) that
// tools/bench_compare gates on across commits.

#include <benchmark/benchmark.h>

#include <cctype>
#include <numeric>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "amperebleed/core/features.hpp"
#include "amperebleed/core/preprocess.hpp"
#include "amperebleed/core/preprocess_reference.hpp"
#include "amperebleed/core/sampler.hpp"
#include "amperebleed/crypto/modexp.hpp"
#include "amperebleed/crypto/montgomery.hpp"
#include "amperebleed/crypto/rsa.hpp"
#include "amperebleed/fpga/power_virus.hpp"
#include "amperebleed/ml/decision_tree.hpp"
#include "amperebleed/ml/random_forest.hpp"
#include "amperebleed/obs/run_record.hpp"
#include "amperebleed/sim/signal.hpp"
#include "amperebleed/soc/soc.hpp"
#include "amperebleed/util/rng.hpp"
#include "amperebleed/util/simd.hpp"
#include "amperebleed/util/thread_pool.hpp"

namespace {

using namespace amperebleed;

void BM_SignalIntegrate(benchmark::State& state) {
  sim::PiecewiseConstant signal(0.5);
  for (int i = 1; i <= state.range(0); ++i) {
    signal.append(sim::microseconds(100 * i), 0.5 + (i % 7) * 0.1);
  }
  const sim::TimeNs t0 = sim::microseconds(50);
  const sim::TimeNs t1 =
      sim::microseconds(100 * static_cast<int>(state.range(0)) / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(signal.integrate(t0, t1));
  }
}
BENCHMARK(BM_SignalIntegrate)->Arg(100)->Arg(10'000);

void BM_SignalValueAt(benchmark::State& state) {
  sim::PiecewiseConstant signal(0.5);
  for (int i = 1; i <= 10'000; ++i) {
    signal.append(sim::microseconds(100 * i), (i % 13) * 0.1);
  }
  std::int64_t t = 0;
  for (auto _ : state) {
    t = (t + 37'119) % 1'000'000'000;
    benchmark::DoNotOptimize(signal.value_at(sim::TimeNs{t}));
  }
}
BENCHMARK(BM_SignalValueAt);

void BM_Ina226Conversion(benchmark::State& state) {
  sim::PiecewiseConstant current(1.5);
  sim::PiecewiseConstant voltage(0.85);
  sensors::Ina226 dev(sensors::Ina226Config{}, power::RailNoiseConfig{}, 1);
  dev.bind(&current, &voltage);
  std::int64_t t = 0;
  for (auto _ : state) {
    t += 35'200'000;  // one full conversion per iteration
    dev.advance_to(sim::TimeNs{t});
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Ina226Conversion);

void BM_HwmonReadPath(benchmark::State& state) {
  soc::Soc soc(soc::zcu102_config(1));
  fpga::PowerVirus virus;
  soc.add_activity(virus.activity());
  soc.finalize();
  core::Sampler sampler(soc);
  std::int64_t t = 40'000'000;
  for (auto _ : state) {
    t += 1'000'000;
    soc.advance_to(sim::TimeNs{t});
    benchmark::DoNotOptimize(
        sampler.read_now({power::Rail::FpgaLogic, core::Quantity::Current}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HwmonReadPath);

void BM_ModMul1024(benchmark::State& state) {
  const crypto::BigUInt m = crypto::rsa1024_test_modulus();
  const crypto::BigUInt a =
      crypto::exponent_with_hamming_weight(1024, 512, 1).mod(m);
  const crypto::BigUInt b =
      crypto::exponent_with_hamming_weight(1024, 512, 2).mod(m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::modmul(a, b, m));
  }
}
BENCHMARK(BM_ModMul1024);

void BM_MontgomeryMul1024(benchmark::State& state) {
  const crypto::BigUInt m = crypto::rsa1024_test_modulus();
  const crypto::MontgomeryContext ctx(m);
  const crypto::BigUInt a =
      ctx.to_mont(crypto::exponent_with_hamming_weight(1024, 512, 1).mod(m));
  const crypto::BigUInt b =
      ctx.to_mont(crypto::exponent_with_hamming_weight(1024, 512, 2).mod(m));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.mul(a, b));
  }
}
BENCHMARK(BM_MontgomeryMul1024);

void BM_MontgomeryModExp1024(benchmark::State& state) {
  const crypto::BigUInt m = crypto::rsa1024_test_modulus();
  const crypto::MontgomeryContext ctx(m);
  const crypto::BigUInt base =
      crypto::exponent_with_hamming_weight(1024, 512, 3).mod(m);
  const crypto::BigUInt exp =
      crypto::exponent_with_hamming_weight(1024, 512, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.modexp(base, exp));
  }
}
BENCHMARK(BM_MontgomeryModExp1024)->Unit(benchmark::kMillisecond);

void BM_ModExp64(benchmark::State& state) {
  const crypto::BigUInt m(0xffffffffffffffc5ULL);
  const crypto::BigUInt base(0x123456789abcdefULL);
  const crypto::BigUInt exp =
      crypto::exponent_with_hamming_weight(64, 32, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::modexp(base, exp, m));
  }
}
BENCHMARK(BM_ModExp64);

ml::Dataset synthetic_dataset(int classes, int per_class, int features) {
  util::Rng rng(42);
  ml::Dataset d(static_cast<std::size_t>(features));
  std::vector<double> row(static_cast<std::size_t>(features));
  for (int c = 0; c < classes; ++c) {
    for (int i = 0; i < per_class; ++i) {
      for (int f = 0; f < features; ++f) {
        row[static_cast<std::size_t>(f)] =
            rng.gaussian(c * ((f % 5) + 1) * 0.3, 1.0);
      }
      d.add(row, c);
    }
  }
  return d;
}

void BM_ForestTrain(benchmark::State& state) {
  const ml::Dataset data = synthetic_dataset(10, 20, 140);
  ml::ForestConfig config;
  config.n_trees = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    ml::RandomForest forest(config);
    forest.fit(data);
    benchmark::DoNotOptimize(forest.tree_count());
  }
}
BENCHMARK(BM_ForestTrain)->Arg(10)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_ForestPredict(benchmark::State& state) {
  const ml::Dataset data = synthetic_dataset(10, 20, 140);
  ml::RandomForest forest;
  forest.fit(data);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.predict_top_k(data.row(i), 5));
    i = (i + 1) % data.size();
  }
}
BENCHMARK(BM_ForestPredict);

// ---------------------------------------------------------------------------
// A/B pairs for the cache-resident ML hot path. Each optimized bench has a
// *Reference twin running the retained naive implementation on IDENTICAL
// inputs (same dataset, same bootstrap indices, same RNG seed); the custom
// main below derives reference_ns / optimized_ns speedup ratios from the
// pair and lands them in the run record, where the CI perf gate watches
// them. Ratios are host-portable (both sides move together with CPU speed),
// unlike the raw _ns numbers.
// ---------------------------------------------------------------------------

/// Fingerprinting-shaped dataset at paper scale: 39 model classes (the
/// paper's model-zoo size), 256 features (~the resampled trace length), 12
/// traces per class. At 468 x 256 doubles (~1 MB) the matrix exceeds L1 by
/// far and competes with the sort buffers for L2, so the reference
/// splitter's strided row-major gathers pay real cache misses; 39 classes
/// also make its fixed-width Gini loops expensive on the deep, class-poor
/// nodes where the compact remap only visits the classes present.
const ml::Dataset& tree_fit_dataset() {
  static const ml::Dataset data = synthetic_dataset(39, 12, 256);
  return data;
}

std::vector<std::size_t> bootstrap_indices(std::size_t n) {
  util::Rng rng(0xb007);
  std::vector<std::size_t> indices(n);
  for (auto& idx : indices) {
    idx = static_cast<std::size_t>(rng.uniform_below(n));
  }
  return indices;
}

void tree_fit_bench(benchmark::State& state,
                    ml::TreeConfig::Splitter splitter) {
  const ml::Dataset& data = tree_fit_dataset();
  if (splitter == ml::TreeConfig::Splitter::kPresorted) {
    // The column mirror is built once per RandomForest::fit and shared by
    // all trees; warming it here keeps the loop measuring per-tree cost.
    static_cast<void>(data.column_major());
  }
  const auto indices = bootstrap_indices(data.size());
  ml::TreeConfig config;
  config.splitter = splitter;
  for (auto _ : state) {
    util::Rng rng(0x7ee);
    ml::DecisionTree tree(config);
    tree.fit(data, indices, data.class_count(), rng);
    benchmark::DoNotOptimize(tree.node_count());
  }
}

void BM_TreeFit(benchmark::State& state) {
  tree_fit_bench(state, ml::TreeConfig::Splitter::kPresorted);
}
BENCHMARK(BM_TreeFit)->Unit(benchmark::kMicrosecond);

void BM_TreeFitReference(benchmark::State& state) {
  tree_fit_bench(state, ml::TreeConfig::Splitter::kReference);
}
BENCHMARK(BM_TreeFitReference)->Unit(benchmark::kMicrosecond);

/// Paper-scale forest for the batch-inference A/B: 100 trees over the
/// class-rich dataset. The retained per-tree pointer walk re-streams every
/// tree's heap nodes for every row (several MB per row at this size); the
/// arena walk streams the packed SoA trees once per 16-row block. Fitted
/// once (static) so google-benchmark's repeated function invocations don't
/// refit.
const ml::RandomForest& batch_forest() {
  static const ml::RandomForest forest = [] {
    ml::ForestConfig config;
    config.n_trees = 100;
    ml::RandomForest f(config);
    f.fit(tree_fit_dataset());
    return f;
  }();
  return forest;
}

void BM_ForestPredictBatch(benchmark::State& state) {
  // Forced-scalar tier: this pair measures the PR 4 layout win (SoA arena
  // vs per-tree pointer walk) in isolation; the dispatch win on top of it
  // is BM_ForestPredictSimd's job.
  util::simd::ScopedTier tier(util::simd::SimdTier::kScalar);
  const ml::Dataset& data = tree_fit_dataset();
  const ml::RandomForest& forest = batch_forest();
  std::vector<std::span<const double>> rows;
  for (std::size_t i = 0; i < data.size(); ++i) rows.push_back(data.row(i));
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.predict_proba_many(rows));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows.size()));
}
BENCHMARK(BM_ForestPredictBatch)->Unit(benchmark::kMicrosecond);

void BM_ForestPredictBatchReference(benchmark::State& state) {
  const ml::Dataset& data = tree_fit_dataset();
  const ml::RandomForest& forest = batch_forest();
  for (auto _ : state) {
    for (std::size_t i = 0; i < data.size(); ++i) {
      benchmark::DoNotOptimize(forest.predict_proba_reference(data.row(i)));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_ForestPredictBatchReference)->Unit(benchmark::kMicrosecond);

/// PR 9 dispatch A/B: the same paper-scale batch through the best SIMD tier
/// the host offers (branchless lockstep / AVX2 gathers) vs the retained
/// per-tree pointer walk. forest_predict_simd_speedup = reference/simd.
void BM_ForestPredictSimd(benchmark::State& state) {
  util::simd::ScopedTier tier(util::simd::detect_best_tier());
  const ml::Dataset& data = tree_fit_dataset();
  const ml::RandomForest& forest = batch_forest();
  std::vector<std::span<const double>> rows;
  for (std::size_t i = 0; i < data.size(); ++i) rows.push_back(data.row(i));
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.predict_proba_many(rows));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows.size()));
}
BENCHMARK(BM_ForestPredictSimd)->Unit(benchmark::kMicrosecond);

void BM_ForestPredictSimdReference(benchmark::State& state) {
  const ml::Dataset& data = tree_fit_dataset();
  const ml::RandomForest& forest = batch_forest();
  for (auto _ : state) {
    for (std::size_t i = 0; i < data.size(); ++i) {
      benchmark::DoNotOptimize(forest.predict_proba_reference(data.row(i)));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_ForestPredictSimdReference)->Unit(benchmark::kMicrosecond);

/// Opt-in int16 threshold quantization on top of the lockstep walk
/// (informational _ns row; not part of a gated ratio).
void BM_ForestPredictQuantized(benchmark::State& state) {
  util::simd::ScopedTier tier(util::simd::detect_best_tier());
  static const ml::RandomForest quantized = [] {
    ml::ForestConfig config;
    config.n_trees = 100;
    config.quantize_thresholds = true;
    ml::RandomForest f(config);
    f.fit(tree_fit_dataset());
    return f;
  }();
  const ml::Dataset& data = tree_fit_dataset();
  std::vector<std::span<const double>> rows;
  for (std::size_t i = 0; i < data.size(); ++i) rows.push_back(data.row(i));
  for (auto _ : state) {
    benchmark::DoNotOptimize(quantized.predict_proba_many(rows));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows.size()));
}
BENCHMARK(BM_ForestPredictQuantized)->Unit(benchmark::kMicrosecond);

/// The attacker-side trace cleanup chain feeding the classifier: dedup the
/// oversampled register reads, detrend thermal drift, resample to the
/// feature width, then smooth.
void BM_PreprocessPipeline(benchmark::State& state) {
  util::Rng rng(0x9e9);
  std::vector<double> raw(8192);
  double level = 1.0;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (i % 3 == 0) level = 1.0 + rng.gaussian(0.0, 0.05);
    raw[i] = level + static_cast<double>(i) * 1e-5;  // drift + held samples
  }
  for (auto _ : state) {
    auto dedup = core::deduplicate_runs(raw);
    core::detrend(dedup);
    auto resampled = core::resample(dedup, 160);
    benchmark::DoNotOptimize(core::sliding_mean(resampled, 4, 2));
  }
}
BENCHMARK(BM_PreprocessPipeline);

/// Same chain through the retained pre-PR9 naive kernels;
/// preprocess_pipeline_speedup = reference/optimized.
void BM_PreprocessPipelineReference(benchmark::State& state) {
  util::Rng rng(0x9e9);
  std::vector<double> raw(8192);
  double level = 1.0;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (i % 3 == 0) level = 1.0 + rng.gaussian(0.0, 0.05);
    raw[i] = level + static_cast<double>(i) * 1e-5;
  }
  for (auto _ : state) {
    auto dedup = core::deduplicate_runs(raw);
    core::reference::detrend(dedup);
    auto resampled = core::resample(dedup, 160);
    benchmark::DoNotOptimize(core::reference::sliding_mean(resampled, 4, 2));
  }
}
BENCHMARK(BM_PreprocessPipelineReference);

// ---------------------------------------------------------------------------
// Per-kernel preprocess A/B pairs (informational _ns rows; the gated ratio
// is the whole-pipeline pair above). Inputs are hwmon-shaped: a noisy level
// with drift, long enough (8k samples) that the kernels stream from L2.
// ---------------------------------------------------------------------------

std::vector<double> preprocess_input(std::size_t n) {
  util::Rng rng(0x51de);
  std::vector<double> xs(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = 1.0 + rng.gaussian(0.0, 0.05) + static_cast<double>(i) * 1e-5;
  }
  return xs;
}

void BM_SlidingMean(benchmark::State& state) {
  const auto xs = preprocess_input(8192);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::sliding_mean(xs, 32, 4));
  }
}
BENCHMARK(BM_SlidingMean);

void BM_SlidingMeanReference(benchmark::State& state) {
  const auto xs = preprocess_input(8192);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::reference::sliding_mean(xs, 32, 4));
  }
}
BENCHMARK(BM_SlidingMeanReference);

void BM_Standardize(benchmark::State& state) {
  const auto xs = preprocess_input(8192);
  for (auto _ : state) {
    auto copy = xs;
    core::standardize(copy);
    benchmark::DoNotOptimize(copy.data());
  }
}
BENCHMARK(BM_Standardize);

void BM_StandardizeReference(benchmark::State& state) {
  const auto xs = preprocess_input(8192);
  for (auto _ : state) {
    auto copy = xs;
    core::reference::standardize(copy);
    benchmark::DoNotOptimize(copy.data());
  }
}
BENCHMARK(BM_StandardizeReference);

void BM_Detrend(benchmark::State& state) {
  const auto xs = preprocess_input(8192);
  for (auto _ : state) {
    auto copy = xs;
    core::detrend(copy);
    benchmark::DoNotOptimize(copy.data());
  }
}
BENCHMARK(BM_Detrend);

void BM_DetrendReference(benchmark::State& state) {
  const auto xs = preprocess_input(8192);
  for (auto _ : state) {
    auto copy = xs;
    core::reference::detrend(copy);
    benchmark::DoNotOptimize(copy.data());
  }
}
BENCHMARK(BM_DetrendReference);

void BM_Alignment(benchmark::State& state) {
  const auto ref = preprocess_input(2048);
  const auto probe = core::shift(ref, 17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::best_alignment_shift(ref, probe, 64));
  }
}
BENCHMARK(BM_Alignment)->Unit(benchmark::kMicrosecond);

void BM_AlignmentReference(benchmark::State& state) {
  const auto ref = preprocess_input(2048);
  const auto probe = core::shift(ref, 17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::reference::best_alignment_shift(ref, probe, 64));
  }
}
BENCHMARK(BM_AlignmentReference)->Unit(benchmark::kMicrosecond);

void BM_FillGapsHoldLast(benchmark::State& state) {
  const auto xs = preprocess_input(8192);
  std::vector<std::uint8_t> validity(xs.size(), 1);
  for (std::size_t i = 0; i < validity.size(); i += 3) validity[i] = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::fill_gaps(xs, validity, core::GapPolicy::HoldLast));
  }
}
BENCHMARK(BM_FillGapsHoldLast);

void BM_FillGapsHoldLastReference(benchmark::State& state) {
  const auto xs = preprocess_input(8192);
  std::vector<std::uint8_t> validity(xs.size(), 1);
  for (std::size_t i = 0; i < validity.size(); i += 3) validity[i] = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::reference::fill_gaps(xs, validity, core::GapPolicy::HoldLast));
  }
}
BENCHMARK(BM_FillGapsHoldLastReference);

// ---------------------------------------------------------------------------
// Custom main: single-thread pool, console output, and an obs::RunRecord of
// every per-iteration timing plus the A/B speedup ratios.
// ---------------------------------------------------------------------------

/// Benchmark names become run-record number keys: "BM_SignalIntegrate/100"
/// -> "BM_SignalIntegrate_100_ns".
std::string sanitize_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  }
  return out;
}

/// ConsoleReporter that additionally captures (name, ns/iteration) for every
/// per-iteration run (aggregates and errored runs are skipped).
class RecordingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred ||
          run.iterations == 0) {
        continue;
      }
      const double ns = run.real_accumulated_time /
                        static_cast<double>(run.iterations) * 1e9;
      results_.emplace_back(run.benchmark_name(), ns);
    }
    benchmark::ConsoleReporter::ReportRuns(reports);
  }

  [[nodiscard]] const std::vector<std::pair<std::string, double>>& results()
      const {
    return results_;
  }

  /// ns/iter for an exact benchmark name, or 0.0 when absent (filtered out).
  [[nodiscard]] double ns_for(std::string_view name) const {
    for (const auto& [key, ns] : results_) {
      if (key == name) return ns;
    }
    return 0.0;
  }

 private:
  std::vector<std::pair<std::string, double>> results_;
};

void write_record(const RecordingReporter& reporter, const std::string& path) {
  obs::RunRecord record("micro_primitives");
  for (const auto& [name, ns] : reporter.results()) {
    record.set_number(sanitize_name(name) + "_ns", ns);
  }
  // Host-portable A/B ratios (see the block comment above the ML benches).
  const auto ratio = [&](std::string_view reference, std::string_view fast) {
    const double ref_ns = reporter.ns_for(reference);
    const double fast_ns = reporter.ns_for(fast);
    return (ref_ns > 0.0 && fast_ns > 0.0) ? ref_ns / fast_ns : 0.0;
  };
  const double tree_fit = ratio("BM_TreeFitReference", "BM_TreeFit");
  const double batch =
      ratio("BM_ForestPredictBatchReference", "BM_ForestPredictBatch");
  const double simd =
      ratio("BM_ForestPredictSimdReference", "BM_ForestPredictSimd");
  const double preprocess =
      ratio("BM_PreprocessPipelineReference", "BM_PreprocessPipeline");
  if (tree_fit > 0.0) record.set_number("tree_fit_speedup", tree_fit);
  if (batch > 0.0) record.set_number("forest_predict_batch_speedup", batch);
  if (simd > 0.0) record.set_number("forest_predict_simd_speedup", simd);
  if (preprocess > 0.0) {
    record.set_number("preprocess_pipeline_speedup", preprocess);
  }
  record.set_integer("benchmarks",
                     static_cast<std::int64_t>(reporter.results().size()));
  record.write(path);
}

}  // namespace

int main(int argc, char** argv) {
  // Strip --record-out PATH and --simd TIER before google-benchmark parses
  // the flags. --simd overrides the default dispatch for benches that don't
  // pin a tier themselves (the A/B pairs above pin via ScopedTier).
  std::string record_path;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--record-out" && i + 1 < argc) {
      record_path = argv[++i];
      continue;
    }
    if (std::string_view(argv[i]) == "--simd" && i + 1 < argc) {
      util::simd::set_active_tier(util::simd::tier_from_name(argv[++i]));
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }

  // Pool size 1: A/B pairs measure single-thread algorithmic speedup, and
  // parallel-capable paths (predict_proba_many) take their serial branch.
  util::ThreadPool::set_global_threads(1);

  RecordingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (!record_path.empty()) write_record(reporter, record_path);
  return 0;
}
