// Reproduces Fig 3: current patterns leaked from the four hwmon sensors
// while the DPU runs the six example DNN models (MobileNet-V1, SqueezeNet,
// EfficientNet-Lite, Inception-V3, ResNet-50, VGG-19). Each trace is drawn
// as an ASCII sparkline; --csv dumps the raw series for plotting.

#include <cstdio>
#include <string>

#include "amperebleed/core/fingerprint.hpp"
#include "amperebleed/dnn/zoo.hpp"
#include "amperebleed/dpu/dpu.hpp"
#include "amperebleed/stats/descriptive.hpp"
#include "amperebleed/stats/spectral.hpp"
#include "amperebleed/util/cli.hpp"
#include "amperebleed/util/csv.hpp"
#include "amperebleed/util/strings.hpp"
#include "obs_session.hpp"

namespace {

std::string sparkline(std::span<const double> values) {
  static const char* levels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
  const auto s = amperebleed::stats::summarize(values);
  std::string out;
  for (double v : values) {
    const double t =
        s.max > s.min ? (v - s.min) / (s.max - s.min) : 0.0;
    out += levels[static_cast<int>(t * 7.0 + 0.5)];
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace amperebleed;
  const util::CliArgs args(argc, argv);
  bench::ObsSession session(args, "fig3_dnn_traces");

  core::FingerprintConfig config;
  config.trace_duration =
      sim::from_seconds(args.get_double("duration", 5.0));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 0xf163));
  // Per-call concurrency cap; the pool itself is sized by ObsSession from
  // --threads / AMPEREBLEED_THREADS. 0 = use the whole pool.
  config.threads = static_cast<std::size_t>(args.get_int("threads", 0));

  std::printf("Fig 3: current traces during DNN inference (%.1f s, 35 ms "
              "hwmon cadence)\n",
              config.trace_duration.seconds());

  const auto traces = core::collect_fig3_traces(config);

  const dpu::DpuAccelerator dpu(config.dpu);
  for (const auto& t : traces) {
    std::printf("\n%s (%.1f MB INT8 weights)\n", t.model_name.c_str(),
                static_cast<double>(t.model_size_bytes) / 1e6);
    for (std::size_t r = 0; r < t.rail_current.size(); ++r) {
      const auto& trace = t.rail_current[r];
      const auto s = stats::summarize(trace.values());
      std::printf("  %-10s [%7.0f..%7.0f mA] %s\n",
                  std::string(power::rail_name(power::kAllRails[r])).c_str(),
                  s.min, s.max, sparkline(trace.values()).c_str());
    }
    // Secondary analysis: recover the inference period from the FPGA trace
    // alone and compare with the victim's ground truth.
    const auto& fpga_trace =
        t.rail_current[power::rail_index(power::Rail::FpgaLogic)];
    const std::size_t period_samples = stats::dominant_period(
        fpga_trace.values(), fpga_trace.size() / 2);
    const double truth_ms =
        dpu.inference_period(dnn::build_model(t.model_name)).millis();
    const double cadence_ms = config.sample_period.millis();
    if (period_samples == 0) {
      std::printf("  no periodicity resolvable at the %.0f ms cadence "
                  "(ground truth %.1f ms)\n",
                  cadence_ms, truth_ms);
    } else if (truth_ms < 4.0 * cadence_ms) {
      // Sub-Nyquist inference period: the ACF peak is the alias/beat of the
      // true period against the sampling grid, still a stable fingerprint.
      std::printf("  aliased periodicity: %.0f ms (true period %.1f ms is "
                  "below 4x the %.0f ms cadence)\n",
                  static_cast<double>(period_samples) * cadence_ms, truth_ms,
                  cadence_ms);
    } else {
      std::printf("  recovered inference period: %.0f ms (ground truth "
                  "%.1f ms)\n",
                  static_cast<double>(period_samples) * cadence_ms, truth_ms);
    }
  }

  std::puts("\nEach model's layer schedule produces a distinct periodic");
  std::puts("current pattern on the FPGA/DRAM/CPU rails — the signal the");
  std::puts("Table III classifier consumes.");

  const std::string csv_path = args.get_string("csv", "");
  if (!csv_path.empty()) {
    util::CsvWriter csv(csv_path);
    csv.row({"model", "rail", "sample_index", "time_ms", "current_ma"});
    for (const auto& t : traces) {
      for (std::size_t r = 0; r < t.rail_current.size(); ++r) {
        const auto& trace = t.rail_current[r];
        for (std::size_t i = 0; i < trace.size(); ++i) {
          csv.row({t.model_name,
                   std::string(power::rail_name(power::kAllRails[r])),
                   util::format("%zu", i),
                   util::format("%.1f", trace.time_of(i).millis()),
                   util::format("%.0f", trace[i])});
        }
      }
    }
    std::printf("Raw traces written to %s\n", csv_path.c_str());
  }

  session.record().set_integer("models", static_cast<std::int64_t>(traces.size()));
  session.record().set_number("trace_duration_s", config.trace_duration.seconds());
  session.finish();
  return 0;
}
