// Closed-loop load bench for the multi-tenant classification service
// (amperebleed::serve): enroll N tenants through the request queue, then
// drive a seeded closed loop of classify requests — submit a burst, tick the
// virtual clock once, check every completed verdict against ground truth —
// until the request budget is spent.
//
// The burst size deliberately exceeds the per-tick drain limit, so the queue
// climbs to its high-water mark and admission control starts shedding load:
// the bench exercises enrollment, coalesced classify sweeps, backpressure
// and the virtual-latency SLO in one run.
//
// Everything on stdout is deterministic — counts, accuracy, and the
// virtual-time latency quantiles depend only on (seed, flags), never on the
// host or the thread-pool size. CI byte-diffs this output at
// AMPEREBLEED_THREADS=1/4/8. Wall-clock throughput goes to stderr and to
// perf-gate-excluded run-record keys.
//
// Flags: --requests N      classify requests (default 1000000)
//        --tenants N       enrollment namespaces (default 6)
//        --models N        architectures enrolled per tenant (default 4)
//        --enroll N        enroll traces per (tenant, model) (default 6)
//        --observations N  fresh traces per model in the probe pool (def. 8)
//        --trees N         forest size per tenant (default 40)
//        --samples N       samples per trace (default 64)
//        --burst N         submits per tick (default 384)
//        --batch N         coalescer drain limit per tick (default 256)
//        --queue N         queue capacity (default 4096)
//        --high-water N    admission-control threshold (default 3072)
//        --tick-us N       virtual tick duration (default 1000)
//        --seed N          load-schedule seed (default 0x5e21)
//        --threads N       worker threads (default: hardware concurrency)
//        --journal-dir P   durable tenant state: WAL + snapshots in P
//                          (wiped at startup; default: durability off)
//        --restart-at N    after N classify submits, drain, destroy the
//                          service and recover it from --journal-dir; the
//                          pre/post verdict probe must be byte-identical
//                          (exit 1 on mismatch). Requires --journal-dir.
//        --quick           = --requests 20000 --tenants 3 --models 3
//                            --enroll 4 --observations 4 --trees 20

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "amperebleed/core/sampler.hpp"
#include "amperebleed/dnn/zoo.hpp"
#include "amperebleed/dpu/dpu.hpp"
#include "amperebleed/obs/obs.hpp"
#include "amperebleed/serve/service.hpp"
#include "amperebleed/soc/soc.hpp"
#include "amperebleed/util/cli.hpp"
#include "amperebleed/util/fs.hpp"
#include "amperebleed/util/rng.hpp"
#include "amperebleed/util/strings.hpp"
#include "obs_session.hpp"

namespace {

using namespace amperebleed;

core::Trace record_trace(const std::string& model_name, std::size_t n_samples,
                         std::uint64_t seed) {
  const dnn::Model model = dnn::build_model(model_name);
  dpu::DpuAccelerator dpu;
  auto run = dpu.run(model, sim::TimeNs{0},
                     sim::milliseconds(35 * static_cast<std::int64_t>(
                                                n_samples + 4)),
                     seed);
  soc::Soc soc(soc::zcu102_config(util::hash_combine(seed, 0x0e)));
  soc.fabric().deploy(dpu.descriptor());
  soc.add_activity(run.activity);
  soc.finalize();
  core::Sampler sampler(soc);
  core::SamplerConfig sc;
  sc.sample_count = n_samples;
  return sampler.collect({power::Rail::FpgaLogic, core::Quantity::Current},
                         sim::TimeNs{0}, sc);
}

/// Deterministic fingerprint of every serving tenant's classify behaviour:
/// one verdict per (tenant, model) over the shared probe pool, every ranking
/// probability at full precision. The restart check byte-compares this
/// before destruction and after recovery.
std::string verdict_probe(const serve::ClassificationService& service,
                          const std::vector<std::vector<core::Trace>>& pool) {
  std::string out;
  char buf[64];
  for (const std::string& name : service.tenant_names()) {
    const serve::TenantSession* tenant = service.tenant(name);
    out += name;
    out += '|';
    out += serve::state_name(tenant->state());
    if (tenant->state() != serve::TenantSession::State::Serving) {
      out += '\n';
      continue;
    }
    for (const auto& traces : pool) {
      const auto verdict = tenant->fingerprinter().classify(traces.front());
      out += verdict.known ? "|+" : "|-";
      out += verdict.model_name;
      for (const auto& [label, proba] : verdict.ranking) {
        std::snprintf(buf, sizeof(buf), " %.17g", proba);
        out += buf;
      }
    }
    out += '\n';
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  bench::ObsSession session(args, "service_load");
  const bool quick = args.has("quick");

  const auto requests = static_cast<std::uint64_t>(
      args.get_int("requests", quick ? 20000 : 1000000));
  const auto n_tenants =
      static_cast<std::size_t>(args.get_int("tenants", quick ? 3 : 6));
  const auto n_models =
      static_cast<std::size_t>(args.get_int("models", quick ? 3 : 4));
  const auto n_enroll =
      static_cast<std::size_t>(args.get_int("enroll", quick ? 4 : 6));
  const auto n_observations =
      static_cast<std::size_t>(args.get_int("observations", quick ? 4 : 8));
  const auto n_samples =
      static_cast<std::size_t>(args.get_int("samples", 64));
  const auto burst = static_cast<std::size_t>(args.get_int("burst", 384));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 0x5e21));
  const std::string journal_dir = args.get_string("journal-dir", "");
  const auto restart_at =
      static_cast<std::uint64_t>(args.get_int("restart-at", 0));
  if (restart_at > 0 && journal_dir.empty()) {
    std::fprintf(stderr, "service_load: --restart-at needs --journal-dir\n");
    return 1;
  }

  serve::ServiceConfig config;
  config.queue.capacity =
      static_cast<std::size_t>(args.get_int("queue", 4096));
  config.queue.high_water =
      static_cast<std::size_t>(args.get_int("high-water", 3072));
  config.max_batch = static_cast<std::size_t>(args.get_int("batch", 256));
  config.tick = sim::microseconds(args.get_int("tick-us", 1000));
  config.fingerprinter.forest.n_trees =
      static_cast<std::size_t>(args.get_int("trees", quick ? 20 : 40));
  config.fingerprinter.min_confidence = 0.60;
  config.fingerprinter.min_margin = 0.20;
  if (!journal_dir.empty()) {
    // Stale state from a previous run would make enrollment non-idempotent
    // (AlreadyTrained): start every run from an empty directory.
    if (util::path_exists(journal_dir)) {
      for (const std::string& name : util::list_dir(journal_dir)) {
        util::remove_file(journal_dir + "/" + name);
      }
    }
    config.durability.dir = journal_dir;
  }

  if (obs::metrics_enabled()) {
    serve::ClassificationService::register_default_slo();
  }
  auto service = std::make_unique<serve::ClassificationService>(config);

  std::vector<std::string> models = dnn::zoo_model_names();
  models.resize(n_models);

  std::printf("Service load: closed-loop multi-tenant fingerprinting\n");
  std::printf("  tenants=%zu models=%zu enroll=%zu observations=%zu "
              "samples=%zu trees=%zu\n",
              n_tenants, n_models, n_enroll, n_observations, n_samples,
              config.fingerprinter.forest.n_trees);
  std::printf("  queue=%zu high-water=%zu batch=%zu burst=%zu tick=%lld us\n\n",
              config.queue.capacity, config.queue.high_water,
              config.max_batch,
              burst, static_cast<long long>(config.tick.ns / 1000));

  // --- Offline: tenant enrollment through the service queue. Interleave
  // tenants so control requests fence classify coalescing realistically.
  std::printf("[enroll] %zu traces per tenant through the queue...\n",
              n_models * n_enroll);
  std::uint64_t enroll_ok = 0;
  for (std::size_t rep = 0; rep < n_enroll; ++rep) {
    for (std::size_t t = 0; t < n_tenants; ++t) {
      for (std::size_t m = 0; m < n_models; ++m) {
        serve::Request request;
        request.kind = serve::RequestKind::Enroll;
        request.tenant = util::format("tenant-%zu", t);
        request.label = models[m];
        request.trace = record_trace(
            models[m], n_samples,
            util::hash_combine(util::hash_combine(seed, t),
                               util::hash_combine(m, rep)));
        service->submit(std::move(request));
      }
    }
  }
  for (std::size_t t = 0; t < n_tenants; ++t) {
    serve::Request request;
    request.kind = serve::RequestKind::Train;
    request.tenant = util::format("tenant-%zu", t);
    service->submit(std::move(request));
  }
  for (const auto& response : service->drain()) {
    if (response.ok()) {
      ++enroll_ok;
    } else {
      std::printf("  !! %s %s: %s\n",
                  std::string(kind_name(response.kind)).c_str(),
                  response.tenant.c_str(), response.error.c_str());
    }
  }
  std::printf("  %llu enroll/train requests ok, %zu tenants serving\n\n",
              static_cast<unsigned long long>(enroll_ok),
              service->tenant_names().size());

  // --- Probe pool: fresh observations, shared by every tenant's load.
  std::vector<std::vector<core::Trace>> pool(n_models);
  for (std::size_t m = 0; m < n_models; ++m) {
    for (std::size_t v = 0; v < n_observations; ++v) {
      pool[m].push_back(record_trace(
          models[m], n_samples,
          util::hash_combine(util::hash_combine(seed, 0xb0b0),
                             util::hash_combine(m, v))));
    }
  }

  // --- Closed loop: burst submits, one tick, verdict audit. The burst
  // exceeds max_batch, so the queue climbs to high-water and admission
  // control sheds the overflow — deterministically, same schedule every run.
  std::printf("[load]   %llu classify requests, burst %zu per tick...\n",
              static_cast<unsigned long long>(requests), burst);
  util::Rng rng(seed);
  std::unordered_map<std::uint64_t, std::size_t> truth;
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t scored = 0;
  std::uint64_t correct = 0;
  std::uint64_t unknown = 0;
  std::uint64_t failed = 0;

  // Tallies carried across a --restart-at recovery (the new service object
  // starts its own counters from zero).
  serve::ServiceStats carried{};
  bool restarted = false;
  bool restart_mismatch = false;

  const auto wall_start = std::chrono::steady_clock::now();
  const auto audit = [&](const std::vector<serve::Response>& responses) {
    for (const auto& response : responses) {
      if (response.kind != serve::RequestKind::Classify) continue;
      const auto it = truth.find(response.id);
      if (!response.ok()) {
        ++failed;
        if (it != truth.end()) truth.erase(it);
        continue;
      }
      ++scored;
      if (!response.verdict.known) {
        ++unknown;
      } else if (it != truth.end() &&
                 response.verdict.model_name == models[it->second]) {
        ++correct;
      }
      if (it != truth.end()) truth.erase(it);
    }
  };

  while (submitted < requests) {
    if (restart_at > 0 && !restarted && submitted >= restart_at) {
      // Restart midway: finish what is in flight, destroy the service, and
      // recover it from the journal directory. The verdict probe before and
      // after must be byte-identical — that IS the durability contract.
      restarted = true;
      audit(service->drain());
      const std::string before = verdict_probe(*service, pool);
      carried = service->stats();
      service.reset();
      service = std::make_unique<serve::ClassificationService>(config);
      const auto storage = service->storage();
      const std::string after = verdict_probe(*service, pool);
      restart_mismatch = after != before;
      std::printf("\n[restart] after %llu submits: recovered %llu tenants "
                  "(snapshot seq %llu, %llu journal records), verdict probe "
                  "%s\n\n",
                  static_cast<unsigned long long>(submitted),
                  static_cast<unsigned long long>(storage.recovered_tenants),
                  static_cast<unsigned long long>(storage.snapshot_seq),
                  static_cast<unsigned long long>(storage.recovered_records),
                  restart_mismatch ? "MISMATCH" : "identical");
    }
    const std::size_t n = std::min<std::uint64_t>(burst, requests - submitted);
    for (std::size_t i = 0; i < n; ++i) {
      const auto t = static_cast<std::size_t>(rng.uniform_below(n_tenants));
      const auto m = static_cast<std::size_t>(rng.uniform_below(n_models));
      const auto v =
          static_cast<std::size_t>(rng.uniform_below(n_observations));
      serve::Request request;
      request.kind = serve::RequestKind::Classify;
      request.tenant = util::format("tenant-%zu", t);
      request.trace = pool[m][v];
      const auto result = service->submit(std::move(request));
      ++submitted;
      if (result.accepted) {
        truth.emplace(result.id, m);
      } else {
        ++rejected;
      }
    }
    audit(service->tick());
  }
  audit(service->drain());
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  auto stats = service->stats();
  // Fold in the pre-restart tallies so the report covers the whole run.
  stats.sweeps += carried.sweeps;
  stats.coalesced_rows += carried.coalesced_rows;
  stats.ticks += carried.ticks;
  stats.max_queue_depth =
      std::max(stats.max_queue_depth, carried.max_queue_depth);
  const auto& latency = service->latency_histogram();
  const double p50 = latency.quantile(0.5);
  const double p90 = latency.quantile(0.9);
  const double p99 = latency.quantile(0.99);
  const double accuracy =
      scored > unknown ? static_cast<double>(correct) /
                             static_cast<double>(scored - unknown)
                       : 0.0;

  std::printf("\n  submitted   %llu\n",
              static_cast<unsigned long long>(submitted));
  std::printf("  rejected    %llu (admission control at depth >= %zu)\n",
              static_cast<unsigned long long>(rejected),
              config.queue.high_water);
  std::printf("  scored      %llu\n", static_cast<unsigned long long>(scored));
  std::printf("  correct     %llu  (top-1 %.4f of closed-set verdicts)\n",
              static_cast<unsigned long long>(correct), accuracy);
  std::printf("  open-set    %llu rejected as unknown (%.4f)\n",
              static_cast<unsigned long long>(unknown),
              scored != 0 ? static_cast<double>(unknown) /
                                static_cast<double>(scored)
                          : 0.0);
  std::printf("  failed      %llu non-ok responses\n",
              static_cast<unsigned long long>(failed));
  std::printf("  latency     p50 %.0f / p90 %.0f / p99 %.0f virtual us\n",
              p50, p90, p99);
  std::printf("  queue       max depth %zu of %zu\n", stats.max_queue_depth,
              config.queue.capacity);
  std::printf("  coalescer   %llu sweeps, %llu rows, %.1f rows/sweep mean\n",
              static_cast<unsigned long long>(stats.sweeps),
              static_cast<unsigned long long>(stats.coalesced_rows),
              service->batch_histogram().mean());
  std::printf("  ticks       %llu (%.3f s virtual)\n",
              static_cast<unsigned long long>(stats.ticks),
              static_cast<double>(stats.ticks) * config.tick.seconds());

  // Wall-clock throughput is host-dependent: stderr + excluded record keys
  // only, so stdout stays byte-identical across hosts and pool sizes.
  std::fprintf(stderr, "service_load: %.2f s wall, %.0f classify/s\n", wall_s,
               wall_s > 0.0 ? static_cast<double>(scored) / wall_s : 0.0);

  auto& record = session.record();
  record.set_integer("requests", static_cast<std::int64_t>(submitted));
  record.set_integer("admitted",
                     static_cast<std::int64_t>(submitted - rejected));
  record.set_integer("rejected", static_cast<std::int64_t>(rejected));
  record.set_integer("scored", static_cast<std::int64_t>(scored));
  record.set_integer("open_set_unknown", static_cast<std::int64_t>(unknown));
  record.set_number("accuracy", accuracy);
  record.set_number("vlat_p50_us", p50);
  record.set_number("vlat_p90_us", p90);
  record.set_number("vlat_p99_us", p99);
  record.set_integer("max_queue_depth",
                     static_cast<std::int64_t>(stats.max_queue_depth));
  record.set_integer("sweeps", static_cast<std::int64_t>(stats.sweeps));
  record.set_integer("ticks", static_cast<std::int64_t>(stats.ticks));
  record.set_number("mean_rows_per_sweep", service->batch_histogram().mean());
  record.set_number("classify_per_sec",
                    wall_s > 0.0
                        ? static_cast<double>(scored) / wall_s
                        : 0.0);
  session.finish();
  return failed == 0 && enroll_ok != 0 && !restart_mismatch ? 0 : 1;
}
