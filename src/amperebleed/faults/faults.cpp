#include "amperebleed/faults/faults.hpp"

#include <cstdlib>
#include <numeric>

#include "amperebleed/obs/obs.hpp"
#include "amperebleed/util/rng.hpp"
#include "amperebleed/util/strings.hpp"

namespace amperebleed::faults {

namespace {

using util::fnv1a;

/// Deterministic garbage texts — what corrupted sysfs reads actually look
/// like: binary junk, stale prompt fragments, half-written numbers.
constexpr std::string_view kGarbage[] = {
    "#!\x01\x7f\n", "nan\n", "0x1f4z\n", "--\n", "\n",
};

}  // namespace

std::string_view fault_kind_name(FaultKind k) {
  static_assert(kFaultKindCount == 8,
                "new FaultKind: add a case below and extend kAllFaultKinds");
  switch (k) {
    case FaultKind::Transient:
      return "transient";
    case FaultKind::Hotplug:
      return "hotplug";
    case FaultKind::PermissionFlap:
      return "permission-flap";
    case FaultKind::TornRead:
      return "torn-read";
    case FaultKind::GarbageText:
      return "garbage-text";
    case FaultKind::FrozenRegister:
      return "frozen-register";
    case FaultKind::LatencySpike:
      return "latency-spike";
    case FaultKind::I2cNack:
      return "i2c-nack";
  }
  return "unknown";
}

std::optional<FaultKind> fault_kind_from_name(std::string_view name) {
  for (FaultKind k : kAllFaultKinds) {
    if (fault_kind_name(k) == name) return k;
  }
  return std::nullopt;
}

double FaultRates::read_total() const {
  double total = 0.0;
  for (FaultKind k : kAllFaultKinds) {
    if (k != FaultKind::I2cNack) total += (*this)[k];
  }
  return total;
}

bool FaultRates::any() const {
  for (double r : rate) {
    if (r > 0.0) return true;
  }
  return false;
}

FaultPlan FaultPlan::chaos(std::uint64_t seed, double r) {
  FaultPlan plan;
  plan.seed = seed;
  plan.rates[FaultKind::Transient] = 0.50 * r;
  plan.rates[FaultKind::Hotplug] = 0.10 * r;
  plan.rates[FaultKind::PermissionFlap] = 0.10 * r;
  plan.rates[FaultKind::TornRead] = 0.10 * r;
  plan.rates[FaultKind::GarbageText] = 0.10 * r;
  plan.rates[FaultKind::FrozenRegister] = 0.05 * r;
  plan.rates[FaultKind::LatencySpike] = 0.05 * r;
  plan.rates[FaultKind::I2cNack] = r;  // raw path draws only this kind
  plan.burst.continue_probability = 0.3;
  plan.burst.max_length = 4;
  return plan;
}

FaultPlan FaultPlan::transient_only(std::uint64_t seed, double r) {
  FaultPlan plan;
  plan.seed = seed;
  plan.rates[FaultKind::Transient] = r;
  return plan;
}

FaultPlan FaultPlan::from_env() {
  std::uint64_t seed = 0xfa17;
  double rate = 0.05;
  if (const char* s = std::getenv("AMPEREBLEED_FAULT_SEED")) {
    seed = std::strtoull(s, nullptr, 0);  // accepts decimal and 0x-hex
  }
  if (const char* r = std::getenv("AMPEREBLEED_FAULT_RATE")) {
    const double parsed = std::strtod(r, nullptr);
    if (parsed >= 0.0 && parsed <= 1.0) rate = parsed;
  }
  return chaos(seed, rate);
}

std::uint64_t FaultInjector::Stats::total_injected() const {
  return std::accumulate(injected.begin(), injected.end(),
                         std::uint64_t{0});
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(plan) {}

FaultInjector::~FaultInjector() { detach(); }

void FaultInjector::attach(hwmon::VirtualFs& fs) {
  fs.set_read_fault_hook(
      [this](std::string_view path, bool privileged,
             hwmon::VfsResult clean) {
        return filter_read(path, privileged, std::move(clean));
      });
  fs_ = &fs;
}

void FaultInjector::attach_bus(sensors::I2cBus& bus) {
  bus.set_fault_hook(
      [this](std::uint8_t address, std::uint8_t reg, bool is_write) {
        return filter_i2c(address, reg, is_write);
      });
  bus_ = &bus;
}

void FaultInjector::detach() {
  if (fs_ != nullptr) {
    fs_->set_read_fault_hook(nullptr);
    fs_ = nullptr;
  }
  if (bus_ != nullptr) {
    bus_->set_fault_hook(nullptr);
    bus_ = nullptr;
  }
}

std::optional<FaultKind> FaultInjector::draw(PathState& state,
                                             std::uint64_t stream,
                                             bool i2c_path,
                                             std::uint64_t* corrupt_word) {
  const std::uint64_t n = state.accesses++;
  ++stats_.accesses;

  // Active burst: the fault persists, consuming this access.
  if (state.burst_left > 0) {
    --state.burst_left;
    return state.burst_kind;
  }

  // The decision stream for access n of this path is a pure function of
  // (plan.seed, path, n) — cross-path interleaving cannot perturb it.
  util::Rng rng(util::hash_combine(util::hash_combine(plan_.seed, stream), n));
  const double u = rng.uniform();
  *corrupt_word = rng.next();

  double cumulative = 0.0;
  std::optional<FaultKind> chosen;
  for (FaultKind k : kAllFaultKinds) {
    const bool applicable =
        i2c_path ? (k == FaultKind::I2cNack) : (k != FaultKind::I2cNack);
    if (!applicable) continue;
    cumulative += plan_.rates[k];
    if (u < cumulative) {
      chosen = k;
      break;
    }
  }
  if (!chosen) return std::nullopt;

  // Geometric burst extension, capped. The extension draws come from the
  // same per-access rng, so they replay too.
  std::size_t extra = 0;
  while (extra + 1 < plan_.burst.max_length &&
         rng.uniform() < plan_.burst.continue_probability) {
    ++extra;
  }
  state.burst_kind = *chosen;
  state.burst_left = extra;
  return chosen;
}

void FaultInjector::note_injected(FaultKind k, std::string_view path,
                                  bool privileged) {
  ++stats_.injected[static_cast<std::size_t>(k)];
  if (obs::tracing_enabled()) {
    // Zero-duration span parented to whatever span is live on this thread
    // (typically the acquire stage), stamping the fault kind into the
    // causal trace.
    obs::instant(util::format("fault.%s",
                              std::string(fault_kind_name(k)).c_str()),
                 "faults");
  }
  if (obs::metrics_enabled()) {
    obs::metrics()
        .counter(util::format(
            "faults.injected.%s",
            std::string(fault_kind_name(k)).c_str()))
        .inc();
    obs::metrics().counter("faults.injected_total").inc();
  }
  // Every injected fault leaves an audit record under its own principal,
  // so a chaos run's fault schedule can be reconstructed from the audit
  // trail alongside the attacker's accesses.
  if (obs::audit_enabled()) {
    obs::audit_log().record(path, privileged, obs::AccessOutcome::Error,
                            "fault-injector");
  }
}

hwmon::VfsResult FaultInjector::filter_read(std::string_view path,
                                            bool privileged,
                                            hwmon::VfsResult clean) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = paths_.find(path);
  PathState& state = it != paths_.end()
                         ? it->second
                         : paths_.emplace(std::string(path), PathState{})
                               .first->second;

  std::uint64_t corrupt_word = 0;
  const auto kind = draw(state, fnv1a(path), /*i2c_path=*/false,
                         &corrupt_word);
  if (!kind) {
    if (clean.ok()) state.last_clean = clean.data;
    return clean;
  }
  note_injected(*kind, path, privileged);

  switch (*kind) {
    case FaultKind::Transient:
      return {hwmon::VfsStatus::TryAgain, {}};
    case FaultKind::Hotplug:
      return {hwmon::VfsStatus::NotFound, {}};
    case FaultKind::PermissionFlap:
      return {hwmon::VfsStatus::PermissionDenied, {}};
    case FaultKind::TornRead: {
      if (!clean.ok() || clean.data.empty()) {
        return {hwmon::VfsStatus::TryAgain, {}};
      }
      // A short read hands back a strict prefix — sometimes unparseable
      // (empty), sometimes a plausible-but-wrong number ("15" from
      // "1520\n"): the nastiest kind of corruption, because no parser
      // catches it.
      const std::size_t cut =
          static_cast<std::size_t>(corrupt_word % clean.data.size());
      return {hwmon::VfsStatus::Ok, clean.data.substr(0, cut)};
    }
    case FaultKind::GarbageText:
      return {hwmon::VfsStatus::Ok,
              std::string(kGarbage[corrupt_word % std::size(kGarbage)])};
    case FaultKind::FrozenRegister:
    case FaultKind::LatencySpike:
      // Stuck conversion / latency spike: the previous conversion's text
      // repeats. last_clean deliberately not updated, so a frozen burst
      // keeps repeating the same stale value. Before any clean read the
      // register window is empty — surface EAGAIN, as a driver would when
      // the first conversion has not completed.
      if (state.last_clean.empty()) {
        return {hwmon::VfsStatus::TryAgain, {}};
      }
      return {hwmon::VfsStatus::Ok, state.last_clean};
    case FaultKind::I2cNack:
      break;  // never drawn on the read path
  }
  return clean;
}

bool FaultInjector::filter_i2c(std::uint8_t address, std::uint8_t reg,
                               bool is_write) {
  static_cast<void>(is_write);
  const std::string key = util::format("i2c/0x%02x/0x%02x", address, reg);
  std::lock_guard<std::mutex> lock(mu_);
  PathState& state = paths_[key];
  std::uint64_t corrupt_word = 0;
  const auto kind =
      draw(state, fnv1a(key), /*i2c_path=*/true, &corrupt_word);
  if (!kind) return false;
  note_injected(*kind, key, /*privileged=*/true);
  return true;
}

FaultInjector::Stats FaultInjector::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

// ---------------------------------------------------------------------------
// Storage kill-points.

namespace {

struct StoragePoints {
  std::mutex mu;
  std::uint64_t crossings = 0;
  std::uint64_t crash_at = 0;       // 1-based crossing; 0 = disarmed
  std::uint64_t io_fail_from = 0;   // 1-based crossing; 0 = disarmed
  std::uint64_t io_fail_count = 0;
  std::vector<std::pair<std::string, std::uint64_t>> sites;

  void tally(std::string_view site) {
    for (auto& [name, hits] : sites) {
      if (name == site) {
        ++hits;
        return;
      }
    }
    sites.emplace_back(std::string(site), 1);
  }
};

StoragePoints& storage_points() {
  static StoragePoints points;
  return points;
}

}  // namespace

void storage_points_reset() {
  StoragePoints& p = storage_points();
  std::lock_guard<std::mutex> lock(p.mu);
  p.crossings = 0;
  p.crash_at = 0;
  p.io_fail_from = 0;
  p.io_fail_count = 0;
  p.sites.clear();
}

void storage_points_arm_crash(std::uint64_t nth) {
  StoragePoints& p = storage_points();
  std::lock_guard<std::mutex> lock(p.mu);
  p.crossings = 0;
  p.crash_at = nth;
}

void storage_points_arm_io_failure(std::uint64_t nth, std::uint64_t count) {
  StoragePoints& p = storage_points();
  std::lock_guard<std::mutex> lock(p.mu);
  p.crossings = 0;
  p.io_fail_from = nth;
  p.io_fail_count = count;
}

std::uint64_t storage_point_crossings() {
  StoragePoints& p = storage_points();
  std::lock_guard<std::mutex> lock(p.mu);
  return p.crossings;
}

std::vector<std::pair<std::string, std::uint64_t>> storage_point_sites() {
  StoragePoints& p = storage_points();
  std::lock_guard<std::mutex> lock(p.mu);
  return p.sites;
}

void storage_point(std::string_view site) {
  StoragePoints& p = storage_points();
  std::lock_guard<std::mutex> lock(p.mu);
  ++p.crossings;
  p.tally(site);
  obs::count("faults.storage_point_crossings");
  if (p.crash_at != 0 && p.crossings == p.crash_at) {
    obs::count("faults.storage_crashes_injected");
    throw SimulatedCrash(std::string(site));
  }
}

bool storage_io_ok(std::string_view site) {
  StoragePoints& p = storage_points();
  std::lock_guard<std::mutex> lock(p.mu);
  ++p.crossings;
  p.tally(site);
  obs::count("faults.storage_point_crossings");
  if (p.crash_at != 0 && p.crossings == p.crash_at) {
    obs::count("faults.storage_crashes_injected");
    throw SimulatedCrash(std::string(site));
  }
  if (p.io_fail_from != 0 && p.crossings >= p.io_fail_from &&
      p.crossings < p.io_fail_from + p.io_fail_count) {
    obs::count("faults.storage_io_failures_injected");
    return false;
  }
  return true;
}

}  // namespace amperebleed::faults
