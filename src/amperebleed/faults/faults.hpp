#pragma once
// Deterministic fault injection for the acquisition stack. On a real ZCU102
// the attack's signal path hangs off flaky kernel plumbing: hwmon sysfs
// reads hit EAGAIN, driver rebinds make attributes vanish (ENOENT), udev
// races flip permissions, short reads tear attribute text, conversion
// registers freeze, and the update-interval cadence jitters. This module
// reproduces all of it as a *seeded, exactly replayable* schedule:
//
//   faults::FaultPlan plan;
//   plan.seed = 0xfa17;
//   plan.rates[faults::FaultKind::Transient] = 0.05;
//   faults::FaultInjector injector(plan);
//   injector.attach(soc.hwmon().fs());     // hwmon read path
//   injector.attach_bus(soc.i2c());        // raw INA226 register path
//
// Determinism contract: the decision for the n-th access of a given path
// (or i2c register) is a pure function of (plan.seed, path, n). Two
// injectors with the same plan produce byte-identical fault schedules no
// matter how accesses to *different* paths interleave — which is what makes
// chaos runs reproducible across thread-pool sizes and machines.

#include <array>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "amperebleed/hwmon/vfs.hpp"
#include "amperebleed/sensors/i2c.hpp"

namespace amperebleed::faults {

/// Everything that can go wrong on the way from a shunt register to a
/// parsed sample.
enum class FaultKind {
  Transient,       // EAGAIN: read surfaces VfsStatus::TryAgain
  Hotplug,         // ENOENT: driver rebind / hwmon renumbering
  PermissionFlap,  // EACCES: udev race re-chmods the attribute briefly
  TornRead,        // short read: truncated attribute text
  GarbageText,     // corrupted attribute text (non-numeric)
  FrozenRegister,  // stuck conversion: the previous raw text repeats
  LatencySpike,    // conversion-latency spike: one stale re-read
  I2cNack,         // raw-path bus NACK (only drawn on the i2c path)
};

/// Bump together with the enum; every table below static_asserts against
/// it so a new kind cannot silently miss a rate slot, the name map, or the
/// per-kind obs counters.
inline constexpr std::size_t kFaultKindCount = 8;

inline constexpr FaultKind kAllFaultKinds[] = {
    FaultKind::Transient,      FaultKind::Hotplug,
    FaultKind::PermissionFlap, FaultKind::TornRead,
    FaultKind::GarbageText,    FaultKind::FrozenRegister,
    FaultKind::LatencySpike,   FaultKind::I2cNack,
};
static_assert(std::size(kAllFaultKinds) == kFaultKindCount,
              "kAllFaultKinds must enumerate every FaultKind exactly once");

std::string_view fault_kind_name(FaultKind k);
/// Inverse of fault_kind_name; nullopt for unknown names.
std::optional<FaultKind> fault_kind_from_name(std::string_view name);

/// Per-access injection probability for each kind. Rates are independent;
/// at most one fault fires per access (kinds are checked in declaration
/// order against a single uniform draw, so the sum should stay <= 1).
struct FaultRates {
  std::array<double, kFaultKindCount> rate{};

  double& operator[](FaultKind k) {
    return rate[static_cast<std::size_t>(k)];
  }
  double operator[](FaultKind k) const {
    return rate[static_cast<std::size_t>(k)];
  }
  /// Sum over the hwmon read-path kinds (everything but I2cNack).
  [[nodiscard]] double read_total() const;
  [[nodiscard]] bool any() const;
};

/// Burst model: once a fault fires on a path, it extends to the following
/// accesses of the *same path* with geometric continuation — EAGAIN storms
/// and rebind windows on real boards span several polls, not one.
struct BurstModel {
  double continue_probability = 0.0;  // P(fault persists to the next access)
  std::size_t max_length = 4;         // hard cap on a burst, in accesses
};

/// A complete, reproducible chaos schedule.
struct FaultPlan {
  std::uint64_t seed = 0xfa17;
  FaultRates rates{};
  BurstModel burst{};

  [[nodiscard]] bool any() const { return rates.any(); }

  /// Uniform transient-flavoured chaos at total rate `r`: the mix the
  /// ablation sweeps (mostly EAGAIN, plus rebinds, flaps, torn/garbage
  /// text and frozen registers in the tail).
  static FaultPlan chaos(std::uint64_t seed, double r);
  /// Only EAGAIN at rate `r` (the cleanest retry-policy stressor).
  static FaultPlan transient_only(std::uint64_t seed, double r);
  /// Seed from AMPEREBLEED_FAULT_SEED and total rate from
  /// AMPEREBLEED_FAULT_RATE (defaults: 0xfa17, 0.05) — the CI chaos
  /// matrix's entry point.
  static FaultPlan from_env();
};

/// Seeded injector that wraps a VirtualFs read path and/or an I2C bus.
/// Thread-safe: per-path state is mutex-guarded, and determinism holds
/// per path regardless of cross-path interleaving.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);
  /// Detaches from any attached filesystem/bus.
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Install this injector on a filesystem's read path. The injector must
  /// outlive the attachment (detach() or destruction removes the hook).
  void attach(hwmon::VirtualFs& fs);
  /// Install this injector on a bus (I2cNack faults only).
  void attach_bus(sensors::I2cBus& bus);
  void detach();

  /// Decision core, public for tests: the (possibly faulted) result the
  /// n-th read of `path` surfaces given its clean result.
  [[nodiscard]] hwmon::VfsResult filter_read(std::string_view path,
                                             bool privileged,
                                             hwmon::VfsResult clean);
  /// True when the n-th transaction on (address, reg) should NACK.
  [[nodiscard]] bool filter_i2c(std::uint8_t address, std::uint8_t reg,
                                bool is_write);

  struct Stats {
    std::array<std::uint64_t, kFaultKindCount> injected{};
    std::uint64_t accesses = 0;  // decisions taken (reads + i2c)
    [[nodiscard]] std::uint64_t total_injected() const;
    [[nodiscard]] std::uint64_t by_kind(FaultKind k) const {
      return injected[static_cast<std::size_t>(k)];
    }
  };
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

 private:
  struct PathState {
    std::uint64_t accesses = 0;    // decision sequence number
    std::string last_clean;        // latest clean text (frozen/latency)
    FaultKind burst_kind = FaultKind::Transient;
    std::size_t burst_left = 0;    // active burst continuation
  };

  /// Draw the fault (if any) for the next access of `state`, advancing its
  /// sequence number. `stream` identifies the path. Burst continuation and
  /// corruption parameters all derive from the same per-access rng.
  std::optional<FaultKind> draw(PathState& state, std::uint64_t stream,
                                bool i2c_path, std::uint64_t* corrupt_word);
  void note_injected(FaultKind k, std::string_view path, bool privileged);

  FaultPlan plan_;
  mutable std::mutex mu_;
  std::map<std::string, PathState, std::less<>> paths_;
  Stats stats_;
  hwmon::VirtualFs* fs_ = nullptr;
  sensors::I2cBus* bus_ = nullptr;
};

// ---------------------------------------------------------------------------
// Storage kill-points (DESIGN.md §15).
//
// The persist write paths (journal append, snapshot write, journal reset,
// snapshot pruning) cross a named storage point at every durable
// intermediate state. A process-global registry counts the crossings, and a
// crash-recovery harness can arm it two ways:
//
//   * crash at the n-th crossing — the crossing throws SimulatedCrash,
//     abandoning the write mid-flight exactly where a power cut would,
//     with real partial files left on disk;
//   * IO failure at the n-th crossing — storage_io_ok() reports failure at
//     its (pre-write) decision sites, which persist maps to IoError and the
//     service maps to Degraded mode.
//
// Crossings are counted on the service's tick thread only (all persist
// writes happen there), so the crossing sequence is a pure function of the
// request schedule — the same determinism contract as FaultInjector, one
// layer up.

/// Thrown by an armed storage point. Deliberately NOT derived from
/// std::exception: nothing between the persist write site and the harness
/// may catch and "handle" a simulated crash, the torn state on disk is the
/// test fixture.
class SimulatedCrash {
 public:
  explicit SimulatedCrash(std::string site) : site_(std::move(site)) {}
  [[nodiscard]] const std::string& site() const { return site_; }

 private:
  std::string site_;
};

/// Forget all arming, crossing counts and site tallies.
void storage_points_reset();
/// Throw SimulatedCrash at the nth crossing from now (1-based; 0 disarms).
void storage_points_arm_crash(std::uint64_t nth);
/// Report IO failure from storage_io_ok() for `count` crossings starting at
/// the nth from now (1-based; 0 disarms).
void storage_points_arm_io_failure(std::uint64_t nth, std::uint64_t count);
/// Crossings since the last reset — a clean run's total is the sweep bound
/// for the crash harness.
[[nodiscard]] std::uint64_t storage_point_crossings();
/// (site, crossings) tallies in first-crossing order — the kill-point map.
[[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
storage_point_sites();

/// Cross a named kill-point (persist write paths call this after every
/// durable step). Throws SimulatedCrash when the crash arming hits.
void storage_point(std::string_view site);
/// Decision site before a write: false = the armed IO failure fires and the
/// caller must surface IoError without touching the medium. Also counts as
/// a crossing for crash arming.
[[nodiscard]] bool storage_io_ok(std::string_view site);

}  // namespace amperebleed::faults
