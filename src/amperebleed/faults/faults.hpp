#pragma once
// Deterministic fault injection for the acquisition stack. On a real ZCU102
// the attack's signal path hangs off flaky kernel plumbing: hwmon sysfs
// reads hit EAGAIN, driver rebinds make attributes vanish (ENOENT), udev
// races flip permissions, short reads tear attribute text, conversion
// registers freeze, and the update-interval cadence jitters. This module
// reproduces all of it as a *seeded, exactly replayable* schedule:
//
//   faults::FaultPlan plan;
//   plan.seed = 0xfa17;
//   plan.rates[faults::FaultKind::Transient] = 0.05;
//   faults::FaultInjector injector(plan);
//   injector.attach(soc.hwmon().fs());     // hwmon read path
//   injector.attach_bus(soc.i2c());        // raw INA226 register path
//
// Determinism contract: the decision for the n-th access of a given path
// (or i2c register) is a pure function of (plan.seed, path, n). Two
// injectors with the same plan produce byte-identical fault schedules no
// matter how accesses to *different* paths interleave — which is what makes
// chaos runs reproducible across thread-pool sizes and machines.

#include <array>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "amperebleed/hwmon/vfs.hpp"
#include "amperebleed/sensors/i2c.hpp"

namespace amperebleed::faults {

/// Everything that can go wrong on the way from a shunt register to a
/// parsed sample.
enum class FaultKind {
  Transient,       // EAGAIN: read surfaces VfsStatus::TryAgain
  Hotplug,         // ENOENT: driver rebind / hwmon renumbering
  PermissionFlap,  // EACCES: udev race re-chmods the attribute briefly
  TornRead,        // short read: truncated attribute text
  GarbageText,     // corrupted attribute text (non-numeric)
  FrozenRegister,  // stuck conversion: the previous raw text repeats
  LatencySpike,    // conversion-latency spike: one stale re-read
  I2cNack,         // raw-path bus NACK (only drawn on the i2c path)
};

/// Bump together with the enum; every table below static_asserts against
/// it so a new kind cannot silently miss a rate slot, the name map, or the
/// per-kind obs counters.
inline constexpr std::size_t kFaultKindCount = 8;

inline constexpr FaultKind kAllFaultKinds[] = {
    FaultKind::Transient,      FaultKind::Hotplug,
    FaultKind::PermissionFlap, FaultKind::TornRead,
    FaultKind::GarbageText,    FaultKind::FrozenRegister,
    FaultKind::LatencySpike,   FaultKind::I2cNack,
};
static_assert(std::size(kAllFaultKinds) == kFaultKindCount,
              "kAllFaultKinds must enumerate every FaultKind exactly once");

std::string_view fault_kind_name(FaultKind k);
/// Inverse of fault_kind_name; nullopt for unknown names.
std::optional<FaultKind> fault_kind_from_name(std::string_view name);

/// Per-access injection probability for each kind. Rates are independent;
/// at most one fault fires per access (kinds are checked in declaration
/// order against a single uniform draw, so the sum should stay <= 1).
struct FaultRates {
  std::array<double, kFaultKindCount> rate{};

  double& operator[](FaultKind k) {
    return rate[static_cast<std::size_t>(k)];
  }
  double operator[](FaultKind k) const {
    return rate[static_cast<std::size_t>(k)];
  }
  /// Sum over the hwmon read-path kinds (everything but I2cNack).
  [[nodiscard]] double read_total() const;
  [[nodiscard]] bool any() const;
};

/// Burst model: once a fault fires on a path, it extends to the following
/// accesses of the *same path* with geometric continuation — EAGAIN storms
/// and rebind windows on real boards span several polls, not one.
struct BurstModel {
  double continue_probability = 0.0;  // P(fault persists to the next access)
  std::size_t max_length = 4;         // hard cap on a burst, in accesses
};

/// A complete, reproducible chaos schedule.
struct FaultPlan {
  std::uint64_t seed = 0xfa17;
  FaultRates rates{};
  BurstModel burst{};

  [[nodiscard]] bool any() const { return rates.any(); }

  /// Uniform transient-flavoured chaos at total rate `r`: the mix the
  /// ablation sweeps (mostly EAGAIN, plus rebinds, flaps, torn/garbage
  /// text and frozen registers in the tail).
  static FaultPlan chaos(std::uint64_t seed, double r);
  /// Only EAGAIN at rate `r` (the cleanest retry-policy stressor).
  static FaultPlan transient_only(std::uint64_t seed, double r);
  /// Seed from AMPEREBLEED_FAULT_SEED and total rate from
  /// AMPEREBLEED_FAULT_RATE (defaults: 0xfa17, 0.05) — the CI chaos
  /// matrix's entry point.
  static FaultPlan from_env();
};

/// Seeded injector that wraps a VirtualFs read path and/or an I2C bus.
/// Thread-safe: per-path state is mutex-guarded, and determinism holds
/// per path regardless of cross-path interleaving.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);
  /// Detaches from any attached filesystem/bus.
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Install this injector on a filesystem's read path. The injector must
  /// outlive the attachment (detach() or destruction removes the hook).
  void attach(hwmon::VirtualFs& fs);
  /// Install this injector on a bus (I2cNack faults only).
  void attach_bus(sensors::I2cBus& bus);
  void detach();

  /// Decision core, public for tests: the (possibly faulted) result the
  /// n-th read of `path` surfaces given its clean result.
  [[nodiscard]] hwmon::VfsResult filter_read(std::string_view path,
                                             bool privileged,
                                             hwmon::VfsResult clean);
  /// True when the n-th transaction on (address, reg) should NACK.
  [[nodiscard]] bool filter_i2c(std::uint8_t address, std::uint8_t reg,
                                bool is_write);

  struct Stats {
    std::array<std::uint64_t, kFaultKindCount> injected{};
    std::uint64_t accesses = 0;  // decisions taken (reads + i2c)
    [[nodiscard]] std::uint64_t total_injected() const;
    [[nodiscard]] std::uint64_t by_kind(FaultKind k) const {
      return injected[static_cast<std::size_t>(k)];
    }
  };
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

 private:
  struct PathState {
    std::uint64_t accesses = 0;    // decision sequence number
    std::string last_clean;        // latest clean text (frozen/latency)
    FaultKind burst_kind = FaultKind::Transient;
    std::size_t burst_left = 0;    // active burst continuation
  };

  /// Draw the fault (if any) for the next access of `state`, advancing its
  /// sequence number. `stream` identifies the path. Burst continuation and
  /// corruption parameters all derive from the same per-access rng.
  std::optional<FaultKind> draw(PathState& state, std::uint64_t stream,
                                bool i2c_path, std::uint64_t* corrupt_word);
  void note_injected(FaultKind k, std::string_view path, bool privileged);

  FaultPlan plan_;
  mutable std::mutex mu_;
  std::map<std::string, PathState, std::less<>> paths_;
  Stats stats_;
  hwmon::VirtualFs* fs_ = nullptr;
  sensors::I2cBus* bus_ = nullptr;
};

}  // namespace amperebleed::faults
