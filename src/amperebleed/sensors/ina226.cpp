#include "amperebleed/sensors/ina226.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace amperebleed::sensors {

namespace {

std::int16_t clamp_i16(double code) {
  return static_cast<std::int16_t>(
      std::clamp(std::llround(code), -32768LL, 32767LL));
}

std::uint16_t clamp_u16(double code) {
  return static_cast<std::uint16_t>(
      std::clamp(std::llround(code), 0LL, 65535LL));
}

}  // namespace

Ina226::Ina226(Ina226Config config, const power::RailNoiseConfig& noise,
               std::uint64_t seed)
    : config_(config), noise_(noise, seed) {
  if (config_.shunt_ohms <= 0.0) {
    throw std::invalid_argument("Ina226: shunt resistance must be > 0");
  }
  if (config_.current_lsb_amps <= 0.0) {
    throw std::invalid_argument("Ina226: current LSB must be > 0");
  }
  if (config_.avg_count == 0) {
    throw std::invalid_argument("Ina226: avg_count must be > 0");
  }
  if (config_.shunt_conv_time.ns <= 0 || config_.bus_conv_time.ns <= 0) {
    throw std::invalid_argument("Ina226: conversion times must be > 0");
  }
  reg_calibration_ = calibration_for(config_);
}

std::uint16_t Ina226::calibration_for(const Ina226Config& c) {
  // Datasheet eq. 1: CAL = 0.00512 / (Current_LSB * R_shunt).
  const double cal = 0.00512 / (c.current_lsb_amps * c.shunt_ohms);
  return clamp_u16(cal);
}

void Ina226::bind(const sim::PiecewiseConstant* rail_current_amps,
                  const sim::PiecewiseConstant* bus_voltage_volts) {
  if (rail_current_amps == nullptr || bus_voltage_volts == nullptr) {
    throw std::invalid_argument("Ina226::bind: null signal");
  }
  rail_current_ = rail_current_amps;
  bus_voltage_ = bus_voltage_volts;
}

sim::TimeNs Ina226::update_interval() const {
  return sim::TimeNs{static_cast<std::int64_t>(config_.avg_count) *
                     (config_.shunt_conv_time.ns + config_.bus_conv_time.ns)};
}

void Ina226::set_timing(std::uint16_t avg_count, sim::TimeNs shunt_ct,
                        sim::TimeNs bus_ct) {
  if (avg_count == 0 || shunt_ct.ns <= 0 || bus_ct.ns <= 0) {
    throw std::invalid_argument("Ina226::set_timing: invalid timing");
  }
  config_.avg_count = avg_count;
  config_.shunt_conv_time = shunt_ct;
  config_.bus_conv_time = bus_ct;
}

void Ina226::complete_conversion(sim::TimeNs conversion_start) {
  // One full update: avg_count rounds of (shunt sample, bus sample). Each
  // sample integrates the bound signal over its conversion window, applies
  // the rail noise, and is quantized at the ADC LSB; rounds are averaged.
  double shunt_sum = 0.0;
  double bus_sum = 0.0;
  sim::TimeNs t = conversion_start;
  for (std::uint16_t round = 0; round < config_.avg_count; ++round) {
    const auto noise =
        noise_.step(sim::TimeNs{config_.shunt_conv_time.ns +
                                config_.bus_conv_time.ns});

    const double i_true = rail_current_->mean(t, t + config_.shunt_conv_time);
    // Multiplicative drift plus self-heating nonlinearity (see
    // RailNoiseConfig::thermal_nonlinearity_per_amp).
    const double thermal =
        1.0 + noise_.config().thermal_nonlinearity_per_amp * i_true;
    const double i_meas =
        i_true * noise.current_gain * thermal + noise.current_offset_amps;
    const double v_shunt = i_meas * config_.shunt_ohms;
    shunt_sum += std::round(v_shunt / kShuntVoltageLsbVolts);
    t += config_.shunt_conv_time;

    const double v_true = bus_voltage_->mean(t, t + config_.bus_conv_time);
    const double v_meas = v_true + noise.voltage_offset_volts;
    bus_sum += std::round(v_meas / kBusVoltageLsbVolts);
    t += config_.bus_conv_time;
  }
  const double shunt_code = shunt_sum / config_.avg_count;
  const double bus_code = bus_sum / config_.avg_count;

  reg_shunt_ = clamp_i16(shunt_code);
  reg_bus_ = clamp_u16(bus_code);

  // Datasheet eq. 3: Current = (ShuntVoltage * CAL) / 2048.
  const double current_code =
      static_cast<double>(reg_shunt_) * reg_calibration_ / 2048.0;
  reg_current_ = clamp_i16(current_code);

  // Datasheet eq. 4: Power = (Current * BusVoltage) / 20000.
  const double power_code = static_cast<double>(reg_current_) *
                            static_cast<double>(reg_bus_) / 20000.0;
  reg_power_ = clamp_u16(power_code);

  ++conversions_completed_;
}

void Ina226::advance_to(sim::TimeNs t) {
  if (rail_current_ == nullptr || bus_voltage_ == nullptr) {
    throw std::logic_error("Ina226::advance_to: signals not bound");
  }
  if (t < now_) {
    throw std::invalid_argument("Ina226::advance_to: time went backwards");
  }
  while (next_conversion_start_ + update_interval() <= t) {
    complete_conversion(next_conversion_start_);
    next_conversion_start_ += update_interval();
  }
  now_ = t;
}

std::uint16_t Ina226::read_register(Ina226Register reg) const {
  switch (reg) {
    case Ina226Register::Configuration:
      return reg_config_;
    case Ina226Register::ShuntVoltage:
      return static_cast<std::uint16_t>(reg_shunt_);
    case Ina226Register::BusVoltage:
      return reg_bus_;
    case Ina226Register::Power:
      return reg_power_;
    case Ina226Register::Current:
      return static_cast<std::uint16_t>(reg_current_);
    case Ina226Register::Calibration:
      return reg_calibration_;
    case Ina226Register::MaskEnable:
      return 0;
    case Ina226Register::AlertLimit:
      return 0;
    case Ina226Register::ManufacturerId:
      return 0x5449;  // "TI"
    case Ina226Register::DieId:
      return 0x2260;
  }
  return 0xFFFF;
}

void Ina226::write_register(Ina226Register reg, std::uint16_t value) {
  switch (reg) {
    case Ina226Register::Configuration:
      reg_config_ = value;
      return;
    case Ina226Register::Calibration:
      reg_calibration_ = value;
      return;
    default:
      return;  // data registers are read-only; writes are ignored
  }
}

double Ina226::current_amps() const {
  return static_cast<double>(reg_current_) * config_.current_lsb_amps;
}

double Ina226::bus_voltage_volts() const {
  return static_cast<double>(reg_bus_) * kBusVoltageLsbVolts;
}

double Ina226::power_watts() const {
  return static_cast<double>(reg_power_) * power_lsb_watts();
}

double Ina226::shunt_voltage_volts() const {
  return static_cast<double>(reg_shunt_) * kShuntVoltageLsbVolts;
}

}  // namespace amperebleed::sensors
