#include "amperebleed/sensors/sysmon.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace amperebleed::sensors {

Sysmon::Sysmon(SysmonConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  if (config_.conversion_period.ns <= 0) {
    throw std::invalid_argument("Sysmon: conversion period must be > 0");
  }
  if (config_.temp_scale <= 0.0) {
    throw std::invalid_argument("Sysmon: temperature scale must be > 0");
  }
}

void Sysmon::bind(const sim::PiecewiseConstant* temperature_celsius) {
  if (temperature_celsius == nullptr) {
    throw std::invalid_argument("Sysmon::bind: null signal");
  }
  temperature_ = temperature_celsius;
}

void Sysmon::advance_to(sim::TimeNs t) {
  if (temperature_ == nullptr) {
    throw std::logic_error("Sysmon::advance_to: signal not bound");
  }
  if (t < now_) {
    throw std::invalid_argument("Sysmon::advance_to: time went backwards");
  }
  while (next_conversion_ + config_.conversion_period <= t) {
    const sim::TimeNs window_end =
        next_conversion_ + config_.conversion_period;
    const double true_temp = temperature_->mean(next_conversion_, window_end);
    const double noisy =
        true_temp + rng_.gaussian(0.0, config_.temp_noise_celsius);
    const double code =
        std::round((noisy - config_.temp_offset) / config_.temp_scale);
    code_ = static_cast<std::uint16_t>(std::clamp(code, 0.0, 65535.0));
    ++conversions_;
    next_conversion_ = window_end;
  }
  now_ = t;
}

double Sysmon::temperature_celsius() const {
  return static_cast<double>(code_) * config_.temp_scale +
         config_.temp_offset;
}

}  // namespace amperebleed::sensors
