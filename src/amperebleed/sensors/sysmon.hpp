#pragma once
// Xilinx SYSMON (AMS) on-die monitor — the other unprivileged hwmon device a
// ZCU102-class board exposes. AmpereBleed itself uses the INA226s; the
// SYSMON temperature channel is the thermal cousin (cf. ThermalScope) and is
// modelled here so the repo can compare the two directly: temperature
// integrates power through an ~8 s thermal RC, so it resolves far fewer
// victim activity levels per unit time than the 35 ms current channel.

#include <cstdint>

#include "amperebleed/sim/signal.hpp"
#include "amperebleed/sim/time.hpp"
#include "amperebleed/util/rng.hpp"

namespace amperebleed::sensors {

struct SysmonConfig {
  /// SYSMONE4 temperature transfer: Temp(C) = code * 507.5921/2^16 - 279.42.
  double temp_scale = 507.5921 / 65536.0;
  double temp_offset = -279.42;
  /// Conversion period of the on-die ADC sequencer.
  sim::TimeNs conversion_period = sim::milliseconds(1);
  /// ADC-referred temperature noise (1 sigma, degC per conversion).
  double temp_noise_celsius = 0.05;
};

/// Minimal register/engineering-unit model of the AMS die-temperature
/// channel. Binding and time semantics mirror Ina226.
class Sysmon {
 public:
  Sysmon(SysmonConfig config, std::uint64_t seed);

  /// Bind the die-temperature signal (degrees Celsius vs time).
  void bind(const sim::PiecewiseConstant* temperature_celsius);

  /// Run all conversions completing by t (monotonic).
  void advance_to(sim::TimeNs t);

  /// Latest converted die temperature in Celsius (quantized to the ADC
  /// transfer function). 0 conversions -> the offset-coded 0 reading.
  [[nodiscard]] double temperature_celsius() const;
  [[nodiscard]] std::uint16_t raw_code() const { return code_; }
  [[nodiscard]] std::uint64_t conversions_completed() const {
    return conversions_;
  }
  [[nodiscard]] const SysmonConfig& config() const { return config_; }

 private:
  SysmonConfig config_;
  util::Rng rng_;
  const sim::PiecewiseConstant* temperature_ = nullptr;
  sim::TimeNs now_{0};
  sim::TimeNs next_conversion_{0};
  std::uint16_t code_ = 0;
  std::uint64_t conversions_ = 0;
};

}  // namespace amperebleed::sensors
