#pragma once
// Word-register I2C bus model — the transport the ina2xx kernel driver (and
// root-side tools like i2cget) actually use to reach the INA226s. hwmon is
// the unprivileged window; the bus is the privileged raw path. Modelling it
// keeps the sensor stack honest end-to-end: the same register model answers
// both paths.

#include <cstdint>
#include <functional>
#include <map>
#include <stdexcept>
#include <vector>

#include "amperebleed/sensors/ina226.hpp"

namespace amperebleed::sensors {

/// NACK / addressing failures on the bus.
class I2cError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A device responding to word-register transactions (SMBus read/write word
/// with big-endian data, as the INA226 speaks).
class I2cDevice {
 public:
  virtual ~I2cDevice() = default;
  virtual std::uint16_t read_word(std::uint8_t reg) = 0;
  virtual void write_word(std::uint8_t reg, std::uint16_t value) = 0;
};

/// Single-master bus with 7-bit addressing.
class I2cBus {
 public:
  /// Bus-fault hook: consulted before every word transaction; returning
  /// true makes the bus NACK (throw I2cError) as if the device briefly fell
  /// off the bus — the seam `faults::FaultInjector` uses on the raw
  /// INA226 register path. NACKed transactions still count in
  /// transactions() (the master drove the bus either way).
  using FaultHook =
      std::function<bool(std::uint8_t address, std::uint8_t reg,
                         bool is_write)>;

  /// Attach a device. Throws on reserved addresses (0x00-0x07, 0x78-0x7f)
  /// or address conflicts. The device must outlive the bus.
  void attach(std::uint8_t address, I2cDevice& device);

  /// Install (or clear, with nullptr) the bus-fault hook. Installing over
  /// an existing hook throws.
  void set_fault_hook(FaultHook hook);
  [[nodiscard]] bool has_fault_hook() const {
    return static_cast<bool>(fault_hook_);
  }

  /// True when a device ACKs the address.
  [[nodiscard]] bool probe(std::uint8_t address) const;

  /// Sorted list of responding addresses (i2cdetect).
  [[nodiscard]] std::vector<std::uint8_t> scan() const;

  /// Word transactions; throw I2cError when nothing ACKs.
  std::uint16_t read_word(std::uint8_t address, std::uint8_t reg);
  void write_word(std::uint8_t address, std::uint8_t reg, std::uint16_t value);

  [[nodiscard]] std::uint64_t transactions() const { return transactions_; }

 private:
  std::map<std::uint8_t, I2cDevice*> devices_;
  std::uint64_t transactions_ = 0;
  FaultHook fault_hook_;
};

/// INA226 presented as an I2C device. `pre_access` (e.g. "advance the SoC
/// clock") runs before every transaction, like the conversion-ready timing
/// a real driver observes.
class Ina226I2cAdapter final : public I2cDevice {
 public:
  Ina226I2cAdapter(Ina226& device, std::function<void()> pre_access = {});

  std::uint16_t read_word(std::uint8_t reg) override;
  void write_word(std::uint8_t reg, std::uint16_t value) override;

 private:
  Ina226& device_;
  std::function<void()> pre_access_;
};

}  // namespace amperebleed::sensors
