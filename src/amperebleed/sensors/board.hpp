#pragma once
// Static board catalog: Table I (INA226 availability across ARM-FPGA SoC
// evaluation boards) and Table II (the four security-sensitive sensors on
// the ZCU102). Encoding the survey as data makes the tables reproducible
// and lets the SoC model instantiate the right sensors per rail.

#include <array>
#include <string>
#include <vector>

#include "amperebleed/power/rails.hpp"

namespace amperebleed::sensors {

enum class FpgaFamily { ZynqUltraScalePlus, Versal };

std::string_view fpga_family_name(FpgaFamily f);

/// One row of Table I.
struct BoardSpec {
  std::string name;
  FpgaFamily family = FpgaFamily::ZynqUltraScalePlus;
  double fpga_voltage_min = 0.0;  // volts
  double fpga_voltage_max = 0.0;
  std::string cpu_model;
  int dram_gb = 0;
  int ina226_count = 0;
  int price_usd = 0;
};

/// The 8 representative boards of Table I (all include INA226 sensors).
const std::vector<BoardSpec>& board_catalog();

/// Look up a board by name; throws std::invalid_argument if unknown.
const BoardSpec& board_spec(std::string_view name);

/// One row of Table II: a security-sensitive INA226 on the ZCU102.
struct SensitiveSensor {
  std::string designator;  // e.g. "ina226_u79"
  power::Rail rail;
  std::string description;
  double shunt_ohms;  // shunt fitted at that monitoring point
};

/// The four sensitive sensors of Table II, indexed by rail.
const std::array<SensitiveSensor, power::kRailCount>& zcu102_sensitive_sensors();

/// Sensor spec for one rail.
const SensitiveSensor& zcu102_sensor(power::Rail rail);

}  // namespace amperebleed::sensors
