#include "amperebleed/sensors/board.hpp"

#include <stdexcept>

namespace amperebleed::sensors {

std::string_view fpga_family_name(FpgaFamily f) {
  switch (f) {
    case FpgaFamily::ZynqUltraScalePlus:
      return "Zynq UltraScale+";
    case FpgaFamily::Versal:
      return "Versal";
  }
  return "unknown";
}

const std::vector<BoardSpec>& board_catalog() {
  static const std::vector<BoardSpec> catalog = {
      {"ZCU102", FpgaFamily::ZynqUltraScalePlus, 0.825, 0.876, "Cortex-A53", 4,
       18, 3'234},
      {"ZCU111", FpgaFamily::ZynqUltraScalePlus, 0.825, 0.876, "Cortex-A53", 4,
       14, 14'995},
      {"ZCU216", FpgaFamily::ZynqUltraScalePlus, 0.825, 0.876, "Cortex-A53", 4,
       14, 16'995},
      {"ZCU1285", FpgaFamily::ZynqUltraScalePlus, 0.825, 0.876, "Cortex-A53",
       8, 21, 32'394},
      {"VEK280", FpgaFamily::Versal, 0.775, 0.825, "Cortex-A72", 12, 20,
       6'995},
      {"VCK190", FpgaFamily::Versal, 0.775, 0.825, "Cortex-A72", 8, 17,
       13'195},
      {"VHK158", FpgaFamily::Versal, 0.775, 0.825, "Cortex-A72", 32, 22,
       14'995},
      {"VPK180", FpgaFamily::Versal, 0.775, 0.825, "Cortex-A72", 12, 19,
       17'995},
  };
  return catalog;
}

const BoardSpec& board_spec(std::string_view name) {
  for (const auto& b : board_catalog()) {
    if (b.name == name) return b;
  }
  throw std::invalid_argument("board_spec: unknown board '" +
                              std::string(name) + "'");
}

const std::array<SensitiveSensor, power::kRailCount>&
zcu102_sensitive_sensors() {
  static const std::array<SensitiveSensor, power::kRailCount> sensors = {{
      {"ina226_u76", power::Rail::FpdCpu,
       "current, voltage, and power for full-power domain of the ARM "
       "processor cores",
       0.005},
      {"ina226_u77", power::Rail::LpdCpu,
       "current, voltage, and power for low-power domain of the ARM "
       "processor cores",
       0.005},
      {"ina226_u79", power::Rail::FpgaLogic,
       "current, voltage, and power for FPGA's logic and processing elements",
       0.005},
      {"ina226_u93", power::Rail::Ddr,
       "current, voltage, and power for DDR memory", 0.005},
  }};
  return sensors;
}

const SensitiveSensor& zcu102_sensor(power::Rail rail) {
  return zcu102_sensitive_sensors()[power::rail_index(rail)];
}

}  // namespace amperebleed::sensors
