#pragma once
// Register-level model of the TI INA226 current/voltage/power monitor — the
// sensor AmpereBleed exploits. Faithful to the datasheet in everything the
// attack depends on:
//   * shunt ADC (2.5 uV LSB) and bus ADC (1.25 mV LSB fixed),
//   * CURRENT register scaled by the CALIBRATION register
//     (CAL = 0.00512 / (Current_LSB * R_shunt)),
//   * POWER register = CURRENT * BUS / 20000, i.e. Power LSB is fixed at
//     25x the current LSB — the resolution cliff that makes the power
//     channel strictly coarser than the current channel,
//   * conversion timing: avg_count * (shunt_ct + bus_ct) per update, 35.2 ms
//     with the board default AVG=16, CT=1.1 ms.
// The ADC "measures" by integrating bound current/voltage signals over each
// sub-conversion window and applying the rail noise process.

#include <cstdint>
#include <memory>

#include "amperebleed/power/noise_model.hpp"
#include "amperebleed/sim/signal.hpp"
#include "amperebleed/sim/time.hpp"

namespace amperebleed::sensors {

/// INA226 register addresses (datasheet table 7-2).
enum class Ina226Register : std::uint8_t {
  Configuration = 0x00,
  ShuntVoltage = 0x01,
  BusVoltage = 0x02,
  Power = 0x03,
  Current = 0x04,
  Calibration = 0x05,
  MaskEnable = 0x06,
  AlertLimit = 0x07,
  ManufacturerId = 0xFE,
  DieId = 0xFF,
};

struct Ina226Config {
  /// Shunt resistor on this monitoring point.
  double shunt_ohms = 0.005;
  /// Desired current LSB; the calibration register is derived from it.
  /// 1 mA is the hwmon-visible resolution on the evaluated boards.
  double current_lsb_amps = 0.001;
  /// Averaging count (AVG field): 1,4,16,64,128,256,512,1024.
  std::uint16_t avg_count = 16;
  /// Per-sample conversion times (VSHCT/VBUSCT fields).
  sim::TimeNs shunt_conv_time = sim::microseconds(1100);
  sim::TimeNs bus_conv_time = sim::microseconds(1100);
};

/// One INA226 device attached to a rail. Time is advanced explicitly by the
/// owning SoC; registers hold the most recently completed conversion.
class Ina226 {
 public:
  Ina226(Ina226Config config, const power::RailNoiseConfig& noise,
         std::uint64_t seed);

  /// Bind the signals this sensor digitizes. Pointers must outlive the
  /// sensor. Must be called before advance_to().
  void bind(const sim::PiecewiseConstant* rail_current_amps,
            const sim::PiecewiseConstant* bus_voltage_volts);

  /// Run all conversions that complete by time t (monotonic).
  void advance_to(sim::TimeNs t);

  /// Raw register access (I2C view). Unknown registers read 0xFFFF.
  [[nodiscard]] std::uint16_t read_register(Ina226Register reg) const;
  /// Configuration/calibration writes take effect on the next conversion
  /// cycle; data registers are read-only (writes ignored, like hardware).
  void write_register(Ina226Register reg, std::uint16_t value);

  /// Engineering-unit views of the data registers (what the hwmon driver
  /// computes from them).
  [[nodiscard]] double current_amps() const;
  [[nodiscard]] double bus_voltage_volts() const;
  [[nodiscard]] double power_watts() const;
  [[nodiscard]] double shunt_voltage_volts() const;

  /// avg_count * (shunt_ct + bus_ct) — the hwmon update_interval.
  [[nodiscard]] sim::TimeNs update_interval() const;
  /// Reconfigure averaging/conversion time (root-only via hwmon; the
  /// unprivileged attacker cannot reach this).
  void set_timing(std::uint16_t avg_count, sim::TimeNs shunt_ct,
                  sim::TimeNs bus_ct);

  [[nodiscard]] double current_lsb_amps() const { return config_.current_lsb_amps; }
  [[nodiscard]] double power_lsb_watts() const {
    return 25.0 * config_.current_lsb_amps;
  }
  static constexpr double kBusVoltageLsbVolts = 1.25e-3;
  static constexpr double kShuntVoltageLsbVolts = 2.5e-6;

  [[nodiscard]] sim::TimeNs now() const { return now_; }
  [[nodiscard]] std::uint64_t conversions_completed() const {
    return conversions_completed_;
  }
  [[nodiscard]] const Ina226Config& config() const { return config_; }

 private:
  void complete_conversion(sim::TimeNs conversion_start);
  [[nodiscard]] static std::uint16_t calibration_for(const Ina226Config& c);

  Ina226Config config_;
  power::RailNoiseProcess noise_;
  const sim::PiecewiseConstant* rail_current_ = nullptr;
  const sim::PiecewiseConstant* bus_voltage_ = nullptr;

  sim::TimeNs now_{0};
  sim::TimeNs next_conversion_start_{0};
  std::uint64_t conversions_completed_ = 0;

  // Data registers (two's complement raw codes, as on the wire).
  std::int16_t reg_shunt_ = 0;
  std::uint16_t reg_bus_ = 0;
  std::uint16_t reg_power_ = 0;
  std::int16_t reg_current_ = 0;
  std::uint16_t reg_calibration_ = 0;
  std::uint16_t reg_config_ = 0x4527;  // AVG=16, CT=1.1ms, continuous
};

}  // namespace amperebleed::sensors
