#include "amperebleed/sensors/i2c.hpp"

#include "amperebleed/util/strings.hpp"

namespace amperebleed::sensors {

void I2cBus::attach(std::uint8_t address, I2cDevice& device) {
  if (address <= 0x07 || address >= 0x78) {
    throw std::invalid_argument(
        util::format("I2cBus: address 0x%02x is reserved", address));
  }
  const auto [it, inserted] = devices_.emplace(address, &device);
  if (!inserted) {
    throw std::invalid_argument(
        util::format("I2cBus: address 0x%02x already attached", address));
  }
}

bool I2cBus::probe(std::uint8_t address) const {
  return devices_.count(address) != 0;
}

std::vector<std::uint8_t> I2cBus::scan() const {
  std::vector<std::uint8_t> addresses;
  addresses.reserve(devices_.size());
  for (const auto& [address, device] : devices_) {
    addresses.push_back(address);
  }
  return addresses;  // std::map iterates sorted
}

void I2cBus::set_fault_hook(FaultHook hook) {
  if (hook && fault_hook_) {
    throw std::logic_error("I2cBus: a fault hook is already installed");
  }
  fault_hook_ = std::move(hook);
}

std::uint16_t I2cBus::read_word(std::uint8_t address, std::uint8_t reg) {
  const auto it = devices_.find(address);
  if (it == devices_.end()) {
    throw I2cError(util::format("I2C NACK at 0x%02x", address));
  }
  ++transactions_;
  if (fault_hook_ && fault_hook_(address, reg, /*is_write=*/false)) {
    throw I2cError(util::format("I2C NACK at 0x%02x (injected, reg 0x%02x)",
                                address, reg));
  }
  return it->second->read_word(reg);
}

void I2cBus::write_word(std::uint8_t address, std::uint8_t reg,
                        std::uint16_t value) {
  const auto it = devices_.find(address);
  if (it == devices_.end()) {
    throw I2cError(util::format("I2C NACK at 0x%02x", address));
  }
  ++transactions_;
  if (fault_hook_ && fault_hook_(address, reg, /*is_write=*/true)) {
    throw I2cError(util::format("I2C NACK at 0x%02x (injected, reg 0x%02x)",
                                address, reg));
  }
  it->second->write_word(reg, value);
}

Ina226I2cAdapter::Ina226I2cAdapter(Ina226& device,
                                   std::function<void()> pre_access)
    : device_(device), pre_access_(std::move(pre_access)) {}

std::uint16_t Ina226I2cAdapter::read_word(std::uint8_t reg) {
  if (pre_access_) pre_access_();
  return device_.read_register(static_cast<Ina226Register>(reg));
}

void Ina226I2cAdapter::write_word(std::uint8_t reg, std::uint16_t value) {
  if (pre_access_) pre_access_();
  device_.write_register(static_cast<Ina226Register>(reg), value);
}

}  // namespace amperebleed::sensors
