#include "amperebleed/persist/state.hpp"

#include <utility>

namespace amperebleed::persist {

namespace {

constexpr std::uint32_t kTagMeta = section_tag("META");
constexpr std::uint32_t kTagTenant = section_tag("TENT");
constexpr std::uint32_t kTagBody = section_tag("BODY");

void encode_sketch(Encoder& enc, const obs::StreamingSketch& sketch) {
  const obs::StreamingSketch::Raw raw = sketch.raw();
  enc.f64(raw.lo);
  enc.f64(raw.hi);
  enc.u64_vec(raw.counts);
  enc.u64(raw.n);
  enc.f64(raw.sum);
  enc.f64(raw.sum_sq);
  enc.f64(raw.min);
  enc.f64(raw.max);
}

obs::StreamingSketch decode_sketch(Decoder& dec) {
  obs::StreamingSketch::Raw raw;
  raw.lo = dec.f64();
  raw.hi = dec.f64();
  raw.counts = dec.u64_vec();
  raw.n = dec.u64();
  raw.sum = dec.f64();
  raw.sum_sq = dec.f64();
  raw.min = dec.f64();
  raw.max = dec.f64();
  if (raw.counts.empty()) dec.fail("sketch with zero bins");
  return obs::StreamingSketch::from_raw(std::move(raw));
}

void encode_tenant(Encoder& enc, const TenantState& tenant) {
  enc.str(tenant.name);
  enc.u8(tenant.state);
  enc.u64(tenant.enrolled);
  enc.u64(tenant.classified);
  enc.u64(tenant.feature_count);
  enc.u64(tenant.class_names.size());
  for (const std::string& name : tenant.class_names) enc.str(name);
  encode_dataset(enc, tenant.data);
  enc.u8(tenant.trained ? 1 : 0);
  if (tenant.trained) encode_arena(enc, tenant.arena);
  enc.u8(tenant.has_profile ? 1 : 0);
  if (tenant.has_profile) encode_profile(enc, tenant.profile);
}

TenantState decode_tenant(Decoder& dec) {
  TenantState tenant;
  tenant.name = dec.str();
  tenant.state = dec.u8();
  if (tenant.state > 2) {
    dec.fail("invalid tenant state " + std::to_string(tenant.state));
  }
  tenant.enrolled = dec.u64();
  tenant.classified = dec.u64();
  tenant.feature_count = dec.u64();
  const std::uint64_t classes = dec.u64();
  if (classes > dec.remaining()) dec.fail("implausible class count");
  tenant.class_names.reserve(classes);
  for (std::uint64_t c = 0; c < classes; ++c) {
    tenant.class_names.push_back(dec.str());
  }
  tenant.data = decode_dataset(dec);
  if (tenant.data.feature_count() != tenant.feature_count &&
      !tenant.data.empty()) {
    dec.fail("dataset width disagrees with tenant feature width");
  }
  tenant.trained = dec.u8() != 0;
  if (tenant.trained) {
    tenant.arena = decode_arena(dec);
    if (tenant.arena.empty()) dec.fail("trained tenant with empty forest");
  }
  tenant.has_profile = dec.u8() != 0;
  if (tenant.has_profile) tenant.profile = decode_profile(dec);
  return tenant;
}

}  // namespace

// ---------------------------------------------------------------------------
// ForestArena.

void encode_arena(Encoder& enc, const ml::ForestArena& arena) {
  enc.i32(arena.class_count);
  enc.i32_vec(arena.feature);
  enc.f64_vec(arena.threshold);
  enc.i32_vec(arena.right);
  enc.f64_vec(arena.dists);
  enc.i32_vec(arena.roots);
}

ml::ForestArena decode_arena(Decoder& dec) {
  ml::ForestArena arena;
  arena.class_count = dec.i32();
  arena.feature = dec.i32_vec();
  arena.threshold = dec.f64_vec();
  arena.right = dec.i32_vec();
  arena.dists = dec.f64_vec();
  arena.roots = dec.i32_vec();

  // Structural validation: everything leaf_dist() dereferences must be in
  // bounds, and child links must strictly increase so traversal terminates.
  const std::size_t nodes = arena.feature.size();
  if (arena.threshold.size() != nodes || arena.right.size() != nodes) {
    dec.fail("arena arrays disagree on node count");
  }
  if (nodes == 0) {
    if (!arena.roots.empty() || !arena.dists.empty()) {
      dec.fail("empty arena with roots or leaf distributions");
    }
    return arena;
  }
  if (arena.class_count <= 0) {
    dec.fail("arena class_count " + std::to_string(arena.class_count));
  }
  const std::size_t classes = static_cast<std::size_t>(arena.class_count);
  if (arena.dists.size() % classes != 0 || arena.dists.empty()) {
    dec.fail("leaf distribution array not a multiple of class_count");
  }
  if (arena.roots.empty()) dec.fail("arena with nodes but no trees");
  for (const std::int32_t root : arena.roots) {
    if (root < 0 || static_cast<std::size_t>(root) >= nodes) {
      dec.fail("tree root out of bounds");
    }
  }
  for (std::size_t i = 0; i < nodes; ++i) {
    if (arena.feature[i] == ml::ForestArena::kLeaf) {
      const std::int32_t off = arena.right[i];
      if (off < 0 ||
          static_cast<std::size_t>(off) + classes > arena.dists.size()) {
        dec.fail("leaf distribution offset out of bounds at node " +
                 std::to_string(i));
      }
    } else if (arena.feature[i] < 0) {
      dec.fail("invalid split feature at node " + std::to_string(i));
    } else {
      // Internal node: left child is i + 1 (must exist), right child must
      // point strictly past the node so every walk makes forward progress.
      const std::int32_t right = arena.right[i];
      if (i + 1 >= nodes || right <= static_cast<std::int32_t>(i) ||
          static_cast<std::size_t>(right) >= nodes) {
        dec.fail("child link out of bounds at node " + std::to_string(i));
      }
    }
  }
  return arena;
}

// ---------------------------------------------------------------------------
// Dataset.

void encode_dataset(Encoder& enc, const ml::Dataset& data) {
  enc.u64(data.feature_count());
  enc.i32_vec(data.labels());
  enc.u64(data.size() * data.feature_count());
  for (std::size_t r = 0; r < data.size(); ++r) {
    for (const double v : data.row(r)) enc.f64(v);
  }
}

ml::Dataset decode_dataset(Decoder& dec) {
  const std::uint64_t features = dec.u64();
  const std::vector<std::int32_t> labels = dec.i32_vec();
  const std::vector<double> values = dec.f64_vec();
  // Overflow-safe shape check: division instead of rows * features.
  const bool shape_ok =
      labels.empty() ? values.empty()
                     : features != 0 && values.size() % labels.size() == 0 &&
                           values.size() / labels.size() == features;
  if (!shape_ok) {
    dec.fail("dataset value array disagrees with rows x features");
  }
  for (const std::int32_t label : labels) {
    if (label < 0) dec.fail("negative class label");
  }
  ml::Dataset data(features);
  data.reserve(labels.size());
  for (std::size_t r = 0; r < labels.size(); ++r) {
    data.add(std::span<const double>(values.data() + r * features, features),
             labels[r]);
  }
  return data;
}

// ---------------------------------------------------------------------------
// ReferenceProfile.

void encode_profile(Encoder& enc, const obs::ReferenceProfile& profile) {
  enc.u64(profile.rows);
  enc.u64_vec(profile.class_counts);
  enc.u64(profile.dims());
  for (std::size_t d = 0; d < profile.dims(); ++d) {
    encode_sketch(enc, profile.feature_sketches[d]);
    enc.f64_vec(profile.feature_samples[d]);
  }
}

obs::ReferenceProfile decode_profile(Decoder& dec) {
  obs::ReferenceProfile profile;
  profile.rows = dec.u64();
  profile.class_counts = dec.u64_vec();
  const std::uint64_t dims = dec.u64();
  if (dims > dec.remaining()) dec.fail("implausible profile dimension count");
  profile.feature_sketches.reserve(dims);
  profile.feature_samples.reserve(dims);
  for (std::uint64_t d = 0; d < dims; ++d) {
    profile.feature_sketches.push_back(decode_sketch(dec));
    profile.feature_samples.push_back(dec.f64_vec());
  }
  return profile;
}

// ---------------------------------------------------------------------------
// Whole files.

std::string encode_snapshot(const ServiceSnapshot& snap) {
  FileWriter file(kFileMagic, kFormatVersion, kKindSnapshot);
  Encoder meta;
  meta.u64(snap.last_seq);
  meta.u64(snap.tenants.size());
  file.section(kTagMeta, meta.buffer());
  for (const TenantState& tenant : snap.tenants) {
    Encoder body;
    encode_tenant(body, tenant);
    file.section(kTagTenant, body.buffer());
  }
  return file.take();
}

ServiceSnapshot decode_snapshot(std::string_view bytes,
                                const std::string& context) {
  FileReader file(bytes, kFileMagic, kFormatVersion, kKindSnapshot, context);
  ServiceSnapshot snap;
  {
    Decoder meta(file.section(kTagMeta), context + "/META");
    snap.last_seq = meta.u64();
    const std::uint64_t tenants = meta.u64();
    meta.expect_end();
    if (tenants > bytes.size()) {
      meta.fail("implausible tenant count " + std::to_string(tenants));
    }
    snap.tenants.reserve(tenants);
    for (std::uint64_t t = 0; t < tenants; ++t) {
      Decoder body(file.section(kTagTenant),
                   context + "/TENT[" + std::to_string(t) + "]");
      snap.tenants.push_back(decode_tenant(body));
      body.expect_end();
    }
  }
  file.expect_end();
  return snap;
}

std::string encode_forest_file(const ml::ForestArena& arena) {
  FileWriter file(kFileMagic, kFormatVersion, kKindForest);
  Encoder body;
  encode_arena(body, arena);
  file.section(kTagBody, body.buffer());
  return file.take();
}

ml::ForestArena decode_forest_file(std::string_view bytes,
                                   const std::string& context) {
  FileReader file(bytes, kFileMagic, kFormatVersion, kKindForest, context);
  Decoder body(file.section(kTagBody), context + "/BODY");
  ml::ForestArena arena = decode_arena(body);
  body.expect_end();
  file.expect_end();
  return arena;
}

std::string encode_dataset_file(const ml::Dataset& data) {
  FileWriter file(kFileMagic, kFormatVersion, kKindDataset);
  Encoder body;
  encode_dataset(body, data);
  file.section(kTagBody, body.buffer());
  return file.take();
}

ml::Dataset decode_dataset_file(std::string_view bytes,
                                const std::string& context) {
  FileReader file(bytes, kFileMagic, kFormatVersion, kKindDataset, context);
  Decoder body(file.section(kTagBody), context + "/BODY");
  ml::Dataset data = decode_dataset(body);
  body.expect_end();
  file.expect_end();
  return data;
}

std::string encode_profile_file(const obs::ReferenceProfile& profile) {
  FileWriter file(kFileMagic, kFormatVersion, kKindProfile);
  Encoder body;
  encode_profile(body, profile);
  file.section(kTagBody, body.buffer());
  return file.take();
}

obs::ReferenceProfile decode_profile_file(std::string_view bytes,
                                          const std::string& context) {
  FileReader file(bytes, kFileMagic, kFormatVersion, kKindProfile, context);
  Decoder body(file.section(kTagBody), context + "/BODY");
  obs::ReferenceProfile profile = decode_profile(body);
  body.expect_end();
  file.expect_end();
  return profile;
}

}  // namespace amperebleed::persist
