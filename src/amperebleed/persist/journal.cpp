#include "amperebleed/persist/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "amperebleed/faults/faults.hpp"
#include "amperebleed/persist/state.hpp"
#include "amperebleed/power/rails.hpp"

namespace amperebleed::persist {

namespace {

constexpr std::size_t kFrameBytes = 8;  // payload_len u32 | payload_crc u32

[[noreturn]] void io_fail(const std::string& what, const std::string& path) {
  throw IoError("journal: " + what + " '" + path + "': " +
                std::strerror(errno));
}

std::string frame(std::string_view payload) {
  Encoder enc;
  enc.u32(static_cast<std::uint32_t>(payload.size()));
  enc.u32(crc32(payload));
  enc.bytes(payload);
  return enc.take();
}

std::string journal_header() {
  Encoder enc;
  enc.u32(kFileMagic);
  enc.u16(kFormatVersion);
  enc.u16(kKindJournal);
  return enc.take();
}

}  // namespace

std::string_view journal_op_name(JournalOp op) {
  switch (op) {
    case JournalOp::Enroll: return "enroll";
    case JournalOp::Train: return "train";
    case JournalOp::Retire: return "retire";
  }
  return "unknown";
}

void record_set_trace(JournalRecord& record, const core::Trace& trace) {
  record.has_trace = true;
  record.rail = static_cast<std::uint8_t>(trace.channel().rail);
  record.quantity = static_cast<std::uint8_t>(trace.channel().quantity);
  record.start_ns = trace.start().ns;
  record.period_ns = trace.period().ns;
  record.values.assign(trace.values().begin(), trace.values().end());
  record.validity.assign(trace.validity().begin(), trace.validity().end());
}

core::Trace trace_from_record(const JournalRecord& record) {
  if (!record.has_trace) {
    throw std::logic_error("journal: trace_from_record on trace-less record");
  }
  core::Channel channel;
  channel.rail = static_cast<power::Rail>(record.rail);
  channel.quantity = static_cast<core::Quantity>(record.quantity);
  core::Trace trace(channel, sim::TimeNs{record.start_ns},
                    sim::TimeNs{record.period_ns});
  trace.reserve(record.values.size());
  for (std::size_t i = 0; i < record.values.size(); ++i) {
    // push_gap re-creates the 0.0 placeholder + invalid mark, so the
    // reconstructed trace is bit-identical to the enrolled one.
    if (record.validity.empty() || record.validity[i] != 0) {
      trace.push(record.values[i]);
    } else {
      trace.push_gap();
    }
  }
  return trace;
}

std::string encode_record(const JournalRecord& record) {
  Encoder enc;
  enc.u64(record.seq);
  enc.u8(static_cast<std::uint8_t>(record.op));
  enc.str(record.tenant);
  enc.str(record.label);
  enc.u8(record.has_trace ? 1 : 0);
  if (record.has_trace) {
    enc.u8(record.rail);
    enc.u8(record.quantity);
    enc.i64(record.start_ns);
    enc.i64(record.period_ns);
    enc.f64_vec(record.values);
    enc.u8_vec(record.validity);
  }
  return enc.take();
}

JournalRecord decode_record(std::string_view payload,
                            const std::string& context) {
  Decoder dec(payload, context);
  JournalRecord record;
  record.seq = dec.u64();
  const std::uint8_t op = dec.u8();
  if (op > 2) dec.fail("invalid journal op " + std::to_string(op));
  record.op = static_cast<JournalOp>(op);
  record.tenant = dec.str();
  record.label = dec.str();
  record.has_trace = dec.u8() != 0;
  if (record.has_trace) {
    record.rail = dec.u8();
    if (record.rail >= power::kRailCount) {
      dec.fail("invalid rail " + std::to_string(record.rail));
    }
    record.quantity = dec.u8();
    if (record.quantity > 2) {
      dec.fail("invalid quantity " + std::to_string(record.quantity));
    }
    record.start_ns = dec.i64();
    record.period_ns = dec.i64();
    record.values = dec.f64_vec();
    record.validity = dec.u8_vec();
    if (!record.validity.empty() &&
        record.validity.size() != record.values.size()) {
      dec.fail("validity mask length disagrees with sample count");
    }
  }
  dec.expect_end();
  return record;
}

JournalScan scan_journal(std::string_view bytes, const std::string& context) {
  JournalScan scan;

  // Header: anything short or mismatched discards the whole file.
  if (bytes.size() < kJournalHeaderBytes) {
    scan.discarded_bytes = bytes.size();
    scan.discarded_records = bytes.empty() ? 0 : 1;
    return scan;
  }
  {
    Decoder head(bytes.substr(0, kJournalHeaderBytes), context + "/header");
    const std::uint32_t magic = head.u32();
    const std::uint16_t version = head.u16();
    const std::uint16_t kind = head.u16();
    if (magic != kFileMagic || version != kFormatVersion ||
        kind != kKindJournal) {
      scan.discarded_bytes = bytes.size();
      scan.discarded_records = 1;
      return scan;
    }
  }
  scan.header_ok = true;
  scan.valid_bytes = kJournalHeaderBytes;

  // Phase 1: the longest valid prefix. A frame is valid when the length is
  // plausible, the payload is fully present, the CRC matches, the payload
  // decodes, and its seq continues the previous record's.
  std::size_t pos = kJournalHeaderBytes;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < kFrameBytes) break;  // torn frame header
    Decoder head(bytes.substr(pos, kFrameBytes), context + "/frame");
    const std::uint32_t len = head.u32();
    const std::uint32_t crc = head.u32();
    if (len > kMaxRecordBytes || bytes.size() - pos - kFrameBytes < len) {
      break;  // implausible length or torn payload
    }
    const std::string_view payload = bytes.substr(pos + kFrameBytes, len);
    if (crc32(payload) != crc) break;
    JournalRecord record;
    try {
      record = decode_record(
          payload, context + "/record[" +
                       std::to_string(scan.records.size()) + "]");
    } catch (const DecodeError&) {
      break;  // CRC-valid but structurally bad: end of trusted prefix
    }
    if (!scan.records.empty() &&
        record.seq != scan.records.back().seq + 1) {
      break;  // sequence break: a record was lost or reordered
    }
    scan.records.push_back(std::move(record));
    pos += kFrameBytes + len;
    scan.valid_bytes = pos;
  }
  scan.recovered_records = scan.records.size();

  // Phase 2: count what the prefix break orphaned. Frame-walk only — the
  // contents are untrusted, we just want honest discard accounting. The
  // first un-frameable stretch (torn tail or garbage) counts as one record
  // and ends the walk.
  scan.discarded_bytes = bytes.size() - scan.valid_bytes;
  std::size_t tail = scan.valid_bytes;
  while (tail < bytes.size()) {
    if (bytes.size() - tail < kFrameBytes) {
      ++scan.discarded_records;
      break;
    }
    Decoder head(bytes.substr(tail, kFrameBytes), context + "/frame");
    const std::uint32_t len = head.u32();
    (void)head.u32();
    if (len > kMaxRecordBytes || bytes.size() - tail - kFrameBytes < len) {
      ++scan.discarded_records;
      break;
    }
    ++scan.discarded_records;
    tail += kFrameBytes + len;
  }
  return scan;
}

// ---------------------------------------------------------------------------
// JournalWriter.

JournalWriter::JournalWriter(std::string path, std::uint64_t valid_bytes)
    : path_(std::move(path)) {
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) io_fail("open", path_);
  const bool fresh = valid_bytes < kJournalHeaderBytes;
  const off_t keep =
      fresh ? 0 : static_cast<off_t>(valid_bytes);
  if (::ftruncate(fd_, keep) != 0) io_fail("truncate", path_);
  if (::lseek(fd_, keep, SEEK_SET) < 0) io_fail("seek", path_);
  if (fresh) write_all(journal_header());
  if (::fsync(fd_) != 0) io_fail("fsync", path_);
  end_ = fresh ? kJournalHeaderBytes : valid_bytes;
}

JournalWriter::~JournalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

void JournalWriter::write_all(std::string_view bytes) {
  std::size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::write(fd_, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      io_fail("write", path_);
    }
    done += static_cast<std::size_t>(n);
  }
}

void JournalWriter::append(const JournalRecord& record) {
  if (poisoned_) {
    throw IoError("journal: writer disabled after failed rollback on '" +
                  path_ + "'");
  }
  if (!faults::storage_io_ok("journal.append")) {
    throw IoError("journal: injected IO failure on append to '" + path_ +
                  "'");
  }
  const std::string payload = encode_record(record);
  const std::string framed = frame(payload);
  // Write the frame in two halves so an armed crash between them leaves a
  // genuinely torn record on disk — the artifact recovery must tolerate.
  //
  // An IO FAILURE is different from a crash: the service stays up, answers
  // storage-unavailable and does NOT apply the op — so the frame bytes must
  // not stay behind either. Without the rollback a later acknowledged
  // append lands past the orphan bytes, where the prefix scan (seq break)
  // discards it on recovery: an acked record silently vanishes while the
  // orphan — never applied — replays. SimulatedCrash deliberately bypasses
  // the catch (it does not derive from IoError): a dead process cannot
  // clean up.
  const std::size_t half = framed.size() / 2;
  try {
    write_all(std::string_view(framed).substr(0, half));
    faults::storage_point("journal.append.partial");
    write_all(std::string_view(framed).substr(half));
    faults::storage_point("journal.append.written");
    if (!faults::storage_io_ok("journal.append.fsync")) {
      throw IoError("journal: injected IO failure on fsync of '" + path_ +
                    "'");
    }
    if (::fsync(fd_) != 0) io_fail("fsync", path_);
  } catch (const IoError&) {
    rollback();
    throw;
  }
  end_ += framed.size();
  faults::storage_point("journal.append.synced");
}

void JournalWriter::rollback() {
  if (::ftruncate(fd_, static_cast<off_t>(end_)) != 0 ||
      ::lseek(fd_, static_cast<off_t>(end_), SEEK_SET) < 0 ||
      ::fsync(fd_) != 0) {
    poisoned_ = true;
  }
}

void JournalWriter::reset() {
  if (poisoned_) {
    throw IoError("journal: writer disabled after failed rollback on '" +
                  path_ + "'");
  }
  if (!faults::storage_io_ok("journal.reset")) {
    throw IoError("journal: injected IO failure on reset of '" + path_ + "'");
  }
  if (::ftruncate(fd_, static_cast<off_t>(kJournalHeaderBytes)) != 0) {
    io_fail("truncate", path_);  // nothing changed; the writer stays usable
  }
  end_ = kJournalHeaderBytes;
  if (::lseek(fd_, static_cast<off_t>(kJournalHeaderBytes), SEEK_SET) < 0) {
    poisoned_ = true;  // file position unknown relative to end_
    io_fail("seek", path_);
  }
  if (::fsync(fd_) != 0) {
    poisoned_ = true;  // dirty-page state undefined after a failed fsync
    io_fail("fsync", path_);
  }
  faults::storage_point("journal.reset.synced");
}

}  // namespace amperebleed::persist
