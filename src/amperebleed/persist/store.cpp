#include "amperebleed/persist/store.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "amperebleed/faults/faults.hpp"
#include "amperebleed/util/fs.hpp"

namespace amperebleed::persist {

namespace {

constexpr std::string_view kJournalName = "journal.bin";
constexpr std::string_view kSnapshotPrefix = "snapshot-";
constexpr std::string_view kSnapshotSuffix = ".bin";
constexpr std::string_view kTmpSuffix = ".tmp";

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

/// snapshot-<seq>.bin -> seq; nullopt for anything else.
std::optional<std::uint64_t> snapshot_seq_of(std::string_view name) {
  if (name.size() <= kSnapshotPrefix.size() + kSnapshotSuffix.size() ||
      name.substr(0, kSnapshotPrefix.size()) != kSnapshotPrefix ||
      !ends_with(name, kSnapshotSuffix)) {
    return std::nullopt;
  }
  const std::string_view digits = name.substr(
      kSnapshotPrefix.size(),
      name.size() - kSnapshotPrefix.size() - kSnapshotSuffix.size());
  std::uint64_t seq = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    const auto digit = static_cast<std::uint64_t>(c - '0');
    if (seq > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
      // Would wrap u64 — a forged/garbage name that must never shadow the
      // genuine newest snapshot.
      return std::nullopt;
    }
    seq = seq * 10 + digit;
  }
  return seq;
}

std::string join(const std::string& dir, std::string_view name) {
  std::string path = dir;
  if (!path.empty() && path.back() != '/') path.push_back('/');
  path.append(name);
  return path;
}

}  // namespace

TenantStore::TenantStore(Config config) : config_(std::move(config)) {
  if (config_.dir.empty()) {
    throw std::logic_error("TenantStore: empty directory");
  }
  if (config_.snapshot_every == 0) config_.snapshot_every = 1;
  util::make_dirs(config_.dir);
  recover();
}

TenantStore::~TenantStore() = default;

void TenantStore::close() { journal_.reset(); }

void TenantStore::recover() {
  // Interrupted atomic writes leave *.tmp files; they were never renamed
  // into place, so they carry no durable state — delete them.
  std::vector<std::pair<std::uint64_t, std::string>> snapshots;
  for (const std::string& name : util::list_dir(config_.dir)) {
    if (ends_with(name, kTmpSuffix)) {
      util::remove_file(join(config_.dir, name));
      ++recovery_.tmp_files_removed;
      continue;
    }
    if (const auto seq = snapshot_seq_of(name)) {
      snapshots.emplace_back(*seq, name);
    }
  }

  // Newest snapshot that decodes wins; corrupt ones are counted, not fatal.
  std::sort(snapshots.begin(), snapshots.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (const auto& [seq, name] : snapshots) {
    if (snapshot_.has_value()) break;
    const std::string path = join(config_.dir, name);
    try {
      snapshot_ = decode_snapshot(util::read_file(path), path);
    } catch (const DecodeError&) {
      ++recovery_.snapshots_discarded;
    } catch (const std::runtime_error&) {  // unreadable file
      ++recovery_.snapshots_discarded;
    }
  }
  const std::uint64_t snap_seq =
      snapshot_.has_value() ? snapshot_->last_seq : 0;
  recovery_.snapshot_seq = snap_seq;

  // Journal: longest valid prefix, then drop what the snapshot already
  // absorbed. The on-disk tail past the valid prefix is truncated by the
  // writer below so it can never poison later appends.
  const std::string journal_path = join(config_.dir, kJournalName);
  JournalScan scan;
  if (util::path_exists(journal_path)) {
    scan = scan_journal(util::read_file(journal_path), journal_path);
  }
  recovery_.discarded_records = scan.discarded_records;
  recovery_.discarded_bytes = scan.discarded_bytes;
  std::uint64_t truncate_to = scan.valid_bytes;
  for (JournalRecord& record : scan.records) {
    if (record.seq <= snap_seq) {
      ++recovery_.skipped_records;
    } else {
      tail_.push_back(std::move(record));
    }
  }
  if (!tail_.empty() && tail_.front().seq != snap_seq + 1) {
    // The journal's records do not connect to the recovered snapshot (e.g.
    // the newest snapshot was corrupt and we fell back to an older one).
    // Applying a non-contiguous suffix would corrupt state: discard it.
    recovery_.discarded_records += tail_.size();
    recovery_.discarded_bytes += truncate_to >= kJournalHeaderBytes
                                     ? truncate_to - kJournalHeaderBytes
                                     : 0;
    tail_.clear();
    truncate_to = 0;  // rewrite a fresh header
  }
  recovery_.recovered_records = tail_.size();
  last_seq_ = tail_.empty() ? snap_seq : tail_.back().seq;
  records_since_snapshot_ = tail_.size();
  recovery_.recovered = snapshot_.has_value() || !tail_.empty();

  journal_ = std::make_unique<JournalWriter>(journal_path, truncate_to);
  // Recovery created the journal and unlinked *.tmp leftovers: sync the
  // directory so its own cleanup survives a power cut too.
  util::fsync_dir(config_.dir);
}

void TenantStore::append(const JournalRecord& record) {
  if (record.seq != last_seq_ + 1) {
    throw std::logic_error("TenantStore: append out of sequence");
  }
  if (!journal_) {
    throw std::logic_error("TenantStore: append after close");
  }
  journal_->append(record);
  ++last_seq_;
  ++records_since_snapshot_;
}

void TenantStore::write_snapshot(const ServiceSnapshot& snap) {
  if (!faults::storage_io_ok("snapshot.write")) {
    throw IoError("snapshot: injected IO failure in '" + config_.dir + "'");
  }
  const std::string name = std::string(kSnapshotPrefix) +
                           std::to_string(snap.last_seq) +
                           std::string(kSnapshotSuffix);
  const std::string path = join(config_.dir, name);
  util::atomic_write_file(path, encode_snapshot(snap),
                          [](std::string_view phase) {
                            if (phase == "tmp-partial") {
                              faults::storage_point("snapshot.tmp_partial");
                            } else if (phase == "tmp-synced") {
                              faults::storage_point("snapshot.tmp_synced");
                            } else if (phase == "renamed") {
                              faults::storage_point("snapshot.renamed");
                            }
                          });
  // The snapshot is durable: every journalled record is absorbed, so the
  // journal resets and older snapshots become garbage. A crash anywhere in
  // here is safe — recovery prefers the newest valid snapshot and skips
  // journal records it already contains.
  journal_->reset();
  records_since_snapshot_ = 0;
  for (const std::string& other : util::list_dir(config_.dir)) {
    const auto seq = snapshot_seq_of(other);
    if (seq.has_value() && *seq != snap.last_seq) {
      util::remove_file(join(config_.dir, other));
    }
  }
  util::fsync_dir(config_.dir);  // make the unlinks durable
  faults::storage_point("snapshot.pruned");
}

}  // namespace amperebleed::persist
