#pragma once
// Durable tenant-state store (DESIGN.md §15): one directory holding
// seq-named snapshot files plus a write-ahead journal.
//
//   <dir>/journal.bin          append-only WAL (persist/journal.hpp)
//   <dir>/snapshot-<seq>.bin   atomic-rename checkpoints (persist/state.hpp)
//
// Construction IS recovery: scan for the highest-seq snapshot that decodes
// (corrupt ones are counted and skipped, never fatal), scan the journal for
// its longest valid prefix, keep only records past the snapshot, truncate
// the torn/corrupt journal tail, and delete stale *.tmp leftovers from
// interrupted snapshot writes. The caller replays `tail()` over the decoded
// snapshot and the service is back, bit-identical.
//
// Every write path crosses faults:: storage kill-points, so the crash
// harness can kill the process at each durable intermediate state and prove
// recovery from all of them.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "amperebleed/persist/journal.hpp"
#include "amperebleed/persist/state.hpp"

namespace amperebleed::persist {

/// What recovery found — surfaced verbatim in serve.storage.* metrics so
/// every journal record is accounted for (recovered + skipped + discarded).
struct RecoveryStats {
  bool recovered = false;          // a valid snapshot or journal tail existed
  std::uint64_t snapshot_seq = 0;  // last_seq of the loaded snapshot (0: none)
  std::uint64_t snapshots_discarded = 0;  // corrupt/unreadable snapshot files
  std::uint64_t recovered_records = 0;    // journal records replayed
  std::uint64_t skipped_records = 0;      // valid but already in the snapshot
  std::uint64_t discarded_records = 0;    // torn/corrupt journal records
  std::uint64_t discarded_bytes = 0;      // journal bytes truncated away
  std::uint64_t tmp_files_removed = 0;    // interrupted snapshot leftovers
};

class TenantStore {
 public:
  struct Config {
    std::string dir;
    /// Journal records between automatic snapshots.
    std::uint64_t snapshot_every = 64;
  };

  /// Opens (creating if needed) the directory and performs recovery.
  /// Throws IoError when the directory itself is unusable; corrupted
  /// CONTENT never throws — it is discarded and counted.
  explicit TenantStore(Config config);
  ~TenantStore();

  TenantStore(const TenantStore&) = delete;
  TenantStore& operator=(const TenantStore&) = delete;

  /// The snapshot recovery loaded, if any.
  [[nodiscard]] const std::optional<ServiceSnapshot>& snapshot() const {
    return snapshot_;
  }
  /// Journal records past the snapshot, in seq order — replay these.
  [[nodiscard]] const std::vector<JournalRecord>& tail() const {
    return tail_;
  }
  [[nodiscard]] const RecoveryStats& recovery() const { return recovery_; }

  /// Sequence number of the last durable record (snapshot or journal).
  [[nodiscard]] std::uint64_t last_seq() const { return last_seq_; }
  /// Journal records appended since the last snapshot.
  [[nodiscard]] std::uint64_t records_since_snapshot() const {
    return records_since_snapshot_;
  }
  [[nodiscard]] std::uint64_t snapshot_every() const {
    return config_.snapshot_every;
  }
  [[nodiscard]] const std::string& dir() const { return config_.dir; }

  /// Append one record (record.seq must be last_seq() + 1). Throws IoError
  /// on medium failure — the caller must NOT apply the transition then.
  void append(const JournalRecord& record);

  /// Write `snap` as snapshot-<last_seq>.bin via atomic rename, then reset
  /// the journal and prune older snapshots. Throws IoError.
  void write_snapshot(const ServiceSnapshot& snap);

  /// Release the journal fd so the tail can be replayed/inspected by a new
  /// TenantStore on the same directory (crash-harness convenience).
  void close();

 private:
  void recover();

  Config config_;
  std::optional<ServiceSnapshot> snapshot_;
  std::vector<JournalRecord> tail_;
  RecoveryStats recovery_;
  std::uint64_t last_seq_ = 0;
  std::uint64_t records_since_snapshot_ = 0;
  std::unique_ptr<JournalWriter> journal_;
};

}  // namespace amperebleed::persist
