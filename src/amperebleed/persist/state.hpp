#pragma once
// Typed binary codecs for the service's durable state (DESIGN.md §15):
// ForestArena, enrollment Dataset, obs::ReferenceProfile, and the composite
// per-tenant / whole-service snapshot. All formats are versioned, CRC-framed
// little-endian files built on persist/codec.hpp; decoding validates not
// just framing but structure (node indices in bounds, strictly increasing
// child links, matching array lengths), so even a CRC-valid but nonsensical
// file yields a DecodeError rather than an out-of-bounds arena walk.
//
// The forest/dataset codec here is the foundation the out-of-core columnar
// trace store (ROADMAP open item 2) is slated to reuse.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "amperebleed/ml/dataset.hpp"
#include "amperebleed/ml/forest_arena.hpp"
#include "amperebleed/obs/drift.hpp"
#include "amperebleed/persist/codec.hpp"

namespace amperebleed::persist {

/// Shared file magic ("ABPS" = AmpereBleed Persisted State).
inline constexpr std::uint32_t kFileMagic = section_tag("ABPS");
inline constexpr std::uint16_t kFormatVersion = 1;

/// Payload kinds (the u16 after the version in every file header).
inline constexpr std::uint16_t kKindSnapshot = 1;
inline constexpr std::uint16_t kKindForest = 2;
inline constexpr std::uint16_t kKindDataset = 3;
inline constexpr std::uint16_t kKindProfile = 4;

// --- Field-level codecs (compose into larger payloads) ---------------------

void encode_arena(Encoder& enc, const ml::ForestArena& arena);
/// Decodes and structurally validates; the returned arena is safe to walk.
/// The quantized threshold table is not serialized — callers rebuild it
/// (build_quantized() is a pure function of the exact thresholds).
[[nodiscard]] ml::ForestArena decode_arena(Decoder& dec);

void encode_dataset(Encoder& enc, const ml::Dataset& data);
[[nodiscard]] ml::Dataset decode_dataset(Decoder& dec);

void encode_profile(Encoder& enc, const obs::ReferenceProfile& profile);
[[nodiscard]] obs::ReferenceProfile decode_profile(Decoder& dec);

// --- Whole-file codecs ------------------------------------------------------

/// One tenant session as plain data, decoupled from serve:: so the codec
/// layer has no dependency on the service (serve depends on persist).
struct TenantState {
  std::string name;
  std::uint8_t state = 0;  // serve::TenantSession::State ordinal
  std::uint64_t enrolled = 0;
  std::uint64_t classified = 0;
  std::uint64_t feature_count = 0;
  std::vector<std::string> class_names;
  ml::Dataset data;
  bool trained = false;
  ml::ForestArena arena;  // fitted forest; empty unless trained
  bool has_profile = false;
  obs::ReferenceProfile profile;  // drift reference; valid when has_profile
};

/// Checkpoint of the whole service: every tenant in creation order, plus
/// the sequence number of the last journal record folded in. Recovery loads
/// this and replays only journal records with seq > last_seq.
struct ServiceSnapshot {
  std::uint64_t last_seq = 0;
  std::vector<TenantState> tenants;
};

[[nodiscard]] std::string encode_snapshot(const ServiceSnapshot& snap);
[[nodiscard]] ServiceSnapshot decode_snapshot(std::string_view bytes,
                                              const std::string& context);

/// Standalone forest file: save→load→predict_proba_many is bit-identical to
/// the in-memory arena (tests/persist/codec_test.cpp proves it).
[[nodiscard]] std::string encode_forest_file(const ml::ForestArena& arena);
[[nodiscard]] ml::ForestArena decode_forest_file(std::string_view bytes,
                                                 const std::string& context);

[[nodiscard]] std::string encode_dataset_file(const ml::Dataset& data);
[[nodiscard]] ml::Dataset decode_dataset_file(std::string_view bytes,
                                              const std::string& context);

[[nodiscard]] std::string encode_profile_file(
    const obs::ReferenceProfile& profile);
[[nodiscard]] obs::ReferenceProfile decode_profile_file(
    std::string_view bytes, const std::string& context);

}  // namespace amperebleed::persist
