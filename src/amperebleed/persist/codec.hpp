#pragma once
// Low-level binary codec for the durability layer (DESIGN.md §15): explicit
// little-endian byte assembly (host-endianness-independent), CRC32-guarded
// section framing, and bounds-checked decoding that turns EVERY malformed
// input — truncated at any byte, bit-flipped in any section, sections
// reordered — into a typed DecodeError instead of UB. The corruption-sweep
// property tests in tests/persist/corruption_test.cpp enforce exactly that
// contract under ASan/UBSan.
//
// File layout (all integers little-endian):
//
//   file    := magic u32 | version u16 | kind u16 | section*
//   section := tag u32 | payload_len u64 | payload_crc u32 | payload bytes
//
// Sections are strictly ordered: the decoder asks for tags in sequence and
// a mismatch (a reordered or foreign section) is a DecodeError. The CRC
// covers the payload bytes; CRC32 detects all single-bit and all <=32-bit
// burst errors, so the per-section flip sweep is deterministic, not
// probabilistic.

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace amperebleed::persist {

/// Malformed or corrupted persisted bytes. Always carries the decoding
/// context (which file/section, byte offset) in what().
class DecodeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The storage medium failed (open/write/fsync/rename). Distinct from
/// DecodeError so the service can map it to Degraded mode while corrupted
/// bytes map to discard-and-continue.
class IoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320), the same polynomial as
/// zlib's crc32. `seed` chains incremental computation.
[[nodiscard]] std::uint32_t crc32(std::string_view bytes,
                                  std::uint32_t seed = 0);

/// Append-only little-endian byte builder.
class Encoder {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  /// IEEE-754 bit pattern — round-trips every double (NaNs included)
  /// exactly, which is what makes restored forests bit-identical.
  void f64(double v);
  /// u64 length prefix + raw bytes.
  void str(std::string_view s);
  void bytes(std::string_view s) { buf_.append(s.data(), s.size()); }

  // Length-prefixed homogeneous vectors.
  void u64_vec(std::span<const std::uint64_t> v);
  void i32_vec(std::span<const std::int32_t> v);
  void f64_vec(std::span<const double> v);
  void u8_vec(std::span<const std::uint8_t> v);

  [[nodiscard]] const std::string& buffer() const { return buf_; }
  [[nodiscard]] std::string take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

/// Bounds-checked little-endian reader over a borrowed buffer. Every
/// overrun throws DecodeError naming `context` and the byte offset.
class Decoder {
 public:
  Decoder(std::string_view data, std::string context)
      : data_(data), context_(std::move(context)) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  [[nodiscard]] double f64();
  [[nodiscard]] std::string str();
  /// Borrow `n` raw bytes (no copy; valid while the underlying buffer is).
  [[nodiscard]] std::string_view bytes(std::size_t n);

  [[nodiscard]] std::vector<std::uint64_t> u64_vec();
  [[nodiscard]] std::vector<std::int32_t> i32_vec();
  [[nodiscard]] std::vector<double> f64_vec();
  [[nodiscard]] std::vector<std::uint8_t> u8_vec();

  [[nodiscard]] std::size_t offset() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  /// Throws DecodeError unless the buffer is fully consumed (trailing
  /// garbage is corruption, not padding).
  void expect_end() const;

  [[noreturn]] void fail(const std::string& what) const;

 private:
  /// Length sanity bound for vector/string prefixes: a length that cannot
  /// fit in the remaining bytes is corruption, caught before allocation.
  void check_count(std::uint64_t count, std::size_t elem_size);

  std::string_view data_;
  std::string context_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Section framing.

/// FourCC tag, e.g. section_tag("META").
[[nodiscard]] constexpr std::uint32_t section_tag(const char (&name)[5]) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(name[0])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(name[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(name[2])) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(name[3])) << 24;
}

[[nodiscard]] std::string section_tag_name(std::uint32_t tag);

/// Writes the file header then CRC-framed sections.
class FileWriter {
 public:
  FileWriter(std::uint32_t magic, std::uint16_t version, std::uint16_t kind);
  /// Append one section (tag | len | crc32(payload) | payload).
  void section(std::uint32_t tag, std::string_view payload);
  [[nodiscard]] std::string take() { return enc_.take(); }

 private:
  Encoder enc_;
};

/// Validates the file header, then hands out sections strictly in the order
/// they were written. Any deviation — wrong magic/version/kind, wrong tag,
/// short payload, CRC mismatch, trailing bytes — is a DecodeError.
class FileReader {
 public:
  /// `context` names the file for error messages.
  FileReader(std::string_view data, std::uint32_t magic,
             std::uint16_t version, std::uint16_t kind, std::string context);

  /// The next section, which must carry `tag`. Returns the verified payload
  /// (borrowed from the input buffer).
  [[nodiscard]] std::string_view section(std::uint32_t tag);
  /// Throws unless all bytes are consumed.
  void expect_end() const { dec_.expect_end(); }

 private:
  Decoder dec_;
  std::string context_;
};

}  // namespace amperebleed::persist
