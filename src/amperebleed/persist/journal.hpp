#pragma once
// Write-ahead journal of tenant state transitions (DESIGN.md §15). The
// service appends a record BEFORE applying any enroll/train/retire, so a
// crash at any instant loses at most the in-flight transition — which the
// client never saw acknowledged.
//
// File layout (little-endian):
//
//   journal := header | record*
//   header  := magic u32 ("ABPS") | version u16 | kind u16 (journal)
//   record  := payload_len u32 | payload_crc u32 | payload bytes
//
// Reading never throws on corrupted content: scan_journal() returns the
// longest valid prefix (frames intact, CRCs match, sequence numbers
// strictly consecutive) plus exact accounting of what it discarded. A torn
// tail — the normal crash artifact — is one discarded record; a bit-flipped
// record mid-file ends the prefix there and counts every still-framed
// record after it. Recovery truncates the file back to the valid prefix
// before appending again, so discarded bytes never poison later appends.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "amperebleed/core/trace.hpp"
#include "amperebleed/persist/codec.hpp"

namespace amperebleed::persist {

inline constexpr std::uint16_t kKindJournal = 5;
/// Header size: magic + version + kind.
inline constexpr std::size_t kJournalHeaderBytes = 8;
/// Upper bound on one record's payload; larger length prefixes are treated
/// as corruption (keeps a flipped length bit from stalling the scan).
inline constexpr std::uint32_t kMaxRecordBytes = 1u << 28;

enum class JournalOp : std::uint8_t { Enroll = 0, Train = 1, Retire = 2 };

[[nodiscard]] std::string_view journal_op_name(JournalOp op);

/// One journalled state transition. Enroll carries the full trace (samples,
/// channel, timing, validity mask) and label, so replaying the record is
/// bit-identical to re-receiving the original request.
struct JournalRecord {
  std::uint64_t seq = 0;
  JournalOp op = JournalOp::Enroll;
  std::string tenant;
  std::string label;      // Enroll only
  bool has_trace = false;  // Enroll only; invalid requests may carry none
  std::uint8_t rail = 0;
  std::uint8_t quantity = 0;
  std::int64_t start_ns = 0;
  std::int64_t period_ns = 0;
  std::vector<double> values;
  std::vector<std::uint8_t> validity;  // empty = all valid
};

/// Copy a trace into the record's trace fields (sets has_trace).
void record_set_trace(JournalRecord& record, const core::Trace& trace);
/// Reconstruct the enrolled trace bit-for-bit (gaps included). Throws
/// std::logic_error when has_trace is false.
[[nodiscard]] core::Trace trace_from_record(const JournalRecord& record);

[[nodiscard]] std::string encode_record(const JournalRecord& record);
/// Throws DecodeError on malformed payloads.
[[nodiscard]] JournalRecord decode_record(std::string_view payload,
                                          const std::string& context);

/// Result of scanning a journal byte image.
struct JournalScan {
  /// The longest valid prefix, in order. Sequence numbers are strictly
  /// consecutive within it (the first record's seq is unconstrained — the
  /// journal is reset after every snapshot).
  std::vector<JournalRecord> records;
  /// Offset of the first byte past the valid prefix (>= header size when
  /// the header was valid). Recovery truncates the file to this.
  std::uint64_t valid_bytes = 0;
  std::uint64_t recovered_records = 0;  // == records.size()
  /// Records seen past the prefix: the corrupt record itself plus every
  /// still-framed record after it (which cannot be applied once the prefix
  /// broke), plus one for an unframeable torn tail.
  std::uint64_t discarded_records = 0;
  std::uint64_t discarded_bytes = 0;
  bool header_ok = false;  // false: no/garbage header, whole file discarded
};

/// Scan a journal byte image; never throws on corrupted content.
[[nodiscard]] JournalScan scan_journal(std::string_view bytes,
                                       const std::string& context);

/// Append-side file handle. All writes go through POSIX fds with fsync
/// after every record: a record is only acknowledged once durable.
class JournalWriter {
 public:
  /// Open `path` for appending at `valid_bytes` (from a prior scan),
  /// truncating any torn/corrupt tail beyond it. `valid_bytes` == 0 (or a
  /// missing file) writes a fresh header. Throws IoError.
  JournalWriter(std::string path, std::uint64_t valid_bytes);
  ~JournalWriter();

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Frame, write and fsync one record. Throws IoError on failure; crosses
  /// the journal.* kill-points at every durable intermediate state. A
  /// failed append never leaves frame bytes behind: the file is truncated
  /// back to the last durable frame boundary before the IoError surfaces,
  /// so a later acknowledged append can never land past orphan bytes the
  /// recovery scan would then discard. (A SimulatedCrash is different — the
  /// process is dead, the torn frame on disk IS the recovery fixture.)
  void append(const JournalRecord& record);

  /// Truncate back to the bare header (after a snapshot absorbed every
  /// record) and fsync. Throws IoError.
  void reset();

 private:
  void write_all(std::string_view bytes);
  /// Undo a failed append: truncate + seek back to the last durable frame
  /// boundary and fsync. When the rollback itself fails the writer poisons
  /// itself — every later append/reset throws — because acknowledging a
  /// record after unremovable orphan bytes would hand recovery a frame it
  /// must discard.
  void rollback();

  std::string path_;
  int fd_ = -1;
  std::uint64_t end_ = 0;  // offset one past the last durable frame
  bool poisoned_ = false;  // failed rollback: orphan bytes may remain
};

}  // namespace amperebleed::persist
