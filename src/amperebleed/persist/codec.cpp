#include "amperebleed/persist/codec.hpp"

#include <array>
#include <cstring>

namespace amperebleed::persist {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::string_view bytes, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (const char ch : bytes) {
    c = table[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

// ---------------------------------------------------------------------------
// Encoder.

void Encoder::u16(std::uint16_t v) {
  buf_.push_back(static_cast<char>(v & 0xFF));
  buf_.push_back(static_cast<char>((v >> 8) & 0xFF));
}

void Encoder::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void Encoder::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void Encoder::f64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  u64(bits);
}

void Encoder::str(std::string_view s) {
  u64(s.size());
  buf_.append(s.data(), s.size());
}

void Encoder::u64_vec(std::span<const std::uint64_t> v) {
  u64(v.size());
  for (const std::uint64_t x : v) u64(x);
}

void Encoder::i32_vec(std::span<const std::int32_t> v) {
  u64(v.size());
  for (const std::int32_t x : v) i32(x);
}

void Encoder::f64_vec(std::span<const double> v) {
  u64(v.size());
  for (const double x : v) f64(x);
}

void Encoder::u8_vec(std::span<const std::uint8_t> v) {
  u64(v.size());
  for (const std::uint8_t x : v) u8(x);
}

// ---------------------------------------------------------------------------
// Decoder.

void Decoder::fail(const std::string& what) const {
  throw DecodeError(context_ + ": " + what + " at offset " +
                    std::to_string(pos_));
}

std::uint8_t Decoder::u8() {
  if (remaining() < 1) fail("truncated (need 1 byte)");
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint16_t Decoder::u16() {
  if (remaining() < 2) fail("truncated (need 2 bytes)");
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i) {
    v = static_cast<std::uint16_t>(
        v | static_cast<std::uint16_t>(
                static_cast<unsigned char>(data_[pos_ + static_cast<std::size_t>(i)]))
                << (8 * i));
  }
  pos_ += 2;
  return v;
}

std::uint32_t Decoder::u32() {
  if (remaining() < 4) fail("truncated (need 4 bytes)");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(
             static_cast<unsigned char>(data_[pos_ + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t Decoder::u64() {
  if (remaining() < 8) fail("truncated (need 8 bytes)");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(data_[pos_ + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

double Decoder::f64() {
  const std::uint64_t bits = u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

void Decoder::check_count(std::uint64_t count, std::size_t elem_size) {
  // Any length prefix whose elements cannot fit in the remaining bytes is
  // corruption; rejecting it here keeps a flipped length bit from turning
  // into a multi-gigabyte allocation.
  if (elem_size == 0 || count > remaining() / elem_size) {
    fail("implausible element count " + std::to_string(count));
  }
}

std::string Decoder::str() {
  const std::uint64_t n = u64();
  check_count(n, 1);
  std::string out(data_.substr(pos_, n));
  pos_ += n;
  return out;
}

std::string_view Decoder::bytes(std::size_t n) {
  if (remaining() < n) {
    fail("truncated (need " + std::to_string(n) + " bytes)");
  }
  const std::string_view out = data_.substr(pos_, n);
  pos_ += n;
  return out;
}

std::vector<std::uint64_t> Decoder::u64_vec() {
  const std::uint64_t n = u64();
  check_count(n, 8);
  std::vector<std::uint64_t> out(n);
  for (auto& x : out) x = u64();
  return out;
}

std::vector<std::int32_t> Decoder::i32_vec() {
  const std::uint64_t n = u64();
  check_count(n, 4);
  std::vector<std::int32_t> out(n);
  for (auto& x : out) x = i32();
  return out;
}

std::vector<double> Decoder::f64_vec() {
  const std::uint64_t n = u64();
  check_count(n, 8);
  std::vector<double> out(n);
  for (auto& x : out) x = f64();
  return out;
}

std::vector<std::uint8_t> Decoder::u8_vec() {
  const std::uint64_t n = u64();
  check_count(n, 1);
  std::vector<std::uint8_t> out(n);
  for (auto& x : out) x = u8();
  return out;
}

void Decoder::expect_end() const {
  if (pos_ != data_.size()) {
    throw DecodeError(context_ + ": " + std::to_string(data_.size() - pos_) +
                      " trailing bytes at offset " + std::to_string(pos_));
  }
}

// ---------------------------------------------------------------------------
// Section framing.

std::string section_tag_name(std::uint32_t tag) {
  std::string name;
  for (int i = 0; i < 4; ++i) {
    const char c = static_cast<char>((tag >> (8 * i)) & 0xFF);
    name += (c >= 0x20 && c < 0x7F) ? c : '?';
  }
  return name;
}

FileWriter::FileWriter(std::uint32_t magic, std::uint16_t version,
                       std::uint16_t kind) {
  enc_.u32(magic);
  enc_.u16(version);
  enc_.u16(kind);
}

void FileWriter::section(std::uint32_t tag, std::string_view payload) {
  enc_.u32(tag);
  enc_.u64(payload.size());
  enc_.u32(crc32(payload));
  enc_.bytes(payload);
}

FileReader::FileReader(std::string_view data, std::uint32_t magic,
                       std::uint16_t version, std::uint16_t kind,
                       std::string context)
    : dec_(data, context), context_(std::move(context)) {
  if (dec_.u32() != magic) dec_.fail("bad magic");
  const std::uint16_t got_version = dec_.u16();
  if (got_version != version) {
    dec_.fail("unsupported format version " + std::to_string(got_version));
  }
  const std::uint16_t got_kind = dec_.u16();
  if (got_kind != kind) {
    dec_.fail("wrong payload kind " + std::to_string(got_kind));
  }
}

std::string_view FileReader::section(std::uint32_t tag) {
  const std::uint32_t got = dec_.u32();
  if (got != tag) {
    dec_.fail("expected section '" + section_tag_name(tag) + "', found '" +
              section_tag_name(got) + "'");
  }
  const std::uint64_t len = dec_.u64();
  const std::uint32_t expected_crc = dec_.u32();
  const std::string_view payload = dec_.bytes(len);
  if (crc32(payload) != expected_crc) {
    dec_.fail("CRC mismatch in section '" + section_tag_name(tag) + "'");
  }
  return payload;
}

}  // namespace amperebleed::persist
