#pragma once
// Least-squares linear regression. Fig 2 reports the slope of each sensor
// channel in LSBs per activity level (~40 for current, ~0.006 for voltage).

#include <span>

namespace amperebleed::stats {

/// y ~= slope * x + intercept
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;  // coefficient of determination
};

/// Ordinary least squares on equal-length series. Throws on length mismatch
/// or fewer than 2 points; slope is 0 for constant x.
LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys);

}  // namespace amperebleed::stats
