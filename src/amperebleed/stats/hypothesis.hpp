#pragma once
// Two-sample hypothesis tests used to back the separability claims with
// p-values: Welch's t-test (mean difference under unequal variances) and the
// two-sample Kolmogorov-Smirnov test (whole-distribution difference, which
// catches the quantization-shape effects a t-test misses).

#include <span>

namespace amperebleed::stats {

struct WelchResult {
  double t = 0.0;    // test statistic
  double dof = 0.0;  // Welch-Satterthwaite degrees of freedom
  double p_value = 1.0;  // two-sided
};

/// Welch's unequal-variance t-test. Throws if either sample has < 2 points.
/// Identical constant samples give t = 0, p = 1.
WelchResult welch_t_test(std::span<const double> a, std::span<const double> b);

struct KsResult {
  double d = 0.0;        // max ECDF distance
  double p_value = 1.0;  // asymptotic two-sided
};

/// Two-sample Kolmogorov-Smirnov test (asymptotic p-value; adequate for the
/// hundreds-to-thousands sample sizes used here). Throws on empty samples.
KsResult ks_test(std::span<const double> a, std::span<const double> b);

struct MannWhitneyResult {
  double u = 0.0;        // U statistic of sample `a`
  double z = 0.0;        // tie-corrected normal approximation (0 when df)
  double p_value = 1.0;  // two-sided
};

/// Two-sample Mann-Whitney U (Wilcoxon rank-sum) test: distribution-free
/// location shift, robust to the outliers wall-clock benchmark samples carry.
/// Uses midranks for ties, the tie-corrected normal approximation and a 0.5
/// continuity correction (fine for the n >= ~8 repetition counts the bench
/// harness records). Throws on empty samples; two all-identical samples give
/// p = 1.
MannWhitneyResult mann_whitney_u(std::span<const double> a,
                                 std::span<const double> b);

struct ChiSquareResult {
  double chi2 = 0.0;          // Pearson statistic over the merged buckets
  double dof = 0.0;           // merged buckets - 1
  double p_value = 1.0;       // upper tail, Q(dof/2, chi2/2)
  std::size_t buckets_used = 0;  // bucket count after small-count merging
};

/// Chi-square goodness-of-fit of observed counts against expected counts
/// (same length; `expected` may be unnormalized — it is rescaled to the
/// observed total). Adjacent buckets are merged left-to-right until every
/// merged bucket's expected count reaches `min_expected` (Cochran's rule;
/// a deficient tail folds into the last bucket), which keeps the chi-square
/// approximation honest for the sparse class-mix windows the drift monitor
/// feeds in. Fewer than 2 surviving buckets degenerates to chi2 = 0, p = 1.
/// Throws on length mismatch, empty input, any negative count, or a
/// nonpositive expected total.
ChiSquareResult chi_square_gof(std::span<const double> observed,
                               std::span<const double> expected,
                               double min_expected = 5.0);

/// Regularized incomplete beta function I_x(a, b) (Lentz continued
/// fraction); exposed because the t-test needs it and tests pin it down.
double incomplete_beta(double a, double b, double x);

/// Regularized upper incomplete gamma Q(a, x) (series for x < a + 1,
/// continued fraction otherwise). The chi-square survival function is
/// Q(dof/2, chi2/2); exposed so tests can pin it against known critical
/// values. Requires a > 0, x >= 0.
double regularized_gamma_q(double a, double x);

}  // namespace amperebleed::stats
