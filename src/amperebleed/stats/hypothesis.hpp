#pragma once
// Two-sample hypothesis tests used to back the separability claims with
// p-values: Welch's t-test (mean difference under unequal variances) and the
// two-sample Kolmogorov-Smirnov test (whole-distribution difference, which
// catches the quantization-shape effects a t-test misses).

#include <span>

namespace amperebleed::stats {

struct WelchResult {
  double t = 0.0;    // test statistic
  double dof = 0.0;  // Welch-Satterthwaite degrees of freedom
  double p_value = 1.0;  // two-sided
};

/// Welch's unequal-variance t-test. Throws if either sample has < 2 points.
/// Identical constant samples give t = 0, p = 1.
WelchResult welch_t_test(std::span<const double> a, std::span<const double> b);

struct KsResult {
  double d = 0.0;        // max ECDF distance
  double p_value = 1.0;  // asymptotic two-sided
};

/// Two-sample Kolmogorov-Smirnov test (asymptotic p-value; adequate for the
/// hundreds-to-thousands sample sizes used here). Throws on empty samples.
KsResult ks_test(std::span<const double> a, std::span<const double> b);

struct MannWhitneyResult {
  double u = 0.0;        // U statistic of sample `a`
  double z = 0.0;        // tie-corrected normal approximation (0 when df)
  double p_value = 1.0;  // two-sided
};

/// Two-sample Mann-Whitney U (Wilcoxon rank-sum) test: distribution-free
/// location shift, robust to the outliers wall-clock benchmark samples carry.
/// Uses midranks for ties, the tie-corrected normal approximation and a 0.5
/// continuity correction (fine for the n >= ~8 repetition counts the bench
/// harness records). Throws on empty samples; two all-identical samples give
/// p = 1.
MannWhitneyResult mann_whitney_u(std::span<const double> a,
                                 std::span<const double> b);

/// Regularized incomplete beta function I_x(a, b) (Lentz continued
/// fraction); exposed because the t-test needs it and tests pin it down.
double incomplete_beta(double a, double b, double x);

}  // namespace amperebleed::stats
