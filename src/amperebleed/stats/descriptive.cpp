#include "amperebleed/stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace amperebleed::stats {

Summary summarize(std::span<const double> xs) {
  Summary s;
  if (xs.empty()) return s;
  s.count = xs.size();
  s.min = xs[0];
  s.max = xs[0];
  double sum = 0.0;
  for (double x : xs) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(xs.size());
  double ss = 0.0;
  for (double x : xs) {
    const double d = x - s.mean;
    ss += d * d;
  }
  s.variance = ss / static_cast<double>(xs.size());
  s.stddev = std::sqrt(s.variance);
  return s;
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) { return summarize(xs).variance; }

double sample_variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const Summary s = summarize(xs);
  return s.variance * static_cast<double>(xs.size()) /
         static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return summarize(xs).stddev; }

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument("quantile: empty input");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q not in [0,1]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double mad(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("mad: empty input");
  const double m = median(xs);
  std::vector<double> dev;
  dev.reserve(xs.size());
  for (double x : xs) dev.push_back(std::abs(x - m));
  return median(dev);
}

double mean_abs_successive_diff(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 1; i < xs.size(); ++i) {
    sum += std::abs(xs[i] - xs[i - 1]);
  }
  return sum / static_cast<double>(xs.size() - 1);
}

}  // namespace amperebleed::stats
