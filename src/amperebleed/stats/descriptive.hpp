#pragma once
// Descriptive statistics over sample vectors. Used throughout the attack
// pipeline (trace summarization, Fig 2/Fig 4 analyses).

#include <cstddef>
#include <span>
#include <vector>

namespace amperebleed::stats {

/// One-pass summary of a sample set.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double variance = 0.0;  // population variance (1/N)
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Compute the full summary. Returns a zeroed Summary for empty input.
Summary summarize(std::span<const double> xs);

double mean(std::span<const double> xs);
/// Population variance (1/N). Returns 0 for fewer than 1 sample.
double variance(std::span<const double> xs);
/// Sample variance (1/(N-1)). Returns 0 for fewer than 2 samples.
double sample_variance(std::span<const double> xs);
double stddev(std::span<const double> xs);

/// Linear-interpolated quantile, q in [0,1]. Throws on empty input or q
/// outside [0,1]. Input need not be sorted (a sorted copy is made).
double quantile(std::span<const double> xs, double q);
double median(std::span<const double> xs);

/// Median absolute deviation (robust spread).
double mad(std::span<const double> xs);

/// Mean absolute successive difference — sensitivity of a series to
/// consecutive-level changes; this is the "variation" metric used for the
/// paper's 261x current-vs-RO comparison.
double mean_abs_successive_diff(std::span<const double> xs);

}  // namespace amperebleed::stats
