#pragma once
// Periodicity analysis for side-channel traces. The DPU runs inference in a
// tight loop, so its rail-current trace is periodic with the per-inference
// latency; the attacker can recover that latency from the autocorrelation
// of an unprivileged hwmon trace (used by the Fig 3 bench to annotate each
// model with its measured inference period).

#include <cstddef>
#include <span>
#include <vector>

namespace amperebleed::stats {

/// Normalized autocorrelation r(0..max_lag); r[0] == 1 for non-constant
/// input. Constant series return all-zero (no structure). max_lag is
/// clamped to len-1.
std::vector<double> autocorrelation(std::span<const double> xs,
                                    std::size_t max_lag);

/// Dominant period in samples: the lag of the highest autocorrelation local
/// maximum with r >= min_correlation, searching lags [2, max_lag]. Returns
/// 0 when no periodic structure clears the threshold.
std::size_t dominant_period(std::span<const double> xs, std::size_t max_lag,
                            double min_correlation = 0.25);

}  // namespace amperebleed::stats
