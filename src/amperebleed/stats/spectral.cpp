#include "amperebleed/stats/spectral.hpp"

#include <algorithm>

#include "amperebleed/stats/descriptive.hpp"

namespace amperebleed::stats {

std::vector<double> autocorrelation(std::span<const double> xs,
                                    std::size_t max_lag) {
  if (xs.empty()) return {};
  max_lag = std::min(max_lag, xs.size() - 1);
  std::vector<double> r(max_lag + 1, 0.0);

  const Summary s = summarize(xs);
  if (s.variance == 0.0) return r;  // constant: no structure

  const double denom = s.variance * static_cast<double>(xs.size());
  for (std::size_t lag = 0; lag <= max_lag; ++lag) {
    double acc = 0.0;
    for (std::size_t i = 0; i + lag < xs.size(); ++i) {
      acc += (xs[i] - s.mean) * (xs[i + lag] - s.mean);
    }
    r[lag] = acc / denom;
  }
  return r;
}

std::size_t dominant_period(std::span<const double> xs, std::size_t max_lag,
                            double min_correlation) {
  const auto r = autocorrelation(xs, max_lag);
  if (r.size() < 4) return 0;

  // Collect local ACF maxima above the floor...
  double best_r = min_correlation;
  std::vector<std::size_t> peaks;
  for (std::size_t lag = 2; lag + 1 < r.size(); ++lag) {
    const bool local_max = r[lag] >= r[lag - 1] && r[lag] >= r[lag + 1];
    if (local_max && r[lag] > min_correlation) {
      peaks.push_back(lag);
      best_r = std::max(best_r, r[lag]);
    }
  }
  if (peaks.empty()) return 0;
  // ...then return the fundamental: a true period P also peaks at 2P, 3P,
  // ... with near-equal correlation, so take the smallest lag whose peak is
  // comparable to the strongest one.
  for (std::size_t lag : peaks) {
    if (r[lag] >= 0.8 * best_r) return lag;
  }
  return peaks.front();
}

}  // namespace amperebleed::stats
