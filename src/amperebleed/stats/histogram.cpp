#include "amperebleed/stats/histogram.hpp"

#include <algorithm>
#include <stdexcept>

#include "amperebleed/util/strings.hpp"

namespace amperebleed::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be > 0");
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must be > lo");
}

std::size_t Histogram::bin_index(double x) const {
  if (x < lo_) return 0;
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  const auto idx = static_cast<std::size_t>((x - lo_) / width);
  return std::min(idx, counts_.size() - 1);
}

void Histogram::add(double x) {
  ++counts_[bin_index(x)];
  ++total_;
}

void Histogram::add_all(std::span<const double> xs) {
  for (double x : xs) add(x);
}

double Histogram::bin_lo(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const {
  return bin_lo(bin + 1);
}

double Histogram::bin_center(std::size_t bin) const {
  return 0.5 * (bin_lo(bin) + bin_hi(bin));
}

double Histogram::density(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(bin)) / static_cast<double>(total_);
}

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[b]) / static_cast<double>(peak) *
        static_cast<double>(width));
    out += util::format("%12.3f..%-12.3f |%s%s| %zu\n", bin_lo(b), bin_hi(b),
                        std::string(bar, '#').c_str(),
                        std::string(width - bar, ' ').c_str(), counts_[b]);
  }
  return out;
}

}  // namespace amperebleed::stats
