#pragma once
// Correlation coefficients. Pearson r is the headline metric of the paper's
// Fig 2 characterization (r = 0.999 for current vs. activity level).

#include <span>

namespace amperebleed::stats {

/// Pearson product-moment correlation of two equal-length series.
/// Returns 0 when either series is constant (no linear relationship is
/// defined; 0 is the conventional "uninformative" answer used by the bench).
/// Throws std::invalid_argument on length mismatch or fewer than 2 points.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Spearman rank correlation (Pearson on fractional ranks). Same error
/// conditions as pearson(). Robust check used in tests.
double spearman(std::span<const double> xs, std::span<const double> ys);

}  // namespace amperebleed::stats
