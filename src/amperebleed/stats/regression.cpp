#include "amperebleed/stats/regression.hpp"

#include <stdexcept>

namespace amperebleed::stats {

LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("linear_fit: length mismatch");
  }
  if (xs.size() < 2) {
    throw std::invalid_argument("linear_fit: need at least 2 points");
  }
  const auto n = static_cast<double>(xs.size());
  double mx = 0.0;
  double my = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= n;
  my /= n;
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  LinearFit fit;
  if (sxx == 0.0) {
    fit.intercept = my;
    return fit;
  }
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  if (syy > 0.0) {
    double ss_res = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const double pred = fit.slope * xs[i] + fit.intercept;
      const double e = ys[i] - pred;
      ss_res += e * e;
    }
    fit.r_squared = 1.0 - ss_res / syy;
  } else {
    fit.r_squared = 1.0;  // perfectly flat y fitted exactly
  }
  return fit;
}

}  // namespace amperebleed::stats
