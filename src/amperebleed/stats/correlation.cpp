#include "amperebleed/stats/correlation.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace amperebleed::stats {

namespace {

void check_pair(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("correlation: length mismatch");
  }
  if (xs.size() < 2) {
    throw std::invalid_argument("correlation: need at least 2 points");
  }
}

// Fractional ranks with ties averaged.
std::vector<double> ranks(std::span<const double> xs) {
  std::vector<std::size_t> order(xs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> r(xs.size());
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() && xs[order[j + 1]] == xs[order[i]]) ++j;
    const double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0;
    for (std::size_t k = i; k <= j; ++k) r[order[k]] = avg_rank;
    i = j + 1;
  }
  return r;
}

}  // namespace

double pearson(std::span<const double> xs, std::span<const double> ys) {
  check_pair(xs, ys);
  const auto n = static_cast<double>(xs.size());
  double mx = 0.0;
  double my = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= n;
  my /= n;
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double spearman(std::span<const double> xs, std::span<const double> ys) {
  check_pair(xs, ys);
  const auto rx = ranks(xs);
  const auto ry = ranks(ys);
  return pearson(rx, ry);
}

}  // namespace amperebleed::stats
