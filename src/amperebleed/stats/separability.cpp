#include "amperebleed/stats/separability.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "amperebleed/stats/descriptive.hpp"

namespace amperebleed::stats {

double threshold_accuracy(std::span<const double> a,
                          std::span<const double> b) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("threshold_accuracy: empty class");
  }
  // Candidate thresholds: all sample values (sorted, merged). For each
  // threshold t evaluate both orientations (a below / a above) and keep the
  // best balanced accuracy.
  std::vector<double> sa(a.begin(), a.end());
  std::vector<double> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());

  std::vector<double> candidates;
  candidates.reserve(sa.size() + sb.size() + 1);
  candidates.insert(candidates.end(), sa.begin(), sa.end());
  candidates.insert(candidates.end(), sb.begin(), sb.end());
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  // Also consider a threshold above every sample.
  candidates.push_back(candidates.back() +
                       (candidates.size() > 1
                            ? candidates.back() - candidates.front()
                            : 1.0) +
                       1.0);

  const auto frac_below = [](const std::vector<double>& sorted, double t) {
    const auto it = std::lower_bound(sorted.begin(), sorted.end(), t);
    return static_cast<double>(std::distance(sorted.begin(), it)) /
           static_cast<double>(sorted.size());
  };

  double best = 0.5;
  for (double t : candidates) {
    const double fa = frac_below(sa, t);
    const double fb = frac_below(sb, t);
    const double acc_a_low = 0.5 * (fa + (1.0 - fb));
    const double acc_b_low = 0.5 * (fb + (1.0 - fa));
    best = std::max({best, acc_a_low, acc_b_low});
  }
  return best;
}

bool separable(std::span<const double> a, std::span<const double> b,
               double min_accuracy) {
  return threshold_accuracy(a, b) >= min_accuracy;
}

std::vector<std::size_t> group_indistinguishable(
    const std::vector<std::vector<double>>& classes, double min_accuracy) {
  std::vector<std::size_t> group_ids(classes.size(), 0);
  if (classes.empty()) return group_ids;
  std::size_t group = 0;
  std::size_t anchor = 0;  // representative (last) class of the current group
  for (std::size_t i = 1; i < classes.size(); ++i) {
    if (separable(classes[anchor], classes[i], min_accuracy)) {
      ++group;
      anchor = i;
    }
    group_ids[i] = group;
  }
  return group_ids;
}

std::size_t count_separable_groups(
    const std::vector<std::vector<double>>& classes, double min_accuracy) {
  if (classes.empty()) return 0;
  return group_indistinguishable(classes, min_accuracy).back() + 1;
}

double cohens_d(std::span<const double> a, std::span<const double> b) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("cohens_d: empty class");
  }
  const Summary sa = summarize(a);
  const Summary sb = summarize(b);
  const double na = static_cast<double>(sa.count);
  const double nb = static_cast<double>(sb.count);
  const double pooled_var =
      (sa.variance * na + sb.variance * nb) / (na + nb);
  const double diff = std::abs(sa.mean - sb.mean);
  if (pooled_var == 0.0) {
    return diff == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  }
  return diff / std::sqrt(pooled_var);
}

}  // namespace amperebleed::stats
