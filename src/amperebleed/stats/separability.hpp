#pragma once
// Distribution separability — formalizes Fig 4's claim that FPGA current
// distinguishes all 17 RSA key Hamming-weight classes while FPGA power
// collapses them into ~5 groups.

#include <span>
#include <vector>

namespace amperebleed::stats {

/// Accuracy of the best single-threshold classifier between two empirical
/// 1-D sample sets (balanced accuracy over the two classes; 0.5 = fully
/// overlapping, 1.0 = perfectly separated). Throws on an empty class.
double threshold_accuracy(std::span<const double> a, std::span<const double> b);

/// True when the two sample sets can be told apart by a single threshold
/// with at least `min_accuracy` balanced accuracy.
bool separable(std::span<const double> a, std::span<const double> b,
               double min_accuracy = 0.95);

/// Greedy grouping of ordered classes: walk classes in the given order and
/// start a new group whenever the class is separable from the *last class in
/// the current group*. Returns per-class group ids (0-based, nondecreasing).
/// This mirrors how an attacker reading Fig 4 clusters the key classes.
std::vector<std::size_t> group_indistinguishable(
    const std::vector<std::vector<double>>& classes,
    double min_accuracy = 0.95);

/// Number of distinct groups produced by group_indistinguishable().
std::size_t count_separable_groups(
    const std::vector<std::vector<double>>& classes,
    double min_accuracy = 0.95);

/// Cohen's d effect size between two sample sets (difference of means over
/// pooled standard deviation; +inf if both are constant and different).
double cohens_d(std::span<const double> a, std::span<const double> b);

}  // namespace amperebleed::stats
