#include "amperebleed/stats/hypothesis.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "amperebleed/stats/descriptive.hpp"

namespace amperebleed::stats {

namespace {

// Continued-fraction core of the incomplete beta (Numerical Recipes betacf).
double betacf(double a, double b, double x) {
  constexpr int kMaxIterations = 200;
  constexpr double kEps = 3e-14;
  constexpr double kFpMin = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

// Regularized lower incomplete gamma P(a, x) by series expansion
// (Numerical Recipes gser); converges fast for x < a + 1.
double gamma_p_series(double a, double x) {
  constexpr int kMaxIterations = 500;
  constexpr double kEps = 3e-14;
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int n = 0; n < kMaxIterations; ++n) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * kEps) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Regularized upper incomplete gamma Q(a, x) by Lentz continued fraction
// (Numerical Recipes gcf); converges fast for x >= a + 1.
double gamma_q_cf(double a, double x) {
  constexpr int kMaxIterations = 500;
  constexpr double kEps = 3e-14;
  constexpr double kFpMin = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = b + an / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

}  // namespace

double regularized_gamma_q(double a, double x) {
  if (a <= 0.0 || x < 0.0) {
    throw std::invalid_argument("regularized_gamma_q: need a > 0, x >= 0");
  }
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - gamma_p_series(a, x);
  return gamma_q_cf(a, x);
}

ChiSquareResult chi_square_gof(std::span<const double> observed,
                               std::span<const double> expected,
                               double min_expected) {
  if (observed.empty() || observed.size() != expected.size()) {
    throw std::invalid_argument(
        "chi_square_gof: observed/expected must be same nonempty length");
  }
  double obs_total = 0.0;
  double exp_total = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    if (observed[i] < 0.0 || expected[i] < 0.0) {
      throw std::invalid_argument("chi_square_gof: negative count");
    }
    obs_total += observed[i];
    exp_total += expected[i];
  }
  if (exp_total <= 0.0) {
    throw std::invalid_argument("chi_square_gof: expected total must be > 0");
  }
  const double scale = obs_total / exp_total;

  // Merge adjacent buckets left-to-right until each merged bucket's
  // (rescaled) expected count clears min_expected; a deficient tail folds
  // into the previous merged bucket so no probability mass is dropped.
  std::vector<std::pair<double, double>> merged;  // (observed, expected)
  double acc_obs = 0.0;
  double acc_exp = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    acc_obs += observed[i];
    acc_exp += expected[i] * scale;
    if (acc_exp >= min_expected) {
      merged.emplace_back(acc_obs, acc_exp);
      acc_obs = 0.0;
      acc_exp = 0.0;
    }
  }
  if (acc_exp > 0.0 || acc_obs > 0.0) {
    if (merged.empty()) {
      merged.emplace_back(acc_obs, acc_exp);
    } else {
      merged.back().first += acc_obs;
      merged.back().second += acc_exp;
    }
  }

  ChiSquareResult result;
  result.buckets_used = merged.size();
  if (merged.size() < 2) return result;  // nothing left to test: p = 1
  for (const auto& [o, e] : merged) {
    if (e == 0.0) {
      // Only reachable with min_expected <= 0: observed mass where none was
      // expected is an unconditional rejection.
      if (o > 0.0) {
        result.chi2 = std::numeric_limits<double>::infinity();
        result.dof = static_cast<double>(merged.size() - 1);
        result.p_value = 0.0;
        return result;
      }
      continue;
    }
    const double diff = o - e;
    result.chi2 += diff * diff / e;
  }
  result.dof = static_cast<double>(merged.size() - 1);
  result.p_value =
      std::clamp(regularized_gamma_q(result.dof / 2.0, result.chi2 / 2.0),
                 0.0, 1.0);
  return result;
}

double incomplete_beta(double a, double b, double x) {
  if (x < 0.0 || x > 1.0) {
    throw std::invalid_argument("incomplete_beta: x outside [0,1]");
  }
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) -
                          std::lgamma(b) + a * std::log(x) +
                          b * std::log(1.0 - x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * betacf(a, b, x) / a;
  }
  return 1.0 - front * betacf(b, a, 1.0 - x) / b;
}

WelchResult welch_t_test(std::span<const double> a,
                         std::span<const double> b) {
  if (a.size() < 2 || b.size() < 2) {
    throw std::invalid_argument("welch_t_test: need >= 2 samples per group");
  }
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  const double va = sample_variance(a) / na;
  const double vb = sample_variance(b) / nb;

  WelchResult result;
  const double diff = mean(a) - mean(b);
  if (va + vb == 0.0) {
    // Both samples constant: identical means -> p=1; different -> p=0.
    result.t = diff == 0.0 ? 0.0 : std::copysign(1e18, diff);
    result.dof = na + nb - 2.0;
    result.p_value = diff == 0.0 ? 1.0 : 0.0;
    return result;
  }
  result.t = diff / std::sqrt(va + vb);
  result.dof = (va + vb) * (va + vb) /
               (va * va / (na - 1.0) + vb * vb / (nb - 1.0));
  // Two-sided p via the Student-t CDF expressed with the incomplete beta.
  const double x = result.dof / (result.dof + result.t * result.t);
  result.p_value = incomplete_beta(result.dof / 2.0, 0.5, x);
  return result;
}

KsResult ks_test(std::span<const double> a, std::span<const double> b) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("ks_test: empty sample");
  }
  std::vector<double> sa(a.begin(), a.end());
  std::vector<double> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());

  KsResult result;
  std::size_t i = 0;
  std::size_t j = 0;
  const double na = static_cast<double>(sa.size());
  const double nb = static_cast<double>(sb.size());
  while (i < sa.size() && j < sb.size()) {
    const double value = std::min(sa[i], sb[j]);
    while (i < sa.size() && sa[i] <= value) ++i;
    while (j < sb.size() && sb[j] <= value) ++j;
    result.d = std::max(
        result.d, std::fabs(static_cast<double>(i) / na -
                            static_cast<double>(j) / nb));
  }

  // Asymptotic two-sided p-value (Kolmogorov distribution tail). The
  // alternating series diverges pointwise at lambda -> 0 where Q == 1.
  const double ne = na * nb / (na + nb);
  const double lambda =
      (std::sqrt(ne) + 0.12 + 0.11 / std::sqrt(ne)) * result.d;
  if (lambda < 0.3) {
    result.p_value = 1.0;
    return result;
  }
  double p = 0.0;
  double sign = 1.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * k * k * lambda * lambda);
    p += sign * term;
    sign = -sign;
    if (term < 1e-12) break;
  }
  result.p_value = std::clamp(2.0 * p, 0.0, 1.0);
  return result;
}

MannWhitneyResult mann_whitney_u(std::span<const double> a,
                                 std::span<const double> b) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("mann_whitney_u: empty sample");
  }
  const std::size_t na = a.size();
  const std::size_t nb = b.size();
  const std::size_t n = na + nb;

  // Pool, remembering group membership, and assign midranks.
  std::vector<std::pair<double, bool>> pooled;  // value, is_from_a
  pooled.reserve(n);
  for (double v : a) pooled.emplace_back(v, true);
  for (double v : b) pooled.emplace_back(v, false);
  std::sort(pooled.begin(), pooled.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });

  double rank_sum_a = 0.0;
  double tie_term = 0.0;  // sum over tie groups of t^3 - t
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j < n && pooled[j].first == pooled[i].first) ++j;
    const double t = static_cast<double>(j - i);
    // Midrank of the tie group [i, j) with 1-based ranks.
    const double midrank = (static_cast<double>(i + 1) +
                            static_cast<double>(j)) / 2.0;
    for (std::size_t k = i; k < j; ++k) {
      if (pooled[k].second) rank_sum_a += midrank;
    }
    tie_term += t * t * t - t;
    i = j;
  }

  MannWhitneyResult result;
  const double dna = static_cast<double>(na);
  const double dnb = static_cast<double>(nb);
  result.u = rank_sum_a - dna * (dna + 1.0) / 2.0;

  const double mu = dna * dnb / 2.0;
  const double dn = static_cast<double>(n);
  double var = dna * dnb / 12.0 * (dn + 1.0);
  if (dn > 1.0) {
    var = dna * dnb / 12.0 * ((dn + 1.0) - tie_term / (dn * (dn - 1.0)));
  }
  if (var <= 0.0) {
    // All pooled values identical: no evidence of a shift.
    result.z = 0.0;
    result.p_value = 1.0;
    return result;
  }
  // Continuity correction towards the mean.
  const double diff = result.u - mu;
  const double corrected =
      diff > 0.5 ? diff - 0.5 : (diff < -0.5 ? diff + 0.5 : 0.0);
  result.z = corrected / std::sqrt(var);
  result.p_value =
      std::clamp(std::erfc(std::fabs(result.z) / std::sqrt(2.0)), 0.0, 1.0);
  return result;
}

}  // namespace amperebleed::stats
