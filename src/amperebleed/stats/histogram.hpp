#pragma once
// Fixed-width histograms for rendering Fig 4-style distributions and for
// distribution-overlap computations in stats/separability.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace amperebleed::stats {

/// Equal-width histogram over [lo, hi); samples outside the range are
/// clamped into the first/last bin so no data is silently dropped.
class Histogram {
 public:
  /// Throws std::invalid_argument if bins == 0 or hi <= lo.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add_all(std::span<const double> xs);

  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] double bin_lo(std::size_t bin) const;
  [[nodiscard]] double bin_hi(std::size_t bin) const;
  [[nodiscard]] double bin_center(std::size_t bin) const;

  /// Fraction of samples in a bin (0 if histogram is empty).
  [[nodiscard]] double density(std::size_t bin) const;

  /// Index of the bin that would receive x.
  [[nodiscard]] std::size_t bin_index(double x) const;

  /// ASCII rendering (one line per bin), used by the figure benches.
  [[nodiscard]] std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace amperebleed::stats
