#include "amperebleed/soc/soc.hpp"

#include <atomic>
#include <stdexcept>

#include "amperebleed/obs/obs.hpp"
#include "amperebleed/sensors/board.hpp"
#include "amperebleed/util/rng.hpp"

namespace amperebleed::soc {

namespace {
// The obs audit log timestamps events on the platform's virtual clock. The
// most recently finalized SoC owns the clock; its destructor releases it so
// the audit log never calls into a destroyed platform.
std::atomic<Soc*> g_audit_clock_owner{nullptr};
}  // namespace

SocConfig zcu102_config(std::uint64_t seed) {
  SocConfig c;
  c.seed = seed;

  // Rail order: FpdCpu, LpdCpu, FpgaLogic, Ddr.
  c.idle_current_amps = {0.78, 0.21, 0.52, 0.63};

  for (std::size_t i = 0; i < power::kRailCount; ++i) {
    auto& pdn = c.pdn[i];
    pdn.idle_current_amps = c.idle_current_amps[i];
  }
  // FPGA rail band per Table I (Zynq UltraScale+).
  c.pdn[power::rail_index(power::Rail::FpgaLogic)].v_nominal = 0.850;
  c.pdn[power::rail_index(power::Rail::FpgaLogic)].v_min = 0.825;
  c.pdn[power::rail_index(power::Rail::FpgaLogic)].v_max = 0.876;
  // PS domains regulate around the same 0.85 V class.
  c.pdn[power::rail_index(power::Rail::FpdCpu)].v_nominal = 0.850;
  c.pdn[power::rail_index(power::Rail::LpdCpu)].v_nominal = 0.850;
  // DDR4 rail.
  auto& ddr = c.pdn[power::rail_index(power::Rail::Ddr)];
  ddr.v_nominal = 1.200;
  ddr.v_min = 1.140;
  ddr.v_max = 1.260;

  for (std::size_t i = 0; i < power::kRailCount; ++i) {
    c.sensor[i].shunt_ohms =
        sensors::zcu102_sensitive_sensors()[i].shunt_ohms;
    c.sensor[i].current_lsb_amps = 0.001;  // the hwmon-visible 1 mA LSB
  }
  return c;
}

SocConfig vck190_config(std::uint64_t seed) {
  SocConfig c = zcu102_config(seed);
  // Versal fabric: bigger device, lower-voltage rail (Table I), beefier A72
  // application cluster.
  c.fabric.resources = fpga::FabricResources{
      .luts = 899'840,
      .flip_flops = 1'799'680,
      .dsp_slices = 1'968,
      .bram_blocks = 967,
  };
  auto& pl = c.pdn[power::rail_index(power::Rail::FpgaLogic)];
  pl.v_nominal = 0.800;
  pl.v_min = 0.775;
  pl.v_max = 0.825;
  c.pdn[power::rail_index(power::Rail::FpdCpu)].v_nominal = 0.880;
  c.idle_current_amps = {1.05, 0.26, 0.71, 0.88};
  for (std::size_t i = 0; i < power::kRailCount; ++i) {
    c.pdn[i].idle_current_amps = c.idle_current_amps[i];
  }
  return c;
}

Soc::Soc(SocConfig config)
    : config_(config),
      fabric_(config.fabric),
      pdn_{power::PdnModel(config.pdn[0]), power::PdnModel(config.pdn[1]),
           power::PdnModel(config.pdn[2]), power::PdnModel(config.pdn[3])},
      hwmon_(std::make_unique<hwmon::HwmonSubsystem>(config.hwmon_policy)) {}

void Soc::add_activity(const power::RailActivity& activity) {
  if (finalized_) {
    throw std::logic_error("Soc::add_activity: platform already finalized");
  }
  pending_ = has_pending_ ? pending_ + activity : activity;
  has_pending_ = true;
}

Soc::~Soc() {
  Soc* self = this;
  if (g_audit_clock_owner.compare_exchange_strong(self, nullptr)) {
    obs::audit_log().clear_clock();
  }
}

void Soc::finalize() {
  if (finalized_) throw std::logic_error("Soc::finalize: already finalized");

  // The rate-limiting defense needs the platform clock.
  hwmon_->set_clock([this]() { return now_; });
  // So does the obs access-audit log: audit events carry virtual timestamps,
  // which is what makes the read-rate detector's windows meaningful.
  g_audit_clock_owner.store(this);
  obs::audit_log().set_clock([this]() { return now_; });

  for (std::size_t i = 0; i < power::kRailCount; ++i) {
    // Total rail current = board baseline + workload activity.
    sim::PiecewiseConstant total = pending_.current[i];
    sim::PiecewiseConstant baseline(config_.idle_current_amps[i]);
    rail_current_[i] = total + baseline;
    rail_voltage_[i] = pdn_[i].voltage_signal(rail_current_[i]);

    sensors_[i] = std::make_unique<sensors::Ina226>(
        config_.sensor[i], config_.noise[i],
        util::hash_combine(config_.seed, 0x1a226000 + i));
    sensors_[i]->bind(&rail_current_[i], &rail_voltage_[i]);

    const auto rail = static_cast<power::Rail>(i);
    sensors::Ina226* dev = sensors_[i].get();
    hwmon_index_[i] = hwmon_->register_ina226(
        std::string(sensors::zcu102_sensor(rail).designator), *dev,
        [this, dev]() { dev->advance_to(now_); });

    // Raw register path: the same sensor behind the board I2C bus.
    i2c_adapters_.push_back(std::make_unique<sensors::Ina226I2cAdapter>(
        *dev, [this, dev]() { dev->advance_to(now_); }));
    i2c_.attach(static_cast<std::uint8_t>(kIna226BaseAddress + i),
                *i2c_adapters_.back());
  }
  if (config_.with_sysmon) {
    // Total die power (first order: rail current x nominal rail voltage)
    // drives the thermal model; the SYSMON digitizes the result.
    sim::PiecewiseConstant total_power(0.0);
    for (std::size_t i = 0; i < power::kRailCount; ++i) {
      sim::PiecewiseConstant scaled = rail_current_[i];
      scaled.scale(config_.pdn[i].v_nominal);
      total_power = total_power + scaled;
    }
    sim::TimeNs horizon = config_.thermal_margin;
    for (std::size_t i = 0; i < power::kRailCount; ++i) {
      const sim::TimeNs last = rail_current_[i].last_change();
      if (last + config_.thermal_margin > horizon) {
        horizon = last + config_.thermal_margin;
      }
    }
    die_temperature_ =
        power::ThermalModel(config_.thermal).temperature_signal(total_power,
                                                                horizon);
    sysmon_ = std::make_unique<sensors::Sysmon>(
        config_.sysmon, util::hash_combine(config_.seed, 0x5a5));
    sysmon_->bind(&die_temperature_);
    sensors::Sysmon* ams = sysmon_.get();
    sysmon_hwmon_index_ = hwmon_->register_sysmon(
        "ams", *ams, [this, ams]() { ams->advance_to(now_); });
  }

  finalized_ = true;
}

sensors::Sysmon& Soc::sysmon() {
  if (!finalized_ || !sysmon_) {
    throw std::logic_error("Soc::sysmon: unavailable (not finalized or disabled)");
  }
  sysmon_->advance_to(now_);
  return *sysmon_;
}

int Soc::sysmon_hwmon_index() const {
  if (!finalized_ || sysmon_hwmon_index_ < 0) {
    throw std::logic_error("Soc::sysmon_hwmon_index: unavailable");
  }
  return sysmon_hwmon_index_;
}

const sim::PiecewiseConstant& Soc::die_temperature() const {
  if (!finalized_ || !sysmon_) {
    throw std::logic_error("Soc::die_temperature: unavailable");
  }
  return die_temperature_;
}

sensors::I2cBus& Soc::i2c() {
  if (!finalized_) throw std::logic_error("Soc::i2c: not finalized");
  return i2c_;
}

void Soc::advance_to(sim::TimeNs t) {
  if (!finalized_) throw std::logic_error("Soc::advance_to: not finalized");
  if (t < now_) {
    throw std::invalid_argument("Soc::advance_to: time went backwards");
  }
  now_ = t;
}

sensors::Ina226& Soc::sensor(power::Rail rail) {
  if (!finalized_) throw std::logic_error("Soc::sensor: not finalized");
  auto& dev = *sensors_[power::rail_index(rail)];
  dev.advance_to(now_);
  return dev;
}

int Soc::hwmon_index(power::Rail rail) const {
  if (!finalized_) throw std::logic_error("Soc::hwmon_index: not finalized");
  return hwmon_index_[power::rail_index(rail)];
}

const sim::PiecewiseConstant& Soc::rail_current(power::Rail rail) const {
  if (!finalized_) throw std::logic_error("Soc::rail_current: not finalized");
  return rail_current_[power::rail_index(rail)];
}

const sim::PiecewiseConstant& Soc::rail_voltage(power::Rail rail) const {
  if (!finalized_) throw std::logic_error("Soc::rail_voltage: not finalized");
  return rail_voltage_[power::rail_index(rail)];
}

const power::PdnModel& Soc::pdn(power::Rail rail) const {
  return pdn_[power::rail_index(rail)];
}

}  // namespace amperebleed::soc
