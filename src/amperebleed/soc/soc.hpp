#pragma once
// The whole evaluation platform: ZCU102-class ARM-FPGA SoC with four
// monitored rails, one INA226 per rail, PDN/stabilizer models, and the
// hwmon sysfs through which the unprivileged attacker observes everything.
//
// Usage pattern (mirrors a real experiment):
//   Soc soc(zcu102_config());
//   soc.fabric().deploy(...victim circuits...);
//   soc.add_activity(victim_schedule);
//   soc.finalize();                       // power-on: signals fixed, ADCs run
//   soc.advance_to(t); soc.hwmon().fs().read(".../curr1_input", false);

#include <array>
#include <memory>
#include <optional>

#include "amperebleed/fpga/fabric.hpp"
#include "amperebleed/hwmon/hwmon.hpp"
#include "amperebleed/power/activity.hpp"
#include "amperebleed/power/noise_model.hpp"
#include "amperebleed/power/pdn.hpp"
#include "amperebleed/power/thermal.hpp"
#include "amperebleed/sensors/i2c.hpp"
#include "amperebleed/sensors/ina226.hpp"
#include "amperebleed/sensors/sysmon.hpp"
#include "amperebleed/sim/time.hpp"

namespace amperebleed::soc {

struct SocConfig {
  fpga::FabricConfig fabric{};
  std::array<power::PdnConfig, power::kRailCount> pdn{};
  std::array<sensors::Ina226Config, power::kRailCount> sensor{};
  std::array<power::RailNoiseConfig, power::kRailCount> noise{};
  /// Static board baseline current per rail (everything not modelled as an
  /// explicit workload: PS peripherals, DDR refresh, fabric leakage...).
  std::array<double, power::kRailCount> idle_current_amps{};
  hwmon::HwmonPolicy hwmon_policy{};
  /// Die thermal model + SYSMON (AMS) temperature channel. The thermal
  /// signal is built out to the last workload change plus `thermal_margin`,
  /// which costs memory/time proportional to experiment length — opt in
  /// when the temperature channel is under study.
  bool with_sysmon = false;
  power::ThermalConfig thermal{};
  sensors::SysmonConfig sysmon{};
  sim::TimeNs thermal_margin = sim::seconds(10);
  std::uint64_t seed = 1;
};

/// Calibrated ZCU102 defaults (see DESIGN.md for the calibration targets).
SocConfig zcu102_config(std::uint64_t seed = 1);

/// Versal VCK190 variant (Table I): Cortex-A72 cores, lower fabric voltage
/// band (0.775-0.825 V), larger fabric. Exercises the paper's claim that
/// the attack generalizes beyond Zynq UltraScale+ — the sensors and hwmon
/// semantics are identical.
SocConfig vck190_config(std::uint64_t seed = 1);

class Soc {
 public:
  explicit Soc(SocConfig config);
  /// Releases the obs audit-log clock if this SoC installed it (the most
  /// recently finalized SoC owns the virtual timestamp source).
  ~Soc();

  // The sensors and hwmon callbacks hold pointers into this object, so it
  // must stay at a fixed address for its lifetime.
  Soc(const Soc&) = delete;
  Soc& operator=(const Soc&) = delete;

  [[nodiscard]] fpga::Fabric& fabric() { return fabric_; }
  [[nodiscard]] const SocConfig& config() const { return config_; }

  /// Accumulate workload activity. Only valid before finalize().
  void add_activity(const power::RailActivity& activity);

  /// Freeze the activity into per-rail current/voltage signals, bind the
  /// sensors, and register them with hwmon. Callable exactly once.
  void finalize();
  [[nodiscard]] bool finalized() const { return finalized_; }

  /// Move the virtual clock forward. Sensor conversions catch up lazily on
  /// access, so this is O(1).
  void advance_to(sim::TimeNs t);
  [[nodiscard]] sim::TimeNs now() const { return now_; }

  /// Direct sensor access (tests / privileged tooling).
  [[nodiscard]] sensors::Ina226& sensor(power::Rail rail);
  [[nodiscard]] hwmon::HwmonSubsystem& hwmon() { return *hwmon_; }
  /// hwmon device index for a rail's INA226.
  [[nodiscard]] int hwmon_index(power::Rail rail) const;
  /// The SYSMON die monitor (throws if with_sysmon is false or before
  /// finalize). Its hwmon index is sysmon_hwmon_index().
  [[nodiscard]] sensors::Sysmon& sysmon();
  [[nodiscard]] int sysmon_hwmon_index() const;
  /// Ground-truth die temperature signal (after finalize, with_sysmon).
  [[nodiscard]] const sim::PiecewiseConstant& die_temperature() const;

  /// The board I2C bus carrying the INA226s (root-only raw path; the
  /// kernel driver and i2c-tools use this). Sensors sit at 0x40 + rail
  /// index. Available after finalize.
  [[nodiscard]] sensors::I2cBus& i2c();
  static constexpr std::uint8_t kIna226BaseAddress = 0x40;

  /// Ground-truth signals (after finalize); what the shunts actually carry.
  [[nodiscard]] const sim::PiecewiseConstant& rail_current(power::Rail) const;
  [[nodiscard]] const sim::PiecewiseConstant& rail_voltage(power::Rail) const;
  [[nodiscard]] const power::PdnModel& pdn(power::Rail rail) const;

 private:
  SocConfig config_;
  fpga::Fabric fabric_;
  std::array<power::PdnModel, power::kRailCount> pdn_;
  power::RailActivity pending_;
  bool has_pending_ = false;
  bool finalized_ = false;
  sim::TimeNs now_{0};

  std::array<sim::PiecewiseConstant, power::kRailCount> rail_current_;
  std::array<sim::PiecewiseConstant, power::kRailCount> rail_voltage_;
  std::array<std::unique_ptr<sensors::Ina226>, power::kRailCount> sensors_;
  std::unique_ptr<hwmon::HwmonSubsystem> hwmon_;
  std::array<int, power::kRailCount> hwmon_index_{};
  sim::PiecewiseConstant die_temperature_;
  std::unique_ptr<sensors::Sysmon> sysmon_;
  int sysmon_hwmon_index_ = -1;
  sensors::I2cBus i2c_;
  std::vector<std::unique_ptr<sensors::Ina226I2cAdapter>> i2c_adapters_;
};

}  // namespace amperebleed::soc
