#include "amperebleed/soc/process.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "amperebleed/util/rng.hpp"

namespace amperebleed::soc {

CpuSchedule::CpuSchedule(CpuPowerParams params) : params_(params) {
  if (params_.core_count <= 0 || params_.current_per_core_amps < 0.0) {
    throw std::invalid_argument("CpuSchedule: bad parameters");
  }
}

void CpuSchedule::run(const Process& process, sim::TimeNs start,
                      sim::TimeNs end, double utilization) {
  if (process.core < 0 || process.core >= params_.core_count) {
    throw std::invalid_argument("CpuSchedule::run: core out of range");
  }
  if (end <= start) {
    throw std::invalid_argument("CpuSchedule::run: empty interval");
  }
  if (utilization < 0.0 || utilization > 1.0) {
    throw std::invalid_argument("CpuSchedule::run: utilization not in [0,1]");
  }
  // Per-core intervals must be added in order and must not overlap.
  for (auto it = intervals_.rbegin(); it != intervals_.rend(); ++it) {
    if (it->core != process.core) continue;
    if (start < it->end) {
      throw std::invalid_argument(
          "CpuSchedule::run: overlapping or out-of-order interval on core");
    }
    break;
  }
  intervals_.push_back(Interval{process.core, start, end, utilization});
}

power::RailActivity CpuSchedule::activity() const {
  // Sum per-core step functions: build a change list, then accumulate.
  struct Change {
    sim::TimeNs at;
    double delta;
  };
  std::vector<Change> changes;
  changes.reserve(intervals_.size() * 2);
  for (const auto& iv : intervals_) {
    const double amps = iv.utilization * params_.current_per_core_amps;
    changes.push_back({iv.start, amps});
    changes.push_back({iv.end, -amps});
  }
  std::sort(changes.begin(), changes.end(),
            [](const Change& a, const Change& b) { return a.at < b.at; });

  power::RailActivity out;
  auto& fpd = out.on(power::Rail::FpdCpu);
  double level = 0.0;
  std::size_t i = 0;
  while (i < changes.size()) {
    const sim::TimeNs at = changes[i].at;
    while (i < changes.size() && changes[i].at == at) {
      level += changes[i].delta;
      ++i;
    }
    fpd.append(at, level);
  }
  return out;
}

power::RailActivity make_background_os_activity(
    const BackgroundActivityParams& params, sim::TimeNs end,
    std::uint64_t seed) {
  if (end.ns < 0) {
    throw std::invalid_argument("background activity: negative end");
  }
  power::RailActivity out;
  auto& fpd = out.on(power::Rail::FpdCpu);
  auto& ddr = out.on(power::Rail::Ddr);
  auto& lpd = out.on(power::Rail::LpdCpu);

  // Housekeeping bursts: Poisson arrivals, exponential durations, run
  // back-to-back if they would overlap (one background core).
  if (params.burst_rate_hz > 0.0) {
    util::Rng rng(util::hash_combine(seed, 0xb6));
    sim::TimeNs cursor{0};
    for (;;) {
      const double gap_s =
          -std::log(1.0 - rng.uniform()) / params.burst_rate_hz;
      const double dur_s = -std::log(1.0 - rng.uniform()) *
                           params.mean_burst_duration.seconds();
      const sim::TimeNs start{
          cursor.ns + std::max<std::int64_t>(
                          1, sim::from_seconds(gap_s).ns)};
      const sim::TimeNs stop{
          start.ns + std::max<std::int64_t>(1, sim::from_seconds(dur_s).ns)};
      if (start >= end) break;
      fpd.append(start, params.cpu_burst_current_amps);
      ddr.append(start, params.dram_burst_current_amps);
      fpd.append(stop, 0.0);
      ddr.append(stop, 0.0);
      cursor = stop;
    }
  }

  // Timer tick through the low-power domain.
  if (params.lpd_tick_period.ns > 0 && params.lpd_tick_width.ns > 0 &&
      params.lpd_tick_width < params.lpd_tick_period) {
    for (sim::TimeNs t{params.lpd_tick_period}; t < end;
         t += params.lpd_tick_period) {
      lpd.append(t, params.lpd_tick_current_amps);
      lpd.append(t + params.lpd_tick_width, 0.0);
    }
  }
  return out;
}

}  // namespace amperebleed::soc
