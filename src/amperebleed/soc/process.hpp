#pragma once
// Minimal process/core model for the ARM side. The paper pins the DPU
// trigger task to core 0 and the sampling task to core 3; what the power
// model needs from that is (a) which rail the CPU work loads (FPD for the
// application cores) and (b) when each process is running. The attacker's
// own sampling loop shows up here too — its CPU draw is part of the FPD
// baseline the attack must see through.

#include <string>
#include <vector>

#include "amperebleed/power/activity.hpp"
#include "amperebleed/sim/time.hpp"

namespace amperebleed::soc {

struct Process {
  std::string name;
  int core = 0;          // 0..3 on the quad-A53 ZCU102
  bool privileged = false;
};

struct CpuPowerParams {
  /// Added FPD current when one core runs at 100% (application cores live in
  /// the full-power domain).
  double current_per_core_amps = 0.35;
  int core_count = 4;
};

/// Builds the FPD-rail activity contributed by scheduled CPU work.
class CpuSchedule {
 public:
  explicit CpuSchedule(CpuPowerParams params = {});

  /// Record that `process` occupies its core at `utilization` (0..1) during
  /// [start, end). Intervals on the same core must not overlap and must be
  /// added in increasing start order per core.
  void run(const Process& process, sim::TimeNs start, sim::TimeNs end,
           double utilization = 1.0);

  /// Compile to per-rail activity (FPD only).
  [[nodiscard]] power::RailActivity activity() const;

  [[nodiscard]] const CpuPowerParams& params() const { return params_; }

 private:
  struct Interval {
    int core;
    sim::TimeNs start;
    sim::TimeNs end;
    double utilization;
  };
  CpuPowerParams params_;
  std::vector<Interval> intervals_;
};

/// Background OS noise on a PetaLinux board: housekeeping bursts on the
/// application cores (with their DRAM traffic) and the periodic timer tick
/// serviced through the low-power domain. This is the "process scheduling
/// interference" the paper minimizes by core-pinning but cannot remove; it
/// is what keeps the CPU-side channels weaker than the FPGA channel.
struct BackgroundActivityParams {
  double burst_rate_hz = 25.0;  // Poisson arrival rate of housekeeping work
  sim::TimeNs mean_burst_duration = sim::milliseconds(4);
  double cpu_burst_current_amps = 0.35;   // one core waking up
  double dram_burst_current_amps = 0.05;  // its memory traffic
  double lpd_tick_current_amps = 0.006;   // PMU/timer blip
  sim::TimeNs lpd_tick_period = sim::milliseconds(10);  // 100 Hz jiffies
  sim::TimeNs lpd_tick_width = sim::microseconds(300);
};

/// Build a background activity schedule covering [0, end).
power::RailActivity make_background_os_activity(
    const BackgroundActivityParams& params, sim::TimeNs end,
    std::uint64_t seed);

}  // namespace amperebleed::soc
