#include "amperebleed/dpu/dpu.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "amperebleed/obs/obs.hpp"
#include "amperebleed/util/rng.hpp"

namespace amperebleed::dpu {

DpuAccelerator::DpuAccelerator(DpuConfig config) : config_(config) {
  if (config_.clock_mhz <= 0.0 || config_.peak_macs_per_cycle <= 0.0 ||
      config_.dram_bandwidth_bytes_per_s <= 0.0) {
    throw std::invalid_argument("DpuAccelerator: non-positive throughput");
  }
}

fpga::CircuitDescriptor DpuAccelerator::descriptor() const {
  // DPUCZDX8G B4096-class footprint on a ZU9EG.
  return fpga::CircuitDescriptor{
      .name = "dpu_b4096",
      .usage =
          fpga::FabricResources{
              .luts = 52'000,
              .flip_flops = 98'000,
              .dsp_slices = 710,
              .bram_blocks = 255,
          },
      .encrypted = true,  // IEEE-1735 encrypted commercial IP
  };
}

LayerTiming DpuAccelerator::layer_timing(const dnn::Layer& layer) const {
  double efficiency = config_.conv_efficiency;
  switch (layer.kind) {
    case dnn::LayerKind::Conv:
      efficiency = config_.conv_efficiency;
      break;
    case dnn::LayerKind::DepthwiseConv:
      efficiency = config_.depthwise_efficiency;
      break;
    case dnn::LayerKind::FullyConnected:
      efficiency = config_.fc_efficiency;
      break;
    case dnn::LayerKind::Pool:
    case dnn::LayerKind::GlobalPool:
    case dnn::LayerKind::EltwiseAdd:
      efficiency = config_.pool_efficiency;
      break;
    case dnn::LayerKind::Concat:
      efficiency = config_.pool_efficiency;  // pure data movement
      break;
  }

  const double peak_macs_per_s =
      config_.peak_macs_per_cycle * config_.clock_mhz * 1e6;
  const double macs = static_cast<double>(layer.macs());
  const double bytes = static_cast<double>(layer.dram_bytes());

  const double compute_s = macs / (efficiency * peak_macs_per_s);
  const double memory_s = bytes / config_.dram_bandwidth_bytes_per_s;
  const double busy_s = std::max(compute_s, memory_s);

  LayerTiming t;
  t.duration = sim::from_seconds(busy_s) + config_.layer_overhead;
  const double duration_s = t.duration.seconds();
  if (duration_s > 0.0) {
    t.mac_utilization = std::min(1.0, macs / (peak_macs_per_s * duration_s));
    const double achieved_gbps = bytes / duration_s / 1e9;
    t.fpga_current_amps =
        config_.fpga_full_load_current_amps * t.mac_utilization;
    t.dram_current_amps = config_.dram_current_per_gbps_amps * achieved_gbps;
  }
  return t;
}

sim::TimeNs DpuAccelerator::inference_latency(const dnn::Model& model) const {
  sim::TimeNs total{0};
  for (const auto& layer : model.layers) {
    total += layer_timing(layer).duration;
  }
  return total;
}

sim::TimeNs DpuAccelerator::preprocess_duration(const dnn::Model& model) const {
  const double mpixel_channels =
      static_cast<double>(model.input.elements()) / 1e6;
  return config_.cpu_preprocess_base +
         sim::from_seconds(config_.cpu_preprocess_per_mpixel.seconds() *
                           mpixel_channels);
}

sim::TimeNs DpuAccelerator::inference_period(const dnn::Model& model) const {
  return preprocess_duration(model) + inference_latency(model) +
         config_.cpu_postprocess;
}

DpuAccelerator::RunResult DpuAccelerator::run(const dnn::Model& model,
                                              sim::TimeNs start,
                                              sim::TimeNs end,
                                              std::uint64_t seed) const {
  if (end < start) throw std::invalid_argument("DpuAccelerator::run: end < start");
  if (model.layers.empty()) {
    throw std::invalid_argument("DpuAccelerator::run: empty model");
  }

  auto run_span = obs::span("dpu.run", "dpu");
  run_span.set_arg("layers", static_cast<double>(model.layers.size()));

  RunResult out;
  auto& fpga_rail = out.activity.on(power::Rail::FpgaLogic);
  auto& dram_rail = out.activity.on(power::Rail::Ddr);
  auto& fpd_rail = out.activity.on(power::Rail::FpdCpu);
  auto& lpd_rail = out.activity.on(power::Rail::LpdCpu);
  fpga_rail = sim::PiecewiseConstant(config_.fpga_idle_current_amps);

  util::Rng rng(seed);
  const auto jittered = [&](sim::TimeNs nominal) {
    const double f =
        std::max(0.25, 1.0 + rng.gaussian(0.0, config_.cpu_jitter_fraction));
    return sim::from_seconds(nominal.seconds() * f);
  };

  // Pre-compute per-layer timings once per model.
  std::vector<LayerTiming> timings;
  timings.reserve(model.layers.size());
  for (const auto& layer : model.layers) {
    timings.push_back(layer_timing(layer));
  }

  sim::TimeNs cursor = start;
  while (cursor < end) {
    // ARM core 0: preprocessing (resize + quantize the input image).
    const sim::TimeNs pre = jittered(preprocess_duration(model));
    fpd_rail.append(cursor, config_.cpu_busy_current_amps);
    cursor += pre;
    fpd_rail.append(cursor, 0.0);

    // Accelerator: layer pipeline (the DPU runtime keeps feeding it through
    // the LPD-side platform path while it runs).
    lpd_rail.append(cursor, config_.lpd_driver_current_amps);
    const bool trace_layers = obs::tracing_enabled();
    for (std::size_t li = 0; li < timings.size(); ++li) {
      const auto& t = timings[li];
      fpga_rail.append(cursor,
                       config_.fpga_idle_current_amps + t.fpga_current_amps);
      dram_rail.append(cursor, t.dram_current_amps);
      if (trace_layers) {
        // One virtual-time span per executed layer: the per-layer current
        // plateaus the fingerprinting attack keys on, as trace events.
        obs::virtual_span(
            "dpu.layer." +
                std::string(dnn::layer_kind_name(model.layers[li].kind)),
            "dpu", cursor, t.duration,
            {{"layer_index", static_cast<double>(li)},
             {"fpga_ma", t.fpga_current_amps * 1e3},
             {"dram_ma", t.dram_current_amps * 1e3},
             {"mac_utilization", t.mac_utilization}});
      }
      cursor += t.duration;
    }
    obs::count("dpu.layers", timings.size());
    fpga_rail.append(cursor, config_.fpga_idle_current_amps);
    dram_rail.append(cursor, 0.0);

    // DPU done-interrupt serviced through the LPD, then postprocessing.
    // Postprocessing runs straight into the next inference's preprocessing,
    // so the FPD rail stays busy across the boundary (coalesced).
    lpd_rail.append(cursor, config_.lpd_irq_current_amps);
    lpd_rail.append(cursor + config_.lpd_irq_duration, 0.0);
    const sim::TimeNs post = jittered(config_.cpu_postprocess);
    fpd_rail.append(cursor, config_.cpu_busy_current_amps);
    cursor += post;

    ++out.inference_count;
  }
  fpd_rail.append(cursor, 0.0);
  obs::count("dpu.inferences", out.inference_count);
  run_span.set_arg("inferences", static_cast<double>(out.inference_count));
  run_span.set_virtual_ns(cursor);
  return out;
}

}  // namespace amperebleed::dpu
