#pragma once
// Xilinx DPU-style DNN accelerator model. The real DPU is IEEE-1735
// encrypted IP; the attack treats it as a black box and only observes its
// rail currents. This model reproduces the observable behaviour: a layer-by-
// layer execution schedule whose per-layer duration is the max of compute
// time (MACs / effective throughput) and DRAM time (bytes / bandwidth), with
// rail currents proportional to achieved utilization — plus the ARM-side
// pre/post-processing every inference requires.

#include <cstdint>

#include "amperebleed/dnn/model.hpp"
#include "amperebleed/fpga/fabric.hpp"
#include "amperebleed/power/activity.hpp"
#include "amperebleed/sim/time.hpp"

namespace amperebleed::dpu {

struct DpuConfig {
  double clock_mhz = 300.0;          // fabric clock of the evaluation board
  double peak_macs_per_cycle = 2048;  // B4096-class core (4096 INT8 ops/cycle)
  double dram_bandwidth_bytes_per_s = 4.0e9;

  /// Achieved fraction of peak MACs by layer kind (conv pipelines well;
  /// depthwise and FC are structurally inefficient on the systolic array).
  double conv_efficiency = 0.70;
  double depthwise_efficiency = 0.25;
  double fc_efficiency = 0.15;
  double pool_efficiency = 0.20;

  /// Fixed per-layer dispatch overhead (instruction fetch, DMA setup).
  sim::TimeNs layer_overhead = sim::microseconds(8);

  /// FPGA rail: leakage of the deployed DPU plus a load-proportional term.
  double fpga_idle_current_amps = 0.180;
  double fpga_full_load_current_amps = 2.60;  // added at 100% MAC utilization

  /// DRAM rail current per GB/s of achieved traffic.
  double dram_current_per_gbps_amps = 0.120;

  /// ARM-side work per inference (image resize/quantize, softmax/top-k).
  sim::TimeNs cpu_preprocess_base = sim::microseconds(2500);
  /// Extra preprocess time per input megapixel-channel (resize cost scales
  /// with the model's input size).
  sim::TimeNs cpu_preprocess_per_mpixel = sim::microseconds(5500);
  sim::TimeNs cpu_postprocess = sim::microseconds(900);
  double cpu_busy_current_amps = 0.350;  // one A53 core at full tilt
  /// Low-power domain blip while the DPU driver fields the done-interrupt.
  double lpd_irq_current_amps = 0.012;
  sim::TimeNs lpd_irq_duration = sim::microseconds(400);
  /// LPD draw while the DPU runtime keeps the accelerator fed (descriptor
  /// fetches through the platform-management path).
  double lpd_driver_current_amps = 0.009;

  /// Relative jitter (1 sigma) on CPU pre/post-processing durations —
  /// OS scheduling noise that decorrelates repeated traces.
  double cpu_jitter_fraction = 0.03;
};

/// Per-layer execution estimate.
struct LayerTiming {
  sim::TimeNs duration{0};
  double fpga_current_amps = 0.0;  // added above idle while the layer runs
  double dram_current_amps = 0.0;
  double mac_utilization = 0.0;
};

class DpuAccelerator {
 public:
  explicit DpuAccelerator(DpuConfig config = {});

  [[nodiscard]] fpga::CircuitDescriptor descriptor() const;

  [[nodiscard]] LayerTiming layer_timing(const dnn::Layer& layer) const;

  /// Accelerator-only latency of one inference (no CPU phases).
  [[nodiscard]] sim::TimeNs inference_latency(const dnn::Model& model) const;

  /// Full per-inference period including ARM pre/post-processing (jitter-free
  /// nominal value).
  [[nodiscard]] sim::TimeNs inference_period(const dnn::Model& model) const;

  struct RunResult {
    power::RailActivity activity;
    std::size_t inference_count = 0;
  };

  /// Run back-to-back inferences from `start` until the first inference that
  /// would begin at or after `end` (the paper runs each model "in series" for
  /// 5 s). `seed` drives the OS-jitter on the CPU phases.
  [[nodiscard]] RunResult run(const dnn::Model& model, sim::TimeNs start,
                              sim::TimeNs end, std::uint64_t seed) const;

  [[nodiscard]] const DpuConfig& config() const { return config_; }

 private:
  [[nodiscard]] sim::TimeNs preprocess_duration(const dnn::Model& model) const;
  DpuConfig config_;
};

}  // namespace amperebleed::dpu
