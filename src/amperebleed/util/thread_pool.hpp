#pragma once
// util::ThreadPool — the persistent worker pool behind util::parallel_for.
//
// The previous parallel_for spawned fresh std::threads on every call, which
// made fine-grained parallel regions (per-fold CV, per-tree forest training,
// per-row batched inference) pay thread-creation latency on every invocation.
// This pool keeps its workers alive for the life of the process and hands
// them chunked index ranges from an atomic cursor instead.
//
// Contracts:
//   * Determinism. run(n, fn) promises only that fn(i) executes exactly once
//     for every i in [0, n); callers write results to pre-sized slots (no
//     shared mutable state inside fn), so every experiment is bit-for-bit
//     reproducible at any pool size. With size() == 1 the pool owns no
//     worker threads at all and run() degenerates to an exact serial loop on
//     the calling thread, in index order.
//   * Fail-fast. The first exception thrown by fn cancels the remaining
//     sweep: every participant checks a shared cancellation flag before each
//     fn(i), and the captured exception is rethrown on the caller once all
//     in-flight tasks have drained.
//   * Nesting. A parallel region launched from inside another region's task
//     (ThreadPool::in_worker()) executes serially inline — the outermost
//     loop owns the parallelism, inner loops stay deterministic and cheap.
//   * Sizing. The process-wide pool (global()) is sized from the
//     AMPEREBLEED_THREADS environment variable (else hardware concurrency);
//     the bench --threads flag resizes it via set_global_threads().
//
// Observability (only when obs metrics are enabled): pool.size /
// pool.queue_depth / pool.active_workers gauges, pool.regions / pool.tasks /
// pool.cancelled_regions counters, and pool.task_wall_ns /
// pool.region_wall_ns P2-quantile histograms.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "amperebleed/obs/context.hpp"

namespace amperebleed::util {

class ThreadPool {
 public:
  /// `threads` is the total executor count including the caller of run();
  /// the pool spawns threads-1 workers. 0 picks default_size(). Size 1
  /// spawns nothing and makes run() an exact serial fallback.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Configured executor count (workers + the participating caller).
  [[nodiscard]] std::size_t size() const {
    return size_.load(std::memory_order_relaxed);
  }

  /// Execute fn(i) exactly once for every i in [0, n). The calling thread
  /// participates; at most min(size(), n, max_participants) threads execute
  /// tasks (max_participants == 0 means "no extra cap"). Blocks until every
  /// task has finished or the sweep was cancelled by an exception, which is
  /// then rethrown here. Concurrent run() calls from different threads are
  /// serialized (one region at a time).
  void run(std::size_t n, const std::function<void(std::size_t)>& fn,
           std::size_t max_participants = 0);

  /// Join all workers and respawn at the new size (0 = default_size()).
  /// Blocks until the pool is idle; must not be called from inside a task.
  void resize(std::size_t threads);

  /// True while the calling thread is executing inside a run() task.
  [[nodiscard]] static bool in_worker();

  /// The process-wide pool used by util::parallel_for. Constructed on first
  /// use at default_size(); never re-created.
  static ThreadPool& global();
  /// Resize the global pool — the bench `--threads N` flag lands here.
  static void set_global_threads(std::size_t threads);
  /// AMPEREBLEED_THREADS environment override (if a positive integer), else
  /// std::thread::hardware_concurrency(), never less than 1.
  static std::size_t default_size();

 private:
  /// One parallel region. Lives on the run() caller's stack; workers only
  /// reach it through region_ (guarded by mu_), and run() does not return
  /// until every participant has left execute().
  struct Region {
    std::size_t n = 0;
    std::size_t chunk = 1;
    const std::function<void(std::size_t)>* fn = nullptr;
    std::atomic<std::size_t> next{0};     // index cursor, claimed in chunks
    std::atomic<bool> cancelled{false};   // fail-fast flag
    std::size_t tickets = 0;              // worker slots left (guarded by mu_)
    std::exception_ptr error;             // first throw (guarded by mu_)
    /// Causal-trace capture (tracing only): the submitting thread's span
    /// context and this region's id, re-installed around every task via
    /// obs::TaskScope so task spans parent to the submitter's span.
    bool traced = false;
    obs::SpanContext trace_ctx;
    std::uint64_t region_id = 0;
  };

  void spawn_workers_locked();
  void execute(Region& region, bool instrumented, bool is_caller);

  mutable std::mutex mu_;
  std::condition_variable wake_cv_;  // workers sleep here between regions
  std::condition_variable done_cv_;  // run() waits here for workers to leave
  std::vector<std::thread> workers_;
  Region* region_ = nullptr;  // nullptr = no joinable region
  std::uint64_t epoch_ = 0;   // bumped per published region
  std::size_t active_ = 0;    // workers currently inside execute()
  bool stop_ = false;
  std::atomic<std::size_t> size_{1};
  std::atomic<int> occupancy_{0};  // executors inside execute() (for obs)

  std::mutex region_mu_;  // serializes concurrent run() callers
};

}  // namespace amperebleed::util
