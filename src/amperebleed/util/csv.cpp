#include "amperebleed/util/csv.hpp"

#include <cstdio>
#include <stdexcept>

namespace amperebleed::util {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quote =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::row_doubles(const std::vector<double>& cells) {
  char buf[64];
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    std::snprintf(buf, sizeof buf, "%.17g", cells[i]);
    out_ << buf;
  }
  out_ << '\n';
}

}  // namespace amperebleed::util
