#pragma once
// Small filesystem helpers shared by the obs snapshot sink and the persist
// durability layer. The centerpiece is atomic_write_file: write-temp +
// fsync + rename, so a reader (or a crash-recovery scan) either sees the
// previous complete file or the new complete file, never a torn one.

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace amperebleed::util {

/// Progress callback for atomic_write_file. Invoked after each durable step
/// with a phase name ("tmp-partial", "tmp-synced", "renamed"); the persist
/// layer hangs its deterministic kill-points off these so a crash-recovery
/// harness can interrupt the write at every intermediate state. A throwing
/// observer aborts the write mid-flight and deliberately leaves the
/// temporary file behind — exactly what a real crash would.
using AtomicWriteObserver = std::function<void(std::string_view phase)>;

/// Write `bytes` to `path` atomically: write `path + ".tmp"`, fsync it,
/// rename over `path`, then fsync the containing directory so the rename
/// itself is durable (without that a power cut can resurrect the old file
/// even though later writes survived). On rename failure the temporary is
/// removed. Throws std::runtime_error on any IO failure.
void atomic_write_file(const std::string& path, std::string_view bytes,
                       const AtomicWriteObserver& observer = {});

/// fsync a directory so recent entry changes in it (create/rename/unlink)
/// are durable. Filesystems that reject directory fsync (EINVAL/ENOTSUP)
/// are tolerated; anything else throws std::runtime_error.
void fsync_dir(const std::string& path);

/// Whole file as a byte string. Throws std::runtime_error when the file
/// cannot be opened or read.
[[nodiscard]] std::string read_file(const std::string& path);

/// True when `path` names an existing file or directory.
[[nodiscard]] bool path_exists(const std::string& path);

/// Create `path` (and missing parents) as a directory. Throws on failure;
/// an already existing directory is not an error.
void make_dirs(const std::string& path);

/// Names (not paths) of the directory's entries, sorted, '.'/'..' excluded.
/// Throws std::runtime_error when the directory cannot be opened.
[[nodiscard]] std::vector<std::string> list_dir(const std::string& path);

/// Delete a file; missing files are not an error. Throws on other failures.
void remove_file(const std::string& path);

}  // namespace amperebleed::util
