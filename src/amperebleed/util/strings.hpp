#pragma once
// Small string helpers shared by the hwmon virtual filesystem and report
// rendering. Kept header-light; implementations in strings.cpp.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace amperebleed::util {

/// FNV-1a 64-bit — a stable, platform-independent string hash, used to turn
/// attribute paths into decision-stream identifiers for fault schedules and
/// retry jitter (std::hash makes no cross-platform promise).
std::uint64_t fnv1a(std::string_view s) noexcept;

/// Split `s` on `sep`, keeping empty fields ("a//b" -> {"a","","b"}).
std::vector<std::string> split(std::string_view s, char sep);

/// Split a filesystem-like path on '/', dropping empty components
/// ("/sys//class/" -> {"sys","class"}).
std::vector<std::string> split_path(std::string_view path);

/// Join components with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Parse a decimal integer the way sysfs consumers do: optional sign,
/// optional trailing newline/whitespace; returns nullopt on garbage.
std::optional<long long> parse_ll(std::string_view s);

/// printf-style formatting into std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace amperebleed::util
