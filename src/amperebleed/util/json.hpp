#pragma once
// Minimal JSON writer for machine-readable experiment output (--json flags
// on the bench binaries). Write-only by design — the library never needs to
// parse JSON, so no parser is shipped.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace amperebleed::util {

/// An owned JSON value. Build with the static constructors / mutators and
/// serialize with dump(). Object keys keep insertion order.
class Json {
 public:
  Json() : value_(nullptr) {}  // null

  static Json boolean(bool v);
  static Json number(double v);
  static Json integer(std::int64_t v);
  static Json string(std::string v);
  static Json array();
  static Json object();

  /// Append to an array. Throws std::logic_error if not an array.
  Json& push_back(Json v);
  /// Set an object member (inserting or replacing). Throws if not an object.
  Json& set(const std::string& key, Json v);

  [[nodiscard]] bool is_null() const;
  [[nodiscard]] bool is_array() const;
  [[nodiscard]] bool is_object() const;
  [[nodiscard]] std::size_t size() const;  // array/object arity, else 0

  /// Serialize. `indent` > 0 pretty-prints with that many spaces per level.
  [[nodiscard]] std::string dump(int indent = 0) const;

  /// JSON string escaping (exposed for tests).
  static std::string escape(const std::string& s);

 private:
  struct ObjectRep {
    std::vector<std::pair<std::string, Json>> members;
  };
  using Array = std::vector<Json>;
  std::variant<std::nullptr_t, bool, double, std::int64_t, std::string,
               std::shared_ptr<Array>, std::shared_ptr<ObjectRep>>
      value_;

  void dump_to(std::string& out, int indent, int depth) const;
};

}  // namespace amperebleed::util
