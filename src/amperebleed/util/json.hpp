#pragma once
// Minimal JSON value for machine-readable experiment output (--json /
// --metrics-out / --trace-out flags on the bench binaries). Ships both a
// writer and a small recursive-descent parser — the obs tests parse exported
// metrics snapshots and Chrome trace files back to verify well-formedness.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace amperebleed::util {

/// An owned JSON value. Build with the static constructors / mutators and
/// serialize with dump(). Object keys keep insertion order.
class Json {
 public:
  /// Hard cap on container nesting, enforced by both parse() (hostile
  /// documents — e.g. a snapshot or run-record file of 1M '['s — would
  /// otherwise recurse the descent parser off the stack) and dump()
  /// (programmatically built cycles/towers). Crossing it throws
  /// std::runtime_error mentioning "nesting too deep".
  static constexpr int kMaxDepth = 256;

  Json() : value_(nullptr) {}  // null

  static Json boolean(bool v);
  static Json number(double v);
  static Json integer(std::int64_t v);
  static Json string(std::string v);
  static Json array();
  static Json object();

  /// Parse a JSON document. Throws std::runtime_error (with an offset in the
  /// message) on malformed input or trailing garbage. Numbers without '.',
  /// 'e' or 'E' that fit an int64 parse as integers, everything else as
  /// double; \uXXXX escapes decode to UTF-8 (surrogate pairs included).
  static Json parse(std::string_view text);

  /// Append to an array. Throws std::logic_error if not an array.
  Json& push_back(Json v);
  /// Set an object member (inserting or replacing). Throws if not an object.
  Json& set(const std::string& key, Json v);

  [[nodiscard]] bool is_null() const;
  [[nodiscard]] bool is_boolean() const;
  [[nodiscard]] bool is_number() const;   // double or integer
  [[nodiscard]] bool is_integer() const;  // integer representation only
  [[nodiscard]] bool is_string() const;
  [[nodiscard]] bool is_array() const;
  [[nodiscard]] bool is_object() const;
  [[nodiscard]] std::size_t size() const;  // array/object arity, else 0

  // --- Read access (for parsed documents). Type mismatches throw
  // std::logic_error; as_number() accepts both double and integer values.
  [[nodiscard]] bool as_boolean() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] std::int64_t as_integer() const;
  [[nodiscard]] const std::string& as_string() const;

  /// Object member lookup; nullptr when absent (throws if not an object).
  [[nodiscard]] const Json* find(const std::string& key) const;
  /// Array element; throws std::out_of_range / std::logic_error.
  [[nodiscard]] const Json& at(std::size_t index) const;
  /// Object member keys in insertion order (throws if not an object).
  [[nodiscard]] std::vector<std::string> keys() const;

  /// Serialize. `indent` > 0 pretty-prints with that many spaces per level.
  /// Throws std::runtime_error when containers nest deeper than kMaxDepth.
  [[nodiscard]] std::string dump(int indent = 0) const;

  /// JSON string escaping (exposed for tests).
  static std::string escape(const std::string& s);

 private:
  struct ObjectRep {
    std::vector<std::pair<std::string, Json>> members;
  };
  using Array = std::vector<Json>;
  std::variant<std::nullptr_t, bool, double, std::int64_t, std::string,
               std::shared_ptr<Array>, std::shared_ptr<ObjectRep>>
      value_;

  void dump_to(std::string& out, int indent, int depth) const;
};

}  // namespace amperebleed::util
