#include "amperebleed/util/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace amperebleed::util::simd {

namespace {

/// Active tier + 1; 0 means "not resolved yet" so the first active_tier()
/// call can lazily apply AMPEREBLEED_SIMD.
std::atomic<int> g_active{0};

bool host_has_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

SimdTier clamp_to_available(SimdTier tier) {
  if (tier == SimdTier::kAvx2 && !host_has_avx2()) {
    return detect_best_tier();
  }
  return tier;
}

SimdTier resolve_from_env() {
  const char* env = std::getenv("AMPEREBLEED_SIMD");
  if (env == nullptr || *env == '\0') return detect_best_tier();
  return clamp_to_available(tier_from_name(env));
}

}  // namespace

std::string_view tier_name(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return "scalar";
    case SimdTier::kInterleaved:
      return "interleaved";
    case SimdTier::kAvx2:
      return "avx2";
  }
  return "unknown";
}

SimdTier tier_from_name(std::string_view name) {
  if (name == "scalar" || name == "off") return SimdTier::kScalar;
  if (name == "interleaved" || name == "neon") return SimdTier::kInterleaved;
  if (name == "avx2") return SimdTier::kAvx2;
  if (name == "auto") return detect_best_tier();
  throw std::invalid_argument(
      "simd: unknown tier '" + std::string(name) +
      "' (expected off|scalar|interleaved|neon|avx2|auto)");
}

SimdTier detect_best_tier() {
  return host_has_avx2() ? SimdTier::kAvx2 : SimdTier::kInterleaved;
}

std::vector<SimdTier> available_tiers() {
  std::vector<SimdTier> tiers{SimdTier::kScalar, SimdTier::kInterleaved};
  if (host_has_avx2()) tiers.push_back(SimdTier::kAvx2);
  return tiers;
}

SimdTier active_tier() {
  int raw = g_active.load(std::memory_order_relaxed);
  if (raw == 0) {
    const SimdTier resolved = resolve_from_env();
    // First resolver wins; a concurrent set_active_tier keeps its value.
    int expected = 0;
    g_active.compare_exchange_strong(expected,
                                     static_cast<int>(resolved) + 1,
                                     std::memory_order_relaxed);
    raw = g_active.load(std::memory_order_relaxed);
  }
  return static_cast<SimdTier>(raw - 1);
}

std::string_view active_tier_name() { return tier_name(active_tier()); }

SimdTier set_active_tier(SimdTier tier) {
  const SimdTier installed = clamp_to_available(tier);
  g_active.store(static_cast<int>(installed) + 1, std::memory_order_relaxed);
  return installed;
}

}  // namespace amperebleed::util::simd
