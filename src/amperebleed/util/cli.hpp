#pragma once
// Minimal command-line flag parsing for the bench/example binaries:
// --name value or --name=value; unknown flags throw. Header-only.

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace amperebleed::util {

class CliArgs {
 public:
  CliArgs(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string_view arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        throw std::invalid_argument("unexpected positional argument: " +
                                    std::string(arg));
      }
      arg.remove_prefix(2);
      const auto eq = arg.find('=');
      if (eq != std::string_view::npos) {
        values_[std::string(arg.substr(0, eq))] =
            std::string(arg.substr(eq + 1));
      } else if (i + 1 < argc &&
                 std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
        values_[std::string(arg)] = argv[++i];
      } else {
        values_[std::string(arg)] = "1";  // boolean flag
      }
    }
  }

  [[nodiscard]] bool has(const std::string& name) const {
    return values_.count(name) != 0;
  }

  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    // Base 0 auto-detects 0x/0 prefixes, so hex seeds (--fault-seed 0xfa17)
    // parse as intended instead of silently stopping at the 'x'.
    return std::stoll(it->second, nullptr, 0);
  }

  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    return std::stod(it->second);
  }

  [[nodiscard]] std::string get_string(const std::string& name,
                                       std::string fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace amperebleed::util
