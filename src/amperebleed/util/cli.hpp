#pragma once
// Minimal command-line flag parsing for the bench/example binaries:
// --name value or --name=value. Positional (non-flag) arguments throw, and
// get_int/get_double reject values with unparsed trailing characters
// ("--threads 4abc", "--rate 0.1x") instead of silently truncating them.
// Unknown flags are NOT diagnosed — CliArgs has no schema to check against.
// Header-only.

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace amperebleed::util {

class CliArgs {
 public:
  CliArgs(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string_view arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        throw std::invalid_argument("unexpected positional argument: " +
                                    std::string(arg));
      }
      arg.remove_prefix(2);
      const auto eq = arg.find('=');
      if (eq != std::string_view::npos) {
        values_[std::string(arg.substr(0, eq))] =
            std::string(arg.substr(eq + 1));
      } else if (i + 1 < argc &&
                 std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
        values_[std::string(arg)] = argv[++i];
      } else {
        values_[std::string(arg)] = "1";  // boolean flag
      }
    }
  }

  [[nodiscard]] bool has(const std::string& name) const {
    return values_.count(name) != 0;
  }

  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    // Base 0 auto-detects 0x/0 prefixes, so hex seeds (--fault-seed 0xfa17)
    // parse as intended instead of silently stopping at the 'x'.
    std::size_t consumed = 0;
    std::int64_t value = 0;
    try {
      value = std::stoll(it->second, &consumed, 0);
    } catch (const std::exception&) {
      throw invalid_value(name, it->second);
    }
    if (consumed != it->second.size()) throw invalid_value(name, it->second);
    return value;
  }

  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    std::size_t consumed = 0;
    double value = 0.0;
    try {
      value = std::stod(it->second, &consumed);
    } catch (const std::exception&) {
      throw invalid_value(name, it->second);
    }
    if (consumed != it->second.size()) throw invalid_value(name, it->second);
    return value;
  }

  [[nodiscard]] std::string get_string(const std::string& name,
                                       std::string fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }

 private:
  [[nodiscard]] static std::invalid_argument invalid_value(
      const std::string& name, const std::string& value) {
    return std::invalid_argument("invalid value for --" + name + ": '" +
                                 value + "'");
  }

  std::map<std::string, std::string> values_;
};

}  // namespace amperebleed::util
