#pragma once
// Deterministic work-sharing helper: run fn(i) for i in [0, n) on the
// process-wide util::ThreadPool (see thread_pool.hpp) instead of spawning
// fresh std::threads per call. Results must be written to pre-sized slots
// (no shared mutable state inside fn), which keeps every experiment
// bit-for-bit reproducible regardless of the pool size.
//
// Semantics:
//   * `max_threads` caps how many pool executors participate (0 = the
//     pool's configured size). It never grows the pool — size the pool with
//     AMPEREBLEED_THREADS / --threads / ThreadPool::set_global_threads().
//   * With an effective thread count of 1, or when already inside another
//     parallel region (nested call), the loop runs serially inline on the
//     caller, in index order.
//   * Fail-fast: the first exception thrown by fn cancels the remaining
//     sweep (participants check a shared cancellation flag before each
//     fn(i)) and is rethrown on the caller.

#include <cstddef>
#include <functional>

#include "amperebleed/obs/obs.hpp"
#include "amperebleed/util/thread_pool.hpp"

namespace amperebleed::util {

template <typename Fn>
void parallel_for(std::size_t n, Fn&& fn, std::size_t max_threads = 0) {
  if (n == 0) return;
  ThreadPool& pool = ThreadPool::global();
  if (!obs::tracing_enabled() &&
      (n == 1 || max_threads == 1 || pool.size() <= 1 ||
       ThreadPool::in_worker())) {
    // Untraced serial fast path: no type erasure, no region bookkeeping.
    // With tracing on, every invocation goes through pool.run() instead so
    // each iteration gets the same TaskScope (task parentage + region/task
    // attributes) at any pool size — run() falls back to its own serial
    // loop for these cases, producing an identical trace tree shape.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // One type-erasure per region (not per index); the callable lives on this
  // stack frame for the duration of the region.
  const std::function<void(std::size_t)> erased = [&fn](std::size_t i) {
    fn(i);
  };
  pool.run(n, erased, max_threads);
}

}  // namespace amperebleed::util
