#pragma once
// Tiny deterministic work-sharing helper: run fn(i) for i in [0, n) on up to
// `threads` std::threads. Results must be written to pre-sized slots (no
// shared mutable state inside fn), which keeps every experiment bit-for-bit
// reproducible regardless of the thread count.

#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace amperebleed::util {

template <typename Fn>
void parallel_for(std::size_t n, Fn&& fn, std::size_t threads = 0) {
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : hw;
  }
  if (threads <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  threads = std::min(threads, n);

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& th : pool) th.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace amperebleed::util
