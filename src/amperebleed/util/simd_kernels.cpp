#include "amperebleed/util/simd_kernels.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

#include "amperebleed/util/simd.hpp"

namespace amperebleed::util::simd {

namespace {

void normalize_scalar(double* xs, std::size_t n, double mean, double stddev) {
  for (std::size_t i = 0; i < n; ++i) xs[i] = (xs[i] - mean) / stddev;
}

// Deliberately unfused mul+add: the pre-PR9 detrend compiled this shape for
// baseline x86-64, where no FMA contraction is possible. A fused trend value
// differs by an ulp, and the subtraction below cancels — amplifying that ulp
// into the residual. Keeping two roundings in every tier is what makes the
// rewrite bit-identical.
void remove_trend_scalar(double* xs, std::size_t n, double slope,
                         double intercept) {
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] -= slope * static_cast<double>(i) + intercept;
  }
}

#if defined(__x86_64__) || defined(__i386__)

__attribute__((target("avx2"))) void normalize_avx2(double* xs, std::size_t n,
                                                    double mean,
                                                    double stddev) {
  const __m256d vm = _mm256_set1_pd(mean);
  const __m256d vs = _mm256_set1_pd(stddev);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_loadu_pd(xs + i);
    _mm256_storeu_pd(xs + i, _mm256_div_pd(_mm256_sub_pd(x, vm), vs));
  }
  for (; i < n; ++i) xs[i] = (xs[i] - mean) / stddev;
}

// target("avx2") WITHOUT fma: enabling FMA would let the compiler contract
// the mul+add intrinsic pair into vfmadd, breaking the unfused contract
// remove_trend_scalar documents.
__attribute__((target("avx2"))) void remove_trend_avx2(double* xs,
                                                       std::size_t n,
                                                       double slope,
                                                       double intercept) {
  const __m256d vslope = _mm256_set1_pd(slope);
  const __m256d vinter = _mm256_set1_pd(intercept);
  const __m256d step = _mm256_set1_pd(4.0);
  __m256d idx = _mm256_setr_pd(0.0, 1.0, 2.0, 3.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_loadu_pd(xs + i);
    const __m256d trend = _mm256_add_pd(_mm256_mul_pd(vslope, idx), vinter);
    _mm256_storeu_pd(xs + i, _mm256_sub_pd(x, trend));
    idx = _mm256_add_pd(idx, step);
  }
  for (; i < n; ++i) {
    xs[i] -= slope * static_cast<double>(i) + intercept;
  }
}

#endif  // x86

}  // namespace

void normalize(double* xs, std::size_t n, double mean, double stddev) {
#if defined(__x86_64__) || defined(__i386__)
  if (active_tier() == SimdTier::kAvx2) {
    normalize_avx2(xs, n, mean, stddev);
    return;
  }
#endif
  normalize_scalar(xs, n, mean, stddev);
}

void remove_trend(double* xs, std::size_t n, double slope, double intercept) {
#if defined(__x86_64__) || defined(__i386__)
  if (active_tier() == SimdTier::kAvx2) {
    remove_trend_avx2(xs, n, slope, intercept);
    return;
  }
#endif
  remove_trend_scalar(xs, n, slope, intercept);
}

}  // namespace amperebleed::util::simd
