#pragma once
// Elementwise double kernels shared by the trace->vector pipeline, runtime
// dispatched on util::simd::active_tier() (DESIGN.md §14).
//
// Both kernels are bit-identical across tiers by construction:
//   normalize     (x - mean) / stddev — sub + div only, no fusable
//                 multiply-add shape, so scalar and AVX2 agree exactly.
//   remove_trend  x -= slope * i + intercept — deliberately UNFUSED
//                 (two roundings) in every tier, matching the shape the
//                 pre-PR9 detrend compiled to on baseline x86-64 where no
//                 FMA contraction exists. A fused trend would differ by an
//                 ulp that the cancelling subtraction amplifies.

#include <cstddef>

namespace amperebleed::util::simd {

/// xs[i] = (xs[i] - mean) / stddev for i in [0, n).
void normalize(double* xs, std::size_t n, double mean, double stddev);

/// xs[i] -= slope * i + intercept for i in [0, n), unfused in every tier.
void remove_trend(double* xs, std::size_t n, double slope, double intercept);

}  // namespace amperebleed::util::simd
