#include "amperebleed/util/rng.hpp"

#include <cmath>

namespace amperebleed::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t s = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  return splitmix64(s);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high-quality bits -> double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_below(std::uint64_t n) noexcept {
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? next() : uniform_below(span));
}

double Rng::gaussian() noexcept {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::gaussian(double mean, double stddev) noexcept {
  return mean + stddev * gaussian();
}

bool Rng::bernoulli(double p_true) noexcept { return uniform() < p_true; }

Rng Rng::fork(std::uint64_t stream) const noexcept {
  return Rng{hash_combine(seed_, stream)};
}

}  // namespace amperebleed::util
