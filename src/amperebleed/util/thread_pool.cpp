#include "amperebleed/util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

#include "amperebleed/obs/obs.hpp"

namespace amperebleed::util {

namespace {

/// Depth of nested run() task execution on this thread. Any parallel region
/// launched while this is > 0 runs serially inline (the outermost region
/// owns the pool), which also makes nested regions deadlock-free.
thread_local int t_task_depth = 0;

}  // namespace

bool ThreadPool::in_worker() { return t_task_depth > 0; }

std::size_t ThreadPool::default_size() {
  if (const char* env = std::getenv("AMPEREBLEED_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) {
      return static_cast<std::size_t>(parsed);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool& ThreadPool::global() {
  // Function-local static: workers are joined at normal program exit, so
  // the leak-sanitizer leg stays clean.
  static ThreadPool pool;
  return pool;
}

void ThreadPool::set_global_threads(std::size_t threads) {
  global().resize(threads);
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = default_size();
  size_.store(threads, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  spawn_workers_locked();
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::spawn_workers_locked() {
  const std::size_t target = size_.load(std::memory_order_relaxed);
  for (std::size_t i = 1; i < target; ++i) {
    workers_.emplace_back([this] {
      std::uint64_t seen_epoch = 0;
      std::unique_lock<std::mutex> lock(mu_);
      for (;;) {
        wake_cv_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
        if (stop_) return;
        seen_epoch = epoch_;
        Region* region = region_;
        if (region == nullptr || region->tickets == 0) continue;
        --region->tickets;
        ++active_;
        lock.unlock();
        execute(*region, obs::metrics_enabled(), /*is_caller=*/false);
        lock.lock();
        --active_;
        if (active_ == 0) done_cv_.notify_all();
      }
    });
  }
}

void ThreadPool::resize(std::size_t threads) {
  if (threads == 0) threads = default_size();
  // region_mu_ guarantees no region is active while workers are replaced.
  std::lock_guard<std::mutex> region_lock(region_mu_);
  if (threads == size()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
  workers_.clear();
  std::lock_guard<std::mutex> lock(mu_);
  stop_ = false;
  size_.store(threads, std::memory_order_relaxed);
  spawn_workers_locked();
}

void ThreadPool::run(std::size_t n,
                     const std::function<void(std::size_t)>& fn,
                     std::size_t max_participants) {
  if (n == 0) return;
  std::size_t participants = size();
  if (max_participants != 0) {
    participants = std::min(participants, max_participants);
  }
  participants = std::min(participants, n);

  if (participants <= 1 || in_worker()) {
    // Exact serial fallback: caller's thread, index order; the first throw
    // propagates immediately (nothing else is in flight). With tracing on,
    // each iteration still runs under a TaskScope so the trace tree (task
    // parentage, region_id/task_index attributes) has the same shape the
    // pooled path produces — pool size must not change the recorded tree.
    if (obs::tracing_enabled()) {
      const obs::SpanContext parent = obs::current_context();
      const std::uint64_t region_id = obs::next_region_id();
      for (std::size_t i = 0; i < n; ++i) {
        obs::TaskScope scope(parent, region_id, i);
        fn(i);
      }
    } else {
      for (std::size_t i = 0; i < n; ++i) fn(i);
    }
    return;
  }

  std::lock_guard<std::mutex> region_lock(region_mu_);
  const bool instrumented = obs::metrics_enabled();
  std::int64_t region_t0 = 0;
  if (instrumented) {
    region_t0 = obs::tracer().wall_now_ns();
    obs::gauge_set("pool.size", static_cast<double>(size()));
    obs::gauge_set("pool.queue_depth", static_cast<double>(n));
    obs::count("pool.regions");
    obs::count("pool.tasks", n);
    obs::observe("pool.region_tasks", static_cast<double>(n));
  }

  Region region;
  region.n = n;
  region.fn = &fn;
  region.chunk = std::max<std::size_t>(1, n / (participants * 4));
  region.traced = obs::tracing_enabled();
  if (region.traced) {
    // Capture the submitting thread's causal context by value: workers
    // restore it around each task, and the flow "s"/"f" pair draws the
    // cross-thread edge in the trace viewer.
    region.trace_ctx = obs::current_context();
    region.region_id = obs::next_region_id();
    obs::flow('s', region.region_id, "parallel_for");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    region.tickets = participants - 1;  // the caller takes one slot itself
    region_ = &region;
    ++epoch_;
  }
  wake_cv_.notify_all();

  execute(region, instrumented, /*is_caller=*/true);

  {
    std::unique_lock<std::mutex> lock(mu_);
    region_ = nullptr;   // late wakers must not join the finished region
    region.tickets = 0;
    done_cv_.wait(lock, [&] { return active_ == 0; });
  }

  if (instrumented) {
    obs::gauge_set("pool.queue_depth", 0.0);
    obs::observe("pool.region_wall_ns",
                 static_cast<double>(obs::tracer().wall_now_ns() - region_t0));
  }
  if (region.error) {
    obs::count("pool.cancelled_regions");
    std::rethrow_exception(region.error);
  }
}

void ThreadPool::execute(Region& region, bool instrumented, bool is_caller) {
  ++t_task_depth;
  if (instrumented) {
    const int occupied = occupancy_.fetch_add(1, std::memory_order_relaxed);
    obs::gauge_set("pool.active_workers", static_cast<double>(occupied + 1));
  }
  // One flow-finish edge per non-caller participant, on its first task.
  bool flow_bound = !region.traced || is_caller;
  bool draining = true;
  while (draining) {
    if (region.cancelled.load(std::memory_order_relaxed)) break;
    const std::size_t begin =
        region.next.fetch_add(region.chunk, std::memory_order_relaxed);
    if (begin >= region.n) break;
    if (!flow_bound) {
      obs::flow('f', region.region_id, "parallel_for");
      flow_bound = true;
    }
    const std::size_t end = std::min(begin + region.chunk, region.n);
    for (std::size_t i = begin; i < end; ++i) {
      // Fail-fast: re-check cancellation before every task so one thrown
      // exception stops the whole sweep promptly.
      if (region.cancelled.load(std::memory_order_relaxed)) {
        draining = false;
        break;
      }
      const std::int64_t t0 = instrumented ? obs::tracer().wall_now_ns() : 0;
      try {
        if (region.traced) {
          // The TaskScope restores the previous context even on throw (it
          // unwinds before the catch below).
          obs::TaskScope scope(region.trace_ctx, region.region_id, i);
          (*region.fn)(i);
        } else {
          (*region.fn)(i);
        }
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(mu_);
          if (!region.error) region.error = std::current_exception();
        }
        region.cancelled.store(true, std::memory_order_relaxed);
        draining = false;
        break;
      }
      if (instrumented) {
        obs::observe("pool.task_wall_ns",
                     static_cast<double>(obs::tracer().wall_now_ns() - t0));
      }
    }
  }
  if (instrumented) {
    const int occupied = occupancy_.fetch_sub(1, std::memory_order_relaxed);
    obs::gauge_set("pool.active_workers", static_cast<double>(occupied - 1));
  }
  --t_task_depth;
}

}  // namespace amperebleed::util
