#pragma once
// Runtime-dispatched SIMD kernel tiers for the inference and preprocessing
// hot paths (DESIGN.md §14).
//
// Three tiers, selected once per process and readable from any thread:
//
//   kScalar       the original branchy row-at-a-time kernels. Forced with
//                 AMPEREBLEED_SIMD=off (or =scalar) / --simd off — the CI
//                 determinism leg byte-diffs this tier against auto.
//   kInterleaved  branchless multi-row lockstep kernels written in plain
//                 C++ selects (cmov / compiler-autovectorizable). This is
//                 the NEON tier: on aarch64 the lane loops vectorize to
//                 NEON compare/bit-select; "neon" is accepted as an alias.
//   kAvx2         the same lockstep kernels with AVX2 gather/blend
//                 intrinsics (x86-64 only, runtime-detected via cpuid).
//
// Every tier is bit-identical for the forest traversal and for the
// preprocess kernels that feed features: traversal is pure comparisons and
// the accumulation order never changes, so the dispatch-sweep tests assert
// EXACT equality across tiers (see tests/ml/simd_dispatch_test.cpp).
//
// Selection precedence: explicit set_active_tier() (the --simd flag, via
// bench::ObsSession) > AMPEREBLEED_SIMD env > detect_best_tier(). Asking
// for an unavailable tier (e.g. avx2 on ARM) clamps to the best available
// one rather than failing — a forced-scalar request is always honoured.
// The selected tier is exported as the simd.tier obs gauge and lands in
// every RunRecord's env provenance as "simd_tier", so bench_compare can
// refuse cross-tier perf comparisons.

#include <string_view>
#include <vector>

namespace amperebleed::util::simd {

enum class SimdTier : int {
  kScalar = 0,
  kInterleaved = 1,  // the NEON tier: branchless lockstep, autovectorized
  kAvx2 = 2,
};

/// Canonical tier name: "scalar" | "interleaved" | "avx2".
std::string_view tier_name(SimdTier tier);

/// Parse a tier name. Accepts the canonical names plus the aliases
/// "off" -> kScalar, "neon" -> kInterleaved, and "auto" -> detect_best_tier().
/// Throws std::invalid_argument on anything else.
SimdTier tier_from_name(std::string_view name);

/// Best tier this host can run: kAvx2 on x86-64 with AVX2, else
/// kInterleaved (the branchless kernels need no special instructions).
SimdTier detect_best_tier();

/// Tiers runnable on this host, ascending (always includes kScalar and
/// kInterleaved; kAvx2 when the CPU has it). The dispatch-sweep tests
/// iterate this.
std::vector<SimdTier> available_tiers();

/// The process-wide active tier. First call resolves AMPEREBLEED_SIMD (via
/// tier_from_name; unset/empty means auto), clamped to available tiers.
/// Thread-safe; subsequent calls are a relaxed atomic load.
SimdTier active_tier();
std::string_view active_tier_name();

/// Override the active tier (the --simd flag). Clamps an unavailable
/// request down to detect_best_tier(); kScalar is always honoured.
/// Returns the tier actually installed.
SimdTier set_active_tier(SimdTier tier);

/// RAII tier override for tests: forces `tier` for the scope, restores the
/// previous tier on destruction.
class ScopedTier {
 public:
  explicit ScopedTier(SimdTier tier)
      : previous_(active_tier()), installed_(set_active_tier(tier)) {}
  ScopedTier(const ScopedTier&) = delete;
  ScopedTier& operator=(const ScopedTier&) = delete;
  ~ScopedTier() { set_active_tier(previous_); }

  /// The tier actually installed (a clamp may have applied).
  [[nodiscard]] SimdTier installed() const { return installed_; }

 private:
  SimdTier previous_;
  SimdTier installed_;
};

}  // namespace amperebleed::util::simd
