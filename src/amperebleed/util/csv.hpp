#pragma once
// Minimal CSV writer used by benches/examples to dump reproducible series
// (figure data) for external plotting.

#include <fstream>
#include <string>
#include <vector>

namespace amperebleed::util {

/// RAII CSV writer. Values containing separators/quotes are quoted per
/// RFC 4180. Throws std::runtime_error if the file cannot be opened.
class CsvWriter {
 public:
  explicit CsvWriter(const std::string& path);

  /// Write one row; each cell is escaped as needed.
  void row(const std::vector<std::string>& cells);

  /// Convenience: write a row of doubles at full precision.
  void row_doubles(const std::vector<double>& cells);

  /// Escape a single cell (exposed for testing).
  static std::string escape(const std::string& cell);

 private:
  std::ofstream out_;
};

}  // namespace amperebleed::util
