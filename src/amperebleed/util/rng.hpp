#pragma once
// Deterministic pseudo-random number generation for reproducible experiments.
//
// Every stochastic component in the library takes an explicit 64-bit seed and
// owns its own Rng instance, so experiment results are bit-for-bit
// reproducible regardless of evaluation order or threading.

#include <cstdint>
#include <vector>

namespace amperebleed::util {

/// splitmix64 — used to expand a single user seed into the four words of
/// xoshiro256** state, and handy as a cheap stateless hash.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Stateless mix of two words; used to derive independent child seeds
/// (e.g. one per trace, per sensor, per tree) from a master seed.
std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept;

/// xoshiro256** 1.0 (Blackman & Vigna) — fast, high-quality, 2^256-1 period.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept { return next(); }
  std::uint64_t next() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [0, n). Precondition: n > 0.
  std::uint64_t uniform_below(std::uint64_t n) noexcept;
  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;
  /// Standard normal via Box-Muller (cached second deviate).
  double gaussian() noexcept;
  /// Normal with given mean and standard deviation.
  double gaussian(double mean, double stddev) noexcept;
  /// Bernoulli trial.
  bool bernoulli(double p_true) noexcept;

  /// Derive an independent child generator; `stream` distinguishes children.
  Rng fork(std::uint64_t stream) const noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t state_[4];
  std::uint64_t seed_;
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace amperebleed::util
