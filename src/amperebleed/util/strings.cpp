#include "amperebleed/util/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <stdexcept>

namespace amperebleed::util {

std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_path(std::string_view path) {
  std::vector<std::string> out;
  for (auto& part : split(path, '/')) {
    if (!part.empty()) out.push_back(std::move(part));
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::optional<long long> parse_ll(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  bool negative = false;
  std::size_t i = 0;
  if (s[0] == '+' || s[0] == '-') {
    negative = s[0] == '-';
    i = 1;
  }
  if (i == s.size()) return std::nullopt;
  long long value = 0;
  for (; i < s.size(); ++i) {
    if (s[i] < '0' || s[i] > '9') return std::nullopt;
    value = value * 10 + (s[i] - '0');
  }
  return negative ? -value : value;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    throw std::runtime_error("util::format: invalid format string");
  }
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

}  // namespace amperebleed::util
