#include "amperebleed/util/json.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace amperebleed::util {

Json Json::boolean(bool v) {
  Json j;
  j.value_ = v;
  return j;
}

Json Json::number(double v) {
  Json j;
  j.value_ = v;
  return j;
}

Json Json::integer(std::int64_t v) {
  Json j;
  j.value_ = v;
  return j;
}

Json Json::string(std::string v) {
  Json j;
  j.value_ = std::move(v);
  return j;
}

Json Json::array() {
  Json j;
  j.value_ = std::make_shared<Array>();
  return j;
}

Json Json::object() {
  Json j;
  j.value_ = std::make_shared<ObjectRep>();
  return j;
}

Json& Json::push_back(Json v) {
  auto* arr = std::get_if<std::shared_ptr<Array>>(&value_);
  if (arr == nullptr) throw std::logic_error("Json::push_back: not an array");
  (*arr)->push_back(std::move(v));
  return *this;
}

Json& Json::set(const std::string& key, Json v) {
  auto* obj = std::get_if<std::shared_ptr<ObjectRep>>(&value_);
  if (obj == nullptr) throw std::logic_error("Json::set: not an object");
  for (auto& [k, existing] : (*obj)->members) {
    if (k == key) {
      existing = std::move(v);
      return *this;
    }
  }
  (*obj)->members.emplace_back(key, std::move(v));
  return *this;
}

bool Json::is_null() const {
  return std::holds_alternative<std::nullptr_t>(value_);
}

bool Json::is_boolean() const { return std::holds_alternative<bool>(value_); }

bool Json::is_number() const {
  return std::holds_alternative<double>(value_) ||
         std::holds_alternative<std::int64_t>(value_);
}

bool Json::is_integer() const {
  return std::holds_alternative<std::int64_t>(value_);
}

bool Json::is_string() const {
  return std::holds_alternative<std::string>(value_);
}

bool Json::as_boolean() const {
  const auto* b = std::get_if<bool>(&value_);
  if (b == nullptr) throw std::logic_error("Json::as_boolean: not a boolean");
  return *b;
}

double Json::as_number() const {
  if (const auto* d = std::get_if<double>(&value_)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&value_)) {
    return static_cast<double>(*i);
  }
  throw std::logic_error("Json::as_number: not a number");
}

std::int64_t Json::as_integer() const {
  if (const auto* i = std::get_if<std::int64_t>(&value_)) return *i;
  throw std::logic_error("Json::as_integer: not an integer");
}

const std::string& Json::as_string() const {
  const auto* s = std::get_if<std::string>(&value_);
  if (s == nullptr) throw std::logic_error("Json::as_string: not a string");
  return *s;
}

const Json* Json::find(const std::string& key) const {
  const auto* obj = std::get_if<std::shared_ptr<ObjectRep>>(&value_);
  if (obj == nullptr) throw std::logic_error("Json::find: not an object");
  for (const auto& [k, v] : (*obj)->members) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(std::size_t index) const {
  const auto* arr = std::get_if<std::shared_ptr<Array>>(&value_);
  if (arr == nullptr) throw std::logic_error("Json::at: not an array");
  if (index >= (*arr)->size()) throw std::out_of_range("Json::at: index");
  return (**arr)[index];
}

std::vector<std::string> Json::keys() const {
  const auto* obj = std::get_if<std::shared_ptr<ObjectRep>>(&value_);
  if (obj == nullptr) throw std::logic_error("Json::keys: not an object");
  std::vector<std::string> out;
  out.reserve((*obj)->members.size());
  for (const auto& [k, v] : (*obj)->members) out.push_back(k);
  return out;
}

bool Json::is_array() const {
  return std::holds_alternative<std::shared_ptr<Array>>(value_);
}

bool Json::is_object() const {
  return std::holds_alternative<std::shared_ptr<ObjectRep>>(value_);
}

std::size_t Json::size() const {
  if (const auto* arr = std::get_if<std::shared_ptr<Array>>(&value_)) {
    return (*arr)->size();
  }
  if (const auto* obj = std::get_if<std::shared_ptr<ObjectRep>>(&value_)) {
    return (*obj)->members.size();
  }
  return 0;
}

std::string Json::escape(const std::string& s) {
  std::string out = "\"";
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
  return out;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  if (depth > kMaxDepth) {
    throw std::runtime_error(
        "Json::dump: nesting too deep (depth > " +
        std::to_string(kMaxDepth) + ")");
  }
  const auto newline = [&](int d) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };

  if (std::holds_alternative<std::nullptr_t>(value_)) {
    out += "null";
  } else if (const auto* b = std::get_if<bool>(&value_)) {
    out += *b ? "true" : "false";
  } else if (const auto* d = std::get_if<double>(&value_)) {
    if (!std::isfinite(*d)) {
      out += "null";  // JSON has no inf/nan
    } else {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.12g", *d);
      out += buf;
    }
  } else if (const auto* i = std::get_if<std::int64_t>(&value_)) {
    out += std::to_string(*i);
  } else if (const auto* s = std::get_if<std::string>(&value_)) {
    out += escape(*s);
  } else if (const auto* arr = std::get_if<std::shared_ptr<Array>>(&value_)) {
    out += '[';
    for (std::size_t k = 0; k < (*arr)->size(); ++k) {
      if (k > 0) out += ',';
      newline(depth + 1);
      (**arr)[k].dump_to(out, indent, depth + 1);
    }
    if (!(*arr)->empty()) newline(depth);
    out += ']';
  } else if (const auto* obj =
                 std::get_if<std::shared_ptr<ObjectRep>>(&value_)) {
    out += '{';
    const auto& members = (*obj)->members;
    for (std::size_t k = 0; k < members.size(); ++k) {
      if (k > 0) out += ',';
      newline(depth + 1);
      out += escape(members[k].first);
      out += indent > 0 ? ": " : ":";
      members[k].second.dump_to(out, indent, depth + 1);
    }
    if (!members.empty()) newline(depth);
    out += '}';
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// ---------------------------------------------------------------------------
// Parser: recursive descent over a string_view.

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("Json::parse: " + what + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    if (depth_ > Json::kMaxDepth) fail("nesting too deep");
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Json::string(parse_string());
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        return Json::boolean(true);
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        return Json::boolean(false);
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        return Json();
      default:
        return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    ++depth_;
    auto obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return obj;
    }
    while (true) {
      skip_ws();
      const std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(key, parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      --depth_;
      return obj;
    }
  }

  Json parse_array() {
    expect('[');
    ++depth_;
    auto arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      --depth_;
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          unsigned code = parse_hex4();
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: require a following \uXXXX low surrogate.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              fail("unpaired surrogate");
            }
            pos_ += 2;
            const unsigned low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          }
          append_utf8(out, code);
          break;
        }
        default:
          fail("invalid escape");
      }
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid hex digit");
      }
    }
    return value;
  }

  static void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      fail("invalid number");
    }
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    errno = 0;
    if (integral) {
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (end == token.c_str() + token.size() && errno != ERANGE) {
        return Json::integer(static_cast<std::int64_t>(v));
      }
      // Out of int64 range: fall through to double.
    }
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("invalid number");
    return Json::number(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace amperebleed::util
