#include "amperebleed/util/json.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace amperebleed::util {

Json Json::boolean(bool v) {
  Json j;
  j.value_ = v;
  return j;
}

Json Json::number(double v) {
  Json j;
  j.value_ = v;
  return j;
}

Json Json::integer(std::int64_t v) {
  Json j;
  j.value_ = v;
  return j;
}

Json Json::string(std::string v) {
  Json j;
  j.value_ = std::move(v);
  return j;
}

Json Json::array() {
  Json j;
  j.value_ = std::make_shared<Array>();
  return j;
}

Json Json::object() {
  Json j;
  j.value_ = std::make_shared<ObjectRep>();
  return j;
}

Json& Json::push_back(Json v) {
  auto* arr = std::get_if<std::shared_ptr<Array>>(&value_);
  if (arr == nullptr) throw std::logic_error("Json::push_back: not an array");
  (*arr)->push_back(std::move(v));
  return *this;
}

Json& Json::set(const std::string& key, Json v) {
  auto* obj = std::get_if<std::shared_ptr<ObjectRep>>(&value_);
  if (obj == nullptr) throw std::logic_error("Json::set: not an object");
  for (auto& [k, existing] : (*obj)->members) {
    if (k == key) {
      existing = std::move(v);
      return *this;
    }
  }
  (*obj)->members.emplace_back(key, std::move(v));
  return *this;
}

bool Json::is_null() const {
  return std::holds_alternative<std::nullptr_t>(value_);
}

bool Json::is_array() const {
  return std::holds_alternative<std::shared_ptr<Array>>(value_);
}

bool Json::is_object() const {
  return std::holds_alternative<std::shared_ptr<ObjectRep>>(value_);
}

std::size_t Json::size() const {
  if (const auto* arr = std::get_if<std::shared_ptr<Array>>(&value_)) {
    return (*arr)->size();
  }
  if (const auto* obj = std::get_if<std::shared_ptr<ObjectRep>>(&value_)) {
    return (*obj)->members.size();
  }
  return 0;
}

std::string Json::escape(const std::string& s) {
  std::string out = "\"";
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
  return out;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };

  if (std::holds_alternative<std::nullptr_t>(value_)) {
    out += "null";
  } else if (const auto* b = std::get_if<bool>(&value_)) {
    out += *b ? "true" : "false";
  } else if (const auto* d = std::get_if<double>(&value_)) {
    if (!std::isfinite(*d)) {
      out += "null";  // JSON has no inf/nan
    } else {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.12g", *d);
      out += buf;
    }
  } else if (const auto* i = std::get_if<std::int64_t>(&value_)) {
    out += std::to_string(*i);
  } else if (const auto* s = std::get_if<std::string>(&value_)) {
    out += escape(*s);
  } else if (const auto* arr = std::get_if<std::shared_ptr<Array>>(&value_)) {
    out += '[';
    for (std::size_t k = 0; k < (*arr)->size(); ++k) {
      if (k > 0) out += ',';
      newline(depth + 1);
      (**arr)[k].dump_to(out, indent, depth + 1);
    }
    if (!(*arr)->empty()) newline(depth);
    out += ']';
  } else if (const auto* obj =
                 std::get_if<std::shared_ptr<ObjectRep>>(&value_)) {
    out += '{';
    const auto& members = (*obj)->members;
    for (std::size_t k = 0; k < members.size(); ++k) {
      if (k > 0) out += ',';
      newline(depth + 1);
      out += escape(members[k].first);
      out += indent > 0 ? ": " : ":";
      members[k].second.dump_to(out, indent, depth + 1);
    }
    if (!members.empty()) newline(depth);
    out += '}';
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

}  // namespace amperebleed::util
