#include "amperebleed/util/fs.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace amperebleed::util {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + " '" + path + "': " + std::strerror(errno));
}

}  // namespace

void atomic_write_file(const std::string& path, std::string_view bytes,
                       const AtomicWriteObserver& observer) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail("atomic_write_file: cannot open", tmp);
  // Two half-writes so the observer sees a genuinely torn intermediate
  // state between them (the crash harness arms its kill-points there).
  const std::size_t half = bytes.size() / 2;
  std::size_t written = 0;
  bool ok = true;
  while (ok && written < bytes.size()) {
    const std::size_t stop = written < half ? half : bytes.size();
    const ssize_t n = ::write(fd, bytes.data() + written, stop - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ok = false;
      break;
    }
    written += static_cast<std::size_t>(n);
    if (written == half && half < bytes.size() && observer) {
      try {
        observer("tmp-partial");
      } catch (...) {
        ::close(fd);  // crash simulation: leave the torn tmp file behind
        throw;
      }
    }
  }
  if (!ok || ::fsync(fd) != 0) {
    ::close(fd);
    ::remove(tmp.c_str());
    fail("atomic_write_file: write failed for", tmp);
  }
  if (::close(fd) != 0) {
    ::remove(tmp.c_str());
    fail("atomic_write_file: close failed for", tmp);
  }
  if (observer) observer("tmp-synced");
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    fail("atomic_write_file: rename failed for", path);
  }
  // The rename is only durable once the directory entry is synced; the
  // "renamed" kill-point must not fire before that happens-before edge.
  const std::size_t slash = path.find_last_of('/');
  fsync_dir(slash == std::string::npos ? "." : path.substr(0, slash));
  if (observer) observer("renamed");
}

void fsync_dir(const std::string& path) {
  const std::string dir = path.empty() ? "." : path;
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) fail("fsync_dir: cannot open", dir);
  if (::fsync(fd) != 0 && errno != EINVAL && errno != ENOTSUP) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail("fsync_dir: fsync failed for", dir);
  }
  ::close(fd);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_file: cannot open '" + path + "'");
  std::ostringstream out;
  out << in.rdbuf();
  if (in.bad()) throw std::runtime_error("read_file: read failed '" + path + "'");
  return std::move(out).str();
}

bool path_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

void make_dirs(const std::string& path) {
  if (path.empty()) return;
  // Create each prefix in turn; EEXIST is fine at every level.
  for (std::size_t i = 1; i <= path.size(); ++i) {
    if (i < path.size() && path[i] != '/') continue;
    const std::string prefix = path.substr(0, i);
    if (prefix.empty() || prefix == "/") continue;
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      fail("make_dirs: cannot create", prefix);
    }
  }
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    throw std::runtime_error("make_dirs: '" + path + "' is not a directory");
  }
}

std::vector<std::string> list_dir(const std::string& path) {
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) fail("list_dir: cannot open", path);
  std::vector<std::string> names;
  while (const dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(name);
  }
  ::closedir(dir);
  std::sort(names.begin(), names.end());
  return names;
}

void remove_file(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    fail("remove_file: cannot remove", path);
  }
}

}  // namespace amperebleed::util
