#include "amperebleed/serve/types.hpp"

namespace amperebleed::serve {

std::string_view kind_name(RequestKind kind) {
  switch (kind) {
    case RequestKind::Enroll:
      return "enroll";
    case RequestKind::Train:
      return "train";
    case RequestKind::Classify:
      return "classify";
    case RequestKind::Retire:
      return "retire";
  }
  return "?";
}

std::string_view status_name(ServeStatus status) {
  switch (status) {
    case ServeStatus::Ok:
      return "ok";
    case ServeStatus::Overloaded:
      return "overloaded";
    case ServeStatus::UnknownTenant:
      return "unknown-tenant";
    case ServeStatus::NotTrained:
      return "not-trained";
    case ServeStatus::AlreadyTrained:
      return "already-trained";
    case ServeStatus::TenantRetired:
      return "tenant-retired";
    case ServeStatus::InvalidRequest:
      return "invalid-request";
    case ServeStatus::StorageUnavailable:
      return "storage-unavailable";
  }
  return "?";
}

}  // namespace amperebleed::serve
