#pragma once
// One tenant's enrollment namespace: an OnlineFingerprinter wrapped in the
// session lifecycle  enroll -> train -> serve -> retire.  Tenants are fully
// isolated — each owns its forest, class names and feature width; nothing a
// tenant enrolls can influence another tenant's verdicts.
//
// The session state machine converts the fingerprinter's exceptions into
// typed ServeStatus values so the service can answer malformed or
// out-of-order requests instead of dying:
//
//   Enrolling --train()--> Serving --retire()--> Retired
//       \----------------retire()---------------^
//
// Only the service's tick loop mutates a TenantSession (single-threaded);
// classification against a Serving tenant is const and safe to run
// concurrently from pool workers.

#include <cstdint>
#include <string>
#include <string_view>

#include "amperebleed/core/online.hpp"
#include "amperebleed/serve/types.hpp"

namespace amperebleed::serve {

class TenantSession {
 public:
  enum class State { Enrolling, Serving, Retired };

  TenantSession(std::string name, core::OnlineFingerprinterConfig config);

  /// Rebuild a session from persisted state (serve/service.cpp recovery):
  /// the fingerprinter comes back via OnlineFingerprinter::restore, the
  /// lifecycle state and tallies verbatim. Classify verdicts on the
  /// restored session are bit-identical to the original.
  [[nodiscard]] static TenantSession restore(
      std::string name, State state, std::uint64_t enrolled,
      std::uint64_t classified, core::OnlineFingerprinter fingerprinter);

  /// Add one labelled trace. Errors: TenantRetired, AlreadyTrained,
  /// InvalidRequest (empty trace / shorter than the namespace's feature
  /// width). `error` (optional) receives human context on failure.
  ServeStatus enroll(const core::Trace& trace, const std::string& label,
                     std::string* error = nullptr);

  /// Freeze the namespace: fit the forest, transition to Serving. Errors:
  /// TenantRetired, AlreadyTrained, InvalidRequest (fewer than 2 classes).
  ServeStatus train(std::string* error = nullptr);

  /// Close the namespace for good. Errors: TenantRetired (already closed).
  ServeStatus retire();

  /// Admission check for one classify request — state and payload only, no
  /// inference (the service coalesces the actual classification into one
  /// batched sweep). Errors: TenantRetired, NotTrained, InvalidRequest.
  ServeStatus admit_classify(const Request& request,
                             std::string* error = nullptr) const;

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const core::OnlineFingerprinter& fingerprinter() const {
    return fingerprinter_;
  }
  [[nodiscard]] std::uint64_t enrolled() const { return enrolled_; }
  [[nodiscard]] std::uint64_t classified() const { return classified_; }
  /// Tick-loop bookkeeping: classify sweeps bump this after scoring.
  void add_classified(std::uint64_t n) { classified_ += n; }

 private:
  /// restore() only: adopts a rebuilt fingerprinter wholesale.
  TenantSession(std::string name, State state, std::uint64_t enrolled,
                std::uint64_t classified,
                core::OnlineFingerprinter fingerprinter);

  std::string name_;
  State state_ = State::Enrolling;
  core::OnlineFingerprinter fingerprinter_;
  std::uint64_t enrolled_ = 0;
  std::uint64_t classified_ = 0;
};

std::string_view state_name(TenantSession::State state);

}  // namespace amperebleed::serve
