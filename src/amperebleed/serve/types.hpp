#pragma once
// Typed request/response surface of the multi-tenant classification service
// (serve/service.hpp). A Request is one unit of work addressed to a tenant's
// enrollment namespace; a Response carries a typed status plus — for
// classification — the open-set verdict and the request's virtual-time
// latency (admission to completion). Everything here is plain data: the
// structs cross the bounded queue by value and never reference service
// internals, so callers may keep them arbitrarily long.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "amperebleed/core/online.hpp"
#include "amperebleed/core/trace.hpp"
#include "amperebleed/sim/time.hpp"

namespace amperebleed::serve {

/// The four operations of a tenant session's lifecycle. Enroll opens the
/// namespace (first enroll creates it), Train freezes it into serving form,
/// Classify queries it, Retire closes it for good.
enum class RequestKind { Enroll, Train, Classify, Retire };

std::string_view kind_name(RequestKind kind);

/// Typed completion status. Ok is the only success; everything else names
/// the exact admission or lifecycle rule the request tripped over, so load
/// generators and tests can assert on causes instead of parsing messages.
enum class ServeStatus {
  Ok,
  /// Rejected at the door: the queue stood at or above its high-water mark
  /// when the request arrived (admission control, counted in obs).
  Overloaded,
  /// The tenant namespace does not exist (never enrolled).
  UnknownTenant,
  /// Classify before a successful Train.
  NotTrained,
  /// Enroll/Train after the tenant was already trained.
  AlreadyTrained,
  /// Any request against a retired tenant (and Retire twice).
  TenantRetired,
  /// Malformed payload: missing/empty/short trace, too few classes, ...
  InvalidRequest,
  /// Durable mode only: the write-ahead journal could not record this state
  /// transition, so it was NOT applied. Classify is unaffected (it is never
  /// journalled); once the service degrades, every control request answers
  /// this until restart.
  StorageUnavailable,
};

/// Number of ServeStatus values (by_status arrays size against this).
inline constexpr std::size_t kServeStatusCount = 8;

std::string_view status_name(ServeStatus status);

/// One unit of work. `trace` is required for Enroll and Classify; `label`
/// names the enrolled model (Enroll only). Ids are assigned by the service
/// at admission, not by the caller.
struct Request {
  RequestKind kind = RequestKind::Classify;
  std::string tenant;
  std::optional<core::Trace> trace;
  std::string label;
};

/// Completion record, returned from ClassificationService::tick() in
/// admission order. Timestamps are virtual (the service's tick clock), so
/// latency() is bit-identical at any thread-pool size.
struct Response {
  std::uint64_t id = 0;
  RequestKind kind = RequestKind::Classify;
  std::string tenant;
  ServeStatus status = ServeStatus::Ok;
  /// Human-readable context on non-Ok statuses (empty on success).
  std::string error;
  /// Open-set verdict; meaningful only for Classify with status Ok.
  core::OnlineFingerprinter::Verdict verdict;
  sim::TimeNs admitted{0};
  sim::TimeNs completed{0};

  [[nodiscard]] bool ok() const { return status == ServeStatus::Ok; }
  /// Queue wait + processing in virtual time (>= one tick).
  [[nodiscard]] sim::TimeNs latency() const { return completed - admitted; }
};

/// Outcome of ClassificationService::submit. Rejected requests never enter
/// the queue and never produce a Response; `status` says why (Overloaded is
/// the only rejection admission control itself issues).
struct SubmitResult {
  bool accepted = false;
  std::uint64_t id = 0;  // valid when accepted
  ServeStatus status = ServeStatus::Ok;
};

}  // namespace amperebleed::serve
