#pragma once
// Bounded FIFO request queue with admission control, the front door of the
// classification service. Producers (any thread) try_push; the service's
// tick loop drains in submission order. Backpressure is a high-water mark
// strictly below the hard capacity: once depth reaches high_water new work
// is rejected with a typed Overloaded status, so the queue always keeps
// headroom and latency stays bounded instead of growing without limit.
//
// Determinism: admission decisions depend only on the queue depth at the
// moment of the call, which in the closed-loop benches is a pure function
// of the submission/tick schedule — never of the thread-pool size.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "amperebleed/serve/types.hpp"
#include "amperebleed/sim/time.hpp"

namespace amperebleed::serve {

/// A queued request plus the bookkeeping the service stamps at admission.
struct Pending {
  Request request;
  std::uint64_t id = 0;
  sim::TimeNs admitted{0};
};

class RequestQueue {
 public:
  struct Config {
    /// Hard bound on queued requests (try_push never exceeds it).
    std::size_t capacity = 4096;
    /// Admission-control threshold: try_push rejects when depth >= this.
    /// Clamped into [1, capacity].
    std::size_t high_water = 3072;
  };

  explicit RequestQueue(Config config);

  /// Enqueue unless depth has reached the high-water mark (or capacity).
  /// Returns false on rejection; the request is untouched in that case.
  [[nodiscard]] bool try_push(Pending&& pending);

  /// Pop up to `max` requests in FIFO order (all of them when max == 0).
  [[nodiscard]] std::vector<Pending> drain(std::size_t max);

  [[nodiscard]] std::size_t depth() const;
  [[nodiscard]] bool empty() const { return depth() == 0; }
  [[nodiscard]] const Config& config() const { return config_; }

  /// Lifetime tallies (monotonic).
  [[nodiscard]] std::uint64_t accepted() const;
  [[nodiscard]] std::uint64_t rejected() const;
  /// Deepest the queue has ever been.
  [[nodiscard]] std::size_t max_depth() const;

 private:
  Config config_;
  mutable std::mutex mu_;
  std::deque<Pending> items_;
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_ = 0;
  std::size_t max_depth_ = 0;
};

}  // namespace amperebleed::serve
