#pragma once
// amperebleed::serve — the multi-tenant asynchronous classification service
// composing the pieces built across PRs 1-7: OnlineFingerprinter's batched
// classify_many, the flat SoA ForestArena kernel, util::ThreadPool, and the
// obs metrics/SLO/HTTP stack.
//
// Shape: producers submit() typed Requests into a bounded queue (admission
// control rejects past the high-water mark with a typed Overloaded status);
// the owner's tick() loop advances the service's VIRTUAL clock one tick at a
// time, draining up to max_batch queued requests per tick. Consecutive
// classify requests in a drained batch — regardless of tenant — coalesce
// into one sweep: rows are grouped per tenant and the tenant groups are
// sharded across the thread pool, each scoring its rows through a single
// classify_many arena pass. Control requests (enroll/train/retire) execute
// in submission order and act as sweep barriers, so the observable behaviour
// is exactly that of processing the queue sequentially.
//
// Determinism: verdicts, response order, queue admission, and every virtual
// latency are bit-identical at any thread-pool size — classify_many is
// bit-identical by contract, tenant groups land in pre-sized slots, and all
// timestamps come from the tick clock, never the host clock. The closed-loop
// bench (bench/service_load) byte-diffs its stdout at pool sizes 1/4/8 in CI
// on exactly this promise.
//
// Threading: submit() is safe from any thread; tick()/drain() must be called
// by one owner thread at a time (the queue is the only shared state between
// the two sides). Classification against Serving tenants runs concurrently
// on pool workers; tenant lifecycle mutations happen only on the tick
// thread.

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "amperebleed/core/online.hpp"
#include "amperebleed/obs/metrics.hpp"
#include "amperebleed/serve/queue.hpp"
#include "amperebleed/serve/tenant.hpp"
#include "amperebleed/serve/types.hpp"
#include "amperebleed/sim/time.hpp"
#include "amperebleed/util/json.hpp"

namespace amperebleed::serve {

struct ServiceConfig {
  RequestQueue::Config queue{};
  /// Coalescer drain limit: at most this many requests leave the queue per
  /// tick (0 = unbounded, the whole queue every tick).
  std::size_t max_batch = 256;
  /// Virtual duration of one tick — the coalescing window. Latencies are
  /// integer multiples of this.
  sim::TimeNs tick = sim::milliseconds(1);
  /// Applied to every tenant namespace created by its first Enroll.
  core::OnlineFingerprinterConfig fingerprinter{};
};

/// Lifetime tallies, all monotonic. Door-side numbers (submitted/admitted/
/// rejected) are exact under concurrent submitters; the rest are owned by
/// the tick thread.
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;  // Overloaded at admission control
  std::uint64_t completed = 0;
  std::uint64_t classified = 0;         // Classify responses with status Ok
  std::uint64_t open_set_unknown = 0;   // of those, rejected as outside zoo
  std::uint64_t failed = 0;             // non-Ok responses
  std::uint64_t ticks = 0;
  std::uint64_t sweeps = 0;             // coalesced classify_many passes
  std::uint64_t coalesced_rows = 0;     // rows scored through sweeps
  std::size_t max_queue_depth = 0;
  /// Responses per ServeStatus, indexed by the enum's ordinal.
  std::array<std::uint64_t, 7> by_status{};
};

class ClassificationService {
 public:
  explicit ClassificationService(ServiceConfig config = {});

  /// Hand one request to the service (any thread). Admission control may
  /// reject with Overloaded; rejected requests never produce a Response.
  SubmitResult submit(Request request);

  /// Advance one virtual tick: drain up to max_batch requests, run control
  /// requests in order, coalesce classify runs into per-tenant arena sweeps
  /// sharded across the thread pool. Returns the completed responses in
  /// admission order (empty when the queue was idle). Owner thread only.
  std::vector<Response> tick();

  /// Tick until the queue is empty; all responses, in admission order.
  std::vector<Response> drain();

  /// The virtual clock (ticks elapsed x tick duration).
  [[nodiscard]] sim::TimeNs now() const;

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] const ServiceConfig& config() const { return config_; }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.depth(); }

  /// Virtual request latency (microseconds of virtual time), P2 quantiles
  /// at 0.5 / 0.9 / 0.99. Deterministic: same request schedule, same
  /// estimates, any pool size.
  [[nodiscard]] const obs::Histogram& latency_histogram() const {
    return latency_vus_;
  }
  /// Valid rows per coalesced sweep — the throughput shape of the batcher.
  [[nodiscard]] const obs::Histogram& batch_histogram() const {
    return batch_rows_;
  }

  /// Tenant namespaces in creation order.
  [[nodiscard]] std::vector<std::string> tenant_names() const;
  /// Lookup (nullptr when the namespace does not exist). The pointer stays
  /// valid for the service's lifetime — namespaces are never erased, a
  /// retired tenant keeps its name reserved.
  [[nodiscard]] const TenantSession* tenant(const std::string& name) const;

  /// Service snapshot: virtual clock, stats, latency quantiles, tenants.
  [[nodiscard]] util::Json to_json() const;

  /// Register the service's default latency SLO (virtual-time request
  /// latency over the serve.request_latency_vus histogram) on the global
  /// obs::slos() registry — served live on /slo by the HTTP exporter.
  /// `threshold_vus` must be one of the histogram's bucket bounds to count
  /// exactly; the default is 16 default ticks.
  static void register_default_slo(double threshold_vus = 16000.0,
                                   double target = 0.95);

 private:
  struct Group {
    TenantSession* tenant = nullptr;
    std::vector<std::size_t> rows;  // indices into the drained batch
  };

  [[nodiscard]] TenantSession* find_tenant(const std::string& name);
  /// Coalesce batch[begin, end) — all Classify — into per-tenant sweeps.
  void sweep(std::vector<Pending>& batch, std::size_t begin, std::size_t end,
             std::vector<Response>& responses);
  [[nodiscard]] Response control(Pending& pending);

  ServiceConfig config_;
  RequestQueue queue_;
  std::map<std::string, std::unique_ptr<TenantSession>> tenants_;
  std::vector<std::string> tenant_order_;
  std::atomic<std::int64_t> now_ns_{0};
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint64_t> submitted_{0};

  // Tick-thread bookkeeping.
  std::uint64_t completed_ = 0;
  std::uint64_t classified_ = 0;
  std::uint64_t open_set_unknown_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t ticks_ = 0;
  std::uint64_t sweeps_ = 0;
  std::uint64_t coalesced_rows_ = 0;
  std::array<std::uint64_t, 7> by_status_{};

  obs::Histogram latency_vus_;
  obs::Histogram batch_rows_;
};

}  // namespace amperebleed::serve
