#pragma once
// amperebleed::serve — the multi-tenant asynchronous classification service
// composing the pieces built across PRs 1-7: OnlineFingerprinter's batched
// classify_many, the flat SoA ForestArena kernel, util::ThreadPool, and the
// obs metrics/SLO/HTTP stack.
//
// Shape: producers submit() typed Requests into a bounded queue (admission
// control rejects past the high-water mark with a typed Overloaded status);
// the owner's tick() loop advances the service's VIRTUAL clock one tick at a
// time, draining up to max_batch queued requests per tick. Consecutive
// classify requests in a drained batch — regardless of tenant — coalesce
// into one sweep: rows are grouped per tenant and the tenant groups are
// sharded across the thread pool, each scoring its rows through a single
// classify_many arena pass. Control requests (enroll/train/retire) execute
// in submission order and act as sweep barriers, so the observable behaviour
// is exactly that of processing the queue sequentially.
//
// Determinism: verdicts, response order, queue admission, and every virtual
// latency are bit-identical at any thread-pool size — classify_many is
// bit-identical by contract, tenant groups land in pre-sized slots, and all
// timestamps come from the tick clock, never the host clock. The closed-loop
// bench (bench/service_load) byte-diffs its stdout at pool sizes 1/4/8 in CI
// on exactly this promise.
//
// Threading: submit() is safe from any thread; tick()/drain() must be called
// by one owner thread at a time (the queue is the only shared state between
// the two sides). Classification against Serving tenants runs concurrently
// on pool workers; tenant lifecycle mutations happen only on the tick
// thread.

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "amperebleed/core/online.hpp"
#include "amperebleed/obs/metrics.hpp"
#include "amperebleed/serve/queue.hpp"
#include "amperebleed/serve/tenant.hpp"
#include "amperebleed/serve/types.hpp"
#include "amperebleed/sim/time.hpp"
#include "amperebleed/util/json.hpp"

namespace amperebleed::persist {
struct JournalRecord;
struct ServiceSnapshot;
class TenantStore;
}  // namespace amperebleed::persist

namespace amperebleed::serve {

/// Durable tenant state (DESIGN.md §15). With a non-empty `dir` the service
/// write-ahead-journals EVERY control request (enroll/train/retire) before
/// applying it and periodically folds the journal into an atomic-rename
/// snapshot. Constructing a service on an existing directory IS recovery:
/// load the newest valid snapshot, replay the journal tail, and resume with
/// bit-identical classify behaviour. Classify requests are never journalled
/// (they do not change durable state; per-tenant classified tallies are
/// restored as of the snapshot — observability, not correctness).
struct DurabilityConfig {
  /// Storage directory; empty = durability off (the default, zero cost).
  std::string dir;
  /// Journal records between automatic snapshots.
  std::uint64_t snapshot_every = 64;
  /// Consecutive journal-append failures before the service degrades to
  /// read-only: control requests answer StorageUnavailable, classify keeps
  /// serving. Restart (which re-runs recovery) is the only way back.
  std::uint64_t max_consecutive_failures = 3;
};

struct ServiceConfig {
  RequestQueue::Config queue{};
  /// Coalescer drain limit: at most this many requests leave the queue per
  /// tick (0 = unbounded, the whole queue every tick).
  std::size_t max_batch = 256;
  /// Virtual duration of one tick — the coalescing window. Latencies are
  /// integer multiples of this.
  sim::TimeNs tick = sim::milliseconds(1);
  /// Applied to every tenant namespace created by its first Enroll.
  core::OnlineFingerprinterConfig fingerprinter{};
  /// Checkpoint/WAL persistence (off unless dir is set).
  DurabilityConfig durability{};
};

/// Lifetime tallies, all monotonic. Door-side numbers (submitted/admitted/
/// rejected) are exact under concurrent submitters; the rest are owned by
/// the tick thread.
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;  // Overloaded at admission control
  std::uint64_t completed = 0;
  std::uint64_t classified = 0;         // Classify responses with status Ok
  std::uint64_t open_set_unknown = 0;   // of those, rejected as outside zoo
  std::uint64_t failed = 0;             // non-Ok responses
  std::uint64_t ticks = 0;
  std::uint64_t sweeps = 0;             // coalesced classify_many passes
  std::uint64_t coalesced_rows = 0;     // rows scored through sweeps
  std::size_t max_queue_depth = 0;
  /// Responses per ServeStatus, indexed by the enum's ordinal.
  std::array<std::uint64_t, kServeStatusCount> by_status{};
};

/// Durability-layer tallies (all zero with durability off). The recovery
/// numbers account for every journal record the store found on disk:
/// recovered (replayed) + skipped (already in the snapshot) + discarded
/// (torn/corrupt) covers them all.
struct StorageStats {
  bool enabled = false;
  bool degraded = false;
  std::uint64_t last_seq = 0;
  std::uint64_t journal_appends = 0;
  std::uint64_t journal_failures = 0;
  std::uint64_t snapshots_written = 0;
  std::uint64_t snapshot_failures = 0;
  // Recovery (what construction found in the directory).
  bool recovered = false;
  std::uint64_t snapshot_seq = 0;
  std::uint64_t snapshots_discarded = 0;
  std::uint64_t recovered_records = 0;
  std::uint64_t skipped_records = 0;
  std::uint64_t discarded_records = 0;
  std::uint64_t recovered_tenants = 0;
  /// Snapshot tenants whose restore failed semantic validation, by name
  /// (also on the service JSON surface, so an operator can see exactly
  /// which namespaces recovery dropped — not just a count).
  std::vector<std::string> discarded_tenants;
  /// Journal-tail records referencing a discarded tenant. They are dropped
  /// rather than replayed: replaying (e.g. an Enroll) would recreate the
  /// namespace empty and the recovered state would silently diverge beyond
  /// the one discarded tenant.
  std::uint64_t replay_dropped_records = 0;
};

class ClassificationService {
 public:
  /// With config.durability.dir set, construction recovers from the
  /// directory (snapshot load + journal replay). Corrupted content on disk
  /// is discarded and counted, never fatal; an unusable directory throws
  /// persist::IoError.
  explicit ClassificationService(ServiceConfig config = {});
  ~ClassificationService();

  /// Hand one request to the service (any thread). Admission control may
  /// reject with Overloaded; rejected requests never produce a Response.
  SubmitResult submit(Request request);

  /// Advance one virtual tick: drain up to max_batch requests, run control
  /// requests in order, coalesce classify runs into per-tenant arena sweeps
  /// sharded across the thread pool. Returns the completed responses in
  /// admission order (empty when the queue was idle). Owner thread only.
  std::vector<Response> tick();

  /// Tick until the queue is empty; all responses, in admission order.
  std::vector<Response> drain();

  /// The virtual clock (ticks elapsed x tick duration).
  [[nodiscard]] sim::TimeNs now() const;

  [[nodiscard]] ServiceStats stats() const;
  /// Durability tallies (enabled == false with durability off).
  [[nodiscard]] StorageStats storage() const;
  /// True once persistent journal failures degraded the service to
  /// read-only (control requests answer StorageUnavailable).
  [[nodiscard]] bool degraded() const { return degraded_; }
  /// Force a snapshot now (durable mode only). Returns true when written;
  /// false with durability off, in Degraded mode, or on an IO failure
  /// (counted in storage().snapshot_failures). Owner thread only.
  bool snapshot_now();
  [[nodiscard]] const ServiceConfig& config() const { return config_; }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.depth(); }

  /// Virtual request latency (microseconds of virtual time), P2 quantiles
  /// at 0.5 / 0.9 / 0.99. Deterministic: same request schedule, same
  /// estimates, any pool size.
  [[nodiscard]] const obs::Histogram& latency_histogram() const {
    return latency_vus_;
  }
  /// Valid rows per coalesced sweep — the throughput shape of the batcher.
  [[nodiscard]] const obs::Histogram& batch_histogram() const {
    return batch_rows_;
  }

  /// Tenant namespaces in creation order.
  [[nodiscard]] std::vector<std::string> tenant_names() const;
  /// Lookup (nullptr when the namespace does not exist). The pointer stays
  /// valid for the service's lifetime — namespaces are never erased, a
  /// retired tenant keeps its name reserved.
  [[nodiscard]] const TenantSession* tenant(const std::string& name) const;

  /// Service snapshot: virtual clock, stats, latency quantiles, tenants.
  [[nodiscard]] util::Json to_json() const;

  /// Register the service's default latency SLO (virtual-time request
  /// latency over the serve.request_latency_vus histogram) on the global
  /// obs::slos() registry — served live on /slo by the HTTP exporter.
  /// `threshold_vus` must be one of the histogram's bucket bounds to count
  /// exactly; the default is 16 default ticks.
  static void register_default_slo(double threshold_vus = 16000.0,
                                   double target = 0.95);

 private:
  struct Group {
    TenantSession* tenant = nullptr;
    std::vector<std::size_t> rows;  // indices into the drained batch
  };

  [[nodiscard]] TenantSession* find_tenant(const std::string& name);
  /// Coalesce batch[begin, end) — all Classify — into per-tenant sweeps.
  void sweep(std::vector<Pending>& batch, std::size_t begin, std::size_t end,
             std::vector<Response>& responses);
  /// WAL wrapper: journal the request (durable mode), then apply_control.
  [[nodiscard]] Response control(Pending& pending);
  /// Apply one control request to in-memory state. Deterministic function
  /// of (request, state) — journal replay reruns it to reach the identical
  /// post-crash state, responses discarded.
  [[nodiscard]] Response apply_control(const Request& request);
  /// Rebuild tenants from the store's snapshot and replay its journal tail.
  void recover_from_store();
  /// Current in-memory state as a persistable snapshot.
  [[nodiscard]] persist::ServiceSnapshot build_snapshot() const;
  /// Write a snapshot when the journal grew past durability.snapshot_every.
  void maybe_snapshot();
  bool write_snapshot_guarded();

  ServiceConfig config_;
  RequestQueue queue_;
  std::map<std::string, std::unique_ptr<TenantSession>> tenants_;
  std::vector<std::string> tenant_order_;
  std::atomic<std::int64_t> now_ns_{0};
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint64_t> submitted_{0};

  // Tick-thread bookkeeping.
  std::uint64_t completed_ = 0;
  std::uint64_t classified_ = 0;
  std::uint64_t open_set_unknown_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t ticks_ = 0;
  std::uint64_t sweeps_ = 0;
  std::uint64_t coalesced_rows_ = 0;
  std::array<std::uint64_t, kServeStatusCount> by_status_{};

  // Durability (null with durability off). All touched on the tick thread.
  std::unique_ptr<persist::TenantStore> store_;
  bool degraded_ = false;
  std::uint64_t consecutive_journal_failures_ = 0;
  std::uint64_t journal_appends_ = 0;
  std::uint64_t journal_failures_ = 0;
  std::uint64_t snapshots_written_ = 0;
  std::uint64_t snapshot_failures_ = 0;
  std::uint64_t recovered_tenants_ = 0;
  std::vector<std::string> discarded_tenants_;
  std::uint64_t replay_dropped_records_ = 0;

  obs::Histogram latency_vus_;
  obs::Histogram batch_rows_;
};

}  // namespace amperebleed::serve
