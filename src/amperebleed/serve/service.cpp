#include "amperebleed/serve/service.hpp"

#include <algorithm>
#include <utility>

#include "amperebleed/obs/obs.hpp"
#include "amperebleed/persist/journal.hpp"
#include "amperebleed/persist/store.hpp"
#include "amperebleed/util/parallel.hpp"

namespace amperebleed::serve {

namespace {

/// Virtual-latency bucket layout: powers of two from one tick upward, so an
/// SLO threshold of N default ticks is always an exact bucket bound.
obs::HistogramConfig latency_vus_buckets(sim::TimeNs tick) {
  const double start = tick.ns > 0 ? tick.micros() : 1000.0;
  auto config = obs::exponential_buckets(start, 2.0, 16);
  config.quantiles = {0.5, 0.9, 0.99};
  return config;
}

obs::HistogramConfig batch_rows_buckets() {
  auto config = obs::exponential_buckets(1.0, 2.0, 12);
  config.quantiles = {0.5, 0.9, 0.99};
  return config;
}

persist::JournalOp journal_op_of(RequestKind kind) {
  switch (kind) {
    case RequestKind::Enroll:
      return persist::JournalOp::Enroll;
    case RequestKind::Train:
      return persist::JournalOp::Train;
    case RequestKind::Retire:
      return persist::JournalOp::Retire;
    case RequestKind::Classify:
      break;  // never journalled
  }
  throw std::logic_error("journal_op_of: classify is not a control request");
}

RequestKind request_kind_of(persist::JournalOp op) {
  switch (op) {
    case persist::JournalOp::Enroll:
      return RequestKind::Enroll;
    case persist::JournalOp::Train:
      return RequestKind::Train;
    case persist::JournalOp::Retire:
      return RequestKind::Retire;
  }
  throw std::logic_error("request_kind_of: invalid journal op");
}

}  // namespace

ClassificationService::ClassificationService(ServiceConfig config)
    : config_(config),
      queue_(config.queue),
      latency_vus_(latency_vus_buckets(config.tick)),
      batch_rows_(batch_rows_buckets()) {
  if (config_.tick.ns <= 0) config_.tick = sim::milliseconds(1);
  if (obs::metrics_enabled()) {
    // Pin the exported histograms to the same bucket layout as the local
    // ones so SLO thresholds land on exact bucket bounds.
    obs::metrics().histogram("serve.request_latency_vus",
                             latency_vus_buckets(config_.tick));
    obs::metrics().histogram("serve.batch_rows", batch_rows_buckets());
  }
  if (!config_.durability.dir.empty()) {
    persist::TenantStore::Config store_config;
    store_config.dir = config_.durability.dir;
    store_config.snapshot_every = config_.durability.snapshot_every;
    store_ = std::make_unique<persist::TenantStore>(std::move(store_config));
    recover_from_store();
  }
}

ClassificationService::~ClassificationService() = default;

void ClassificationService::recover_from_store() {
  if (store_->snapshot().has_value()) {
    for (const persist::TenantState& t : store_->snapshot()->tenants) {
      core::OnlineFingerprinter::RestoredState state;
      state.feature_count = t.feature_count;
      state.class_names = t.class_names;
      state.data = t.data;
      state.trained = t.trained;
      state.arena = t.arena;
      if (t.has_profile) state.drift_reference = t.profile;
      // CRC-valid but semantically inconsistent tenants are skipped — the
      // rest of the snapshot still recovers (replay handles any dangling
      // references with UnknownTenant).
      try {
        auto fingerprinter = core::OnlineFingerprinter::restore(
            config_.fingerprinter, std::move(state));
        tenants_.emplace(
            t.name,
            std::make_unique<TenantSession>(TenantSession::restore(
                t.name, static_cast<TenantSession::State>(t.state),
                t.enrolled, t.classified, std::move(fingerprinter))));
        tenant_order_.push_back(t.name);
      } catch (const std::invalid_argument&) {
        discarded_tenants_.push_back(t.name);
        obs::count("serve.storage.tenants_discarded");
      }
    }
  }
  // Replay the journal tail. apply_control is deterministic, so rerunning
  // each record — including ones that originally failed — reproduces the
  // exact pre-crash state; the responses were already delivered (or never
  // were, for the torn tail) and are discarded here. Records referencing a
  // tenant the snapshot carried but restore discarded are dropped, not
  // replayed: an Enroll would recreate the namespace empty, quietly
  // spreading the damage past the one discarded tenant.
  for (const persist::JournalRecord& record : store_->tail()) {
    if (std::find(discarded_tenants_.begin(), discarded_tenants_.end(),
                  record.tenant) != discarded_tenants_.end()) {
      ++replay_dropped_records_;
      obs::count("serve.storage.replay_dropped_records");
      continue;
    }
    Request request;
    request.kind = request_kind_of(record.op);
    request.tenant = record.tenant;
    request.label = record.label;
    if (record.has_trace) request.trace = persist::trace_from_record(record);
    (void)apply_control(request);
  }
  recovered_tenants_ = tenant_order_.size();

  const persist::RecoveryStats& recovery = store_->recovery();
  obs::gauge_set("serve.storage.degraded", 0.0);
  obs::gauge_set("serve.storage.last_seq",
                 static_cast<double>(store_->last_seq()));
  if (recovery.recovered_records > 0) {
    obs::count("serve.storage.recovered_records",
               recovery.recovered_records);
  }
  if (recovery.skipped_records > 0) {
    obs::count("serve.storage.skipped_records", recovery.skipped_records);
  }
  if (recovery.discarded_records > 0) {
    obs::count("serve.storage.discarded_records",
               recovery.discarded_records);
  }
  if (recovery.snapshots_discarded > 0) {
    obs::count("serve.storage.snapshots_discarded",
               recovery.snapshots_discarded);
  }
  if (recovery.recovered) obs::count("serve.storage.recoveries");
}

SubmitResult ClassificationService::submit(Request request) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  obs::count("serve.submitted");
  Pending pending;
  pending.request = std::move(request);
  pending.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  pending.admitted = sim::TimeNs{now_ns_.load(std::memory_order_relaxed)};
  const std::uint64_t id = pending.id;
  if (!queue_.try_push(std::move(pending))) {
    obs::count("serve.rejected");
    return SubmitResult{false, id, ServeStatus::Overloaded};
  }
  obs::count("serve.admitted");
  return SubmitResult{true, id, ServeStatus::Ok};
}

std::vector<Response> ClassificationService::tick() {
  std::vector<Pending> batch = queue_.drain(config_.max_batch);
  now_ns_.fetch_add(config_.tick.ns, std::memory_order_relaxed);
  ++ticks_;
  if (obs::metrics_enabled()) {
    // The SLO engine's burn windows run on the same virtual timeline as
    // request latencies: one tick of simulated service time per tick().
    obs::slos().advance(config_.tick.seconds());
    obs::gauge_set("serve.queue_depth",
                   static_cast<double>(queue_.depth()));
    obs::gauge_set("serve.tenants", static_cast<double>(tenants_.size()));
  }
  std::vector<Response> responses(batch.size());

  // Control requests execute in order and fence the coalescer; maximal runs
  // of classify requests between them score as single sweeps.
  std::size_t i = 0;
  while (i < batch.size()) {
    if (batch[i].request.kind == RequestKind::Classify) {
      std::size_t j = i;
      while (j < batch.size() &&
             batch[j].request.kind == RequestKind::Classify) {
        ++j;
      }
      sweep(batch, i, j, responses);
      i = j;
    } else {
      responses[i] = control(batch[i]);
      ++i;
    }
  }

  const sim::TimeNs now{now_ns_.load(std::memory_order_relaxed)};
  for (std::size_t k = 0; k < batch.size(); ++k) {
    Response& r = responses[k];
    r.id = batch[k].id;
    r.kind = batch[k].request.kind;
    r.tenant = std::move(batch[k].request.tenant);
    r.admitted = batch[k].admitted;
    r.completed = now;
    ++completed_;
    ++by_status_[static_cast<std::size_t>(r.status)];
    if (r.ok()) {
      if (r.kind == RequestKind::Classify) {
        ++classified_;
        if (!r.verdict.known) ++open_set_unknown_;
      }
    } else {
      ++failed_;
    }
    const double latency_vus = r.latency().micros();
    latency_vus_.observe(latency_vus);
    obs::observe("serve.request_latency_vus", latency_vus);
  }
  if (!batch.empty()) obs::count("serve.completed", batch.size());
  return responses;
}

std::vector<Response> ClassificationService::drain() {
  std::vector<Response> all;
  while (!queue_.empty()) {
    auto responses = tick();
    all.insert(all.end(), std::make_move_iterator(responses.begin()),
               std::make_move_iterator(responses.end()));
  }
  return all;
}

sim::TimeNs ClassificationService::now() const {
  return sim::TimeNs{now_ns_.load(std::memory_order_relaxed)};
}

ServiceStats ClassificationService::stats() const {
  ServiceStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.admitted = queue_.accepted();
  s.rejected = queue_.rejected();
  s.completed = completed_;
  s.classified = classified_;
  s.open_set_unknown = open_set_unknown_;
  s.failed = failed_;
  s.ticks = ticks_;
  s.sweeps = sweeps_;
  s.coalesced_rows = coalesced_rows_;
  s.max_queue_depth = queue_.max_depth();
  s.by_status = by_status_;
  return s;
}

std::vector<std::string> ClassificationService::tenant_names() const {
  return tenant_order_;
}

const TenantSession* ClassificationService::tenant(
    const std::string& name) const {
  const auto it = tenants_.find(name);
  return it == tenants_.end() ? nullptr : it->second.get();
}

TenantSession* ClassificationService::find_tenant(const std::string& name) {
  const auto it = tenants_.find(name);
  return it == tenants_.end() ? nullptr : it->second.get();
}

void ClassificationService::sweep(std::vector<Pending>& batch,
                                  std::size_t begin, std::size_t end,
                                  std::vector<Response>& responses) {
  // Admission pass: validate every row sequentially, grouping the valid
  // ones per tenant in first-appearance order.
  std::vector<Group> groups;
  for (std::size_t k = begin; k < end; ++k) {
    Response& r = responses[k];
    TenantSession* tenant = find_tenant(batch[k].request.tenant);
    if (tenant == nullptr) {
      r.status = ServeStatus::UnknownTenant;
      r.error = "no such tenant '" + batch[k].request.tenant + "'";
      continue;
    }
    r.status = tenant->admit_classify(batch[k].request, &r.error);
    if (r.status != ServeStatus::Ok) continue;
    auto it = std::find_if(
        groups.begin(), groups.end(),
        [tenant](const Group& g) { return g.tenant == tenant; });
    if (it == groups.end()) {
      groups.push_back(Group{tenant, {}});
      it = std::prev(groups.end());
    }
    it->rows.push_back(k);
  }
  if (groups.empty()) return;

  // One classify_many arena pass per tenant, tenant groups sharded across
  // the thread pool. Verdicts land in pre-sized response slots, and
  // classify_many is bit-identical at any pool size, so the sweep is too.
  util::parallel_for(groups.size(), [&](std::size_t g) {
    const Group& group = groups[g];
    std::vector<const core::Trace*> rows;
    rows.reserve(group.rows.size());
    for (const std::size_t k : group.rows) {
      rows.push_back(&*batch[k].request.trace);
    }
    auto verdicts = group.tenant->fingerprinter().classify_many(rows);
    for (std::size_t j = 0; j < group.rows.size(); ++j) {
      responses[group.rows[j]].verdict = std::move(verdicts[j]);
    }
  });

  std::size_t scored = 0;
  for (Group& group : groups) {
    group.tenant->add_classified(group.rows.size());
    scored += group.rows.size();
  }
  ++sweeps_;
  coalesced_rows_ += scored;
  batch_rows_.observe(static_cast<double>(scored));
  obs::observe("serve.batch_rows", static_cast<double>(scored));
}

Response ClassificationService::control(Pending& pending) {
  const Request& request = pending.request;
  if (request.tenant.empty()) {
    Response r;
    r.status = ServeStatus::InvalidRequest;
    r.error = "request names no tenant";
    return r;
  }
  if (store_ != nullptr) {
    if (degraded_) {
      Response r;
      r.status = ServeStatus::StorageUnavailable;
      r.error = "durable storage degraded; control requests are read-only "
                "until restart";
      return r;
    }
    // WAL discipline: journal EVERY control request before applying it —
    // even ones that will fail. apply_control is a deterministic function
    // of (request, state), so replay reproduces failures (and their side
    // effects, e.g. the namespace an invalid enroll still created)
    // identically. On journal failure the request is NOT applied: durable
    // and in-memory state stay consistent.
    persist::JournalRecord record;
    record.seq = store_->last_seq() + 1;
    record.op = journal_op_of(request.kind);
    record.tenant = request.tenant;
    record.label = request.label;
    if (request.trace.has_value()) {
      persist::record_set_trace(record, *request.trace);
    }
    try {
      store_->append(record);
      ++journal_appends_;
      consecutive_journal_failures_ = 0;
      obs::count("serve.storage.journal_appends");
      obs::gauge_set("serve.storage.last_seq",
                     static_cast<double>(store_->last_seq()));
    } catch (const persist::IoError& e) {
      ++journal_failures_;
      ++consecutive_journal_failures_;
      obs::count("serve.storage.journal_failures");
      if (consecutive_journal_failures_ >=
          config_.durability.max_consecutive_failures) {
        degraded_ = true;
        obs::gauge_set("serve.storage.degraded", 1.0);
        obs::count("serve.storage.degradations");
      }
      Response r;
      r.status = ServeStatus::StorageUnavailable;
      r.error = std::string("journal write failed: ") + e.what();
      return r;
    }
  }
  Response r = apply_control(request);
  if (store_ != nullptr) maybe_snapshot();
  return r;
}

Response ClassificationService::apply_control(const Request& request) {
  Response r;
  TenantSession* tenant = find_tenant(request.tenant);
  switch (request.kind) {
    case RequestKind::Enroll: {
      if (!request.trace.has_value() || request.trace->empty()) {
        r.status = ServeStatus::InvalidRequest;
        r.error = "enroll needs a non-empty trace";
        return r;
      }
      if (tenant == nullptr) {
        // First enroll opens the namespace.
        auto session = std::make_unique<TenantSession>(
            request.tenant, config_.fingerprinter);
        tenant = session.get();
        tenants_.emplace(request.tenant, std::move(session));
        tenant_order_.push_back(request.tenant);
        obs::count("serve.tenants_created");
      }
      r.status = tenant->enroll(*request.trace, request.label, &r.error);
      return r;
    }
    case RequestKind::Train: {
      if (tenant == nullptr) {
        r.status = ServeStatus::UnknownTenant;
        r.error = "no such tenant '" + request.tenant + "'";
        return r;
      }
      r.status = tenant->train(&r.error);
      return r;
    }
    case RequestKind::Retire: {
      if (tenant == nullptr) {
        r.status = ServeStatus::UnknownTenant;
        r.error = "no such tenant '" + request.tenant + "'";
        return r;
      }
      r.status = tenant->retire();
      if (r.status == ServeStatus::TenantRetired) {
        r.error = "tenant '" + request.tenant + "' already retired";
      }
      return r;
    }
    case RequestKind::Classify:
      break;  // unreachable: tick() routes classify runs through sweep()
  }
  r.status = ServeStatus::InvalidRequest;
  r.error = "unhandled request kind";
  return r;
}

persist::ServiceSnapshot ClassificationService::build_snapshot() const {
  persist::ServiceSnapshot snap;
  snap.last_seq = store_->last_seq();
  snap.tenants.reserve(tenant_order_.size());
  for (const std::string& name : tenant_order_) {
    const TenantSession& session = *tenants_.at(name);
    const core::OnlineFingerprinter& fp = session.fingerprinter();
    persist::TenantState t;
    t.name = name;
    t.state = static_cast<std::uint8_t>(session.state());
    t.enrolled = session.enrolled();
    t.classified = session.classified();
    t.feature_count = fp.feature_count();
    t.class_names = fp.class_names();
    t.data = fp.enrollment_data();
    t.trained = fp.trained();
    if (t.trained) t.arena = fp.forest().arena();
    if (const obs::DriftMonitor* monitor = fp.drift_monitor()) {
      t.has_profile = true;
      t.profile = monitor->reference();
    }
    snap.tenants.push_back(std::move(t));
  }
  return snap;
}

bool ClassificationService::write_snapshot_guarded() {
  try {
    store_->write_snapshot(build_snapshot());
  } catch (const persist::IoError&) {
    // The journal still holds every record, so durability is intact; the
    // snapshot retries once the journal grows past the threshold again.
    ++snapshot_failures_;
    obs::count("serve.storage.snapshot_failures");
    return false;
  }
  ++snapshots_written_;
  obs::count("serve.storage.snapshots_written");
  return true;
}

void ClassificationService::maybe_snapshot() {
  if (store_ == nullptr || degraded_) return;
  if (store_->records_since_snapshot() < store_->snapshot_every()) return;
  (void)write_snapshot_guarded();
}

bool ClassificationService::snapshot_now() {
  if (store_ == nullptr || degraded_) return false;
  if (store_->records_since_snapshot() == 0) return false;  // nothing new
  return write_snapshot_guarded();
}

StorageStats ClassificationService::storage() const {
  StorageStats s;
  if (store_ == nullptr) return s;
  s.enabled = true;
  s.degraded = degraded_;
  s.last_seq = store_->last_seq();
  s.journal_appends = journal_appends_;
  s.journal_failures = journal_failures_;
  s.snapshots_written = snapshots_written_;
  s.snapshot_failures = snapshot_failures_;
  const persist::RecoveryStats& recovery = store_->recovery();
  s.recovered = recovery.recovered;
  s.snapshot_seq = recovery.snapshot_seq;
  s.snapshots_discarded = recovery.snapshots_discarded;
  s.recovered_records = recovery.recovered_records;
  s.skipped_records = recovery.skipped_records;
  s.discarded_records = recovery.discarded_records;
  s.recovered_tenants = recovered_tenants_;
  s.discarded_tenants = discarded_tenants_;
  s.replay_dropped_records = replay_dropped_records_;
  return s;
}

util::Json ClassificationService::to_json() const {
  const ServiceStats s = stats();
  auto stats_json = util::Json::object();
  stats_json.set("submitted",
                 util::Json::integer(static_cast<std::int64_t>(s.submitted)));
  stats_json.set("admitted",
                 util::Json::integer(static_cast<std::int64_t>(s.admitted)));
  stats_json.set("rejected",
                 util::Json::integer(static_cast<std::int64_t>(s.rejected)));
  stats_json.set("completed",
                 util::Json::integer(static_cast<std::int64_t>(s.completed)));
  stats_json.set(
      "classified",
      util::Json::integer(static_cast<std::int64_t>(s.classified)));
  stats_json.set("open_set_unknown",
                 util::Json::integer(
                     static_cast<std::int64_t>(s.open_set_unknown)));
  stats_json.set("failed",
                 util::Json::integer(static_cast<std::int64_t>(s.failed)));
  stats_json.set("ticks",
                 util::Json::integer(static_cast<std::int64_t>(s.ticks)));
  stats_json.set("sweeps",
                 util::Json::integer(static_cast<std::int64_t>(s.sweeps)));
  stats_json.set(
      "coalesced_rows",
      util::Json::integer(static_cast<std::int64_t>(s.coalesced_rows)));
  stats_json.set(
      "max_queue_depth",
      util::Json::integer(static_cast<std::int64_t>(s.max_queue_depth)));

  auto latency = util::Json::object();
  latency.set("count", util::Json::integer(static_cast<std::int64_t>(
                           latency_vus_.count())));
  latency.set("p50_vus", util::Json::number(latency_vus_.quantile(0.5)));
  latency.set("p90_vus", util::Json::number(latency_vus_.quantile(0.9)));
  latency.set("p99_vus", util::Json::number(latency_vus_.quantile(0.99)));

  auto tenants = util::Json::array();
  for (const std::string& name : tenant_order_) {
    const TenantSession& session = *tenants_.at(name);
    auto t = util::Json::object();
    t.set("name", util::Json::string(name));
    t.set("state", util::Json::string(std::string(state_name(
                       session.state()))));
    t.set("enrolled", util::Json::integer(static_cast<std::int64_t>(
                          session.enrolled())));
    t.set("classified", util::Json::integer(static_cast<std::int64_t>(
                            session.classified())));
    t.set("classes",
          util::Json::integer(static_cast<std::int64_t>(
              session.fingerprinter().class_names().size())));
    tenants.push_back(std::move(t));
  }

  auto root = util::Json::object();
  root.set("virtual_now_s", util::Json::number(now().seconds()));
  root.set("stats", std::move(stats_json));
  root.set("latency", std::move(latency));
  root.set("tenants", std::move(tenants));
  if (store_ != nullptr) {
    const StorageStats st = storage();
    auto storage_json = util::Json::object();
    storage_json.set("degraded", util::Json::boolean(st.degraded));
    storage_json.set(
        "last_seq",
        util::Json::integer(static_cast<std::int64_t>(st.last_seq)));
    storage_json.set("journal_appends",
                     util::Json::integer(
                         static_cast<std::int64_t>(st.journal_appends)));
    storage_json.set("journal_failures",
                     util::Json::integer(
                         static_cast<std::int64_t>(st.journal_failures)));
    storage_json.set("snapshots_written",
                     util::Json::integer(
                         static_cast<std::int64_t>(st.snapshots_written)));
    storage_json.set("snapshot_failures",
                     util::Json::integer(
                         static_cast<std::int64_t>(st.snapshot_failures)));
    storage_json.set("recovered", util::Json::boolean(st.recovered));
    storage_json.set("recovered_records",
                     util::Json::integer(
                         static_cast<std::int64_t>(st.recovered_records)));
    storage_json.set("skipped_records",
                     util::Json::integer(
                         static_cast<std::int64_t>(st.skipped_records)));
    storage_json.set("discarded_records",
                     util::Json::integer(
                         static_cast<std::int64_t>(st.discarded_records)));
    storage_json.set("recovered_tenants",
                     util::Json::integer(
                         static_cast<std::int64_t>(st.recovered_tenants)));
    auto discarded = util::Json::array();
    for (const std::string& name : st.discarded_tenants) {
      discarded.push_back(util::Json::string(name));
    }
    storage_json.set("discarded_tenants", std::move(discarded));
    storage_json.set(
        "replay_dropped_records",
        util::Json::integer(
            static_cast<std::int64_t>(st.replay_dropped_records)));
    root.set("storage", std::move(storage_json));
  }
  return root;
}

void ClassificationService::register_default_slo(double threshold_vus,
                                                 double target) {
  obs::slos().add({.name = "serve_latency",
                   .histogram = "serve.request_latency_vus",
                   .threshold = threshold_vus,
                   .target = target});
}

}  // namespace amperebleed::serve
