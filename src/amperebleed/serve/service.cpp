#include "amperebleed/serve/service.hpp"

#include <algorithm>
#include <utility>

#include "amperebleed/obs/obs.hpp"
#include "amperebleed/util/parallel.hpp"

namespace amperebleed::serve {

namespace {

/// Virtual-latency bucket layout: powers of two from one tick upward, so an
/// SLO threshold of N default ticks is always an exact bucket bound.
obs::HistogramConfig latency_vus_buckets(sim::TimeNs tick) {
  const double start = tick.ns > 0 ? tick.micros() : 1000.0;
  auto config = obs::exponential_buckets(start, 2.0, 16);
  config.quantiles = {0.5, 0.9, 0.99};
  return config;
}

obs::HistogramConfig batch_rows_buckets() {
  auto config = obs::exponential_buckets(1.0, 2.0, 12);
  config.quantiles = {0.5, 0.9, 0.99};
  return config;
}

}  // namespace

ClassificationService::ClassificationService(ServiceConfig config)
    : config_(config),
      queue_(config.queue),
      latency_vus_(latency_vus_buckets(config.tick)),
      batch_rows_(batch_rows_buckets()) {
  if (config_.tick.ns <= 0) config_.tick = sim::milliseconds(1);
  if (obs::metrics_enabled()) {
    // Pin the exported histograms to the same bucket layout as the local
    // ones so SLO thresholds land on exact bucket bounds.
    obs::metrics().histogram("serve.request_latency_vus",
                             latency_vus_buckets(config_.tick));
    obs::metrics().histogram("serve.batch_rows", batch_rows_buckets());
  }
}

SubmitResult ClassificationService::submit(Request request) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  obs::count("serve.submitted");
  Pending pending;
  pending.request = std::move(request);
  pending.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  pending.admitted = sim::TimeNs{now_ns_.load(std::memory_order_relaxed)};
  const std::uint64_t id = pending.id;
  if (!queue_.try_push(std::move(pending))) {
    obs::count("serve.rejected");
    return SubmitResult{false, id, ServeStatus::Overloaded};
  }
  obs::count("serve.admitted");
  return SubmitResult{true, id, ServeStatus::Ok};
}

std::vector<Response> ClassificationService::tick() {
  std::vector<Pending> batch = queue_.drain(config_.max_batch);
  now_ns_.fetch_add(config_.tick.ns, std::memory_order_relaxed);
  ++ticks_;
  if (obs::metrics_enabled()) {
    // The SLO engine's burn windows run on the same virtual timeline as
    // request latencies: one tick of simulated service time per tick().
    obs::slos().advance(config_.tick.seconds());
    obs::gauge_set("serve.queue_depth",
                   static_cast<double>(queue_.depth()));
    obs::gauge_set("serve.tenants", static_cast<double>(tenants_.size()));
  }
  std::vector<Response> responses(batch.size());

  // Control requests execute in order and fence the coalescer; maximal runs
  // of classify requests between them score as single sweeps.
  std::size_t i = 0;
  while (i < batch.size()) {
    if (batch[i].request.kind == RequestKind::Classify) {
      std::size_t j = i;
      while (j < batch.size() &&
             batch[j].request.kind == RequestKind::Classify) {
        ++j;
      }
      sweep(batch, i, j, responses);
      i = j;
    } else {
      responses[i] = control(batch[i]);
      ++i;
    }
  }

  const sim::TimeNs now{now_ns_.load(std::memory_order_relaxed)};
  for (std::size_t k = 0; k < batch.size(); ++k) {
    Response& r = responses[k];
    r.id = batch[k].id;
    r.kind = batch[k].request.kind;
    r.tenant = std::move(batch[k].request.tenant);
    r.admitted = batch[k].admitted;
    r.completed = now;
    ++completed_;
    ++by_status_[static_cast<std::size_t>(r.status)];
    if (r.ok()) {
      if (r.kind == RequestKind::Classify) {
        ++classified_;
        if (!r.verdict.known) ++open_set_unknown_;
      }
    } else {
      ++failed_;
    }
    const double latency_vus = r.latency().micros();
    latency_vus_.observe(latency_vus);
    obs::observe("serve.request_latency_vus", latency_vus);
  }
  if (!batch.empty()) obs::count("serve.completed", batch.size());
  return responses;
}

std::vector<Response> ClassificationService::drain() {
  std::vector<Response> all;
  while (!queue_.empty()) {
    auto responses = tick();
    all.insert(all.end(), std::make_move_iterator(responses.begin()),
               std::make_move_iterator(responses.end()));
  }
  return all;
}

sim::TimeNs ClassificationService::now() const {
  return sim::TimeNs{now_ns_.load(std::memory_order_relaxed)};
}

ServiceStats ClassificationService::stats() const {
  ServiceStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.admitted = queue_.accepted();
  s.rejected = queue_.rejected();
  s.completed = completed_;
  s.classified = classified_;
  s.open_set_unknown = open_set_unknown_;
  s.failed = failed_;
  s.ticks = ticks_;
  s.sweeps = sweeps_;
  s.coalesced_rows = coalesced_rows_;
  s.max_queue_depth = queue_.max_depth();
  s.by_status = by_status_;
  return s;
}

std::vector<std::string> ClassificationService::tenant_names() const {
  return tenant_order_;
}

const TenantSession* ClassificationService::tenant(
    const std::string& name) const {
  const auto it = tenants_.find(name);
  return it == tenants_.end() ? nullptr : it->second.get();
}

TenantSession* ClassificationService::find_tenant(const std::string& name) {
  const auto it = tenants_.find(name);
  return it == tenants_.end() ? nullptr : it->second.get();
}

void ClassificationService::sweep(std::vector<Pending>& batch,
                                  std::size_t begin, std::size_t end,
                                  std::vector<Response>& responses) {
  // Admission pass: validate every row sequentially, grouping the valid
  // ones per tenant in first-appearance order.
  std::vector<Group> groups;
  for (std::size_t k = begin; k < end; ++k) {
    Response& r = responses[k];
    TenantSession* tenant = find_tenant(batch[k].request.tenant);
    if (tenant == nullptr) {
      r.status = ServeStatus::UnknownTenant;
      r.error = "no such tenant '" + batch[k].request.tenant + "'";
      continue;
    }
    r.status = tenant->admit_classify(batch[k].request, &r.error);
    if (r.status != ServeStatus::Ok) continue;
    auto it = std::find_if(
        groups.begin(), groups.end(),
        [tenant](const Group& g) { return g.tenant == tenant; });
    if (it == groups.end()) {
      groups.push_back(Group{tenant, {}});
      it = std::prev(groups.end());
    }
    it->rows.push_back(k);
  }
  if (groups.empty()) return;

  // One classify_many arena pass per tenant, tenant groups sharded across
  // the thread pool. Verdicts land in pre-sized response slots, and
  // classify_many is bit-identical at any pool size, so the sweep is too.
  util::parallel_for(groups.size(), [&](std::size_t g) {
    const Group& group = groups[g];
    std::vector<const core::Trace*> rows;
    rows.reserve(group.rows.size());
    for (const std::size_t k : group.rows) {
      rows.push_back(&*batch[k].request.trace);
    }
    auto verdicts = group.tenant->fingerprinter().classify_many(rows);
    for (std::size_t j = 0; j < group.rows.size(); ++j) {
      responses[group.rows[j]].verdict = std::move(verdicts[j]);
    }
  });

  std::size_t scored = 0;
  for (Group& group : groups) {
    group.tenant->add_classified(group.rows.size());
    scored += group.rows.size();
  }
  ++sweeps_;
  coalesced_rows_ += scored;
  batch_rows_.observe(static_cast<double>(scored));
  obs::observe("serve.batch_rows", static_cast<double>(scored));
}

Response ClassificationService::control(Pending& pending) {
  Response r;
  const Request& request = pending.request;
  if (request.tenant.empty()) {
    r.status = ServeStatus::InvalidRequest;
    r.error = "request names no tenant";
    return r;
  }
  TenantSession* tenant = find_tenant(request.tenant);
  switch (request.kind) {
    case RequestKind::Enroll: {
      if (!request.trace.has_value() || request.trace->empty()) {
        r.status = ServeStatus::InvalidRequest;
        r.error = "enroll needs a non-empty trace";
        return r;
      }
      if (tenant == nullptr) {
        // First enroll opens the namespace.
        auto session = std::make_unique<TenantSession>(
            request.tenant, config_.fingerprinter);
        tenant = session.get();
        tenants_.emplace(request.tenant, std::move(session));
        tenant_order_.push_back(request.tenant);
        obs::count("serve.tenants_created");
      }
      r.status = tenant->enroll(*request.trace, request.label, &r.error);
      return r;
    }
    case RequestKind::Train: {
      if (tenant == nullptr) {
        r.status = ServeStatus::UnknownTenant;
        r.error = "no such tenant '" + request.tenant + "'";
        return r;
      }
      r.status = tenant->train(&r.error);
      return r;
    }
    case RequestKind::Retire: {
      if (tenant == nullptr) {
        r.status = ServeStatus::UnknownTenant;
        r.error = "no such tenant '" + request.tenant + "'";
        return r;
      }
      r.status = tenant->retire();
      if (r.status == ServeStatus::TenantRetired) {
        r.error = "tenant '" + request.tenant + "' already retired";
      }
      return r;
    }
    case RequestKind::Classify:
      break;  // unreachable: tick() routes classify runs through sweep()
  }
  r.status = ServeStatus::InvalidRequest;
  r.error = "unhandled request kind";
  return r;
}

util::Json ClassificationService::to_json() const {
  const ServiceStats s = stats();
  auto stats_json = util::Json::object();
  stats_json.set("submitted",
                 util::Json::integer(static_cast<std::int64_t>(s.submitted)));
  stats_json.set("admitted",
                 util::Json::integer(static_cast<std::int64_t>(s.admitted)));
  stats_json.set("rejected",
                 util::Json::integer(static_cast<std::int64_t>(s.rejected)));
  stats_json.set("completed",
                 util::Json::integer(static_cast<std::int64_t>(s.completed)));
  stats_json.set(
      "classified",
      util::Json::integer(static_cast<std::int64_t>(s.classified)));
  stats_json.set("open_set_unknown",
                 util::Json::integer(
                     static_cast<std::int64_t>(s.open_set_unknown)));
  stats_json.set("failed",
                 util::Json::integer(static_cast<std::int64_t>(s.failed)));
  stats_json.set("ticks",
                 util::Json::integer(static_cast<std::int64_t>(s.ticks)));
  stats_json.set("sweeps",
                 util::Json::integer(static_cast<std::int64_t>(s.sweeps)));
  stats_json.set(
      "coalesced_rows",
      util::Json::integer(static_cast<std::int64_t>(s.coalesced_rows)));
  stats_json.set(
      "max_queue_depth",
      util::Json::integer(static_cast<std::int64_t>(s.max_queue_depth)));

  auto latency = util::Json::object();
  latency.set("count", util::Json::integer(static_cast<std::int64_t>(
                           latency_vus_.count())));
  latency.set("p50_vus", util::Json::number(latency_vus_.quantile(0.5)));
  latency.set("p90_vus", util::Json::number(latency_vus_.quantile(0.9)));
  latency.set("p99_vus", util::Json::number(latency_vus_.quantile(0.99)));

  auto tenants = util::Json::array();
  for (const std::string& name : tenant_order_) {
    const TenantSession& session = *tenants_.at(name);
    auto t = util::Json::object();
    t.set("name", util::Json::string(name));
    t.set("state", util::Json::string(std::string(state_name(
                       session.state()))));
    t.set("enrolled", util::Json::integer(static_cast<std::int64_t>(
                          session.enrolled())));
    t.set("classified", util::Json::integer(static_cast<std::int64_t>(
                            session.classified())));
    t.set("classes",
          util::Json::integer(static_cast<std::int64_t>(
              session.fingerprinter().class_names().size())));
    tenants.push_back(std::move(t));
  }

  auto root = util::Json::object();
  root.set("virtual_now_s", util::Json::number(now().seconds()));
  root.set("stats", std::move(stats_json));
  root.set("latency", std::move(latency));
  root.set("tenants", std::move(tenants));
  return root;
}

void ClassificationService::register_default_slo(double threshold_vus,
                                                 double target) {
  obs::slos().add({.name = "serve_latency",
                   .histogram = "serve.request_latency_vus",
                   .threshold = threshold_vus,
                   .target = target});
}

}  // namespace amperebleed::serve
