#include "amperebleed/serve/tenant.hpp"

#include <stdexcept>
#include <utility>

namespace amperebleed::serve {

namespace {

void set_error(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

}  // namespace

TenantSession::TenantSession(std::string name,
                             core::OnlineFingerprinterConfig config)
    : name_(std::move(name)), fingerprinter_(config) {}

TenantSession::TenantSession(std::string name, State state,
                             std::uint64_t enrolled, std::uint64_t classified,
                             core::OnlineFingerprinter fingerprinter)
    : name_(std::move(name)),
      state_(state),
      fingerprinter_(std::move(fingerprinter)),
      enrolled_(enrolled),
      classified_(classified) {}

TenantSession TenantSession::restore(std::string name, State state,
                                     std::uint64_t enrolled,
                                     std::uint64_t classified,
                                     core::OnlineFingerprinter fingerprinter) {
  return TenantSession(std::move(name), state, enrolled, classified,
                       std::move(fingerprinter));
}

ServeStatus TenantSession::enroll(const core::Trace& trace,
                                  const std::string& label,
                                  std::string* error) {
  if (state_ == State::Retired) {
    set_error(error, "tenant '" + name_ + "' is retired");
    return ServeStatus::TenantRetired;
  }
  if (state_ == State::Serving) {
    set_error(error, "tenant '" + name_ + "' already trained");
    return ServeStatus::AlreadyTrained;
  }
  if (label.empty()) {
    set_error(error, "enroll needs a model label");
    return ServeStatus::InvalidRequest;
  }
  try {
    fingerprinter_.enroll(trace, label);
  } catch (const std::exception& e) {
    set_error(error, e.what());
    return ServeStatus::InvalidRequest;
  }
  ++enrolled_;
  return ServeStatus::Ok;
}

ServeStatus TenantSession::train(std::string* error) {
  if (state_ == State::Retired) {
    set_error(error, "tenant '" + name_ + "' is retired");
    return ServeStatus::TenantRetired;
  }
  if (state_ == State::Serving) {
    set_error(error, "tenant '" + name_ + "' already trained");
    return ServeStatus::AlreadyTrained;
  }
  try {
    fingerprinter_.train();
  } catch (const std::exception& e) {
    set_error(error, e.what());
    return ServeStatus::InvalidRequest;
  }
  state_ = State::Serving;
  return ServeStatus::Ok;
}

ServeStatus TenantSession::retire() {
  if (state_ == State::Retired) return ServeStatus::TenantRetired;
  state_ = State::Retired;
  return ServeStatus::Ok;
}

ServeStatus TenantSession::admit_classify(const Request& request,
                                          std::string* error) const {
  if (state_ == State::Retired) {
    set_error(error, "tenant '" + name_ + "' is retired");
    return ServeStatus::TenantRetired;
  }
  if (state_ != State::Serving) {
    set_error(error, "tenant '" + name_ + "' is not trained yet");
    return ServeStatus::NotTrained;
  }
  if (!request.trace.has_value() || request.trace->empty()) {
    set_error(error, "classify needs a non-empty trace");
    return ServeStatus::InvalidRequest;
  }
  if (request.trace->size() < fingerprinter_.feature_count()) {
    set_error(error, "trace shorter than the enrolled feature width");
    return ServeStatus::InvalidRequest;
  }
  return ServeStatus::Ok;
}

std::string_view state_name(TenantSession::State state) {
  switch (state) {
    case TenantSession::State::Enrolling:
      return "enrolling";
    case TenantSession::State::Serving:
      return "serving";
    case TenantSession::State::Retired:
      return "retired";
  }
  return "?";
}

}  // namespace amperebleed::serve
