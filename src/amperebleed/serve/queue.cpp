#include "amperebleed/serve/queue.hpp"

#include <algorithm>
#include <utility>

namespace amperebleed::serve {

RequestQueue::RequestQueue(Config config) : config_(config) {
  if (config_.capacity == 0) config_.capacity = 1;
  config_.high_water =
      std::clamp<std::size_t>(config_.high_water, 1, config_.capacity);
}

bool RequestQueue::try_push(Pending&& pending) {
  std::lock_guard<std::mutex> lock(mu_);
  if (items_.size() >= config_.high_water) {
    ++rejected_;
    return false;
  }
  items_.push_back(std::move(pending));
  ++accepted_;
  max_depth_ = std::max(max_depth_, items_.size());
  return true;
}

std::vector<Pending> RequestQueue::drain(std::size_t max) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t n =
      max == 0 ? items_.size() : std::min(max, items_.size());
  std::vector<Pending> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(std::move(items_.front()));
    items_.pop_front();
  }
  return out;
}

std::size_t RequestQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

std::uint64_t RequestQueue::accepted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return accepted_;
}

std::uint64_t RequestQueue::rejected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_;
}

std::size_t RequestQueue::max_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_depth_;
}

}  // namespace amperebleed::serve
