#include "amperebleed/hwmon/hwmon.hpp"

#include <cmath>
#include <memory>

#include "amperebleed/obs/obs.hpp"
#include "amperebleed/util/strings.hpp"

namespace amperebleed::hwmon {

namespace {

constexpr const char* kClassDir = "/sys/class/hwmon";

// The ina2xx driver maps a requested update_interval (ms) to the nearest
// supported averaging count at the configured conversion times.
constexpr std::uint16_t kAvgChoices[] = {1, 4, 16, 64, 128, 256, 512, 1024};

std::uint16_t avg_for_interval(double interval_ms, double per_sample_ms) {
  std::uint16_t best = kAvgChoices[0];
  double best_err = 1e300;
  for (std::uint16_t avg : kAvgChoices) {
    const double err = std::abs(avg * per_sample_ms - interval_ms);
    if (err < best_err) {
      best_err = err;
      best = avg;
    }
  }
  return best;
}

}  // namespace

HwmonSubsystem::HwmonSubsystem(HwmonPolicy policy) : policy_(policy) {
  fs_.mkdirs(kClassDir);
}

long long HwmonSubsystem::harden(const std::string& path, long long raw,
                                 double lsb_units) {
  const auto degrade = [&](long long value) {
    if (policy_.quantize_factor > 1) {
      const double q = lsb_units * policy_.quantize_factor;
      value = static_cast<long long>(
          std::llround(std::round(static_cast<double>(value) / q) * q));
      obs::count("hwmon.defense.quantized_reads");
    }
    if (policy_.noise_lsb > 0.0) {
      value += static_cast<long long>(std::llround(
          defense_rng_.uniform(-policy_.noise_lsb, policy_.noise_lsb) *
          lsb_units));
      obs::count("hwmon.defense.noised_reads");
    }
    return value;
  };

  // Rate limiting: serve the cached (already-degraded) value while fresh,
  // so tight polling cannot average the injected noise away.
  if (policy_.min_read_interval.ns > 0 && now_fn_) {
    auto& entry = read_cache_[path];
    const sim::TimeNs now = now_fn_();
    if (entry.valid && now < entry.at + policy_.min_read_interval) {
      obs::count("hwmon.defense.rate_limited_hits");
      return entry.value;
    }
    entry = CachedRead{now, degrade(raw), true};
    return entry.value;
  }
  return degrade(raw);
}

std::string HwmonSubsystem::device_path(int index) const {
  return util::format("%s/hwmon%d", kClassDir, index);
}

std::string HwmonSubsystem::attr_path(int index, std::string_view attr) const {
  return device_path(index) + "/" + std::string(attr);
}

int HwmonSubsystem::register_ina226(const std::string& label,
                                    sensors::Ina226& sensor,
                                    std::function<void()> pre_access) {
  const int index = static_cast<int>(devices_.size());
  devices_.push_back(Device{label});
  const std::string dir = device_path(index);
  fs_.mkdirs(dir);

  sensors::Ina226* dev = &sensor;
  auto hook = std::make_shared<std::function<void()>>(std::move(pre_access));
  const auto with_sync = [hook](auto&& produce) {
    return [hook, produce]() {
      if (*hook) (*hook)();
      return produce();
    };
  };

  fs_.add_file(dir + "/name", 0444, [label]() { return label + "\n"; });

  // Measurement attributes go through harden() so the driver-level
  // defenses (quantize/noise/rate-limit) apply uniformly. `lsb_units` is
  // the sensor's native LSB expressed in the attribute's output unit.
  const auto add_measurement = [&](const std::string& attr, double lsb_units,
                                   auto producer) {
    const std::string path = dir + "/" + attr;
    fs_.add_file(path, measurement_mode(),
                 with_sync([this, path, lsb_units, producer]() {
                   const long long raw =
                       static_cast<long long>(std::llround(producer()));
                   return util::format("%lld\n",
                                       harden(path, raw, lsb_units));
                 }));
    measurement_attrs_.push_back(path);
  };

  // Measurements, formatted the way the ina2xx hwmon driver does.
  add_measurement("curr1_input", dev->current_lsb_amps() * 1e3,
                  [dev]() { return dev->current_amps() * 1e3; });
  add_measurement("in0_input",  // shunt voltage, mV
                  sensors::Ina226::kShuntVoltageLsbVolts * 1e3,
                  [dev]() { return dev->shunt_voltage_volts() * 1e3; });
  add_measurement("in1_input",  // bus voltage, mV
                  sensors::Ina226::kBusVoltageLsbVolts * 1e3,
                  [dev]() { return dev->bus_voltage_volts() * 1e3; });
  add_measurement("power1_input",  // microwatts
                  dev->power_lsb_watts() * 1e6,
                  [dev]() { return dev->power_watts() * 1e6; });

  // update_interval: readable by all, writable by root only (0644).
  fs_.add_file(
      dir + "/update_interval", 0644,
      with_sync([dev]() {
        return util::format(
            "%lld\n",
            static_cast<long long>(std::llround(dev->update_interval().millis())));
      }),
      [dev](std::string_view text) {
        const auto ms = util::parse_ll(text);
        if (!ms || *ms <= 0) return false;
        const double per_sample_ms = dev->config().shunt_conv_time.millis() +
                                     dev->config().bus_conv_time.millis();
        dev->set_timing(
            avg_for_interval(static_cast<double>(*ms), per_sample_ms),
            dev->config().shunt_conv_time, dev->config().bus_conv_time);
        return true;
      });

  // shunt_resistor in micro-ohms, root-writable like the real driver.
  fs_.add_file(dir + "/shunt_resistor", 0644, [dev]() {
    return util::format("%lld\n",
                        static_cast<long long>(
                            std::llround(dev->config().shunt_ohms * 1e6)));
  });

  return index;
}

int HwmonSubsystem::register_sysmon(const std::string& label,
                                    sensors::Sysmon& sensor,
                                    std::function<void()> pre_access) {
  const int index = static_cast<int>(devices_.size());
  devices_.push_back(Device{label});
  const std::string dir = device_path(index);
  fs_.mkdirs(dir);

  sensors::Sysmon* dev = &sensor;
  auto hook = std::make_shared<std::function<void()>>(std::move(pre_access));

  fs_.add_file(dir + "/name", 0444, [label]() { return label + "\n"; });
  const std::string temp_path = dir + "/temp1_input";
  const double temp_lsb_mc = sensor.config().temp_scale * 1e3;
  fs_.add_file(temp_path, measurement_mode(),
               [this, temp_path, temp_lsb_mc, hook, dev]() {
                 if (*hook) (*hook)();
                 // hwmon convention: millidegrees Celsius.
                 const long long raw = static_cast<long long>(
                     std::llround(dev->temperature_celsius() * 1e3));
                 return util::format("%lld\n",
                                     harden(temp_path, raw, temp_lsb_mc));
               });
  measurement_attrs_.push_back(temp_path);
  return index;
}

std::optional<int> HwmonSubsystem::find_device(std::string_view label) const {
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    if (devices_[i].label == label) return static_cast<int>(i);
  }
  return std::nullopt;
}

std::vector<std::string> HwmonSubsystem::device_labels() const {
  std::vector<std::string> labels;
  labels.reserve(devices_.size());
  for (const auto& d : devices_) labels.push_back(d.label);
  return labels;
}

void HwmonSubsystem::set_policy(HwmonPolicy policy) {
  policy_ = policy;
  for (const auto& path : measurement_attrs_) {
    fs_.chmod(path, measurement_mode());
  }
}

}  // namespace amperebleed::hwmon
