#include "amperebleed/hwmon/vfs.hpp"

#include <stdexcept>
#include <utility>

#include "amperebleed/obs/obs.hpp"
#include "amperebleed/util/strings.hpp"

namespace amperebleed::hwmon {

namespace {

/// Observability tap on the permission gate itself. Every read/write result
/// — success or any distinct failure branch — increments its own counter
/// ("hwmon.vfs.read.permission-denied", ...) and lands in the access-audit
/// log. No-ops (one relaxed atomic load) when observability is disabled.
void note_access(const char* op, std::string_view path, bool privileged,
                 VfsStatus status) {
  if (obs::metrics_enabled()) {
    obs::metrics()
        .counter(util::format("hwmon.vfs.%s.%s", op,
                              std::string(vfs_status_name(status)).c_str()))
        .inc();
  }
  if (obs::audit_enabled()) {
    obs::AccessOutcome outcome = obs::AccessOutcome::Error;
    if (status == VfsStatus::Ok) {
      outcome = obs::AccessOutcome::Ok;
    } else if (status == VfsStatus::PermissionDenied) {
      outcome = obs::AccessOutcome::Denied;
    }
    obs::audit_log().record(path, privileged, outcome);
  }
}

}  // namespace

std::string_view vfs_status_name(VfsStatus s) {
  // -Wswitch flags a missing case here; kVfsStatusCount static_asserts keep
  // kAllVfsStatuses (and thus the per-status obs counters and the
  // vfs_status_from_name inverse, which both iterate it) in lock-step.
  static_assert(kVfsStatusCount == 8,
                "new VfsStatus: add a case below and extend kAllVfsStatuses");
  switch (s) {
    case VfsStatus::Ok:
      return "ok";
    case VfsStatus::NotFound:
      return "not-found";
    case VfsStatus::PermissionDenied:
      return "permission-denied";
    case VfsStatus::IsDirectory:
      return "is-directory";
    case VfsStatus::NotDirectory:
      return "not-directory";
    case VfsStatus::NotWritable:
      return "not-writable";
    case VfsStatus::InvalidArgument:
      return "invalid-argument";
    case VfsStatus::TryAgain:
      return "try-again";
  }
  return "unknown";
}

std::optional<VfsStatus> vfs_status_from_name(std::string_view name) {
  for (VfsStatus s : kAllVfsStatuses) {
    if (vfs_status_name(s) == name) return s;
  }
  return std::nullopt;
}

VirtualFs::VirtualFs() : root_(std::make_unique<Node>()) {
  root_->directory = true;
  root_->mode = 0755;
}

const VirtualFs::Node* VirtualFs::find(std::string_view path) const {
  const Node* node = root_.get();
  for (const auto& component : util::split_path(path)) {
    if (!node->directory) return nullptr;
    const auto it = node->children.find(component);
    if (it == node->children.end()) return nullptr;
    node = it->second.get();
  }
  return node;
}

VirtualFs::Node* VirtualFs::find(std::string_view path) {
  return const_cast<Node*>(std::as_const(*this).find(path));
}

VirtualFs::Node* VirtualFs::ensure_dirs(
    const std::vector<std::string>& components, std::size_t count) {
  Node* node = root_.get();
  for (std::size_t i = 0; i < count; ++i) {
    auto& child = node->children[components[i]];
    if (!child) {
      child = std::make_unique<Node>();
      child->directory = true;
      child->mode = 0755;
    } else if (!child->directory) {
      throw std::runtime_error("VirtualFs: '" + components[i] +
                               "' exists as a file");
    }
    node = child.get();
  }
  return node;
}

void VirtualFs::mkdirs(std::string_view path) {
  const auto components = util::split_path(path);
  ensure_dirs(components, components.size());
}

void VirtualFs::add_file(std::string_view path, int mode, ReadFn reader,
                         WriteFn writer) {
  const auto components = util::split_path(path);
  if (components.empty()) {
    throw std::invalid_argument("VirtualFs::add_file: empty path");
  }
  Node* parent = ensure_dirs(components, components.size() - 1);
  const std::string& leaf = components.back();
  if (parent->children.count(leaf) != 0) {
    throw std::runtime_error("VirtualFs::add_file: '" + std::string(path) +
                             "' already exists");
  }
  auto node = std::make_unique<Node>();
  node->directory = false;
  node->mode = mode;
  node->reader = std::move(reader);
  node->writer = std::move(writer);
  parent->children[leaf] = std::move(node);
}

void VirtualFs::chmod(std::string_view path, int mode) {
  Node* node = find(path);
  if (node == nullptr) {
    throw std::runtime_error("VirtualFs::chmod: no such file '" +
                             std::string(path) + "'");
  }
  if (node->directory) {
    throw std::runtime_error("VirtualFs::chmod: '" + std::string(path) +
                             "' is a directory");
  }
  node->mode = mode;
}

VfsResult VirtualFs::read(std::string_view path, bool privileged) const {
  VfsResult result = [&]() -> VfsResult {
    const Node* node = find(path);
    if (node == nullptr) return {VfsStatus::NotFound, {}};
    if (node->directory) return {VfsStatus::IsDirectory, {}};
    const bool readable =
        privileged ? (node->mode & 0400) != 0 : (node->mode & 0004) != 0;
    if (!readable) return {VfsStatus::PermissionDenied, {}};
    if (!node->reader) return {VfsStatus::Ok, {}};
    return {VfsStatus::Ok, node->reader()};
  }();
  // Fault injection happens between the clean read and the accounting, so
  // an injected EAGAIN/ENOENT/torn read is indistinguishable from a real
  // one to every consumer — including the per-status counters below.
  if (read_fault_hook_) {
    result = read_fault_hook_(path, privileged, std::move(result));
  }
  note_access("read", path, privileged, result.status);
  return result;
}

void VirtualFs::set_read_fault_hook(ReadFaultHook hook) {
  if (hook && read_fault_hook_) {
    throw std::logic_error(
        "VirtualFs: a read-fault hook is already installed");
  }
  read_fault_hook_ = std::move(hook);
}

VfsResult VirtualFs::write(std::string_view path, std::string_view data,
                           bool privileged) {
  VfsResult result = [&]() -> VfsResult {
    Node* node = find(path);
    if (node == nullptr) return {VfsStatus::NotFound, {}};
    if (node->directory) return {VfsStatus::IsDirectory, {}};
    const bool writable =
        privileged ? (node->mode & 0200) != 0 : (node->mode & 0002) != 0;
    if (!writable) return {VfsStatus::PermissionDenied, {}};
    if (!node->writer) return {VfsStatus::NotWritable, {}};
    if (!node->writer(data)) return {VfsStatus::InvalidArgument, {}};
    return {VfsStatus::Ok, {}};
  }();
  note_access("write", path, privileged, result.status);
  return result;
}

std::vector<std::string> VirtualFs::list(std::string_view path) const {
  const Node* node = find(path);
  if (node == nullptr || !node->directory) return {};
  std::vector<std::string> names;
  names.reserve(node->children.size());
  for (const auto& [name, child] : node->children) names.push_back(name);
  return names;  // std::map keeps them sorted
}

bool VirtualFs::exists(std::string_view path) const {
  return find(path) != nullptr;
}

bool VirtualFs::is_directory(std::string_view path) const {
  const Node* node = find(path);
  return node != nullptr && node->directory;
}

int VirtualFs::mode_of(std::string_view path) const {
  const Node* node = find(path);
  return node == nullptr ? -1 : node->mode;
}

}  // namespace amperebleed::hwmon
