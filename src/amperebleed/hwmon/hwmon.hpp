#pragma once
// The Linux hwmon subsystem as seen from user space: per-device directories
// under /sys/class/hwmon/hwmonN exposing the INA226 measurements as text
// attributes. Measurement attributes are world-readable (the AmpereBleed
// precondition); update_interval is root-writable only, which is why the
// unprivileged attacker is stuck with the 35 ms default.
//
// The mitigation the paper discusses (restricting sensor access to
// privileged users) is the `unprivileged_sensor_read` policy knob.

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "amperebleed/hwmon/vfs.hpp"
#include "amperebleed/sensors/ina226.hpp"
#include "amperebleed/sensors/sysmon.hpp"
#include "amperebleed/sim/time.hpp"
#include "amperebleed/util/rng.hpp"

namespace amperebleed::hwmon {

struct HwmonPolicy {
  /// When false, measurement attributes become mode 0400 (root-only) — the
  /// paper's proposed mitigation.
  bool unprivileged_sensor_read = true;

  // --- Softer, driver-level defenses (evaluated in ablation_defenses) ---
  // These degrade the side channel while keeping unprivileged monitoring
  // functional, trading attack resistance against reporting fidelity.

  /// Defense: report current/power at a coarser granularity — values are
  /// rounded to `quantize_factor` multiples of the native LSB (1 = off).
  int quantize_factor = 1;
  /// Defense: add uniform +/- `noise_lsb` LSBs of driver-side noise to
  /// every reported measurement (0 = off). Deterministic per subsystem
  /// seed, fresh per read.
  double noise_lsb = 0.0;
  /// Defense: rate-limit measurement freshness — reads within this interval
  /// of the previous read of the same attribute return the cached value
  /// (0 = off). Requires a clock (set_clock), otherwise ignored.
  sim::TimeNs min_read_interval{0};
};

/// Registry of hwmon devices over a VirtualFs. Devices are INA226 instances;
/// every attribute read first invokes the device's `pre_access` hook so the
/// owning SoC can advance simulation time to "now".
class HwmonSubsystem {
 public:
  explicit HwmonSubsystem(HwmonPolicy policy = {});

  /// Register an INA226 as hwmonN. `label` is the board designator
  /// (e.g. "ina226_u79"); `pre_access` runs before any attribute read.
  /// Returns the assigned index N. The sensor must outlive the subsystem.
  int register_ina226(const std::string& label, sensors::Ina226& sensor,
                      std::function<void()> pre_access);

  /// Register a SYSMON/AMS die monitor exposing temp1_input (millidegree C).
  /// Measurement permissions follow the same policy as the INA devices.
  int register_sysmon(const std::string& label, sensors::Sysmon& sensor,
                      std::function<void()> pre_access);

  [[nodiscard]] std::string device_path(int index) const;
  [[nodiscard]] std::string attr_path(int index, std::string_view attr) const;
  /// Index of the device whose name attribute equals `label`.
  [[nodiscard]] std::optional<int> find_device(std::string_view label) const;
  [[nodiscard]] std::vector<std::string> device_labels() const;

  [[nodiscard]] VirtualFs& fs() { return fs_; }
  [[nodiscard]] const VirtualFs& fs() const { return fs_; }

  [[nodiscard]] const HwmonPolicy& policy() const { return policy_; }
  /// Apply a new policy; re-chmods every registered measurement attribute.
  void set_policy(HwmonPolicy policy);

  /// Provide the virtual clock used by the rate-limiting defense (the SoC
  /// wires this to its own now()).
  void set_clock(std::function<sim::TimeNs()> now_fn) {
    now_fn_ = std::move(now_fn);
  }

 private:
  [[nodiscard]] int measurement_mode() const {
    return policy_.unprivileged_sensor_read ? 0444 : 0400;
  }
  /// Apply the driver-level defenses to a raw integer reading of one
  /// measurement attribute whose native LSB maps to `lsb_units` output
  /// units; returns the value to report.
  [[nodiscard]] long long harden(const std::string& path, long long raw,
                                 double lsb_units);

  HwmonPolicy policy_;
  std::function<sim::TimeNs()> now_fn_;
  util::Rng defense_rng_{0xdef};
  struct CachedRead {
    sim::TimeNs at{-1'000'000'000};
    long long value = 0;
    bool valid = false;
  };
  std::map<std::string, CachedRead> read_cache_;
  VirtualFs fs_;
  struct Device {
    std::string label;
  };
  std::vector<Device> devices_;
  std::vector<std::string> measurement_attrs_;  // paths to re-chmod on policy
};

}  // namespace amperebleed::hwmon
