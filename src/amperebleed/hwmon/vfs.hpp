#pragma once
// An in-memory sysfs: directory tree with attribute files backed by
// read/write callbacks and POSIX-style mode bits. This is the unprivileged
// interface the attack uses — reads go through the same permission checks a
// real /sys/class/hwmon tree would apply.

#include <cstddef>
#include <functional>
#include <iterator>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace amperebleed::hwmon {

enum class VfsStatus {
  Ok,
  NotFound,
  PermissionDenied,
  IsDirectory,
  NotDirectory,
  NotWritable,
  InvalidArgument,  // write rejected by the attribute (EINVAL)
  TryAgain,         // transient failure (EAGAIN) — retry may succeed
};

/// Number of VfsStatus values. When adding a status, bump this in the same
/// change — every table below static_asserts against it, so a new status
/// cannot silently miss kAllVfsStatuses, the name map, or the per-status
/// obs counters (which derive their names from vfs_status_name).
inline constexpr std::size_t kVfsStatusCount = 8;

/// All statuses, in declaration order (for exhaustive iteration in tests
/// and per-status counter registration).
inline constexpr VfsStatus kAllVfsStatuses[] = {
    VfsStatus::Ok,          VfsStatus::NotFound,
    VfsStatus::PermissionDenied, VfsStatus::IsDirectory,
    VfsStatus::NotDirectory,     VfsStatus::NotWritable,
    VfsStatus::InvalidArgument,  VfsStatus::TryAgain,
};
static_assert(std::size(kAllVfsStatuses) == kVfsStatusCount,
              "kAllVfsStatuses must enumerate every VfsStatus exactly once");

std::string_view vfs_status_name(VfsStatus s);
/// Inverse of vfs_status_name; nullopt for unknown names.
std::optional<VfsStatus> vfs_status_from_name(std::string_view name);

struct VfsResult {
  VfsStatus status = VfsStatus::Ok;
  std::string data;  // file contents on successful read

  [[nodiscard]] bool ok() const { return status == VfsStatus::Ok; }
};

/// Attribute read callback: produce the current file contents.
using ReadFn = std::function<std::string()>;
/// Attribute write callback: apply the value; return false to signal EINVAL.
using WriteFn = std::function<bool(std::string_view)>;

/// Read-fault hook: invoked after a read's clean result is computed and may
/// replace it — the seam `faults::FaultInjector` uses to model EAGAIN,
/// driver rebinds, permission flaps, torn/garbage attribute text and stuck
/// conversion registers without the filesystem knowing about fault plans.
/// The surfaced (possibly faulted) status is what lands in the per-status
/// obs counters and the access-audit log.
using ReadFaultHook =
    std::function<VfsResult(std::string_view path, bool privileged,
                            VfsResult clean)>;

class VirtualFs {
 public:
  VirtualFs();

  /// Create a directory (and any missing parents). Throws if a path
  /// component exists as a file.
  void mkdirs(std::string_view path);

  /// Register an attribute file. `mode` uses octal sysfs conventions
  /// (e.g. 0444 world-readable, 0644 root-writable, 0400 root-only read).
  /// Parent directories are created as needed. Throws on duplicates.
  void add_file(std::string_view path, int mode, ReadFn reader,
                WriteFn writer = nullptr);

  /// Change an existing file's mode bits; throws if missing or a directory.
  void chmod(std::string_view path, int mode);

  /// Read a file. `privileged` models uid 0.
  [[nodiscard]] VfsResult read(std::string_view path, bool privileged) const;

  /// Install (or clear, with nullptr) the read-fault hook. At most one hook
  /// is active; installing over an existing hook throws so two injectors
  /// cannot silently fight over the same tree.
  void set_read_fault_hook(ReadFaultHook hook);
  [[nodiscard]] bool has_read_fault_hook() const {
    return static_cast<bool>(read_fault_hook_);
  }

  /// Write a file.
  VfsResult write(std::string_view path, std::string_view data,
                  bool privileged);

  /// Sorted names of a directory's entries.
  [[nodiscard]] std::vector<std::string> list(std::string_view path) const;

  [[nodiscard]] bool exists(std::string_view path) const;
  [[nodiscard]] bool is_directory(std::string_view path) const;
  [[nodiscard]] int mode_of(std::string_view path) const;  // -1 if missing

 private:
  struct Node {
    bool directory = false;
    int mode = 0;
    ReadFn reader;
    WriteFn writer;
    std::map<std::string, std::unique_ptr<Node>> children;
  };

  [[nodiscard]] const Node* find(std::string_view path) const;
  [[nodiscard]] Node* find(std::string_view path);
  Node* ensure_dirs(const std::vector<std::string>& components,
                    std::size_t count);

  std::unique_ptr<Node> root_;
  ReadFaultHook read_fault_hook_;
};

}  // namespace amperebleed::hwmon
