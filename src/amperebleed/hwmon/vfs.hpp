#pragma once
// An in-memory sysfs: directory tree with attribute files backed by
// read/write callbacks and POSIX-style mode bits. This is the unprivileged
// interface the attack uses — reads go through the same permission checks a
// real /sys/class/hwmon tree would apply.

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace amperebleed::hwmon {

enum class VfsStatus {
  Ok,
  NotFound,
  PermissionDenied,
  IsDirectory,
  NotDirectory,
  NotWritable,
  InvalidArgument,  // write rejected by the attribute (EINVAL)
};

/// All statuses, in declaration order (for exhaustive iteration in tests
/// and per-status counter registration).
inline constexpr VfsStatus kAllVfsStatuses[] = {
    VfsStatus::Ok,          VfsStatus::NotFound,
    VfsStatus::PermissionDenied, VfsStatus::IsDirectory,
    VfsStatus::NotDirectory,     VfsStatus::NotWritable,
    VfsStatus::InvalidArgument,
};

std::string_view vfs_status_name(VfsStatus s);
/// Inverse of vfs_status_name; nullopt for unknown names.
std::optional<VfsStatus> vfs_status_from_name(std::string_view name);

struct VfsResult {
  VfsStatus status = VfsStatus::Ok;
  std::string data;  // file contents on successful read

  [[nodiscard]] bool ok() const { return status == VfsStatus::Ok; }
};

/// Attribute read callback: produce the current file contents.
using ReadFn = std::function<std::string()>;
/// Attribute write callback: apply the value; return false to signal EINVAL.
using WriteFn = std::function<bool(std::string_view)>;

class VirtualFs {
 public:
  VirtualFs();

  /// Create a directory (and any missing parents). Throws if a path
  /// component exists as a file.
  void mkdirs(std::string_view path);

  /// Register an attribute file. `mode` uses octal sysfs conventions
  /// (e.g. 0444 world-readable, 0644 root-writable, 0400 root-only read).
  /// Parent directories are created as needed. Throws on duplicates.
  void add_file(std::string_view path, int mode, ReadFn reader,
                WriteFn writer = nullptr);

  /// Change an existing file's mode bits; throws if missing or a directory.
  void chmod(std::string_view path, int mode);

  /// Read a file. `privileged` models uid 0.
  [[nodiscard]] VfsResult read(std::string_view path, bool privileged) const;

  /// Write a file.
  VfsResult write(std::string_view path, std::string_view data,
                  bool privileged);

  /// Sorted names of a directory's entries.
  [[nodiscard]] std::vector<std::string> list(std::string_view path) const;

  [[nodiscard]] bool exists(std::string_view path) const;
  [[nodiscard]] bool is_directory(std::string_view path) const;
  [[nodiscard]] int mode_of(std::string_view path) const;  // -1 if missing

 private:
  struct Node {
    bool directory = false;
    int mode = 0;
    ReadFn reader;
    WriteFn writer;
    std::map<std::string, std::unique_ptr<Node>> children;
  };

  [[nodiscard]] const Node* find(std::string_view path) const;
  [[nodiscard]] Node* find(std::string_view path);
  Node* ensure_dirs(const std::vector<std::string>& components,
                    std::size_t count);

  std::unique_ptr<Node> root_;
};

}  // namespace amperebleed::hwmon
