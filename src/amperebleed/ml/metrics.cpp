#include "amperebleed/ml/metrics.hpp"

#include <algorithm>
#include <stdexcept>

#include "amperebleed/util/strings.hpp"

namespace amperebleed::ml {

double accuracy(std::span<const int> truth, std::span<const int> predicted) {
  if (truth.size() != predicted.size()) {
    throw std::invalid_argument("accuracy: length mismatch");
  }
  if (truth.empty()) return 0.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == predicted[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

double top_k_accuracy(std::span<const int> truth,
                      const std::vector<std::vector<int>>& candidates) {
  if (truth.size() != candidates.size()) {
    throw std::invalid_argument("top_k_accuracy: length mismatch");
  }
  if (truth.empty()) return 0.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (std::find(candidates[i].begin(), candidates[i].end(), truth[i]) !=
        candidates[i].end()) {
      ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

ConfusionMatrix::ConfusionMatrix(int class_count)
    : class_count_(class_count),
      cells_(static_cast<std::size_t>(class_count) *
                 static_cast<std::size_t>(class_count),
             0) {
  if (class_count <= 0) {
    throw std::invalid_argument("ConfusionMatrix: class_count must be > 0");
  }
}

void ConfusionMatrix::add(int truth, int predicted) {
  if (truth < 0 || truth >= class_count_ || predicted < 0 ||
      predicted >= class_count_) {
    throw std::out_of_range("ConfusionMatrix::add: label out of range");
  }
  ++cells_[static_cast<std::size_t>(truth) *
               static_cast<std::size_t>(class_count_) +
           static_cast<std::size_t>(predicted)];
  ++total_;
}

std::size_t ConfusionMatrix::count(int truth, int predicted) const {
  if (truth < 0 || truth >= class_count_ || predicted < 0 ||
      predicted >= class_count_) {
    throw std::out_of_range("ConfusionMatrix::count: label out of range");
  }
  return cells_[static_cast<std::size_t>(truth) *
                    static_cast<std::size_t>(class_count_) +
                static_cast<std::size_t>(predicted)];
}

double ConfusionMatrix::overall_accuracy() const {
  if (total_ == 0) return 0.0;
  std::size_t diag = 0;
  for (int c = 0; c < class_count_; ++c) {
    diag += count(c, c);
  }
  return static_cast<double>(diag) / static_cast<double>(total_);
}

double ConfusionMatrix::recall(int cls) const {
  std::size_t row = 0;
  for (int p = 0; p < class_count_; ++p) row += count(cls, p);
  if (row == 0) return 0.0;
  return static_cast<double>(count(cls, cls)) / static_cast<double>(row);
}

double ConfusionMatrix::precision(int cls) const {
  std::size_t col = 0;
  for (int t = 0; t < class_count_; ++t) col += count(t, cls);
  if (col == 0) return 0.0;
  return static_cast<double>(count(cls, cls)) / static_cast<double>(col);
}

std::string ConfusionMatrix::render() const {
  std::string out = "truth\\pred";
  for (int p = 0; p < class_count_; ++p) out += util::format("%6d", p);
  out += '\n';
  for (int t = 0; t < class_count_; ++t) {
    out += util::format("%9d ", t);
    for (int p = 0; p < class_count_; ++p) {
      out += util::format("%6zu", count(t, p));
    }
    out += '\n';
  }
  return out;
}

}  // namespace amperebleed::ml
