#include "amperebleed/ml/baselines.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "amperebleed/ml/kfold.hpp"
#include "amperebleed/ml/metrics.hpp"
#include "amperebleed/util/parallel.hpp"
#include "amperebleed/util/rng.hpp"

namespace amperebleed::ml {

namespace {

double squared_distance(std::span<const double> a, std::span<const double> b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

}  // namespace

KnnClassifier::KnnClassifier(std::size_t k) : k_(k) {
  if (k == 0) throw std::invalid_argument("KnnClassifier: k must be >= 1");
}

void KnnClassifier::fit(const Dataset& data) {
  if (data.empty()) throw std::invalid_argument("KnnClassifier: empty data");
  train_ = data;
}

int KnnClassifier::predict(std::span<const double> features) const {
  if (train_.empty()) throw std::logic_error("KnnClassifier: not fitted");
  // Collect the k smallest distances.
  std::vector<std::pair<double, int>> neighbours;  // (dist, label)
  neighbours.reserve(train_.size());
  for (std::size_t i = 0; i < train_.size(); ++i) {
    neighbours.emplace_back(squared_distance(features, train_.row(i)),
                            train_.label(i));
  }
  const std::size_t k = std::min(k_, neighbours.size());
  std::partial_sort(neighbours.begin(),
                    neighbours.begin() + static_cast<std::ptrdiff_t>(k),
                    neighbours.end());
  std::vector<std::size_t> votes(
      static_cast<std::size_t>(train_.class_count()), 0);
  for (std::size_t i = 0; i < k; ++i) {
    ++votes[static_cast<std::size_t>(neighbours[i].second)];
  }
  // Majority vote; ties go to the class of the nearest member among tied.
  std::size_t best_votes = 0;
  for (std::size_t v : votes) best_votes = std::max(best_votes, v);
  for (std::size_t i = 0; i < k; ++i) {
    if (votes[static_cast<std::size_t>(neighbours[i].second)] == best_votes) {
      return neighbours[i].second;
    }
  }
  return neighbours.front().second;
}

void CentroidClassifier::fit(const Dataset& data) {
  if (data.empty()) {
    throw std::invalid_argument("CentroidClassifier: empty data");
  }
  const auto classes = static_cast<std::size_t>(data.class_count());
  centroids_.assign(classes, std::vector<double>(data.feature_count(), 0.0));
  std::vector<std::size_t> counts(classes, 0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto label = static_cast<std::size_t>(data.label(i));
    const auto row = data.row(i);
    for (std::size_t f = 0; f < row.size(); ++f) {
      centroids_[label][f] += row[f];
    }
    ++counts[label];
  }
  for (std::size_t c = 0; c < classes; ++c) {
    if (counts[c] == 0) continue;
    for (double& v : centroids_[c]) v /= static_cast<double>(counts[c]);
  }
}

int CentroidClassifier::predict(std::span<const double> features) const {
  if (centroids_.empty()) {
    throw std::logic_error("CentroidClassifier: not fitted");
  }
  int best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < centroids_.size(); ++c) {
    const double d = squared_distance(features, centroids_[c]);
    if (d < best_dist) {
      best_dist = d;
      best = static_cast<int>(c);
    }
  }
  return best;
}

ClassifierCvResult cross_validate_classifier(
    const Dataset& data,
    const std::function<std::unique_ptr<Classifier>(std::uint64_t)>& factory,
    std::size_t folds, std::uint64_t seed) {
  const auto fold_list = stratified_kfold(data.labels(), folds, seed);
  // Folds run concurrently (fresh classifier per fold, per-fold seed is a
  // pure function of the fold index); per-fold outcomes land in pre-sized
  // slots and are concatenated in fold order, so the accuracy is
  // bit-identical to a serial sweep at any pool size.
  struct FoldOutcome {
    std::vector<int> truth;
    std::vector<int> predicted;
  };
  std::vector<FoldOutcome> outcomes(fold_list.size());
  util::parallel_for(fold_list.size(), [&](std::size_t f) {
    auto model = factory(util::hash_combine(seed, f));
    model->fit(data.subset(fold_list[f].train_indices));
    FoldOutcome& out = outcomes[f];
    for (std::size_t i : fold_list[f].test_indices) {
      out.truth.push_back(data.label(i));
      out.predicted.push_back(model->predict(data.row(i)));
    }
  });
  std::vector<int> truth;
  std::vector<int> predicted;
  for (auto& out : outcomes) {
    truth.insert(truth.end(), out.truth.begin(), out.truth.end());
    predicted.insert(predicted.end(), out.predicted.begin(),
                     out.predicted.end());
  }
  ClassifierCvResult result;
  result.evaluated = truth.size();
  result.top1_accuracy = accuracy(truth, predicted);
  return result;
}

}  // namespace amperebleed::ml
