#pragma once
// Baseline classifiers and a classifier-agnostic cross-validation harness.
// The paper chose a random forest for its fingerprinting phase; the
// classifier ablation quantifies how much of Table III is the channel and
// how much is the model by swapping in k-NN and nearest-centroid.

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "amperebleed/ml/dataset.hpp"
#include "amperebleed/ml/random_forest.hpp"

namespace amperebleed::ml {

/// Minimal classifier interface for the generic CV harness.
class Classifier {
 public:
  virtual ~Classifier() = default;
  virtual void fit(const Dataset& data) = 0;
  [[nodiscard]] virtual int predict(std::span<const double> features) const = 0;
};

/// Brute-force k-nearest-neighbours (Euclidean), majority vote with
/// nearest-neighbour tie break.
class KnnClassifier final : public Classifier {
 public:
  explicit KnnClassifier(std::size_t k = 5);
  void fit(const Dataset& data) override;
  [[nodiscard]] int predict(std::span<const double> features) const override;
  [[nodiscard]] std::size_t k() const { return k_; }

 private:
  std::size_t k_;
  Dataset train_;
};

/// Nearest class centroid (Euclidean).
class CentroidClassifier final : public Classifier {
 public:
  void fit(const Dataset& data) override;
  [[nodiscard]] int predict(std::span<const double> features) const override;
  [[nodiscard]] std::size_t class_count() const { return centroids_.size(); }

 private:
  std::vector<std::vector<double>> centroids_;  // one per class
};

/// RandomForest adapted to the Classifier interface.
class ForestClassifier final : public Classifier {
 public:
  explicit ForestClassifier(ForestConfig config = {}) : forest_(config) {}
  void fit(const Dataset& data) override { forest_.fit(data); }
  [[nodiscard]] int predict(std::span<const double> features) const override {
    return forest_.predict(features);
  }

 private:
  RandomForest forest_;
};

struct ClassifierCvResult {
  double top1_accuracy = 0.0;
  std::size_t evaluated = 0;
};

/// Stratified k-fold CV for any classifier; `factory(seed)` builds a fresh
/// instance per fold (seed varies per fold for stochastic learners). Folds
/// run concurrently on the util::ThreadPool, so `factory` may be invoked
/// from several threads at once — it must be safe to call concurrently
/// (stateless lambdas and by-value captures are fine). Results are
/// bit-identical at any pool size.
ClassifierCvResult cross_validate_classifier(
    const Dataset& data,
    const std::function<std::unique_ptr<Classifier>(std::uint64_t)>& factory,
    std::size_t folds, std::uint64_t seed);

}  // namespace amperebleed::ml
