#pragma once
// Classification metrics: top-1/top-k accuracy and a confusion matrix,
// matching what Table III reports per sensor channel and duration.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace amperebleed::ml {

/// Fraction of samples whose predicted label equals the true label.
/// Throws on length mismatch; returns 0 for empty input.
double accuracy(std::span<const int> truth, std::span<const int> predicted);

/// Fraction of samples whose true label appears in the per-sample candidate
/// list (e.g. top-5 predictions). Throws on length mismatch.
double top_k_accuracy(std::span<const int> truth,
                      const std::vector<std::vector<int>>& candidates);

/// Square confusion matrix with pretty-printing for reports.
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(int class_count);

  void add(int truth, int predicted);
  [[nodiscard]] std::size_t count(int truth, int predicted) const;
  [[nodiscard]] int class_count() const { return class_count_; }
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] double overall_accuracy() const;
  /// Recall of one class (diagonal / row sum); 0 when the class is absent.
  [[nodiscard]] double recall(int cls) const;
  [[nodiscard]] double precision(int cls) const;
  [[nodiscard]] std::string render() const;

 private:
  int class_count_;
  std::vector<std::size_t> cells_;  // class_count_ x class_count_
  std::size_t total_ = 0;
};

}  // namespace amperebleed::ml
