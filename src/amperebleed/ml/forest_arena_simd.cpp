// AVX2 lockstep traversal kernel for ForestArena (DESIGN.md §14).
//
// Compiled for the baseline ISA with a per-function target("avx2")
// attribute, so the binary still runs on non-AVX2 x86 hosts — util::simd
// only selects the kAvx2 tier after a cpuid check. The kernel makes the
// exact same comparisons as the scalar walk (`row[f] <= threshold` with
// ordered semantics, so NaN always goes right), hence bit-identical
// probabilities across tiers.

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <cstdint>

#include "amperebleed/ml/forest_arena.hpp"

namespace amperebleed::ml {

namespace {

/// Compress the 64-bit lane masks of two compare results (lanes 0-3 and
/// 4-7) into one vector of eight 32-bit masks.
__attribute__((target("avx2"))) inline __m256i compress_masks(__m256d lo,
                                                              __m256d hi) {
  // Pick dwords 0,2,4,6 of each 64-bit mask pair (either dword works: a
  // compare mask is all-ones or all-zeros per lane).
  const __m256i pick = _mm256_setr_epi32(0, 2, 4, 6, 0, 2, 4, 6);
  const __m256i lo32 = _mm256_permutevar8x32_epi32(_mm256_castpd_si256(lo), pick);
  const __m256i hi32 = _mm256_permutevar8x32_epi32(_mm256_castpd_si256(hi), pick);
  return _mm256_permute2x128_si256(lo32, hi32, 0x20);
}

}  // namespace

__attribute__((target("avx2"))) void ForestArena::walk_lockstep_avx2(
    std::size_t t, const double* rowblock, std::int32_t* leaf_idx) const {
  static_assert(kInterleaveLanes == 8,
                "AVX2 kernel walks exactly 8 int32 lanes");
  const std::int32_t* feat = feature.data();
  const double* thr = threshold.data();
  const std::int32_t* rgt = right.data();
  const __m256i lane_id = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  const __m256i ones = _mm256_set1_epi32(1);
  const __m256i minus_one = _mm256_set1_epi32(-1);

  __m256i idx = _mm256_set1_epi32(roots[t]);
  for (;;) {
    const __m256i f = _mm256_i32gather_epi32(feat, idx, 4);
    // internal = f >= 0, i.e. f > -1 (leaves carry kLeaf == -1).
    const __m256i internal = _mm256_cmpgt_epi32(f, minus_one);
    if (_mm256_movemask_epi8(internal) == 0) break;

    // Leaf lanes read feature 0 / their (zeroed) threshold slot — valid
    // memory whose result the final select discards.
    const __m256i fs = _mm256_and_si256(f, internal);
    const __m256i off =
        _mm256_add_epi32(_mm256_slli_epi32(fs, 3), lane_id);
    const __m128i off_lo = _mm256_castsi256_si128(off);
    const __m128i off_hi = _mm256_extracti128_si256(off, 1);
    const __m128i idx_lo = _mm256_castsi256_si128(idx);
    const __m128i idx_hi = _mm256_extracti128_si256(idx, 1);

    // Masked form with an explicit zero source + all-ones mask: identical
    // to the plain gather but avoids GCC's _mm256_undefined_pd()
    // maybe-uninitialized warning.
    const __m256d zero = _mm256_setzero_pd();
    const __m256d full = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
    const __m256d v_lo = _mm256_mask_i32gather_pd(zero, rowblock, off_lo, full, 8);
    const __m256d v_hi = _mm256_mask_i32gather_pd(zero, rowblock, off_hi, full, 8);
    const __m256d t_lo = _mm256_mask_i32gather_pd(zero, thr, idx_lo, full, 8);
    const __m256d t_hi = _mm256_mask_i32gather_pd(zero, thr, idx_hi, full, 8);

    // Ordered <=: NaN row values compare false, matching the scalar walk.
    const __m256d le_lo = _mm256_cmp_pd(v_lo, t_lo, _CMP_LE_OQ);
    const __m256d le_hi = _mm256_cmp_pd(v_hi, t_hi, _CMP_LE_OQ);
    const __m256i go_left = compress_masks(le_lo, le_hi);

    const __m256i right_child = _mm256_i32gather_epi32(rgt, idx, 4);
    const __m256i left_child = _mm256_add_epi32(idx, ones);
    const __m256i next =
        _mm256_blendv_epi8(right_child, left_child, go_left);
    // Lanes already at a leaf self-loop.
    idx = _mm256_blendv_epi8(idx, next, internal);
  }
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(leaf_idx), idx);
}

}  // namespace amperebleed::ml

#endif  // x86
