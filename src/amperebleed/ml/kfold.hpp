#pragma once
// Stratified k-fold cross-validation — the paper validates its fingerprinting
// classifier with 10-fold CV (9 folds train, 1 fold test).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "amperebleed/ml/dataset.hpp"
#include "amperebleed/ml/random_forest.hpp"

namespace amperebleed::ml {

struct Fold {
  std::vector<std::size_t> train_indices;
  std::vector<std::size_t> test_indices;
};

/// Stratified folds: each class's samples are shuffled and dealt round-robin
/// into k folds so every fold sees every class (required for 39-way top-5
/// evaluation). Throws if k < 2 or k > number of samples.
std::vector<Fold> stratified_kfold(const std::vector<int>& labels,
                                   std::size_t k, std::uint64_t seed);

struct CrossValResult {
  double top1_accuracy = 0.0;
  double top5_accuracy = 0.0;
  std::size_t evaluated = 0;
};

/// Full CV loop with a fresh forest per fold (fold index perturbs the forest
/// seed so trees differ across folds, like re-running training).
CrossValResult cross_validate(const Dataset& data, const ForestConfig& config,
                              std::size_t k, std::uint64_t seed);

}  // namespace amperebleed::ml
