#include "amperebleed/ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace amperebleed::ml {

namespace {

// Gini impurity from class counts.
double gini(std::span<const std::size_t> counts, std::size_t total) {
  if (total == 0) return 0.0;
  double sum_sq = 0.0;
  for (std::size_t c : counts) {
    const double p = static_cast<double>(c) / static_cast<double>(total);
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

}  // namespace

void DecisionTree::fit(const Dataset& data,
                       std::span<const std::size_t> sample_indices,
                       int class_count, util::Rng& rng) {
  if (sample_indices.empty()) {
    throw std::invalid_argument("DecisionTree::fit: no samples");
  }
  if (class_count <= 0) {
    throw std::invalid_argument("DecisionTree::fit: class_count must be > 0");
  }
  nodes_.clear();
  leaf_dists_.clear();
  class_count_ = class_count;
  std::vector<std::size_t> indices(sample_indices.begin(),
                                   sample_indices.end());
  build(data, indices, 0, indices.size(), 0, rng);
}

std::int32_t DecisionTree::make_leaf(const Dataset& data,
                                     std::span<const std::size_t> indices,
                                     int depth) {
  Node leaf;
  leaf.node_depth = depth;
  leaf.dist_offset = static_cast<std::int32_t>(leaf_dists_.size());
  leaf_dists_.resize(leaf_dists_.size() + static_cast<std::size_t>(class_count_),
                     0.0);
  for (std::size_t i : indices) {
    leaf_dists_[static_cast<std::size_t>(leaf.dist_offset) +
                static_cast<std::size_t>(data.label(i))] += 1.0;
  }
  const double total = static_cast<double>(indices.size());
  for (int c = 0; c < class_count_; ++c) {
    leaf_dists_[static_cast<std::size_t>(leaf.dist_offset) +
                static_cast<std::size_t>(c)] /= total;
  }
  nodes_.push_back(leaf);
  return static_cast<std::int32_t>(nodes_.size() - 1);
}

std::int32_t DecisionTree::build(const Dataset& data,
                                 std::vector<std::size_t>& indices,
                                 std::size_t begin, std::size_t end, int depth,
                                 util::Rng& rng) {
  const std::size_t n = end - begin;
  const std::span<const std::size_t> here{indices.data() + begin, n};

  // Stop: depth limit, too few samples, or pure node.
  bool pure = true;
  for (std::size_t i = 1; i < n; ++i) {
    if (data.label(here[i]) != data.label(here[0])) {
      pure = false;
      break;
    }
  }
  if (pure || depth >= config_.max_depth || n < config_.min_samples_split) {
    return make_leaf(data, here, depth);
  }

  // Feature subsample.
  const std::size_t total_features = data.feature_count();
  std::size_t k = config_.max_features;
  if (k == 0) {
    k = static_cast<std::size_t>(
        std::lround(std::sqrt(static_cast<double>(total_features))));
    k = std::max<std::size_t>(k, 1);
  }
  k = std::min(k, total_features);
  std::vector<std::size_t> features(total_features);
  std::iota(features.begin(), features.end(), std::size_t{0});
  // Partial Fisher-Yates: first k entries are a uniform sample.
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.uniform_below(total_features - i));
    std::swap(features[i], features[j]);
  }

  // Find the best (feature, threshold) by exhaustive sorted scan.
  struct Best {
    double impurity = std::numeric_limits<double>::infinity();
    std::size_t feature = 0;
    double threshold = 0.0;
  } best;

  std::vector<std::pair<double, int>> column(n);  // (value, label)
  std::vector<std::size_t> left_counts(static_cast<std::size_t>(class_count_));
  std::vector<std::size_t> right_counts(static_cast<std::size_t>(class_count_));

  for (std::size_t fi = 0; fi < k; ++fi) {
    const std::size_t f = features[fi];
    for (std::size_t i = 0; i < n; ++i) {
      column[i] = {data.row(here[i])[f], data.label(here[i])};
    }
    std::sort(column.begin(), column.end());
    if (column.front().first == column.back().first) continue;  // constant

    std::fill(left_counts.begin(), left_counts.end(), 0);
    std::fill(right_counts.begin(), right_counts.end(), 0);
    for (const auto& [value, label] : column) {
      ++right_counts[static_cast<std::size_t>(label)];
    }
    std::size_t n_left = 0;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      const auto label = static_cast<std::size_t>(column[i].second);
      ++left_counts[label];
      --right_counts[label];
      ++n_left;
      if (column[i].first == column[i + 1].first) continue;  // not a boundary
      const std::size_t n_right = n - n_left;
      const double impurity =
          (static_cast<double>(n_left) * gini(left_counts, n_left) +
           static_cast<double>(n_right) * gini(right_counts, n_right)) /
          static_cast<double>(n);
      if (impurity < best.impurity) {
        best.impurity = impurity;
        best.feature = f;
        best.threshold = 0.5 * (column[i].first + column[i + 1].first);
      }
    }
  }

  if (!std::isfinite(best.impurity)) {
    // Every sampled feature was constant on this node.
    return make_leaf(data, here, depth);
  }

  // Partition indices in place around the chosen split.
  const auto mid_it = std::partition(
      indices.begin() + static_cast<std::ptrdiff_t>(begin),
      indices.begin() + static_cast<std::ptrdiff_t>(end),
      [&](std::size_t i) { return data.row(i)[best.feature] <= best.threshold; });
  const auto mid =
      static_cast<std::size_t>(std::distance(indices.begin(), mid_it));
  if (mid == begin || mid == end) {
    return make_leaf(data, here, depth);  // degenerate split
  }

  // Reserve our slot before recursing so child indices stay valid.
  Node node;
  node.feature = static_cast<std::int32_t>(best.feature);
  node.threshold = best.threshold;
  node.node_depth = depth;
  nodes_.push_back(node);
  const auto my_index = static_cast<std::int32_t>(nodes_.size() - 1);

  const std::int32_t left = build(data, indices, begin, mid, depth + 1, rng);
  const std::int32_t right = build(data, indices, mid, end, depth + 1, rng);
  nodes_[static_cast<std::size_t>(my_index)].left = left;
  nodes_[static_cast<std::size_t>(my_index)].right = right;
  return my_index;
}

std::size_t DecisionTree::leaf_for(std::span<const double> features) const {
  if (nodes_.empty()) throw std::logic_error("DecisionTree: not fitted");
  std::size_t i = 0;
  while (nodes_[i].dist_offset < 0) {
    const Node& node = nodes_[i];
    const double v = features[static_cast<std::size_t>(node.feature)];
    i = static_cast<std::size_t>(v <= node.threshold ? node.left : node.right);
  }
  return i;
}

int DecisionTree::predict(std::span<const double> features) const {
  const auto proba = predict_proba(features);
  return static_cast<int>(std::distance(
      proba.begin(), std::max_element(proba.begin(), proba.end())));
}

std::span<const double> DecisionTree::predict_proba(
    std::span<const double> features) const {
  const Node& leaf = nodes_[leaf_for(features)];
  return {leaf_dists_.data() + leaf.dist_offset,
          static_cast<std::size_t>(class_count_)};
}

int DecisionTree::depth() const {
  int d = 0;
  for (const Node& n : nodes_) d = std::max(d, n.node_depth);
  return d;
}

}  // namespace amperebleed::ml
