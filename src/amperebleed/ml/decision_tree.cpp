#include "amperebleed/ml/decision_tree.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "amperebleed/ml/forest_arena.hpp"
#include "amperebleed/obs/obs.hpp"

namespace amperebleed::ml {

namespace {

// Gini impurity from class counts. Shared verbatim by both splitters: the
// bit-identity contract requires the exact same floating-point operations
// in the exact same order, because split selection compares these doubles
// with strict `<`.
double gini(std::span<const std::size_t> counts, std::size_t total) {
  if (total == 0) return 0.0;
  double sum_sq = 0.0;
  for (std::size_t c : counts) {
    const double p = static_cast<double>(c) / static_cast<double>(total);
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

struct BestSplit {
  double impurity = std::numeric_limits<double>::infinity();
  std::size_t feature = 0;
  double threshold = 0.0;
};

/// Feature subsample shared by both splitters: partial Fisher-Yates over
/// `features` (pre-filled with iota), drawing exactly k variates from `rng`.
/// Identical RNG consumption is part of the bit-identity contract.
std::size_t subsample_features(std::size_t total_features,
                               std::size_t max_features,
                               std::size_t* features, util::Rng& rng) {
  std::size_t k = max_features;
  if (k == 0) {
    k = static_cast<std::size_t>(
        std::lround(std::sqrt(static_cast<double>(total_features))));
    k = std::max<std::size_t>(k, 1);
  }
  k = std::min(k, total_features);
  std::iota(features, features + total_features, std::size_t{0});
  // Partial Fisher-Yates: first k entries are a uniform sample.
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.uniform_below(total_features - i));
    std::swap(features[i], features[j]);
  }
  return k;
}

}  // namespace

/// Reusable per-tree scratch arena: one allocation set per fit, shared by
/// every node of the tree (each buffer's lifetime ends before recursing, so
/// children can overwrite freely). Exposed as the ml.fit.scratch_bytes
/// gauge.
struct DecisionTree::FitScratch {
  struct ValueLabel {
    double value;
    std::int32_t label;  // compact (node-local) class id
  };

  std::vector<std::size_t> indices;        // working sample-index array
  std::vector<std::int32_t> node_labels;   // original labels of the node
  std::vector<std::int32_t> compact;       // node labels remapped to 0..m-1
  std::vector<ValueLabel> column;          // per-feature sort buffer
  std::vector<std::size_t> features;       // Fisher-Yates candidate pool
  std::vector<std::int32_t> remap;         // class id -> compact id (or -1)
  std::vector<std::size_t> node_counts;    // per-compact-class node totals
  std::vector<std::size_t> left_counts;
  std::vector<std::size_t> right_counts;

  void resize(std::size_t n, std::size_t feature_count, int class_count) {
    indices.resize(n);
    node_labels.resize(n);
    compact.resize(n);
    column.resize(n);
    features.resize(feature_count);
    remap.resize(static_cast<std::size_t>(class_count));
    node_counts.resize(static_cast<std::size_t>(class_count));
    left_counts.resize(static_cast<std::size_t>(class_count));
    right_counts.resize(static_cast<std::size_t>(class_count));
  }

  [[nodiscard]] std::size_t bytes() const {
    return indices.capacity() * sizeof(std::size_t) +
           node_labels.capacity() * sizeof(std::int32_t) +
           compact.capacity() * sizeof(std::int32_t) +
           column.capacity() * sizeof(ValueLabel) +
           features.capacity() * sizeof(std::size_t) +
           remap.capacity() * sizeof(std::int32_t) +
           node_counts.capacity() * sizeof(std::size_t) +
           left_counts.capacity() * sizeof(std::size_t) +
           right_counts.capacity() * sizeof(std::size_t);
  }
};

void DecisionTree::fit(const Dataset& data,
                       std::span<const std::size_t> sample_indices,
                       int class_count, util::Rng& rng) {
  if (sample_indices.empty()) {
    throw std::invalid_argument("DecisionTree::fit: no samples");
  }
  if (class_count <= 0) {
    throw std::invalid_argument("DecisionTree::fit: class_count must be > 0");
  }
  nodes_.clear();
  leaf_dists_.clear();
  class_count_ = class_count;
  depth_ = 0;

  if (config_.splitter == TreeConfig::Splitter::kReference) {
    std::vector<std::size_t> indices(sample_indices.begin(),
                                     sample_indices.end());
    build_reference(data, indices, 0, indices.size(), 0, rng);
    return;
  }

  const std::size_t n = sample_indices.size();
  nodes_.reserve(2 * n);  // a tree over n samples has < 2n nodes
  FitScratch scratch;
  scratch.resize(n, data.feature_count(), class_count);
  std::copy(sample_indices.begin(), sample_indices.end(),
            scratch.indices.begin());
  // Column-major mirror: built once per dataset mutation epoch (the forest
  // warms it before the tree-parallel region), then shared read-only.
  const std::span<const double> columns = data.column_major();
  build_presorted(data, columns.data(), scratch, 0, n, 0, rng);
  obs::gauge_set("ml.fit.scratch_bytes",
                 static_cast<double>(scratch.bytes()));
}

// ---------------------------------------------------------------------------
// Leaf construction. Both variants count labels into a fresh distribution
// slice and normalize by the sample count; counts are exact small integers
// in double, so the result is independent of accumulation order.

std::int32_t DecisionTree::make_leaf(const Dataset& data,
                                     std::span<const std::size_t> indices,
                                     int depth) {
  Node leaf;
  leaf.node_depth = depth;
  leaf.dist_offset = static_cast<std::int32_t>(leaf_dists_.size());
  leaf_dists_.resize(leaf_dists_.size() + static_cast<std::size_t>(class_count_),
                     0.0);
  for (std::size_t i : indices) {
    leaf_dists_[static_cast<std::size_t>(leaf.dist_offset) +
                static_cast<std::size_t>(data.label(i))] += 1.0;
  }
  const double total = static_cast<double>(indices.size());
  for (int c = 0; c < class_count_; ++c) {
    leaf_dists_[static_cast<std::size_t>(leaf.dist_offset) +
                static_cast<std::size_t>(c)] /= total;
  }
  nodes_.push_back(leaf);
  depth_ = std::max(depth_, depth);
  return static_cast<std::int32_t>(nodes_.size() - 1);
}

std::int32_t DecisionTree::make_leaf_from_labels(
    std::span<const std::int32_t> labels, int depth) {
  Node leaf;
  leaf.node_depth = depth;
  leaf.dist_offset = static_cast<std::int32_t>(leaf_dists_.size());
  leaf_dists_.resize(leaf_dists_.size() + static_cast<std::size_t>(class_count_),
                     0.0);
  double* dist = leaf_dists_.data() + leaf.dist_offset;
  for (std::int32_t l : labels) dist[l] += 1.0;
  const double total = static_cast<double>(labels.size());
  for (int c = 0; c < class_count_; ++c) dist[c] /= total;
  nodes_.push_back(leaf);
  depth_ = std::max(depth_, depth);
  return static_cast<std::int32_t>(nodes_.size() - 1);
}

// ---------------------------------------------------------------------------
// Reference splitter: the original per-node materialize-and-sort scan,
// retained as the golden oracle (tests/ml/golden_split_test.cpp) and the
// pre-optimization baseline (BM_TreeFitReference).

std::int32_t DecisionTree::build_reference(const Dataset& data,
                                           std::vector<std::size_t>& indices,
                                           std::size_t begin, std::size_t end,
                                           int depth, util::Rng& rng) {
  const std::size_t n = end - begin;
  const std::span<const std::size_t> here{indices.data() + begin, n};

  // Stop: depth limit, too few samples, or pure node.
  bool pure = true;
  for (std::size_t i = 1; i < n; ++i) {
    if (data.label(here[i]) != data.label(here[0])) {
      pure = false;
      break;
    }
  }
  if (pure || depth >= config_.max_depth || n < config_.min_samples_split) {
    return make_leaf(data, here, depth);
  }

  // Feature subsample.
  const std::size_t total_features = data.feature_count();
  std::vector<std::size_t> features(total_features);
  const std::size_t k =
      subsample_features(total_features, config_.max_features, features.data(),
                         rng);

  // Find the best (feature, threshold) by exhaustive sorted scan.
  BestSplit best;
  std::vector<std::pair<double, int>> column(n);  // (value, label)
  std::vector<std::size_t> left_counts(static_cast<std::size_t>(class_count_));
  std::vector<std::size_t> right_counts(static_cast<std::size_t>(class_count_));

  for (std::size_t fi = 0; fi < k; ++fi) {
    const std::size_t f = features[fi];
    for (std::size_t i = 0; i < n; ++i) {
      column[i] = {data.row(here[i])[f], data.label(here[i])};
    }
    std::sort(column.begin(), column.end());
    if (column.front().first == column.back().first) continue;  // constant

    std::fill(left_counts.begin(), left_counts.end(), 0);
    std::fill(right_counts.begin(), right_counts.end(), 0);
    for (const auto& [value, label] : column) {
      ++right_counts[static_cast<std::size_t>(label)];
    }
    std::size_t n_left = 0;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      const auto label = static_cast<std::size_t>(column[i].second);
      ++left_counts[label];
      --right_counts[label];
      ++n_left;
      if (column[i].first == column[i + 1].first) continue;  // not a boundary
      const std::size_t n_right = n - n_left;
      const double impurity =
          (static_cast<double>(n_left) * gini(left_counts, n_left) +
           static_cast<double>(n_right) * gini(right_counts, n_right)) /
          static_cast<double>(n);
      if (impurity < best.impurity) {
        best.impurity = impurity;
        best.feature = f;
        best.threshold = 0.5 * (column[i].first + column[i + 1].first);
      }
    }
  }

  if (!std::isfinite(best.impurity)) {
    // Every sampled feature was constant on this node.
    return make_leaf(data, here, depth);
  }

  // Partition indices in place around the chosen split.
  const auto mid_it = std::partition(
      indices.begin() + static_cast<std::ptrdiff_t>(begin),
      indices.begin() + static_cast<std::ptrdiff_t>(end),
      [&](std::size_t i) { return data.row(i)[best.feature] <= best.threshold; });
  const auto mid =
      static_cast<std::size_t>(std::distance(indices.begin(), mid_it));
  if (mid == begin || mid == end) {
    return make_leaf(data, here, depth);  // degenerate split
  }

  // Reserve our slot before recursing so child indices stay valid.
  Node node;
  node.feature = static_cast<std::int32_t>(best.feature);
  node.threshold = best.threshold;
  node.node_depth = depth;
  nodes_.push_back(node);
  const auto my_index = static_cast<std::int32_t>(nodes_.size() - 1);

  const std::int32_t left =
      build_reference(data, indices, begin, mid, depth + 1, rng);
  const std::int32_t right =
      build_reference(data, indices, mid, end, depth + 1, rng);
  nodes_[static_cast<std::size_t>(my_index)].left = left;
  nodes_[static_cast<std::size_t>(my_index)].right = right;
  return my_index;
}

// ---------------------------------------------------------------------------
// Presorted cache-resident splitter. Same splits as build_reference, proved
// by three exact-equivalence arguments (each asserted by the golden tests):
//
//  1. Index-order sorting: the scan only evaluates impurity at value
//     boundaries, where the accumulated left/right class counts cover whole
//     equal-value runs — the counts are multiset properties, independent of
//     how ties were ordered by the sort. Sorting (value, label) pairs
//     (reference) and sorting by value alone (here) therefore score the
//     exact same candidate thresholds with the exact same count vectors.
//  2. Compact class remap: classes absent from a node contribute p*p = +0.0
//     to the Gini sum, and sum_sq is always >= +0.0, so skipping them leaves
//     every partial sum bit-identical as long as the present classes are
//     visited in ascending class order — which the remap preserves.
//  3. Node-total counts: the reference's per-feature right_counts
//     initialization accumulates the node's label multiset, which is the
//     same integer vector for every feature; computing it once per node and
//     memcpy'ing is exact.

std::int32_t DecisionTree::build_presorted(const Dataset& data,
                                           const double* columns,
                                           FitScratch& scratch,
                                           std::size_t begin, std::size_t end,
                                           int depth, util::Rng& rng) {
  const std::size_t n = end - begin;
  const std::size_t n_rows = data.size();
  const std::size_t* here = scratch.indices.data() + begin;
  const int* all_labels = data.labels().data();

  // Gather the node's labels once (reused by the purity check, the split
  // scan via the compact remap, and leaf construction).
  std::int32_t* node_labels = scratch.node_labels.data();
  for (std::size_t i = 0; i < n; ++i) {
    node_labels[i] = static_cast<std::int32_t>(all_labels[here[i]]);
  }

  bool pure = true;
  for (std::size_t i = 1; i < n; ++i) {
    if (node_labels[i] != node_labels[0]) {
      pure = false;
      break;
    }
  }
  if (pure || depth >= config_.max_depth || n < config_.min_samples_split) {
    return make_leaf_from_labels({node_labels, n}, depth);
  }

  // Compact class remap: compact ids are assigned in ascending class order
  // so Gini accumulation visits classes in the reference order.
  std::int32_t* remap = scratch.remap.data();
  std::fill(remap, remap + class_count_, std::int32_t{-1});
  for (std::size_t i = 0; i < n; ++i) remap[node_labels[i]] = 0;
  std::size_t m = 0;
  for (int c = 0; c < class_count_; ++c) {
    if (remap[c] == 0) remap[c] = static_cast<std::int32_t>(m++);
  }
  std::int32_t* compact = scratch.compact.data();
  std::size_t* node_counts = scratch.node_counts.data();
  std::fill(node_counts, node_counts + m, std::size_t{0});
  for (std::size_t i = 0; i < n; ++i) {
    compact[i] = remap[node_labels[i]];
    ++node_counts[compact[i]];
  }

  const std::size_t total_features = data.feature_count();
  const std::size_t k =
      subsample_features(total_features, config_.max_features,
                         scratch.features.data(), rng);

  BestSplit best;
  FitScratch::ValueLabel* column = scratch.column.data();
  std::size_t* left_counts = scratch.left_counts.data();
  std::size_t* right_counts = scratch.right_counts.data();

  for (std::size_t fi = 0; fi < k; ++fi) {
    const std::size_t f = scratch.features[fi];
    const double* col = columns + f * n_rows;  // contiguous feature column
    bool constant = true;
    const double first = col[here[0]];
    for (std::size_t i = 0; i < n; ++i) {
      const double v = col[here[i]];
      column[i] = {v, compact[i]};
      constant = constant && v == first;
    }
    if (constant) continue;  // same skip decision as the post-sort check

    std::sort(column, column + n,
              [](const FitScratch::ValueLabel& a,
                 const FitScratch::ValueLabel& b) { return a.value < b.value; });

    std::fill(left_counts, left_counts + m, std::size_t{0});
    std::copy(node_counts, node_counts + m, right_counts);
    std::size_t n_left = 0;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      const auto label = static_cast<std::size_t>(column[i].label);
      ++left_counts[label];
      --right_counts[label];
      ++n_left;
      if (column[i].value == column[i + 1].value) continue;  // not a boundary
      const std::size_t n_right = n - n_left;
      const double impurity =
          (static_cast<double>(n_left) * gini({left_counts, m}, n_left) +
           static_cast<double>(n_right) * gini({right_counts, m}, n_right)) /
          static_cast<double>(n);
      if (impurity < best.impurity) {
        best.impurity = impurity;
        best.feature = f;
        best.threshold = 0.5 * (column[i].value + column[i + 1].value);
      }
    }
  }

  if (!std::isfinite(best.impurity)) {
    // Every sampled feature was constant on this node.
    return make_leaf_from_labels({node_labels, n}, depth);
  }

  // Partition indices in place around the chosen split, reading the stored
  // values from the contiguous mirror column (bit-equal to the row-major
  // elements, so the partition is identical).
  const double* best_col = columns + best.feature * n_rows;
  const auto mid_it =
      std::partition(scratch.indices.begin() + static_cast<std::ptrdiff_t>(begin),
                     scratch.indices.begin() + static_cast<std::ptrdiff_t>(end),
                     [&](std::size_t i) { return best_col[i] <= best.threshold; });
  const auto mid =
      static_cast<std::size_t>(std::distance(scratch.indices.begin(), mid_it));
  if (mid == begin || mid == end) {
    // Degenerate split. The leaf distribution is a label multiset count, so
    // the partition's reordering of `indices` cannot change it.
    return make_leaf_from_labels({node_labels, n}, depth);
  }

  Node node;
  node.feature = static_cast<std::int32_t>(best.feature);
  node.threshold = best.threshold;
  node.node_depth = depth;
  nodes_.push_back(node);
  const auto my_index = static_cast<std::int32_t>(nodes_.size() - 1);

  const std::int32_t left =
      build_presorted(data, columns, scratch, begin, mid, depth + 1, rng);
  const std::int32_t right =
      build_presorted(data, columns, scratch, mid, end, depth + 1, rng);
  nodes_[static_cast<std::size_t>(my_index)].left = left;
  nodes_[static_cast<std::size_t>(my_index)].right = right;
  return my_index;
}

// ---------------------------------------------------------------------------

std::size_t DecisionTree::leaf_for(std::span<const double> features) const {
  if (nodes_.empty()) throw std::logic_error("DecisionTree: not fitted");
  std::size_t i = 0;
  while (nodes_[i].dist_offset < 0) {
    const Node& node = nodes_[i];
    const double v = features[static_cast<std::size_t>(node.feature)];
    i = static_cast<std::size_t>(v <= node.threshold ? node.left : node.right);
  }
  return i;
}

int DecisionTree::predict(std::span<const double> features) const {
  const auto proba = predict_proba(features);
  return static_cast<int>(std::distance(
      proba.begin(), std::max_element(proba.begin(), proba.end())));
}

std::span<const double> DecisionTree::predict_proba(
    std::span<const double> features) const {
  const Node& leaf = nodes_[leaf_for(features)];
  return {leaf_dists_.data() + leaf.dist_offset,
          static_cast<std::size_t>(class_count_)};
}

void DecisionTree::append_to(ForestArena& arena) const {
  if (nodes_.empty()) {
    throw std::logic_error("DecisionTree::append_to: not fitted");
  }
  const auto base = static_cast<std::int32_t>(arena.feature.size());
  const auto dist_base = static_cast<std::int32_t>(arena.dists.size());
  arena.roots.push_back(base);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& node = nodes_[i];
    if (node.dist_offset >= 0) {  // leaf
      arena.feature.push_back(ForestArena::kLeaf);
      arena.threshold.push_back(0.0);
      arena.right.push_back(dist_base + node.dist_offset);
    } else {
      // Preorder invariant: the left child immediately follows its parent.
      assert(node.left == static_cast<std::int32_t>(i) + 1);
      arena.feature.push_back(node.feature);
      arena.threshold.push_back(node.threshold);
      arena.right.push_back(base + node.right);
    }
  }
  arena.dists.insert(arena.dists.end(), leaf_dists_.begin(),
                     leaf_dists_.end());
}

}  // namespace amperebleed::ml
