#pragma once
// CART decision tree with Gini impurity — the base learner of the paper's
// random forest (100 trees, max depth 32, Gini splitting, bootstrap).
//
// Two split-finding implementations share one tree representation:
//
//  * kPresorted (default) — the cache-resident fast path. Candidate columns
//    are gathered from the Dataset's column-major mirror into a per-tree
//    reusable scratch arena and sorted by value only; class counts are
//    remapped to the classes actually present in the node. Equal-value runs
//    are merged at threshold boundaries and absent classes contribute an
//    exact +0.0 to the Gini sum, so the selected (feature, threshold) — and
//    therefore the fitted tree — is bit-identical to the reference splitter
//    (asserted by tests/ml/golden_split_test.cpp).
//  * kReference — the original materialize-and-sort splitter, retained as
//    the golden oracle for bit-identity tests and as the pre-optimization
//    baseline for bench/micro_primitives.cpp's BM_TreeFitReference.

#include <cstdint>
#include <span>
#include <vector>

#include "amperebleed/ml/dataset.hpp"
#include "amperebleed/util/rng.hpp"

namespace amperebleed::ml {

struct ForestArena;

struct TreeConfig {
  int max_depth = 32;
  std::size_t min_samples_split = 2;
  /// Number of candidate features examined per split; 0 means
  /// round(sqrt(feature_count)) — the random-forest default.
  std::size_t max_features = 0;
  /// Split-finding algorithm; both select identical splits (see header
  /// comment). kReference exists for golden tests and A/B benchmarks.
  enum class Splitter { kPresorted, kReference };
  Splitter splitter = Splitter::kPresorted;
};

/// A fitted classification tree. Nodes are stored in a flat array in
/// preorder (an internal node's left child is the next node); leaves keep
/// the full class distribution so the forest can produce calibrated top-k
/// probabilities.
class DecisionTree {
 public:
  explicit DecisionTree(TreeConfig config = {}) : config_(config) {}

  /// Fit on `data` restricted to `sample_indices` (with repetitions allowed —
  /// this is how the forest passes bootstrap samples). `class_count` fixes
  /// the width of leaf distributions; `rng` drives feature subsampling.
  void fit(const Dataset& data, std::span<const std::size_t> sample_indices,
           int class_count, util::Rng& rng);

  /// Most probable class for a feature vector. Precondition: fitted.
  [[nodiscard]] int predict(std::span<const double> features) const;

  /// Class probability distribution at the leaf reached by `features`.
  [[nodiscard]] std::span<const double> predict_proba(
      std::span<const double> features) const;

  /// Append this fitted tree's nodes and leaf distributions to a flat SoA
  /// forest arena (see forest_arena.hpp). Node order and distributions are
  /// preserved verbatim.
  void append_to(ForestArena& arena) const;

  [[nodiscard]] bool fitted() const { return !nodes_.empty(); }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  /// Total doubles held by leaf distributions (class_count per leaf).
  [[nodiscard]] std::size_t leaf_value_count() const {
    return leaf_dists_.size();
  }
  /// Depth of the fitted tree. Cached at fit time (O(1)); 0 when unfitted.
  [[nodiscard]] int depth() const { return depth_; }
  [[nodiscard]] const TreeConfig& config() const { return config_; }

 private:
  struct Node {
    // Internal node: feature/threshold valid, children set.
    // Leaf: children == -1, `dist_offset` points into leaf_dists_.
    std::int32_t feature = -1;
    double threshold = 0.0;
    std::int32_t left = -1;
    std::int32_t right = -1;
    std::int32_t dist_offset = -1;
    std::int32_t node_depth = 0;
  };

  /// Per-tree reusable scratch arena of the presorted splitter: sized once
  /// per fit, reused by every node, no per-node allocations. Defined in
  /// decision_tree.cpp.
  struct FitScratch;

  // Reference (original) splitter.
  std::int32_t build_reference(const Dataset& data,
                               std::vector<std::size_t>& indices,
                               std::size_t begin, std::size_t end, int depth,
                               util::Rng& rng);
  std::int32_t make_leaf(const Dataset& data,
                         std::span<const std::size_t> indices, int depth);

  // Presorted cache-resident splitter.
  std::int32_t build_presorted(const Dataset& data, const double* columns,
                               FitScratch& scratch, std::size_t begin,
                               std::size_t end, int depth, util::Rng& rng);
  std::int32_t make_leaf_from_labels(std::span<const std::int32_t> labels,
                                     int depth);

  [[nodiscard]] std::size_t leaf_for(std::span<const double> features) const;

  TreeConfig config_;
  int class_count_ = 0;
  int depth_ = 0;  // cached max leaf depth, set during fit
  std::vector<Node> nodes_;
  std::vector<double> leaf_dists_;  // class_count_ doubles per leaf
};

}  // namespace amperebleed::ml
