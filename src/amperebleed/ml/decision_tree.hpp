#pragma once
// CART decision tree with Gini impurity — the base learner of the paper's
// random forest (100 trees, max depth 32, Gini splitting, bootstrap).

#include <cstdint>
#include <span>
#include <vector>

#include "amperebleed/ml/dataset.hpp"
#include "amperebleed/util/rng.hpp"

namespace amperebleed::ml {

struct TreeConfig {
  int max_depth = 32;
  std::size_t min_samples_split = 2;
  /// Number of candidate features examined per split; 0 means
  /// round(sqrt(feature_count)) — the random-forest default.
  std::size_t max_features = 0;
};

/// A fitted classification tree. Nodes are stored in a flat array; leaves
/// keep the full class distribution so the forest can produce calibrated
/// top-k probabilities.
class DecisionTree {
 public:
  explicit DecisionTree(TreeConfig config = {}) : config_(config) {}

  /// Fit on `data` restricted to `sample_indices` (with repetitions allowed —
  /// this is how the forest passes bootstrap samples). `class_count` fixes
  /// the width of leaf distributions; `rng` drives feature subsampling.
  void fit(const Dataset& data, std::span<const std::size_t> sample_indices,
           int class_count, util::Rng& rng);

  /// Most probable class for a feature vector. Precondition: fitted.
  [[nodiscard]] int predict(std::span<const double> features) const;

  /// Class probability distribution at the leaf reached by `features`.
  [[nodiscard]] std::span<const double> predict_proba(
      std::span<const double> features) const;

  [[nodiscard]] bool fitted() const { return !nodes_.empty(); }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] int depth() const;
  [[nodiscard]] const TreeConfig& config() const { return config_; }

 private:
  struct Node {
    // Internal node: feature/threshold valid, children set.
    // Leaf: children == -1, `dist_offset` points into leaf_dists_.
    std::int32_t feature = -1;
    double threshold = 0.0;
    std::int32_t left = -1;
    std::int32_t right = -1;
    std::int32_t dist_offset = -1;
    std::int32_t node_depth = 0;
  };

  std::int32_t build(const Dataset& data, std::vector<std::size_t>& indices,
                     std::size_t begin, std::size_t end, int depth,
                     util::Rng& rng);
  std::int32_t make_leaf(const Dataset& data,
                         std::span<const std::size_t> indices, int depth);
  [[nodiscard]] std::size_t leaf_for(std::span<const double> features) const;

  TreeConfig config_;
  int class_count_ = 0;
  std::vector<Node> nodes_;
  std::vector<double> leaf_dists_;  // class_count_ doubles per leaf
};

}  // namespace amperebleed::ml
