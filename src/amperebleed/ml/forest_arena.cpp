#include "amperebleed/ml/forest_arena.hpp"

namespace amperebleed::ml {

void ForestArena::clear() {
  feature.clear();
  threshold.clear();
  right.clear();
  dists.clear();
  roots.clear();
  class_count = 0;
}

std::size_t ForestArena::bytes() const {
  return feature.capacity() * sizeof(std::int32_t) +
         threshold.capacity() * sizeof(double) +
         right.capacity() * sizeof(std::int32_t) +
         dists.capacity() * sizeof(double) +
         roots.capacity() * sizeof(std::int32_t);
}

void ForestArena::accumulate(const double* row, double* acc) const {
  const auto classes = static_cast<std::size_t>(class_count);
  for (std::size_t t = 0; t < roots.size(); ++t) {
    const double* d = leaf_dist(t, row);
    for (std::size_t c = 0; c < classes; ++c) acc[c] += d[c];
  }
}

void ForestArena::predict_proba_rows(
    std::span<const std::span<const double>> rows, std::size_t lo,
    std::size_t hi, std::vector<std::vector<double>>& out) const {
  const auto classes = static_cast<std::size_t>(class_count);
  for (std::size_t r = lo; r < hi; ++r) out[r].assign(classes, 0.0);
  // Trees outer, rows inner: one tree's nodes stay hot in L1 while every
  // row of the block walks it. Per row the trees are still visited in
  // ascending order, so the floating-point accumulation order — and hence
  // every probability bit — matches the row-at-a-time loop exactly.
  for (std::size_t t = 0; t < roots.size(); ++t) {
    for (std::size_t r = lo; r < hi; ++r) {
      const double* d = leaf_dist(t, rows[r].data());
      double* acc = out[r].data();
      for (std::size_t c = 0; c < classes; ++c) acc[c] += d[c];
    }
  }
  const double inv = 1.0 / static_cast<double>(roots.size());
  for (std::size_t r = lo; r < hi; ++r) {
    for (double& v : out[r]) v *= inv;
  }
}

}  // namespace amperebleed::ml
