#include "amperebleed/ml/forest_arena.hpp"

#include <algorithm>
#include <cmath>

#include "amperebleed/util/simd.hpp"

namespace amperebleed::ml {

namespace {

constexpr std::size_t kLanes = ForestArena::kInterleaveLanes;

/// Pack rows [lo, hi) into a feature-major lane-strided block:
/// block[(g * width + f) * kLanes + lane] = rows[lo + g*kLanes + lane][f].
/// Remainder lanes of the last group replicate the final row so the
/// fixed-width lockstep walkers can always run kLanes lanes; the caller
/// only accumulates the real ones.
void pack_rowblock(std::span<const std::span<const double>> rows,
                   std::size_t lo, std::size_t hi, std::size_t width,
                   std::vector<double>& block) {
  const std::size_t groups = (hi - lo + kLanes - 1) / kLanes;
  block.resize(groups * width * kLanes);
  for (std::size_t g = 0; g < groups; ++g) {
    double* base = block.data() + g * width * kLanes;
    for (std::size_t lane = 0; lane < kLanes; ++lane) {
      const std::size_t r = std::min(lo + g * kLanes + lane, hi - 1);
      const double* src = rows[r].data();
      for (std::size_t f = 0; f < width; ++f) {
        base[f * kLanes + lane] = src[f];
      }
    }
  }
}

/// Branchless lockstep walk of kLanes rows through tree `t`: every lane
/// advances by a select (cmov / vector blend) instead of a data-dependent
/// branch; lanes that reached a leaf self-loop until the whole group is
/// done. Pure comparisons — identical decisions to the branchy walk.
void walk_lockstep_generic(const ForestArena& arena, std::size_t t,
                           const double* rowblock, std::int32_t* leaf_idx) {
  const std::int32_t* feat = arena.feature.data();
  const double* thr = arena.threshold.data();
  const std::int32_t* rgt = arena.right.data();
  std::int32_t idx[kLanes];
  for (std::size_t l = 0; l < kLanes; ++l) idx[l] = arena.roots[t];
  for (;;) {
    bool any_internal = false;
    for (std::size_t l = 0; l < kLanes; ++l) {
      const std::int32_t i = idx[l];
      const std::int32_t f = feat[i];
      const bool internal = f >= 0;
      // Leaves gather feature 0 / garbage threshold; the final select
      // discards the result, so the loads are safe and branch-free.
      const std::size_t fs = internal ? static_cast<std::size_t>(f) : 0;
      const double v = rowblock[fs * kLanes + l];
      const std::int32_t next = v <= thr[i] ? i + 1 : rgt[i];
      idx[l] = internal ? next : i;
      any_internal |= internal;
    }
    if (!any_internal) break;
  }
  for (std::size_t l = 0; l < kLanes; ++l) leaf_idx[l] = idx[l];
}

/// Quantized twin of walk_lockstep_generic over an int32 lane-packed block.
void walk_lockstep_quantized(const ForestArena& arena, std::size_t t,
                             const std::int32_t* qblock,
                             std::int32_t* leaf_idx) {
  const std::int32_t* feat = arena.feature.data();
  const std::int16_t* qthr = arena.quantized.qthreshold.data();
  const std::int32_t* rgt = arena.right.data();
  std::int32_t idx[kLanes];
  for (std::size_t l = 0; l < kLanes; ++l) idx[l] = arena.roots[t];
  for (;;) {
    bool any_internal = false;
    for (std::size_t l = 0; l < kLanes; ++l) {
      const std::int32_t i = idx[l];
      const std::int32_t f = feat[i];
      const bool internal = f >= 0;
      const std::size_t fs = internal ? static_cast<std::size_t>(f) : 0;
      const std::int32_t v = qblock[fs * kLanes + l];
      const std::int32_t next =
          v <= static_cast<std::int32_t>(qthr[i]) ? i + 1 : rgt[i];
      idx[l] = internal ? next : i;
      any_internal |= internal;
    }
    if (!any_internal) break;
  }
  for (std::size_t l = 0; l < kLanes; ++l) leaf_idx[l] = idx[l];
}

void zero_rows(std::vector<std::vector<double>>& out, std::size_t lo,
               std::size_t hi, std::size_t classes) {
  for (std::size_t r = lo; r < hi; ++r) out[r].assign(classes, 0.0);
}

void scale_rows(std::vector<std::vector<double>>& out, std::size_t lo,
                std::size_t hi, double inv) {
  for (std::size_t r = lo; r < hi; ++r) {
    for (double& v : out[r]) v *= inv;
  }
}

/// Shared trees-outer / lane-groups-inner batch driver for the lockstep
/// kernels. `use_avx2` selects the gather/blend walker (x86-64 only).
void lockstep_batch(const ForestArena& arena,
                    std::span<const std::span<const double>> rows,
                    std::size_t lo, std::size_t hi,
                    std::vector<std::vector<double>>& out, bool use_avx2) {
  const auto classes = static_cast<std::size_t>(arena.class_count);
  zero_rows(out, lo, hi, classes);
  const std::size_t width = rows[lo].size();
  const std::size_t groups = (hi - lo + kLanes - 1) / kLanes;
  thread_local std::vector<double> block;
  pack_rowblock(rows, lo, hi, width, block);
  std::int32_t leaf_idx[kLanes];
  for (std::size_t t = 0; t < arena.roots.size(); ++t) {
    for (std::size_t g = 0; g < groups; ++g) {
      const double* group_block = block.data() + g * width * kLanes;
#if defined(__x86_64__) || defined(__i386__)
      if (use_avx2) {
        arena.walk_lockstep_avx2(t, group_block, leaf_idx);
      } else {
        walk_lockstep_generic(arena, t, group_block, leaf_idx);
      }
#else
      static_cast<void>(use_avx2);
      walk_lockstep_generic(arena, t, group_block, leaf_idx);
#endif
      const std::size_t real =
          std::min(kLanes, hi - (lo + g * kLanes));
      for (std::size_t lane = 0; lane < real; ++lane) {
        const double* d =
            arena.dists.data() + arena.right[leaf_idx[lane]];
        double* acc = out[lo + g * kLanes + lane].data();
        for (std::size_t c = 0; c < classes; ++c) acc[c] += d[c];
      }
    }
  }
  scale_rows(out, lo, hi, 1.0 / static_cast<double>(arena.roots.size()));
}

/// Quantized batch driver: rows quantize once per block (int32 lane-packed),
/// then walk with int16-threshold integer compares.
void quantized_batch(const ForestArena& arena,
                     std::span<const std::span<const double>> rows,
                     std::size_t lo, std::size_t hi,
                     std::vector<std::vector<double>>& out) {
  const auto classes = static_cast<std::size_t>(arena.class_count);
  zero_rows(out, lo, hi, classes);
  const std::size_t width = arena.quantized.lo.size();
  const std::size_t groups = (hi - lo + kLanes - 1) / kLanes;
  thread_local std::vector<std::int32_t> qblock;
  qblock.resize(groups * width * kLanes);
  for (std::size_t g = 0; g < groups; ++g) {
    std::int32_t* base = qblock.data() + g * width * kLanes;
    for (std::size_t lane = 0; lane < kLanes; ++lane) {
      const std::size_t r = std::min(lo + g * kLanes + lane, hi - 1);
      const double* src = rows[r].data();
      for (std::size_t f = 0; f < width; ++f) {
        base[f * kLanes + lane] = arena.quantize_value(f, src[f]);
      }
    }
  }
  std::int32_t leaf_idx[kLanes];
  for (std::size_t t = 0; t < arena.roots.size(); ++t) {
    for (std::size_t g = 0; g < groups; ++g) {
      walk_lockstep_quantized(arena, t, qblock.data() + g * width * kLanes,
                              leaf_idx);
      const std::size_t real = std::min(kLanes, hi - (lo + g * kLanes));
      for (std::size_t lane = 0; lane < real; ++lane) {
        const double* d = arena.dists.data() + arena.right[leaf_idx[lane]];
        double* acc = out[lo + g * kLanes + lane].data();
        for (std::size_t c = 0; c < classes; ++c) acc[c] += d[c];
      }
    }
  }
  scale_rows(out, lo, hi, 1.0 / static_cast<double>(arena.roots.size()));
}

}  // namespace

void ForestArena::clear() {
  feature.clear();
  threshold.clear();
  right.clear();
  dists.clear();
  roots.clear();
  quantized.qthreshold.clear();
  quantized.lo.clear();
  quantized.scale.clear();
  class_count = 0;
}

std::size_t ForestArena::referenced_feature_count() const {
  std::int32_t max_feature = -1;
  for (const std::int32_t f : feature) max_feature = std::max(max_feature, f);
  return static_cast<std::size_t>(max_feature + 1);
}

std::size_t ForestArena::bytes() const {
  return feature.capacity() * sizeof(std::int32_t) +
         threshold.capacity() * sizeof(double) +
         right.capacity() * sizeof(std::int32_t) +
         dists.capacity() * sizeof(double) +
         roots.capacity() * sizeof(std::int32_t) +
         quantized.qthreshold.capacity() * sizeof(std::int16_t) +
         (quantized.lo.capacity() + quantized.scale.capacity()) *
             sizeof(double);
}

void ForestArena::build_quantized() {
  if (quantized.built()) return;
  const std::size_t width = referenced_feature_count();
  quantized.lo.assign(width, 0.0);
  std::vector<double> hi(width, 0.0);
  std::vector<char> seen(width, 0);
  for (std::size_t i = 0; i < feature.size(); ++i) {
    const std::int32_t f = feature[i];
    if (f < 0) continue;
    const auto fs = static_cast<std::size_t>(f);
    const double t = threshold[i];
    if (seen[fs] == 0) {
      quantized.lo[fs] = t;
      hi[fs] = t;
      seen[fs] = 1;
    } else {
      quantized.lo[fs] = std::min(quantized.lo[fs], t);
      hi[fs] = std::max(hi[fs], t);
    }
  }
  quantized.scale.assign(width, 0.0);
  for (std::size_t f = 0; f < width; ++f) {
    if (seen[f] == 0) continue;  // never split on: any constant q works
    double range = hi[f] - quantized.lo[f];
    if (!(range > 0.0)) {
      // Single distinct threshold: give the bucket a width proportional to
      // the threshold's magnitude so nearby row values still separate.
      range = std::max(std::abs(quantized.lo[f]) * 1e-3, 1e-6);
    }
    quantized.scale[f] = 65534.0 / range;
  }
  quantized.qthreshold.assign(feature.size(), 0);
  for (std::size_t i = 0; i < feature.size(); ++i) {
    const std::int32_t f = feature[i];
    if (f < 0) continue;
    const auto fs = static_cast<std::size_t>(f);
    const double u =
        std::floor((threshold[i] - quantized.lo[fs]) * quantized.scale[fs]);
    const double clamped = std::min(std::max(u, 0.0), 65534.0);
    quantized.qthreshold[i] =
        static_cast<std::int16_t>(static_cast<std::int32_t>(clamped) - 32767);
  }
}

std::int32_t ForestArena::quantize_value(std::size_t f, double x) const {
  const double u = (x - quantized.lo[f]) * quantized.scale[f];
  std::int32_t q_unshifted;
  if (std::isnan(u)) {
    // NaN compares false against every threshold in the exact kernel
    // (ordered <=), i.e. always goes right: map above every bucket.
    q_unshifted = 65535;
  } else {
    const double fu = std::floor(u);
    if (fu < 0.0) {
      q_unshifted = -1;  // below every stored threshold (also -inf)
    } else if (fu > 65534.0) {
      q_unshifted = 65535;  // above every stored threshold (also +inf)
    } else {
      q_unshifted = static_cast<std::int32_t>(fu);
    }
  }
  return q_unshifted - 32767;
}

void ForestArena::accumulate(const double* row, double* acc) const {
  const auto classes = static_cast<std::size_t>(class_count);
  if (quantized.built()) {
    thread_local std::vector<std::int32_t> qrow;
    const std::size_t width = quantized.lo.size();
    qrow.resize(width);
    for (std::size_t f = 0; f < width; ++f) {
      qrow[f] = quantize_value(f, row[f]);
    }
    for (std::size_t t = 0; t < roots.size(); ++t) {
      const double* d = leaf_dist_quantized(t, qrow.data());
      for (std::size_t c = 0; c < classes; ++c) acc[c] += d[c];
    }
    return;
  }
  for (std::size_t t = 0; t < roots.size(); ++t) {
    const double* d = leaf_dist(t, row);
    for (std::size_t c = 0; c < classes; ++c) acc[c] += d[c];
  }
}

void ForestArena::predict_proba_rows(
    std::span<const std::span<const double>> rows, std::size_t lo,
    std::size_t hi, std::vector<std::vector<double>>& out) const {
  if (lo >= hi) return;
  if (quantized.built()) {
    // The quantized walk is integer compares either way; the lockstep form
    // serves every tier (decisions are tier-independent by construction).
    quantized_batch(*this, rows, lo, hi, out);
    return;
  }
  switch (util::simd::active_tier()) {
    case util::simd::SimdTier::kScalar:
      predict_proba_rows_scalar(rows, lo, hi, out);
      return;
    case util::simd::SimdTier::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      predict_proba_rows_avx2(rows, lo, hi, out);
      return;
#else
      [[fallthrough]];
#endif
    case util::simd::SimdTier::kInterleaved:
      predict_proba_rows_interleaved(rows, lo, hi, out);
      return;
  }
}

void ForestArena::predict_proba_rows_scalar(
    std::span<const std::span<const double>> rows, std::size_t lo,
    std::size_t hi, std::vector<std::vector<double>>& out) const {
  const auto classes = static_cast<std::size_t>(class_count);
  zero_rows(out, lo, hi, classes);
  // Trees outer, rows inner: one tree's nodes stay hot in L1 while every
  // row of the block walks it. Per row the trees are still visited in
  // ascending order, so the floating-point accumulation order — and hence
  // every probability bit — matches the row-at-a-time loop exactly.
  for (std::size_t t = 0; t < roots.size(); ++t) {
    for (std::size_t r = lo; r < hi; ++r) {
      const double* d = leaf_dist(t, rows[r].data());
      double* acc = out[r].data();
      for (std::size_t c = 0; c < classes; ++c) acc[c] += d[c];
    }
  }
  scale_rows(out, lo, hi, 1.0 / static_cast<double>(roots.size()));
}

void ForestArena::predict_proba_rows_interleaved(
    std::span<const std::span<const double>> rows, std::size_t lo,
    std::size_t hi, std::vector<std::vector<double>>& out) const {
  lockstep_batch(*this, rows, lo, hi, out, /*use_avx2=*/false);
}

#if defined(__x86_64__) || defined(__i386__)
void ForestArena::predict_proba_rows_avx2(
    std::span<const std::span<const double>> rows, std::size_t lo,
    std::size_t hi, std::vector<std::vector<double>>& out) const {
  lockstep_batch(*this, rows, lo, hi, out, /*use_avx2=*/true);
}
#endif

}  // namespace amperebleed::ml
