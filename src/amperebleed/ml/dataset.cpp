#include "amperebleed/ml/dataset.hpp"

#include <algorithm>
#include <stdexcept>

namespace amperebleed::ml {

Dataset::Dataset(const Dataset& other)
    : feature_count_(other.feature_count_),
      data_(other.data_),
      labels_(other.labels_),
      max_label_(other.max_label_) {}

Dataset& Dataset::operator=(const Dataset& other) {
  if (this == &other) return *this;
  feature_count_ = other.feature_count_;
  data_ = other.data_;
  labels_ = other.labels_;
  max_label_ = other.max_label_;
  invalidate_mirror();
  return *this;
}

Dataset::Dataset(Dataset&& other) noexcept
    : feature_count_(other.feature_count_),
      data_(std::move(other.data_)),
      labels_(std::move(other.labels_)),
      max_label_(other.max_label_),
      mirror_(std::move(other.mirror_)) {
  mirror_ready_.store(other.mirror_ready_.load(std::memory_order_acquire),
                      std::memory_order_release);
  other.mirror_ready_.store(false, std::memory_order_release);
}

Dataset& Dataset::operator=(Dataset&& other) noexcept {
  if (this == &other) return *this;
  feature_count_ = other.feature_count_;
  data_ = std::move(other.data_);
  labels_ = std::move(other.labels_);
  max_label_ = other.max_label_;
  mirror_ = std::move(other.mirror_);
  mirror_ready_.store(other.mirror_ready_.load(std::memory_order_acquire),
                      std::memory_order_release);
  other.mirror_ready_.store(false, std::memory_order_release);
  return *this;
}

void Dataset::invalidate_mirror() {
  if (mirror_ready_.load(std::memory_order_relaxed)) {
    const std::lock_guard<std::mutex> lock(mirror_mu_);
    mirror_.clear();
    mirror_.shrink_to_fit();
    mirror_ready_.store(false, std::memory_order_release);
  }
}

void Dataset::add(std::span<const double> features, int label) {
  if (feature_count_ == 0 && labels_.empty()) {
    feature_count_ = features.size();
  }
  if (features.size() != feature_count_) {
    throw std::invalid_argument("Dataset::add: feature width mismatch");
  }
  if (label < 0) {
    throw std::invalid_argument("Dataset::add: labels must be >= 0");
  }
  data_.insert(data_.end(), features.begin(), features.end());
  labels_.push_back(label);
  max_label_ = std::max(max_label_, label);
  invalidate_mirror();
}

std::span<const double> Dataset::row(std::size_t i) const {
  if (i >= labels_.size()) throw std::out_of_range("Dataset::row");
  return {data_.data() + i * feature_count_, feature_count_};
}

std::span<const double> Dataset::column_major() const {
  if (!mirror_ready_.load(std::memory_order_acquire)) {
    const std::lock_guard<std::mutex> lock(mirror_mu_);
    if (!mirror_ready_.load(std::memory_order_relaxed)) {
      const std::size_t rows = labels_.size();
      const std::size_t cols = feature_count_;
      mirror_.resize(rows * cols);
      // Tiled transpose: both the row-major reads and the column-major
      // writes stay within a cache-friendly tile.
      constexpr std::size_t kTile = 32;
      for (std::size_t r0 = 0; r0 < rows; r0 += kTile) {
        const std::size_t r1 = std::min(r0 + kTile, rows);
        for (std::size_t f0 = 0; f0 < cols; f0 += kTile) {
          const std::size_t f1 = std::min(f0 + kTile, cols);
          for (std::size_t r = r0; r < r1; ++r) {
            const double* src = data_.data() + r * cols;
            for (std::size_t f = f0; f < f1; ++f) {
              mirror_[f * rows + r] = src[f];
            }
          }
        }
      }
      mirror_ready_.store(true, std::memory_order_release);
    }
  }
  return mirror_;
}

std::span<const double> Dataset::column(std::size_t f) const {
  if (f >= feature_count_) throw std::out_of_range("Dataset::column");
  return column_major().subspan(f * size(), size());
}

Dataset Dataset::truncated_features(std::size_t prefix_features) const {
  if (prefix_features > feature_count_) {
    throw std::invalid_argument("truncated_features: prefix too wide");
  }
  Dataset out(prefix_features);
  out.data_.reserve(size() * prefix_features);
  out.labels_.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) {
    out.add(row(i).subspan(0, prefix_features), labels_[i]);
  }
  return out;
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Dataset out(feature_count_);
  out.data_.reserve(indices.size() * feature_count_);
  out.labels_.reserve(indices.size());
  for (std::size_t i : indices) out.add(row(i), label(i));
  return out;
}

}  // namespace amperebleed::ml
