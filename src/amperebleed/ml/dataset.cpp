#include "amperebleed/ml/dataset.hpp"

#include <algorithm>
#include <stdexcept>

namespace amperebleed::ml {

void Dataset::add(std::span<const double> features, int label) {
  if (feature_count_ == 0 && labels_.empty()) {
    feature_count_ = features.size();
  }
  if (features.size() != feature_count_) {
    throw std::invalid_argument("Dataset::add: feature width mismatch");
  }
  if (label < 0) {
    throw std::invalid_argument("Dataset::add: labels must be >= 0");
  }
  data_.insert(data_.end(), features.begin(), features.end());
  labels_.push_back(label);
}

std::span<const double> Dataset::row(std::size_t i) const {
  if (i >= labels_.size()) throw std::out_of_range("Dataset::row");
  return {data_.data() + i * feature_count_, feature_count_};
}

int Dataset::class_count() const {
  int max_label = -1;
  for (int l : labels_) max_label = std::max(max_label, l);
  return max_label + 1;
}

Dataset Dataset::truncated_features(std::size_t prefix_features) const {
  if (prefix_features > feature_count_) {
    throw std::invalid_argument("truncated_features: prefix too wide");
  }
  Dataset out(prefix_features);
  for (std::size_t i = 0; i < size(); ++i) {
    out.add(row(i).subspan(0, prefix_features), labels_[i]);
  }
  return out;
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Dataset out(feature_count_);
  for (std::size_t i : indices) out.add(row(i), label(i));
  return out;
}

}  // namespace amperebleed::ml
