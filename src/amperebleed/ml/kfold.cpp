#include "amperebleed/ml/kfold.hpp"

#include <stdexcept>

#include "amperebleed/ml/metrics.hpp"
#include "amperebleed/obs/obs.hpp"
#include "amperebleed/util/rng.hpp"

namespace amperebleed::ml {

std::vector<Fold> stratified_kfold(const std::vector<int>& labels,
                                   std::size_t k, std::uint64_t seed) {
  if (k < 2) throw std::invalid_argument("stratified_kfold: k must be >= 2");
  if (k > labels.size()) {
    throw std::invalid_argument("stratified_kfold: k exceeds sample count");
  }

  // Group sample indices by class.
  int max_label = 0;
  for (int l : labels) max_label = std::max(max_label, l);
  std::vector<std::vector<std::size_t>> by_class(
      static_cast<std::size_t>(max_label) + 1);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    by_class[static_cast<std::size_t>(labels[i])].push_back(i);
  }

  util::Rng rng(seed);
  // Deal each class round-robin into folds (after shuffling within class).
  std::vector<std::vector<std::size_t>> fold_members(k);
  for (auto& members : by_class) {
    rng.shuffle(members);
    for (std::size_t i = 0; i < members.size(); ++i) {
      fold_members[i % k].push_back(members[i]);
    }
  }

  std::vector<Fold> folds(k);
  for (std::size_t f = 0; f < k; ++f) {
    folds[f].test_indices = fold_members[f];
    for (std::size_t g = 0; g < k; ++g) {
      if (g == f) continue;
      folds[f].train_indices.insert(folds[f].train_indices.end(),
                                    fold_members[g].begin(),
                                    fold_members[g].end());
    }
  }
  return folds;
}

CrossValResult cross_validate(const Dataset& data, const ForestConfig& config,
                              std::size_t k, std::uint64_t seed) {
  const auto folds = stratified_kfold(data.labels(), k, seed);
  CrossValResult result;
  std::vector<int> truth;
  std::vector<int> top1;
  std::vector<std::vector<int>> top5;

  auto cv_span = obs::span("ml.cross_validate", "ml");
  cv_span.set_arg("folds", static_cast<double>(folds.size()));
  cv_span.set_arg("samples", static_cast<double>(data.size()));
  const bool instrumented = obs::metrics_enabled();

  for (std::size_t f = 0; f < folds.size(); ++f) {
    auto fold_span = obs::span("ml.fold", "ml");
    fold_span.set_arg("fold", static_cast<double>(f));
    const std::int64_t t0 = instrumented ? obs::tracer().wall_now_ns() : 0;
    const Dataset train = data.subset(folds[f].train_indices);
    ForestConfig fold_config = config;
    fold_config.seed = util::hash_combine(config.seed, f);
    RandomForest forest(fold_config);
    forest.fit(train);
    for (std::size_t i : folds[f].test_indices) {
      truth.push_back(data.label(i));
      const auto candidates = forest.predict_top_k(data.row(i), 5);
      top1.push_back(candidates.empty() ? -1 : candidates.front());
      top5.push_back(candidates);
    }
    if (instrumented) {
      obs::count("ml.folds");
      obs::observe("ml.fold_wall_ns",
                   static_cast<double>(obs::tracer().wall_now_ns() - t0));
    }
  }

  result.evaluated = truth.size();
  result.top1_accuracy = accuracy(truth, top1);
  result.top5_accuracy = top_k_accuracy(truth, top5);
  return result;
}

}  // namespace amperebleed::ml
