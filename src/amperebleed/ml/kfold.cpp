#include "amperebleed/ml/kfold.hpp"

#include <stdexcept>

#include "amperebleed/ml/metrics.hpp"
#include "amperebleed/obs/obs.hpp"
#include "amperebleed/util/parallel.hpp"
#include "amperebleed/util/rng.hpp"

namespace amperebleed::ml {

std::vector<Fold> stratified_kfold(const std::vector<int>& labels,
                                   std::size_t k, std::uint64_t seed) {
  if (k < 2) throw std::invalid_argument("stratified_kfold: k must be >= 2");
  if (k > labels.size()) {
    throw std::invalid_argument("stratified_kfold: k exceeds sample count");
  }

  // Group sample indices by class.
  int max_label = 0;
  for (int l : labels) max_label = std::max(max_label, l);
  std::vector<std::vector<std::size_t>> by_class(
      static_cast<std::size_t>(max_label) + 1);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    by_class[static_cast<std::size_t>(labels[i])].push_back(i);
  }

  util::Rng rng(seed);
  // Deal each class round-robin into folds (after shuffling within class).
  // The dealing offset carries over from class to class: if every class
  // restarted at fold 0, fold 0 would collect the remainder sample of every
  // class whose size is not a multiple of k and end up systematically the
  // largest. Rotating keeps overall fold sizes within +/-1 while each class
  // still spreads floor/ceil(|class|/k) samples over every fold.
  std::vector<std::vector<std::size_t>> fold_members(k);
  std::size_t offset = 0;
  for (auto& members : by_class) {
    rng.shuffle(members);
    for (std::size_t i = 0; i < members.size(); ++i) {
      fold_members[(i + offset) % k].push_back(members[i]);
    }
    offset = (offset + members.size()) % k;
  }

  std::vector<Fold> folds(k);
  for (std::size_t f = 0; f < k; ++f) {
    folds[f].test_indices = fold_members[f];
    for (std::size_t g = 0; g < k; ++g) {
      if (g == f) continue;
      folds[f].train_indices.insert(folds[f].train_indices.end(),
                                    fold_members[g].begin(),
                                    fold_members[g].end());
    }
  }
  return folds;
}

CrossValResult cross_validate(const Dataset& data, const ForestConfig& config,
                              std::size_t k, std::uint64_t seed) {
  const auto folds = stratified_kfold(data.labels(), k, seed);

  auto cv_span = obs::span("ml.cross_validate", "ml");
  cv_span.set_arg("folds", static_cast<double>(folds.size()));
  cv_span.set_arg("samples", static_cast<double>(data.size()));
  const bool instrumented = obs::metrics_enabled();

  // Folds run concurrently on the thread pool. Each fold is seeded with
  // hash_combine(config.seed, f) — a pure function of the fold index — and
  // writes into its own pre-sized outcome slot; the slots are concatenated
  // in fold order afterwards, so accuracies are bit-identical to the serial
  // sweep at any pool size.
  struct FoldOutcome {
    std::vector<int> truth;
    std::vector<int> top1;
    std::vector<std::vector<int>> top5;
  };
  std::vector<FoldOutcome> outcomes(folds.size());

  util::parallel_for(folds.size(), [&](std::size_t f) {
    auto fold_span = obs::span("ml.fold", "ml");
    fold_span.set_arg("fold", static_cast<double>(f));
    const std::int64_t t0 = instrumented ? obs::tracer().wall_now_ns() : 0;
    const Dataset train = data.subset(folds[f].train_indices);
    ForestConfig fold_config = config;
    fold_config.seed = util::hash_combine(config.seed, f);
    RandomForest forest(fold_config);
    forest.fit(train);

    // Classify the held-out fold in one batch off the shared trees.
    std::vector<std::span<const double>> rows;
    rows.reserve(folds[f].test_indices.size());
    for (std::size_t i : folds[f].test_indices) rows.push_back(data.row(i));
    const auto probas = forest.predict_proba_many(rows);

    FoldOutcome& out = outcomes[f];
    out.truth.reserve(rows.size());
    out.top1.reserve(rows.size());
    out.top5.reserve(rows.size());
    for (std::size_t j = 0; j < rows.size(); ++j) {
      out.truth.push_back(data.label(folds[f].test_indices[j]));
      auto candidates = top_k_from_proba(probas[j], 5);
      out.top1.push_back(candidates.empty() ? -1 : candidates.front());
      out.top5.push_back(std::move(candidates));
    }
    if (instrumented) {
      obs::count("ml.folds");
      obs::observe("ml.fold_wall_ns",
                   static_cast<double>(obs::tracer().wall_now_ns() - t0));
    }
  });

  // Order-stable aggregation: fold 0's samples first, then fold 1's, ...
  std::vector<int> truth;
  std::vector<int> top1;
  std::vector<std::vector<int>> top5;
  for (auto& out : outcomes) {
    truth.insert(truth.end(), out.truth.begin(), out.truth.end());
    top1.insert(top1.end(), out.top1.begin(), out.top1.end());
    for (auto& c : out.top5) top5.push_back(std::move(c));
  }

  CrossValResult result;
  result.evaluated = truth.size();
  result.top1_accuracy = accuracy(truth, top1);
  result.top5_accuracy = top_k_accuracy(truth, top5);
  return result;
}

}  // namespace amperebleed::ml
