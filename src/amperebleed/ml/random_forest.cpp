#include "amperebleed/ml/random_forest.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "amperebleed/obs/obs.hpp"
#include "amperebleed/util/parallel.hpp"

namespace amperebleed::ml {

namespace {

/// Rows per block of the batched arena kernel: 16 rows of a few hundred
/// features (~tens of KB) fit L1/L2 alongside one tree's nodes, and a block
/// is also the parallel_for work item — large enough to amortize
/// scheduling, small enough to load-balance across the pool.
constexpr std::size_t kPredictRowBlock = 16;

}  // namespace

void RandomForest::fit(const Dataset& data) {
  if (data.empty()) throw std::invalid_argument("RandomForest::fit: empty data");
  if (config_.n_trees == 0) {
    throw std::invalid_argument("RandomForest::fit: n_trees must be > 0");
  }
  auto span = obs::span("ml.rf.fit", "ml");
  span.set_arg("trees", static_cast<double>(config_.n_trees));
  span.set_arg("samples", static_cast<double>(data.size()));

  class_count_ = data.class_count();
  trees_.clear();
  arena_.clear();

  const util::Rng master(config_.seed);
  const std::size_t n = data.size();
  const bool instrumented = obs::metrics_enabled();

  // Warm the dataset's column-major mirror once, serially, so the
  // tree-parallel region below shares one read-only copy instead of racing
  // to build it behind the double-checked lock.
  if (config_.tree.splitter == TreeConfig::Splitter::kPresorted) {
    static_cast<void>(data.column_major());
  }

  // Trees are trained in parallel into pre-sized slots. Tree t's RNG is
  // master.fork(t) — a pure function of (seed, t) — and its bootstrap
  // indices are drawn from that private stream, so the fitted forest is
  // bit-identical at any pool size. All obs calls below are thread-safe
  // (atomic counters, mutex-guarded histograms/tracer).
  std::vector<DecisionTree> trees(config_.n_trees, DecisionTree(config_.tree));
  util::parallel_for(config_.n_trees, [&](std::size_t t) {
    // Per-tree span: nests under ml.rf.fit via the pool's context capture,
    // giving the flame graph its root;fit;tree breakdown.
    auto tree_span = obs::span("ml.tree_fit", "ml");
    tree_span.set_arg("tree", static_cast<double>(t));
    const std::int64_t t0 = instrumented ? obs::tracer().wall_now_ns() : 0;
    util::Rng tree_rng = master.fork(t);
    std::vector<std::size_t> indices(n);
    if (config_.bootstrap) {
      for (auto& idx : indices) {
        idx = static_cast<std::size_t>(tree_rng.uniform_below(n));
      }
    } else {
      std::iota(indices.begin(), indices.end(), std::size_t{0});
    }
    DecisionTree tree(config_.tree);
    tree.fit(data, indices, class_count_, tree_rng);
    trees[t] = std::move(tree);
    if (instrumented) {
      obs::count("ml.trees_fitted");
      obs::observe("ml.tree_fit_wall_ns",
                   static_cast<double>(obs::tracer().wall_now_ns() - t0));
    }
  });
  // Only publish on full success: a cancelled sweep leaves the forest
  // unfitted rather than holding a partially trained ensemble.
  trees_ = std::move(trees);

  // Pack the fitted trees into the flat SoA arena that all predict paths
  // walk. Packing preserves node order and copies leaf distributions
  // verbatim — the arena is a relayout, not a re-fit.
  arena_.class_count = class_count_;
  std::size_t total_nodes = 0;
  std::size_t total_dists = 0;
  for (const auto& tree : trees_) {
    total_nodes += tree.node_count();
    total_dists += tree.leaf_value_count();
  }
  arena_.feature.reserve(total_nodes);
  arena_.threshold.reserve(total_nodes);
  arena_.right.reserve(total_nodes);
  arena_.dists.reserve(total_dists);
  arena_.roots.reserve(trees_.size());
  for (const auto& tree : trees_) tree.append_to(arena_);
  if (config_.quantize_thresholds) arena_.build_quantized();
  obs::gauge_set("ml.forest.arena_bytes", static_cast<double>(arena_.bytes()));
}

RandomForest RandomForest::from_arena(ForestConfig config, ForestArena arena) {
  if (arena.empty()) {
    throw std::invalid_argument("RandomForest::from_arena: empty arena");
  }
  RandomForest forest(config);
  forest.class_count_ = arena.class_count;
  forest.arena_ = std::move(arena);
  // The quantized table is not persisted (pure function of the exact
  // thresholds) — rebuild it so restored and fitted forests take the same
  // predict path.
  if (config.quantize_thresholds && !forest.arena_.quantized.built()) {
    forest.arena_.build_quantized();
  }
  obs::gauge_set("ml.forest.arena_bytes",
                 static_cast<double>(forest.arena_.bytes()));
  return forest;
}

std::vector<double> RandomForest::predict_proba(
    std::span<const double> features) const {
  if (!fitted()) throw std::logic_error("RandomForest: not fitted");
  std::vector<double> acc(static_cast<std::size_t>(class_count_), 0.0);
  arena_.accumulate(features.data(), acc.data());
  const double inv = 1.0 / static_cast<double>(arena_.tree_count());
  for (double& v : acc) v *= inv;
  return acc;
}

std::vector<double> RandomForest::predict_proba_reference(
    std::span<const double> features) const {
  if (!fitted()) throw std::logic_error("RandomForest: not fitted");
  if (trees_.empty()) {
    throw std::logic_error(
        "RandomForest: reference walk unavailable on an arena-restored "
        "forest (per-tree form is not persisted)");
  }
  std::vector<double> acc(static_cast<std::size_t>(class_count_), 0.0);
  for (const auto& tree : trees_) {
    const auto p = tree.predict_proba(features);
    for (std::size_t c = 0; c < acc.size(); ++c) acc[c] += p[c];
  }
  const double inv = 1.0 / static_cast<double>(trees_.size());
  for (double& v : acc) v *= inv;
  return acc;
}

std::vector<std::vector<double>> RandomForest::predict_proba_many(
    std::span<const std::span<const double>> rows) const {
  if (!fitted()) throw std::logic_error("RandomForest: not fitted");
  std::vector<std::vector<double>> out(rows.size());
  const std::size_t blocks =
      (rows.size() + kPredictRowBlock - 1) / kPredictRowBlock;
  util::parallel_for(blocks, [&](std::size_t b) {
    auto block_span = obs::span("ml.predict_block", "ml");
    const std::size_t lo = b * kPredictRowBlock;
    const std::size_t hi = std::min(lo + kPredictRowBlock, rows.size());
    block_span.set_arg("rows", static_cast<double>(hi - lo));
    arena_.predict_proba_rows(rows, lo, hi, out);
  });
  return out;
}

int RandomForest::predict(std::span<const double> features) const {
  const auto proba = predict_proba(features);
  return static_cast<int>(std::distance(
      proba.begin(), std::max_element(proba.begin(), proba.end())));
}

std::vector<int> RandomForest::predict_top_k(std::span<const double> features,
                                             std::size_t k) const {
  return top_k_from_proba(predict_proba(features), k);
}

std::vector<int> top_k_from_proba(std::span<const double> proba,
                                  std::size_t k) {
  std::vector<int> order(proba.size());
  std::iota(order.begin(), order.end(), 0);
  const std::size_t kk = std::min(k, order.size());
  // partial_sort over the first k ranks instead of a full stable_sort. The
  // comparator is a TOTAL order (probability desc, class id asc on ties),
  // so the prefix is unique — identical to the stable_sort's output, where
  // stability resolved ties toward the smaller (earlier-iota) class id.
  std::partial_sort(order.begin(),
                    order.begin() + static_cast<std::ptrdiff_t>(kk),
                    order.end(), [&](int a, int b) {
                      const double pa = proba[static_cast<std::size_t>(a)];
                      const double pb = proba[static_cast<std::size_t>(b)];
                      if (pa != pb) return pa > pb;
                      return a < b;  // smaller class id wins the tie
                    });
  order.resize(kk);
  return order;
}

}  // namespace amperebleed::ml
