#include "amperebleed/ml/random_forest.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "amperebleed/obs/obs.hpp"

namespace amperebleed::ml {

void RandomForest::fit(const Dataset& data) {
  if (data.empty()) throw std::invalid_argument("RandomForest::fit: empty data");
  if (config_.n_trees == 0) {
    throw std::invalid_argument("RandomForest::fit: n_trees must be > 0");
  }
  auto span = obs::span("ml.rf.fit", "ml");
  span.set_arg("trees", static_cast<double>(config_.n_trees));
  span.set_arg("samples", static_cast<double>(data.size()));

  class_count_ = data.class_count();
  trees_.clear();
  trees_.reserve(config_.n_trees);

  util::Rng master(config_.seed);
  const std::size_t n = data.size();
  std::vector<std::size_t> indices(n);
  const bool instrumented = obs::metrics_enabled();

  for (std::size_t t = 0; t < config_.n_trees; ++t) {
    const std::int64_t t0 =
        instrumented ? obs::tracer().wall_now_ns() : 0;
    util::Rng tree_rng = master.fork(t);
    if (config_.bootstrap) {
      for (auto& idx : indices) {
        idx = static_cast<std::size_t>(tree_rng.uniform_below(n));
      }
    } else {
      std::iota(indices.begin(), indices.end(), std::size_t{0});
    }
    DecisionTree tree(config_.tree);
    tree.fit(data, indices, class_count_, tree_rng);
    trees_.push_back(std::move(tree));
    if (instrumented) {
      obs::count("ml.trees_fitted");
      obs::observe("ml.tree_fit_wall_ns",
                   static_cast<double>(obs::tracer().wall_now_ns() - t0));
    }
  }
}

std::vector<double> RandomForest::predict_proba(
    std::span<const double> features) const {
  if (trees_.empty()) throw std::logic_error("RandomForest: not fitted");
  std::vector<double> acc(static_cast<std::size_t>(class_count_), 0.0);
  for (const auto& tree : trees_) {
    const auto p = tree.predict_proba(features);
    for (std::size_t c = 0; c < acc.size(); ++c) acc[c] += p[c];
  }
  const double inv = 1.0 / static_cast<double>(trees_.size());
  for (double& v : acc) v *= inv;
  return acc;
}

int RandomForest::predict(std::span<const double> features) const {
  const auto proba = predict_proba(features);
  return static_cast<int>(std::distance(
      proba.begin(), std::max_element(proba.begin(), proba.end())));
}

std::vector<int> RandomForest::predict_top_k(std::span<const double> features,
                                             std::size_t k) const {
  const auto proba = predict_proba(features);
  std::vector<int> order(proba.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return proba[static_cast<std::size_t>(a)] >
           proba[static_cast<std::size_t>(b)];
  });
  order.resize(std::min(k, order.size()));
  return order;
}

}  // namespace amperebleed::ml
