#pragma once
// Flat SoA (structure-of-arrays) arena for a fitted random forest.
//
// A fitted DecisionTree stores its nodes in preorder (every internal node's
// left child is the next node), so a whole forest packs into four parallel
// arrays spanning all trees:
//
//     feature[i]    int32    >= 0: split feature of internal node i
//                            == kLeaf (-1): node i is a leaf
//     threshold[i]  double   split threshold (internal nodes only)
//     right[i]      int32    internal: ABSOLUTE arena index of the right
//                            child (left child is implicitly i + 1)
//                            leaf: offset of its class distribution in dists
//     dists[]       double   class_count doubles per leaf, all trees
//
// Traversal of one row touches 16 bytes of hot metadata per visited node
// (vs. a 32-byte AoS Node in a per-tree std::vector), every tree of the
// forest lives in ONE allocation, and the rows-outer cache-blocked batch
// kernel (`predict_proba_rows`) streams the whole arena once per block of
// rows instead of once per row.
//
// Batch traversal dispatches on util::simd::active_tier() (DESIGN.md §14):
// the scalar tier walks one row at a time with a data-dependent branch, the
// interleaved/AVX2 tiers walk kInterleaveLanes rows per tree in lockstep
// with branchless mask/blend selects over a feature-major packed row block.
// Traversal is pure comparisons and the per-row accumulation order (trees
// ascending, classes ascending) never changes, so EVERY tier is
// bit-identical to RandomForest::predict_proba_reference by construction —
// enforced by the exact-equality dispatch sweep in
// tests/ml/simd_dispatch_test.cpp.
//
// An explicit opt-in (ForestConfig::quantize_thresholds) additionally packs
// int16-quantized thresholds: rows are quantized once per block and walked
// with integer compares, halving the hot split metadata. Quantization is
// monotone, so decisions can differ from the exact path only inside one
// quantization bucket; the accuracy-delta gate lives in
// tests/ml/quantized_test.cpp.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace amperebleed::ml {

struct ForestArena {
  static constexpr std::int32_t kLeaf = -1;
  /// Rows walked in lockstep per tree by the branchless batch kernels. The
  /// packed row block is always laid out with this stride
  /// (block[f * kInterleaveLanes + lane]).
  static constexpr std::size_t kInterleaveLanes = 8;

  std::vector<std::int32_t> feature;   // kLeaf marks leaves
  std::vector<double> threshold;       // valid for internal nodes
  std::vector<std::int32_t> right;     // right-child index | dist offset
  std::vector<double> dists;           // class_count doubles per leaf
  std::vector<std::int32_t> roots;     // arena index of each tree's root
  int class_count = 0;

  /// Opt-in int16 threshold quantization (empty until build_quantized()).
  /// Thresholds map per feature through the monotone affine transform
  /// q(x) = clamp(floor((x - lo[f]) * scale[f]), 0, 65534) - 32767; row
  /// values quantize through the same transform widened to int32 with
  /// sentinels -32768 (below range / -inf) and +32768 (above range / NaN /
  /// +inf), so q preserves <=-ordering against every stored threshold.
  struct QuantizedThresholds {
    std::vector<std::int16_t> qthreshold;  // per node; 0 at leaves
    std::vector<double> lo;                // per feature
    std::vector<double> scale;             // per feature
    [[nodiscard]] bool built() const { return !qthreshold.empty(); }
  };
  QuantizedThresholds quantized;

  void clear();
  [[nodiscard]] bool empty() const { return roots.empty(); }
  [[nodiscard]] std::size_t tree_count() const { return roots.size(); }
  [[nodiscard]] std::size_t node_count() const { return feature.size(); }
  /// 1 + the largest feature index referenced by any split (0 for a forest
  /// of pure leaves).
  [[nodiscard]] std::size_t referenced_feature_count() const;
  /// Total heap footprint of the packed arrays (the ml.forest.arena_bytes
  /// obs gauge).
  [[nodiscard]] std::size_t bytes() const;

  /// Build the int16 quantized threshold table (per-feature affine range
  /// from the thresholds actually present). Idempotent.
  void build_quantized();
  /// Quantize one row value for feature `f` (int32-widened transform above).
  [[nodiscard]] std::int32_t quantize_value(std::size_t f, double x) const;

  /// Leaf class distribution (class_count doubles) reached by `row` in tree
  /// `t`. `row` must span at least the max feature index + 1.
  [[nodiscard]] const double* leaf_dist(std::size_t t, const double* row) const {
    const std::int32_t* feat = feature.data();
    const double* thr = threshold.data();
    const std::int32_t* rgt = right.data();
    std::int32_t i = roots[t];
    while (feat[i] >= 0) {
      i = row[feat[i]] <= thr[i] ? i + 1 : rgt[i];
    }
    return dists.data() + rgt[i];
  }

  /// Quantized twin of leaf_dist: `qrow` holds quantize_value() per feature.
  [[nodiscard]] const double* leaf_dist_quantized(
      std::size_t t, const std::int32_t* qrow) const {
    const std::int32_t* feat = feature.data();
    const std::int16_t* qthr = quantized.qthreshold.data();
    const std::int32_t* rgt = right.data();
    std::int32_t i = roots[t];
    while (feat[i] >= 0) {
      i = qrow[feat[i]] <= static_cast<std::int32_t>(qthr[i]) ? i + 1 : rgt[i];
    }
    return dists.data() + rgt[i];
  }

  /// Sum the leaf distributions of every tree (in tree order 0..T-1) into
  /// `acc` (class_count doubles, caller-zeroed) — the same accumulation
  /// order as the naive per-tree loop, hence bit-identical sums. Uses the
  /// quantized walk when build_quantized() ran.
  void accumulate(const double* row, double* acc) const;

  /// Rows-outer, cache-blocked batch kernel: averages the per-tree leaf
  /// distributions of rows [lo, hi) into out[lo..hi). Within the block the
  /// tree loop is outer, so each tree's nodes stay cache-hot across the
  /// whole block while every row still accumulates trees in order 0..T-1.
  /// Dispatches on util::simd::active_tier(); all tiers are bit-identical.
  void predict_proba_rows(std::span<const std::span<const double>> rows,
                          std::size_t lo, std::size_t hi,
                          std::vector<std::vector<double>>& out) const;

  // -- Per-tier kernel entry points (public so the dispatch-sweep and
  //    property tests can pit them against each other directly; prefer
  //    predict_proba_rows). All share the contract of predict_proba_rows.
  void predict_proba_rows_scalar(std::span<const std::span<const double>> rows,
                                 std::size_t lo, std::size_t hi,
                                 std::vector<std::vector<double>>& out) const;
  void predict_proba_rows_interleaved(
      std::span<const std::span<const double>> rows, std::size_t lo,
      std::size_t hi, std::vector<std::vector<double>>& out) const;

#if defined(__x86_64__) || defined(__i386__)
  /// AVX2 gather/blend lockstep kernel (forest_arena_simd.cpp). Only call
  /// when util::simd reports the avx2 tier available.
  void predict_proba_rows_avx2(std::span<const std::span<const double>> rows,
                               std::size_t lo, std::size_t hi,
                               std::vector<std::vector<double>>& out) const;

  /// Walk kInterleaveLanes rows (feature-major packed `rowblock`) through
  /// tree `t` in lockstep with AVX2 gathers; writes the reached leaf node
  /// index per lane. Implementation detail of predict_proba_rows_avx2,
  /// exposed for the kernel-level tests.
  void walk_lockstep_avx2(std::size_t t, const double* rowblock,
                          std::int32_t* leaf_idx) const;
#endif
};

}  // namespace amperebleed::ml
