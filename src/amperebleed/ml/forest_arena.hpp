#pragma once
// Flat SoA (structure-of-arrays) arena for a fitted random forest.
//
// A fitted DecisionTree stores its nodes in preorder (every internal node's
// left child is the next node), so a whole forest packs into four parallel
// arrays spanning all trees:
//
//     feature[i]    int32    >= 0: split feature of internal node i
//                            == kLeaf (-1): node i is a leaf
//     threshold[i]  double   split threshold (internal nodes only)
//     right[i]      int32    internal: ABSOLUTE arena index of the right
//                            child (left child is implicitly i + 1)
//                            leaf: offset of its class distribution in dists
//     dists[]       double   class_count doubles per leaf, all trees
//
// Traversal of one row touches 16 bytes of hot metadata per visited node
// (vs. a 32-byte AoS Node in a per-tree std::vector), every tree of the
// forest lives in ONE allocation, and the rows-outer cache-blocked batch
// kernel (`predict_proba_rows`) streams the whole arena once per block of
// rows instead of once per row. Packing preserves node order and copies
// leaf distributions verbatim, and accumulation stays in tree order
// 0..T-1, so every probability is bit-identical to the per-tree pointer
// walk retained in RandomForest::predict_proba_reference.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace amperebleed::ml {

struct ForestArena {
  static constexpr std::int32_t kLeaf = -1;

  std::vector<std::int32_t> feature;   // kLeaf marks leaves
  std::vector<double> threshold;       // valid for internal nodes
  std::vector<std::int32_t> right;     // right-child index | dist offset
  std::vector<double> dists;           // class_count doubles per leaf
  std::vector<std::int32_t> roots;     // arena index of each tree's root
  int class_count = 0;

  void clear();
  [[nodiscard]] bool empty() const { return roots.empty(); }
  [[nodiscard]] std::size_t tree_count() const { return roots.size(); }
  [[nodiscard]] std::size_t node_count() const { return feature.size(); }
  /// Total heap footprint of the packed arrays (the ml.forest.arena_bytes
  /// obs gauge).
  [[nodiscard]] std::size_t bytes() const;

  /// Leaf class distribution (class_count doubles) reached by `row` in tree
  /// `t`. `row` must span at least the max feature index + 1.
  [[nodiscard]] const double* leaf_dist(std::size_t t, const double* row) const {
    const std::int32_t* feat = feature.data();
    const double* thr = threshold.data();
    const std::int32_t* rgt = right.data();
    std::int32_t i = roots[t];
    while (feat[i] >= 0) {
      i = row[feat[i]] <= thr[i] ? i + 1 : rgt[i];
    }
    return dists.data() + rgt[i];
  }

  /// Sum the leaf distributions of every tree (in tree order 0..T-1) into
  /// `acc` (class_count doubles, caller-zeroed) — the same accumulation
  /// order as the naive per-tree loop, hence bit-identical sums.
  void accumulate(const double* row, double* acc) const;

  /// Rows-outer, cache-blocked batch kernel: averages the per-tree leaf
  /// distributions of rows [lo, hi) into out[lo..hi). Within the block the
  /// tree loop is outer, so each tree's nodes stay cache-hot across the
  /// whole block while every row still accumulates trees in order 0..T-1.
  void predict_proba_rows(std::span<const std::span<const double>> rows,
                          std::size_t lo, std::size_t hi,
                          std::vector<std::vector<double>>& out) const;
};

}  // namespace amperebleed::ml
