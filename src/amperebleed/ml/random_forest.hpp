#pragma once
// Random forest matching the paper's fingerprinting classifier: 100 trees,
// max depth 32, Gini impurity, bootstrap sampling with replacement.

#include <vector>

#include "amperebleed/ml/dataset.hpp"
#include "amperebleed/ml/decision_tree.hpp"
#include "amperebleed/util/rng.hpp"

namespace amperebleed::ml {

struct ForestConfig {
  std::size_t n_trees = 100;
  TreeConfig tree{};
  bool bootstrap = true;
  std::uint64_t seed = 0x5eed;
};

class RandomForest {
 public:
  explicit RandomForest(ForestConfig config = {}) : config_(config) {}

  /// Fit on the full dataset. Throws on an empty dataset.
  void fit(const Dataset& data);

  /// Most probable class (averaged leaf distributions).
  [[nodiscard]] int predict(std::span<const double> features) const;

  /// Averaged class distribution across trees.
  [[nodiscard]] std::vector<double> predict_proba(
      std::span<const double> features) const;

  /// The k most probable classes, most probable first (ties broken by
  /// smaller class id, matching the deterministic evaluation in benches).
  [[nodiscard]] std::vector<int> predict_top_k(std::span<const double> features,
                                               std::size_t k) const;

  [[nodiscard]] bool fitted() const { return !trees_.empty(); }
  [[nodiscard]] std::size_t tree_count() const { return trees_.size(); }
  [[nodiscard]] const ForestConfig& config() const { return config_; }
  [[nodiscard]] int class_count() const { return class_count_; }

 private:
  ForestConfig config_;
  int class_count_ = 0;
  std::vector<DecisionTree> trees_;
};

}  // namespace amperebleed::ml
