#pragma once
// Random forest matching the paper's fingerprinting classifier: 100 trees,
// max depth 32, Gini impurity, bootstrap sampling with replacement.
//
// Training parallelizes across trees on the util::ThreadPool: every tree t
// derives its RNG from master.fork(t) and lands in a pre-sized slot, so the
// fitted forest is bit-identical at any thread count. After training the
// forest is packed into a flat SoA arena (forest_arena.hpp) — one
// allocation spanning all trees — which every predict* member walks; the
// original per-tree pointer walk is retained as predict_proba_reference for
// golden tests and A/B benchmarks. A fitted forest is immutable; all
// predict* members are const and safe to call concurrently from many
// threads (the online service shares one forest across requests).

#include <span>
#include <vector>

#include "amperebleed/ml/dataset.hpp"
#include "amperebleed/ml/decision_tree.hpp"
#include "amperebleed/ml/forest_arena.hpp"
#include "amperebleed/util/rng.hpp"

namespace amperebleed::ml {

struct ForestConfig {
  std::size_t n_trees = 100;
  TreeConfig tree{};
  bool bootstrap = true;
  std::uint64_t seed = 0x5eed;
  /// Explicit opt-in: additionally pack int16-quantized split thresholds
  /// into the arena and walk them with integer compares (halves the hot
  /// split metadata). Quantization is monotone but lossy — predictions may
  /// differ from the exact walk inside one quantization bucket — so this is
  /// OFF by default and gated by the accuracy-delta test in
  /// tests/ml/quantized_test.cpp. predict_proba_reference always stays
  /// exact.
  bool quantize_thresholds = false;
};

class RandomForest {
 public:
  explicit RandomForest(ForestConfig config = {}) : config_(config) {}

  /// Fit on the full dataset. Throws on an empty dataset.
  void fit(const Dataset& data);

  /// Rebuild a forest from a persisted arena (persist/state.hpp): the
  /// arena-walk predict paths work exactly as on a freshly fitted forest —
  /// bit-identical probabilities — and the quantized table is rebuilt when
  /// the config asks for it. The per-tree pointer representation is NOT
  /// restored, so predict_proba_reference throws std::logic_error on a
  /// restored forest (the arena paths are the production surface).
  /// Throws std::invalid_argument on an empty arena.
  [[nodiscard]] static RandomForest from_arena(ForestConfig config,
                                               ForestArena arena);

  /// Most probable class (averaged leaf distributions).
  [[nodiscard]] int predict(std::span<const double> features) const;

  /// Averaged class distribution across trees (arena walk, tree order
  /// 0..T-1 — bit-identical to predict_proba_reference).
  [[nodiscard]] std::vector<double> predict_proba(
      std::span<const double> features) const;

  /// Averaged class distribution via the retained per-tree pointer walk.
  /// Exists as the pre-arena oracle: golden tests assert exact equality
  /// against the arena path, and BM_ForestPredictBatchReference uses it as
  /// the A/B baseline. Prefer predict_proba.
  [[nodiscard]] std::vector<double> predict_proba_reference(
      std::span<const double> features) const;

  /// Batched inference: one averaged class distribution per input row, in
  /// input order. Rows are processed in cache-sized blocks through the SoA
  /// arena (trees stream once per block instead of once per row); blocks
  /// are evaluated in parallel on the thread pool, falling back to a serial
  /// loop when the pool has size 1 or the call is nested inside a parallel
  /// region. Bit-identical to calling predict_proba per row.
  [[nodiscard]] std::vector<std::vector<double>> predict_proba_many(
      std::span<const std::span<const double>> rows) const;

  /// The k most probable classes, most probable first (ties broken by
  /// smaller class id, matching the deterministic evaluation in benches).
  [[nodiscard]] std::vector<int> predict_top_k(std::span<const double> features,
                                               std::size_t k) const;

  /// True for a trained or arena-restored forest.
  [[nodiscard]] bool fitted() const {
    return !trees_.empty() || !arena_.empty();
  }
  [[nodiscard]] std::size_t tree_count() const {
    return trees_.empty() ? arena_.tree_count() : trees_.size();
  }
  [[nodiscard]] const ForestConfig& config() const { return config_; }
  [[nodiscard]] int class_count() const { return class_count_; }
  /// The packed SoA forest (valid once fitted).
  [[nodiscard]] const ForestArena& arena() const { return arena_; }

 private:
  ForestConfig config_;
  int class_count_ = 0;
  std::vector<DecisionTree> trees_;
  ForestArena arena_;
};

/// The k most probable classes of a probability vector, most probable first
/// (ties: smaller class id wins) — the ranking rule behind
/// RandomForest::predict_top_k, shared with the batched CV path. Uses a
/// partial sort over the first k ranks; the tie-break makes the comparator a
/// total order, so the output equals the former full stable_sort prefix.
[[nodiscard]] std::vector<int> top_k_from_proba(std::span<const double> proba,
                                                std::size_t k);

}  // namespace amperebleed::ml
