#pragma once
// Random forest matching the paper's fingerprinting classifier: 100 trees,
// max depth 32, Gini impurity, bootstrap sampling with replacement.
//
// Training parallelizes across trees on the util::ThreadPool: every tree t
// derives its RNG from master.fork(t) and lands in a pre-sized slot, so the
// fitted forest is bit-identical at any thread count. A fitted forest is
// immutable; all predict* members are const and safe to call concurrently
// from many threads (the online service shares one forest across requests).

#include <span>
#include <vector>

#include "amperebleed/ml/dataset.hpp"
#include "amperebleed/ml/decision_tree.hpp"
#include "amperebleed/util/rng.hpp"

namespace amperebleed::ml {

struct ForestConfig {
  std::size_t n_trees = 100;
  TreeConfig tree{};
  bool bootstrap = true;
  std::uint64_t seed = 0x5eed;
};

class RandomForest {
 public:
  explicit RandomForest(ForestConfig config = {}) : config_(config) {}

  /// Fit on the full dataset. Throws on an empty dataset.
  void fit(const Dataset& data);

  /// Most probable class (averaged leaf distributions).
  [[nodiscard]] int predict(std::span<const double> features) const;

  /// Averaged class distribution across trees.
  [[nodiscard]] std::vector<double> predict_proba(
      std::span<const double> features) const;

  /// Batched inference: one averaged class distribution per input row, in
  /// input order. Rows are evaluated in parallel on the thread pool (the
  /// trees are shared immutable state), falling back to a serial loop when
  /// the pool has size 1 or the call is nested inside a parallel region.
  [[nodiscard]] std::vector<std::vector<double>> predict_proba_many(
      std::span<const std::span<const double>> rows) const;

  /// The k most probable classes, most probable first (ties broken by
  /// smaller class id, matching the deterministic evaluation in benches).
  [[nodiscard]] std::vector<int> predict_top_k(std::span<const double> features,
                                               std::size_t k) const;

  [[nodiscard]] bool fitted() const { return !trees_.empty(); }
  [[nodiscard]] std::size_t tree_count() const { return trees_.size(); }
  [[nodiscard]] const ForestConfig& config() const { return config_; }
  [[nodiscard]] int class_count() const { return class_count_; }

 private:
  ForestConfig config_;
  int class_count_ = 0;
  std::vector<DecisionTree> trees_;
};

/// The k most probable classes of a probability vector, most probable first
/// (stable ties: smaller class id wins) — the ranking rule behind
/// RandomForest::predict_top_k, shared with the batched CV path.
[[nodiscard]] std::vector<int> top_k_from_proba(std::span<const double> proba,
                                                std::size_t k);

}  // namespace amperebleed::ml
