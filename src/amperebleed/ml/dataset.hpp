#pragma once
// Tabular dataset for the fingerprinting classifier: one row per side-channel
// trace, one column per (resampled) time step or derived feature.

#include <cstddef>
#include <span>
#include <vector>

namespace amperebleed::ml {

/// Dense row-major feature matrix with integer class labels.
/// Invariant: every row has the same width; labels.size() == rows.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::size_t feature_count) : feature_count_(feature_count) {}

  /// Append one sample. Throws std::invalid_argument on width mismatch.
  void add(std::span<const double> features, int label);

  [[nodiscard]] std::size_t size() const { return labels_.size(); }
  [[nodiscard]] std::size_t feature_count() const { return feature_count_; }
  [[nodiscard]] bool empty() const { return labels_.empty(); }

  [[nodiscard]] std::span<const double> row(std::size_t i) const;
  [[nodiscard]] int label(std::size_t i) const { return labels_.at(i); }
  [[nodiscard]] const std::vector<int>& labels() const { return labels_; }

  /// Number of distinct classes = 1 + max(label). Labels must be >= 0.
  [[nodiscard]] int class_count() const;

  /// Dataset restricted to the first `prefix_features` columns (used to
  /// evaluate shorter trace durations without re-collecting traces).
  [[nodiscard]] Dataset truncated_features(std::size_t prefix_features) const;

  /// Subset of rows by index (for CV folds).
  [[nodiscard]] Dataset subset(std::span<const std::size_t> indices) const;

 private:
  std::size_t feature_count_ = 0;
  std::vector<double> data_;  // rows * feature_count_
  std::vector<int> labels_;
};

}  // namespace amperebleed::ml
