#pragma once
// Tabular dataset for the fingerprinting classifier: one row per side-channel
// trace, one column per (resampled) time step or derived feature.

#include <atomic>
#include <cassert>
#include <cstddef>
#include <mutex>
#include <span>
#include <vector>

namespace amperebleed::ml {

/// Dense row-major feature matrix with integer class labels.
/// Invariant: every row has the same width; labels.size() == rows.
///
/// For the tree-training hot path the dataset also maintains a lazily built
/// column-major mirror (`column_major()` / `column()`): split finding scans
/// one feature at a time, and gathering a candidate column from contiguous
/// memory instead of striding across rows is what keeps the per-node sort
/// cache-resident (see DESIGN.md §9). The mirror is built at most once per
/// mutation epoch — `add()` invalidates it — and the build is guarded by a
/// double-checked lock, so concurrent readers (the tree-parallel region of
/// RandomForest::fit) can all call `column_major()` safely. Mutation
/// (`add`) is NOT thread-safe against concurrent reads, exactly like the
/// underlying std::vectors.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::size_t feature_count) : feature_count_(feature_count) {}

  // The mirror cache (mutex + atomic flag) is not copyable; copies restart
  // with a cold mirror and rebuild it on demand.
  Dataset(const Dataset& other);
  Dataset& operator=(const Dataset& other);
  Dataset(Dataset&& other) noexcept;
  Dataset& operator=(Dataset&& other) noexcept;
  ~Dataset() = default;

  /// Append one sample. Throws std::invalid_argument on width mismatch.
  void add(std::span<const double> features, int label);

  /// Pre-size the backing storage for `rows` samples (rows * feature_count
  /// doubles + labels), so bulk loaders like features::build_dataset append
  /// without reallocation.
  void reserve(std::size_t rows) {
    data_.reserve(rows * feature_count_);
    labels_.reserve(rows);
  }

  [[nodiscard]] std::size_t size() const { return labels_.size(); }
  [[nodiscard]] std::size_t feature_count() const { return feature_count_; }
  [[nodiscard]] bool empty() const { return labels_.empty(); }

  [[nodiscard]] std::span<const double> row(std::size_t i) const;

  /// Label of row `i`. Hot-loop accessor: bounds are a debug assertion, not
  /// a checked throw (`row()` keeps its range check for external callers).
  [[nodiscard]] int label(std::size_t i) const {
    assert(i < labels_.size() && "Dataset::label: index out of range");
    return labels_[i];
  }
  [[nodiscard]] const std::vector<int>& labels() const { return labels_; }

  /// Number of distinct classes = 1 + max(label). Labels must be >= 0.
  /// Memoized: maintained eagerly by add(), O(1) per call.
  [[nodiscard]] int class_count() const { return max_label_ + 1; }

  /// Column-major mirror of the feature matrix: element (r, f) lives at
  /// [f * size() + r]. Built on first call (thread-safe, double-checked),
  /// cached until the next add().
  [[nodiscard]] std::span<const double> column_major() const;

  /// One contiguous feature column of the mirror: column(f)[r] == row(r)[f].
  [[nodiscard]] std::span<const double> column(std::size_t f) const;

  /// Dataset restricted to the first `prefix_features` columns (used to
  /// evaluate shorter trace durations without re-collecting traces).
  [[nodiscard]] Dataset truncated_features(std::size_t prefix_features) const;

  /// Subset of rows by index (for CV folds).
  [[nodiscard]] Dataset subset(std::span<const std::size_t> indices) const;

 private:
  void invalidate_mirror();

  std::size_t feature_count_ = 0;
  std::vector<double> data_;  // rows * feature_count_
  std::vector<int> labels_;
  int max_label_ = -1;  // memoized class_count() - 1

  // Lazily built column-major mirror. `mirror_ready_` is the acquire/release
  // publication flag; `mirror_mu_` serializes the one-time build.
  mutable std::mutex mirror_mu_;
  mutable std::vector<double> mirror_;
  mutable std::atomic<bool> mirror_ready_{false};
};

}  // namespace amperebleed::ml
