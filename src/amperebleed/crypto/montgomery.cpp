#include "amperebleed/crypto/montgomery.hpp"

#include <stdexcept>
#include <vector>

namespace amperebleed::crypto {

namespace {

// Inverse of odd `x` modulo 2^32 by Newton iteration (5 rounds suffice).
std::uint32_t inverse_mod_2_32(std::uint32_t x) {
  std::uint32_t inv = x;  // correct to 3 bits
  for (int i = 0; i < 5; ++i) {
    inv *= 2u - x * inv;
  }
  return inv;
}

}  // namespace

MontgomeryContext::MontgomeryContext(const BigUInt& modulus) : n_(modulus) {
  if (n_.is_zero()) {
    throw std::invalid_argument("MontgomeryContext: zero modulus");
  }
  if (!n_.is_odd()) {
    throw std::invalid_argument("MontgomeryContext: modulus must be odd");
  }
  k_ = n_.limbs().size();
  n0_neg_inv_ = ~inverse_mod_2_32(n_.limbs()[0]) + 1u;  // negate mod 2^32
  r_mod_n_ = (BigUInt(1) << (32 * k_)).mod(n_);
  r2_mod_n_ = (r_mod_n_ * r_mod_n_).mod(n_);
}

BigUInt MontgomeryContext::mul(const BigUInt& a_mont,
                               const BigUInt& b_mont) const {
  // CIOS: t accumulates a*b with interleaved Montgomery reduction.
  const auto& a = a_mont.limbs();
  const auto& b = b_mont.limbs();
  const auto& n = n_.limbs();

  std::vector<std::uint32_t> t(k_ + 2, 0);
  for (std::size_t i = 0; i < k_; ++i) {
    const std::uint64_t ai = i < a.size() ? a[i] : 0;

    // t += ai * b
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < k_; ++j) {
      const std::uint64_t bj = j < b.size() ? b[j] : 0;
      const std::uint64_t cur = t[j] + ai * bj + carry;
      t[j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::uint64_t cur = t[k_] + carry;
    t[k_] = static_cast<std::uint32_t>(cur);
    t[k_ + 1] = static_cast<std::uint32_t>(cur >> 32);

    // m = t[0] * (-n^-1) mod 2^32; t += m * n; t >>= 32
    const std::uint64_t m =
        static_cast<std::uint32_t>(t[0] * n0_neg_inv_);
    carry = 0;
    for (std::size_t j = 0; j < k_; ++j) {
      const std::uint64_t cur2 = t[j] + m * n[j] + carry;
      if (j == 0) {
        carry = cur2 >> 32;  // low limb becomes zero by construction
      } else {
        t[j - 1] = static_cast<std::uint32_t>(cur2);
        carry = cur2 >> 32;
      }
    }
    cur = t[k_] + carry;
    t[k_ - 1] = static_cast<std::uint32_t>(cur);
    cur = t[k_ + 1] + (cur >> 32);
    t[k_] = static_cast<std::uint32_t>(cur);
    t[k_ + 1] = static_cast<std::uint32_t>(cur >> 32);
  }

  // Assemble and conditionally subtract n.
  BigUInt result = BigUInt::from_limbs(std::move(t));
  if (result >= n_) result = result - n_;
  return result;
}

BigUInt MontgomeryContext::to_mont(const BigUInt& x) const {
  return mul(x >= n_ ? x.mod(n_) : x, r2_mod_n_);
}

BigUInt MontgomeryContext::from_mont(const BigUInt& x) const {
  return mul(x, BigUInt(1));
}

BigUInt MontgomeryContext::modexp(const BigUInt& base,
                                  const BigUInt& exp) const {
  BigUInt result = r_mod_n_;  // 1 in the Montgomery domain
  BigUInt square = to_mont(base);
  const std::size_t bits = exp.is_zero() ? 0 : exp.bit_length();
  for (std::size_t i = 0; i < bits; ++i) {
    if (exp.bit(i)) result = mul(result, square);
    square = mul(square, square);
  }
  return from_mont(result);
}

}  // namespace amperebleed::crypto
