#pragma once
// AES-128 block cipher (FIPS-197), implemented from scratch for the
// negative-control victim circuit: unlike the RSA square-and-multiply, an
// AES round pipeline's activity does not modulate with the key at any
// timescale the 35 ms hwmon channel can see, so the attack that recovers
// RSA Hamming weights measurably fails against it (ablation_constant_time).
//
// Table-based reference implementation — correctness and clarity, not
// side-channel hardening (it *is* the victim model).

#include <array>
#include <cstdint>

namespace amperebleed::crypto {

class Aes128 {
 public:
  using Block = std::array<std::uint8_t, 16>;
  using Key = std::array<std::uint8_t, 16>;

  static constexpr int kRounds = 10;

  explicit Aes128(const Key& key);

  /// Encrypt one 16-byte block (ECB primitive).
  [[nodiscard]] Block encrypt_block(const Block& plaintext) const;
  /// Decrypt one 16-byte block.
  [[nodiscard]] Block decrypt_block(const Block& ciphertext) const;

  /// Encryption with the intermediate state after every AddRoundKey —
  /// what a register-per-round hardware pipeline latches each cycle. The
  /// power model derives real switching activity (Hamming distances
  /// between consecutive states) from this.
  struct TracedEncryption {
    Block ciphertext{};
    std::array<Block, kRounds + 1> round_states{};  // post-AddRoundKey
    /// Total bit toggles across the pipeline registers for this block.
    int register_toggles = 0;
  };
  [[nodiscard]] TracedEncryption encrypt_block_traced(
      const Block& plaintext) const;

  /// S-box lookup, exposed for tests.
  static std::uint8_t sbox(std::uint8_t x);
  static std::uint8_t inv_sbox(std::uint8_t x);

 private:
  // 11 round keys of 16 bytes each.
  std::array<std::array<std::uint8_t, 16>, kRounds + 1> round_keys_{};
};

}  // namespace amperebleed::crypto
