#pragma once
// Montgomery modular arithmetic (CIOS) for odd moduli — the fast path for
// RSA-sized exponentiation. Functionally identical to crypto::modexp (the
// reference implementation tests are written against); roughly an order of
// magnitude faster for 1024-bit operands.

#include <cstdint>

#include "amperebleed/crypto/biguint.hpp"

namespace amperebleed::crypto {

/// Precomputed Montgomery domain for a fixed odd modulus n.
/// R = 2^(32*k) where k is n's limb count.
class MontgomeryContext {
 public:
  /// Throws std::invalid_argument if the modulus is zero or even.
  explicit MontgomeryContext(const BigUInt& modulus);

  [[nodiscard]] const BigUInt& modulus() const { return n_; }
  [[nodiscard]] std::size_t limb_count() const { return k_; }

  /// x -> x*R mod n. Precondition handled internally (x reduced first).
  [[nodiscard]] BigUInt to_mont(const BigUInt& x) const;
  /// x*R^-1 mod n (leaves the Montgomery domain).
  [[nodiscard]] BigUInt from_mont(const BigUInt& x) const;
  /// Montgomery product: (a*b*R^-1) mod n, both operands in the domain.
  [[nodiscard]] BigUInt mul(const BigUInt& a_mont, const BigUInt& b_mont) const;

  /// base^exp mod n via LSB-first square-and-multiply in the Montgomery
  /// domain — the same bit-visiting order as the victim circuit.
  [[nodiscard]] BigUInt modexp(const BigUInt& base, const BigUInt& exp) const;

 private:
  BigUInt n_;
  std::size_t k_;
  std::uint32_t n0_neg_inv_;  // -n^{-1} mod 2^32
  BigUInt r_mod_n_;           // R mod n
  BigUInt r2_mod_n_;          // R^2 mod n
};

}  // namespace amperebleed::crypto
