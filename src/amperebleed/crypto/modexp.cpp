#include "amperebleed/crypto/modexp.hpp"

#include <stdexcept>

namespace amperebleed::crypto {

BigUInt modmul(const BigUInt& a, const BigUInt& b, const BigUInt& m) {
  if (m.is_zero()) throw std::domain_error("modmul: modulus is zero");
  if (a >= m || b >= m) {
    return modmul(a.mod(m), b.mod(m), m);
  }
  // MSB-first shift-and-add: acc = 2*acc (+ a) with conditional subtract,
  // so acc always stays below m and below 2*m before reduction.
  BigUInt acc;
  const std::size_t bits = b.bit_length();
  for (std::size_t i = bits; i-- > 0;) {
    acc = acc << 1;
    if (acc >= m) acc = acc - m;
    if (b.bit(i)) {
      acc = acc + a;
      if (acc >= m) acc = acc - m;
    }
  }
  return acc;
}

namespace {

ModExpTrace modexp_impl(const BigUInt& base, const BigUInt& exp,
                        const BigUInt& m) {
  if (m.is_zero()) throw std::domain_error("modexp: modulus is zero");
  ModExpTrace trace;
  BigUInt result = BigUInt(1).mod(m);  // 0 when m == 1
  BigUInt square = base.mod(m);

  const std::size_t bits = exp.is_zero() ? 1 : exp.bit_length();
  trace.iterations.reserve(bits);
  for (std::size_t i = 0; i < bits; ++i) {
    const bool bit_set = exp.bit(i);
    if (bit_set) {
      result = modmul(result, square, m);
    }
    // The squaring multiplier runs every iteration (synchronized with the
    // multiply path in the circuit). The last squaring is architecturally
    // dead but the hardware performs it anyway; we match that.
    square = modmul(square, square, m);
    trace.iterations.push_back(ExpIteration{bit_set});
  }
  trace.result = std::move(result);
  return trace;
}

}  // namespace

BigUInt modexp(const BigUInt& base, const BigUInt& exp, const BigUInt& m) {
  return modexp_impl(base, exp, m).result;
}

ModExpTrace modexp_traced(const BigUInt& base, const BigUInt& exp,
                          const BigUInt& m) {
  return modexp_impl(base, exp, m);
}

}  // namespace amperebleed::crypto
