#pragma once
// Arbitrary-precision unsigned integers sized for RSA-1024. Implemented from
// scratch (no GMP on the target) with 32-bit limbs, little-endian limb order.
// This is the arithmetic behind the victim RSA circuit model and its
// functional reference (tests check the circuit against modexp()).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace amperebleed::crypto {

/// Unsigned big integer. Canonical form: no trailing zero limbs (zero is an
/// empty limb vector). All operations are constant-free of UB; performance is
/// adequate for 1024/2048-bit operands.
class BigUInt {
 public:
  BigUInt() = default;
  explicit BigUInt(std::uint64_t value);

  /// Parse a hex string (optionally "0x"-prefixed). Throws on bad digits.
  static BigUInt from_hex(std::string_view hex);
  /// Construct from little-endian 32-bit limbs (normalized internally).
  static BigUInt from_limbs(std::vector<std::uint32_t> limbs);
  /// Big-endian byte import/export.
  static BigUInt from_bytes_be(const std::vector<std::uint8_t>& bytes);
  [[nodiscard]] std::vector<std::uint8_t> to_bytes_be() const;
  [[nodiscard]] std::string to_hex() const;  // lowercase, no prefix, "0" for 0

  [[nodiscard]] bool is_zero() const { return limbs_.empty(); }
  [[nodiscard]] bool is_odd() const {
    return !limbs_.empty() && (limbs_[0] & 1u) != 0;
  }
  /// Number of significant bits (0 for zero).
  [[nodiscard]] std::size_t bit_length() const;
  /// Value of bit i (false beyond bit_length).
  [[nodiscard]] bool bit(std::size_t i) const;
  void set_bit(std::size_t i);
  /// Population count over all limbs.
  [[nodiscard]] std::size_t hamming_weight() const;
  /// Low 64 bits.
  [[nodiscard]] std::uint64_t low_u64() const;

  [[nodiscard]] int compare(const BigUInt& other) const;  // -1 / 0 / +1
  friend bool operator==(const BigUInt& a, const BigUInt& b) {
    return a.compare(b) == 0;
  }
  friend bool operator!=(const BigUInt& a, const BigUInt& b) {
    return a.compare(b) != 0;
  }
  friend bool operator<(const BigUInt& a, const BigUInt& b) {
    return a.compare(b) < 0;
  }
  friend bool operator<=(const BigUInt& a, const BigUInt& b) {
    return a.compare(b) <= 0;
  }
  friend bool operator>(const BigUInt& a, const BigUInt& b) {
    return a.compare(b) > 0;
  }
  friend bool operator>=(const BigUInt& a, const BigUInt& b) {
    return a.compare(b) >= 0;
  }

  friend BigUInt operator+(const BigUInt& a, const BigUInt& b);
  /// Throws std::underflow_error if b > a.
  friend BigUInt operator-(const BigUInt& a, const BigUInt& b);
  friend BigUInt operator*(const BigUInt& a, const BigUInt& b);
  friend BigUInt operator<<(const BigUInt& a, std::size_t bits);
  friend BigUInt operator>>(const BigUInt& a, std::size_t bits);

  /// Long division via binary shift-subtract; returns {quotient, remainder}.
  /// Throws std::domain_error on division by zero.
  [[nodiscard]] struct DivMod divmod(const BigUInt& divisor) const;
  [[nodiscard]] BigUInt mod(const BigUInt& m) const;

  [[nodiscard]] const std::vector<std::uint32_t>& limbs() const { return limbs_; }

 private:
  void normalize();
  std::vector<std::uint32_t> limbs_;  // little-endian, canonical
};

struct DivMod {
  BigUInt quotient;
  BigUInt remainder;
};

}  // namespace amperebleed::crypto
