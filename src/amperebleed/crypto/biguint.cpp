#include "amperebleed/crypto/biguint.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace amperebleed::crypto {

namespace {
constexpr std::size_t kLimbBits = 32;
}

BigUInt::BigUInt(std::uint64_t value) {
  if (value != 0) limbs_.push_back(static_cast<std::uint32_t>(value));
  const auto high = static_cast<std::uint32_t>(value >> 32);
  if (high != 0) limbs_.push_back(high);
}

void BigUInt::normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigUInt BigUInt::from_hex(std::string_view hex) {
  if (hex.size() >= 2 && (hex.substr(0, 2) == "0x" || hex.substr(0, 2) == "0X")) {
    hex = hex.substr(2);
  }
  if (hex.empty()) throw std::invalid_argument("BigUInt::from_hex: empty");
  BigUInt out;
  for (char c : hex) {
    std::uint32_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint32_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<std::uint32_t>(c - 'A' + 10);
    } else {
      throw std::invalid_argument("BigUInt::from_hex: bad digit");
    }
    out = (out << 4) + BigUInt(digit);
  }
  return out;
}

BigUInt BigUInt::from_limbs(std::vector<std::uint32_t> limbs) {
  BigUInt out;
  out.limbs_ = std::move(limbs);
  out.normalize();
  return out;
}

BigUInt BigUInt::from_bytes_be(const std::vector<std::uint8_t>& bytes) {
  BigUInt out;
  for (std::uint8_t b : bytes) {
    out = (out << 8) + BigUInt(b);
  }
  return out;
}

std::vector<std::uint8_t> BigUInt::to_bytes_be() const {
  if (is_zero()) return {0};
  std::vector<std::uint8_t> out;
  const std::size_t bytes = (bit_length() + 7) / 8;
  out.resize(bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    const std::size_t limb = i / 4;
    const std::size_t shift = (i % 4) * 8;
    out[bytes - 1 - i] =
        static_cast<std::uint8_t>((limbs_[limb] >> shift) & 0xffu);
  }
  return out;
}

std::string BigUInt::to_hex() const {
  if (is_zero()) return "0";
  static const char* digits = "0123456789abcdef";
  std::string out;
  bool leading = true;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    for (int nib = 7; nib >= 0; --nib) {
      const std::uint32_t d = (limbs_[i] >> (nib * 4)) & 0xfu;
      if (leading && d == 0) continue;
      leading = false;
      out += digits[d];
    }
  }
  return out;
}

std::size_t BigUInt::bit_length() const {
  if (limbs_.empty()) return 0;
  const auto top_bits =
      kLimbBits - static_cast<std::size_t>(std::countl_zero(limbs_.back()));
  return (limbs_.size() - 1) * kLimbBits + top_bits;
}

bool BigUInt::bit(std::size_t i) const {
  const std::size_t limb = i / kLimbBits;
  if (limb >= limbs_.size()) return false;
  return ((limbs_[limb] >> (i % kLimbBits)) & 1u) != 0;
}

void BigUInt::set_bit(std::size_t i) {
  const std::size_t limb = i / kLimbBits;
  if (limb >= limbs_.size()) limbs_.resize(limb + 1, 0);
  limbs_[limb] |= (1u << (i % kLimbBits));
}

std::size_t BigUInt::hamming_weight() const {
  std::size_t w = 0;
  for (std::uint32_t limb : limbs_) {
    w += static_cast<std::size_t>(std::popcount(limb));
  }
  return w;
}

std::uint64_t BigUInt::low_u64() const {
  std::uint64_t v = limbs_.empty() ? 0 : limbs_[0];
  if (limbs_.size() > 1) v |= static_cast<std::uint64_t>(limbs_[1]) << 32;
  return v;
}

int BigUInt::compare(const BigUInt& other) const {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) {
      return limbs_[i] < other.limbs_[i] ? -1 : 1;
    }
  }
  return 0;
}

BigUInt operator+(const BigUInt& a, const BigUInt& b) {
  BigUInt out;
  const std::size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  out.limbs_.resize(n, 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t sum = carry;
    if (i < a.limbs_.size()) sum += a.limbs_[i];
    if (i < b.limbs_.size()) sum += b.limbs_[i];
    out.limbs_[i] = static_cast<std::uint32_t>(sum);
    carry = sum >> 32;
  }
  if (carry != 0) out.limbs_.push_back(static_cast<std::uint32_t>(carry));
  return out;
}

BigUInt operator-(const BigUInt& a, const BigUInt& b) {
  if (a < b) throw std::underflow_error("BigUInt: negative result");
  BigUInt out;
  out.limbs_.resize(a.limbs_.size(), 0);
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(a.limbs_[i]) - borrow;
    if (i < b.limbs_.size()) diff -= static_cast<std::int64_t>(b.limbs_[i]);
    if (diff < 0) {
      diff += (std::int64_t{1} << 32);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_[i] = static_cast<std::uint32_t>(diff);
  }
  out.normalize();
  return out;
}

BigUInt operator*(const BigUInt& a, const BigUInt& b) {
  if (a.is_zero() || b.is_zero()) return BigUInt{};
  BigUInt out;
  out.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    const std::uint64_t ai = a.limbs_[i];
    for (std::size_t j = 0; j < b.limbs_.size(); ++j) {
      const std::uint64_t cur =
          static_cast<std::uint64_t>(out.limbs_[i + j]) + ai * b.limbs_[j] +
          carry;
      out.limbs_[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::size_t k = i + b.limbs_.size();
    while (carry != 0) {
      const std::uint64_t cur =
          static_cast<std::uint64_t>(out.limbs_[k]) + carry;
      out.limbs_[k] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  out.normalize();
  return out;
}

BigUInt operator<<(const BigUInt& a, std::size_t bits) {
  if (a.is_zero() || bits == 0) return a;
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  BigUInt out;
  out.limbs_.assign(a.limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    const std::uint64_t shifted = static_cast<std::uint64_t>(a.limbs_[i])
                                  << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<std::uint32_t>(shifted);
    out.limbs_[i + limb_shift + 1] |= static_cast<std::uint32_t>(shifted >> 32);
  }
  out.normalize();
  return out;
}

BigUInt operator>>(const BigUInt& a, std::size_t bits) {
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  if (limb_shift >= a.limbs_.size()) return BigUInt{};
  BigUInt out;
  out.limbs_.assign(a.limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    std::uint64_t v = a.limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < a.limbs_.size()) {
      v |= static_cast<std::uint64_t>(a.limbs_[i + limb_shift + 1])
           << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<std::uint32_t>(v);
  }
  out.normalize();
  return out;
}

DivMod BigUInt::divmod(const BigUInt& divisor) const {
  if (divisor.is_zero()) throw std::domain_error("BigUInt: division by zero");
  DivMod result;
  if (*this < divisor) {
    result.remainder = *this;
    return result;
  }
  const std::size_t shift = bit_length() - divisor.bit_length();
  BigUInt rem = *this;
  BigUInt den = divisor << shift;
  for (std::size_t i = 0; i <= shift; ++i) {
    if (den <= rem) {
      rem = rem - den;
      result.quotient.set_bit(shift - i);
    }
    den = den >> 1;
  }
  result.remainder = std::move(rem);
  return result;
}

BigUInt BigUInt::mod(const BigUInt& m) const { return divmod(m).remainder; }

}  // namespace amperebleed::crypto
