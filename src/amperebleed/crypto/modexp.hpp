#pragma once
// Modular arithmetic and the LSB-first square-and-multiply exponentiation
// that the paper's victim RSA-1024 circuit implements in hardware: the state
// machine walks exponent bits from the least-significant end; every
// iteration runs the squaring multiplier, and iterations on a '1' bit
// additionally run the second (multiply) multiplier.

#include <cstddef>
#include <vector>

#include "amperebleed/crypto/biguint.hpp"

namespace amperebleed::crypto {

/// (a * b) mod m via interleaved shift-and-add reduction: operands stay
/// below 2*m so 1024-bit moduli never grow 2048-bit intermediates.
/// Preconditions: m > 0; a, b < m.
BigUInt modmul(const BigUInt& a, const BigUInt& b, const BigUInt& m);

/// base^exp mod m using LSB-first square-and-multiply (matches the circuit).
/// Precondition: m > 0. Handles base >= m by pre-reduction; exp == 0 -> 1 mod m.
BigUInt modexp(const BigUInt& base, const BigUInt& exp, const BigUInt& m);

/// One state-machine iteration of the hardware loop, as observed by the
/// power model: `multiply_active` is true exactly when the exponent bit was 1
/// (both multipliers ran that cycle group).
struct ExpIteration {
  bool multiply_active = false;
};

/// Functional result plus the per-iteration activity schedule. The schedule
/// has exactly `iterations` entries = bit_length(exp) (or 1 when exp == 0,
/// matching a circuit that always runs at least one iteration).
struct ModExpTrace {
  BigUInt result;
  std::vector<ExpIteration> iterations;
};

/// modexp() with the hardware activity trace attached; used to drive the
/// FPGA power model of the victim circuit.
ModExpTrace modexp_traced(const BigUInt& base, const BigUInt& exp,
                          const BigUInt& m);

}  // namespace amperebleed::crypto
