#include "amperebleed/crypto/rsa.hpp"

#include <numeric>
#include <stdexcept>

#include "amperebleed/util/rng.hpp"

namespace amperebleed::crypto {

const BigUInt& rsa1024_test_modulus() {
  // Deterministic 1024-bit odd modulus with MSB set, expanded from a fixed
  // seed. Generated once; stable across runs and platforms.
  static const BigUInt modulus = [] {
    std::uint64_t sm = 0xa3b1e5f7c9d20461ULL;
    BigUInt n;
    for (std::size_t bit_base = 0; bit_base < 1024; bit_base += 64) {
      const std::uint64_t word = util::splitmix64(sm);
      for (std::size_t b = 0; b < 64; ++b) {
        if ((word >> b) & 1u) n.set_bit(bit_base + b);
      }
    }
    n.set_bit(1023);  // full 1024-bit width
    n.set_bit(0);     // odd, as any RSA modulus is
    return n;
  }();
  return modulus;
}

BigUInt exponent_with_hamming_weight(std::size_t bits,
                                     std::size_t hamming_weight,
                                     std::uint64_t seed) {
  if (hamming_weight == 0) {
    throw std::invalid_argument(
        "exponent_with_hamming_weight: circuit cannot exponentiate by 0 "
        "(the paper substitutes HW=1)");
  }
  if (hamming_weight > bits) {
    throw std::invalid_argument(
        "exponent_with_hamming_weight: weight exceeds width");
  }
  std::vector<std::size_t> positions(bits);
  std::iota(positions.begin(), positions.end(), std::size_t{0});
  util::Rng rng(seed);
  rng.shuffle(positions);
  BigUInt e;
  for (std::size_t i = 0; i < hamming_weight; ++i) {
    e.set_bit(positions[i]);
  }
  return e;
}

std::vector<std::size_t> paper_hamming_weight_schedule(std::size_t bits) {
  if (bits < 16 || bits % 16 != 0) {
    throw std::invalid_argument(
        "paper_hamming_weight_schedule: bits must be a positive multiple of 16");
  }
  const std::size_t step = bits / 16;
  std::vector<std::size_t> schedule;
  schedule.reserve(17);
  schedule.push_back(1);  // HW=0 is unsupported by the circuit; paper uses 1
  for (std::size_t w = step; w <= bits; w += step) {
    schedule.push_back(w);
  }
  return schedule;
}

}  // namespace amperebleed::crypto
