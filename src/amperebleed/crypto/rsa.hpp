#pragma once
// RSA-1024 victim material. The paper embeds the private exponent in the
// encrypted bitstream and constructs 17 keys whose Hamming weights step
// through 1, 64, 128, ..., 1024; we build equivalent exponents
// deterministically from a seed.

#include <cstdint>
#include <vector>

#include "amperebleed/crypto/biguint.hpp"

namespace amperebleed::crypto {

/// Key material for the victim circuit. Only the modulus and the private
/// exponent matter for the power trace; the public part is kept for the
/// functional round-trip tests.
struct RsaKey {
  BigUInt modulus;           // n, 1024-bit
  BigUInt private_exponent;  // d — the secret the attack targets
};

/// A fixed odd 1024-bit RSA-like modulus used by the victim circuit model.
/// Hard-coding it mirrors the paper's single deployed bitstream; the power
/// side channel depends only on the exponent's bit pattern, not on the
/// modulus' factorization.
const BigUInt& rsa1024_test_modulus();

/// Build a `bits`-wide exponent with exactly `hamming_weight` one-bits at
/// deterministic pseudo-random positions (seeded). Positions are chosen
/// without replacement; hamming_weight == bits sets every bit. Throws if
/// hamming_weight == 0 (the paper substitutes HW=1, as the circuit cannot
/// exponentiate by 0) or hamming_weight > bits.
BigUInt exponent_with_hamming_weight(std::size_t bits,
                                     std::size_t hamming_weight,
                                     std::uint64_t seed);

/// The paper's 17-key schedule for `bits`-bit keys: {1, s, 2s, ..., bits}
/// where s = bits/16 (for 1024: 1, 64, 128, ..., 1024).
std::vector<std::size_t> paper_hamming_weight_schedule(std::size_t bits = 1024);

}  // namespace amperebleed::crypto
