#include "amperebleed/crypto/aes128.hpp"

#include <cstring>

namespace amperebleed::crypto {

namespace {

// Build the S-box at first use from the field inverse + affine transform,
// rather than pasting a 256-entry table (self-checking against FIPS-197 in
// the unit tests).
struct SboxTables {
  std::array<std::uint8_t, 256> fwd{};
  std::array<std::uint8_t, 256> inv{};

  SboxTables() {
    // Multiplicative inverses in GF(2^8) via exp/log tables over generator 3.
    std::array<std::uint8_t, 256> exp_table{};
    std::array<std::uint8_t, 256> log_table{};
    std::uint8_t x = 1;
    for (int i = 0; i < 255; ++i) {
      exp_table[static_cast<std::size_t>(i)] = x;
      log_table[x] = static_cast<std::uint8_t>(i);
      // multiply x by 3 = x + xtime(x)
      const auto xtime = static_cast<std::uint8_t>(
          (x << 1) ^ ((x & 0x80) ? 0x1b : 0x00));
      x = static_cast<std::uint8_t>(x ^ xtime);
    }
    for (int v = 0; v < 256; ++v) {
      std::uint8_t inverse = 0;
      if (v != 0) {
        inverse = exp_table[static_cast<std::size_t>(
            (255 - log_table[static_cast<std::size_t>(v)]) % 255)];
      }
      // Affine transform.
      std::uint8_t s = 0;
      for (int bit = 0; bit < 8; ++bit) {
        const int b = ((inverse >> bit) & 1) ^
                      ((inverse >> ((bit + 4) % 8)) & 1) ^
                      ((inverse >> ((bit + 5) % 8)) & 1) ^
                      ((inverse >> ((bit + 6) % 8)) & 1) ^
                      ((inverse >> ((bit + 7) % 8)) & 1) ^
                      ((0x63 >> bit) & 1);
        s = static_cast<std::uint8_t>(s | (b << bit));
      }
      fwd[static_cast<std::size_t>(v)] = s;
      inv[s] = static_cast<std::uint8_t>(v);
    }
  }
};

const SboxTables& tables() {
  static const SboxTables t;
  return t;
}

std::uint8_t xtime(std::uint8_t x) {
  return static_cast<std::uint8_t>((x << 1) ^ ((x & 0x80) ? 0x1b : 0x00));
}

std::uint8_t gmul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t result = 0;
  while (b != 0) {
    if (b & 1) result = static_cast<std::uint8_t>(result ^ a);
    a = xtime(a);
    b >>= 1;
  }
  return result;
}

using State = std::array<std::uint8_t, 16>;  // column-major, as FIPS-197

void add_round_key(State& s, const std::array<std::uint8_t, 16>& rk) {
  for (int i = 0; i < 16; ++i) s[i] = static_cast<std::uint8_t>(s[i] ^ rk[i]);
}

void sub_bytes(State& s) {
  for (auto& b : s) b = tables().fwd[b];
}

void inv_sub_bytes(State& s) {
  for (auto& b : s) b = tables().inv[b];
}

// State layout: s[col*4 + row].
void shift_rows(State& s) {
  State t = s;
  for (int row = 1; row < 4; ++row) {
    for (int col = 0; col < 4; ++col) {
      s[static_cast<std::size_t>(col * 4 + row)] =
          t[static_cast<std::size_t>(((col + row) % 4) * 4 + row)];
    }
  }
}

void inv_shift_rows(State& s) {
  State t = s;
  for (int row = 1; row < 4; ++row) {
    for (int col = 0; col < 4; ++col) {
      s[static_cast<std::size_t>(((col + row) % 4) * 4 + row)] =
          t[static_cast<std::size_t>(col * 4 + row)];
    }
  }
}

void mix_columns(State& s) {
  for (int col = 0; col < 4; ++col) {
    std::uint8_t* c = &s[static_cast<std::size_t>(col * 4)];
    const std::uint8_t a0 = c[0];
    const std::uint8_t a1 = c[1];
    const std::uint8_t a2 = c[2];
    const std::uint8_t a3 = c[3];
    c[0] = static_cast<std::uint8_t>(gmul(a0, 2) ^ gmul(a1, 3) ^ a2 ^ a3);
    c[1] = static_cast<std::uint8_t>(a0 ^ gmul(a1, 2) ^ gmul(a2, 3) ^ a3);
    c[2] = static_cast<std::uint8_t>(a0 ^ a1 ^ gmul(a2, 2) ^ gmul(a3, 3));
    c[3] = static_cast<std::uint8_t>(gmul(a0, 3) ^ a1 ^ a2 ^ gmul(a3, 2));
  }
}

void inv_mix_columns(State& s) {
  for (int col = 0; col < 4; ++col) {
    std::uint8_t* c = &s[static_cast<std::size_t>(col * 4)];
    const std::uint8_t a0 = c[0];
    const std::uint8_t a1 = c[1];
    const std::uint8_t a2 = c[2];
    const std::uint8_t a3 = c[3];
    c[0] = static_cast<std::uint8_t>(gmul(a0, 14) ^ gmul(a1, 11) ^
                                     gmul(a2, 13) ^ gmul(a3, 9));
    c[1] = static_cast<std::uint8_t>(gmul(a0, 9) ^ gmul(a1, 14) ^
                                     gmul(a2, 11) ^ gmul(a3, 13));
    c[2] = static_cast<std::uint8_t>(gmul(a0, 13) ^ gmul(a1, 9) ^
                                     gmul(a2, 14) ^ gmul(a3, 11));
    c[3] = static_cast<std::uint8_t>(gmul(a0, 11) ^ gmul(a1, 13) ^
                                     gmul(a2, 9) ^ gmul(a3, 14));
  }
}

}  // namespace

std::uint8_t Aes128::sbox(std::uint8_t x) { return tables().fwd[x]; }
std::uint8_t Aes128::inv_sbox(std::uint8_t x) { return tables().inv[x]; }

Aes128::Aes128(const Key& key) {
  // Key expansion (FIPS-197 5.2).
  std::memcpy(round_keys_[0].data(), key.data(), 16);
  std::uint8_t rcon = 1;
  for (int round = 1; round <= kRounds; ++round) {
    const auto& prev = round_keys_[static_cast<std::size_t>(round - 1)];
    auto& rk = round_keys_[static_cast<std::size_t>(round)];
    // First word: RotWord + SubWord + Rcon.
    std::uint8_t t[4] = {prev[13], prev[14], prev[15], prev[12]};
    for (auto& b : t) b = tables().fwd[b];
    t[0] = static_cast<std::uint8_t>(t[0] ^ rcon);
    rcon = xtime(rcon);
    for (int i = 0; i < 4; ++i) {
      rk[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(prev[static_cast<std::size_t>(i)] ^ t[i]);
    }
    for (int i = 4; i < 16; ++i) {
      rk[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(
          prev[static_cast<std::size_t>(i)] ^
          rk[static_cast<std::size_t>(i - 4)]);
    }
  }
}

Aes128::Block Aes128::encrypt_block(const Block& plaintext) const {
  State s = plaintext;
  add_round_key(s, round_keys_[0]);
  for (int round = 1; round < kRounds; ++round) {
    sub_bytes(s);
    shift_rows(s);
    mix_columns(s);
    add_round_key(s, round_keys_[static_cast<std::size_t>(round)]);
  }
  sub_bytes(s);
  shift_rows(s);
  add_round_key(s, round_keys_[kRounds]);
  return s;
}

Aes128::TracedEncryption Aes128::encrypt_block_traced(
    const Block& plaintext) const {
  TracedEncryption out;
  State s = plaintext;
  add_round_key(s, round_keys_[0]);
  out.round_states[0] = s;
  for (int round = 1; round < kRounds; ++round) {
    sub_bytes(s);
    shift_rows(s);
    mix_columns(s);
    add_round_key(s, round_keys_[static_cast<std::size_t>(round)]);
    out.round_states[static_cast<std::size_t>(round)] = s;
  }
  sub_bytes(s);
  shift_rows(s);
  add_round_key(s, round_keys_[kRounds]);
  out.round_states[kRounds] = s;
  out.ciphertext = s;

  for (int round = 1; round <= kRounds; ++round) {
    for (int byte = 0; byte < 16; ++byte) {
      const auto prev =
          out.round_states[static_cast<std::size_t>(round - 1)]
                          [static_cast<std::size_t>(byte)];
      const auto cur = out.round_states[static_cast<std::size_t>(round)]
                                       [static_cast<std::size_t>(byte)];
      out.register_toggles +=
          __builtin_popcount(static_cast<unsigned>(prev ^ cur));
    }
  }
  return out;
}

Aes128::Block Aes128::decrypt_block(const Block& ciphertext) const {
  State s = ciphertext;
  add_round_key(s, round_keys_[kRounds]);
  for (int round = kRounds - 1; round >= 1; --round) {
    inv_shift_rows(s);
    inv_sub_bytes(s);
    add_round_key(s, round_keys_[static_cast<std::size_t>(round)]);
    inv_mix_columns(s);
  }
  inv_shift_rows(s);
  inv_sub_bytes(s);
  add_round_key(s, round_keys_[0]);
  return s;
}

}  // namespace amperebleed::crypto
