#pragma once
// FPGA fabric resource model. The evaluation board is a ZCU102 (Zynq
// UltraScale+ XCZU9EG): 274,080 LUTs, 548,160 flip-flops, 2,520 DSP slices,
// fabric clock 300 MHz. Deployment tracks resource consumption so circuit
// models cannot overcommit the device.

#include <cstddef>
#include <string>
#include <vector>

namespace amperebleed::fpga {

struct FabricResources {
  std::size_t luts = 0;
  std::size_t flip_flops = 0;
  std::size_t dsp_slices = 0;
  std::size_t bram_blocks = 0;

  friend FabricResources operator+(const FabricResources& a,
                                   const FabricResources& b) {
    return {a.luts + b.luts, a.flip_flops + b.flip_flops,
            a.dsp_slices + b.dsp_slices, a.bram_blocks + b.bram_blocks};
  }
  /// True when every resource of `need` fits into `this`.
  [[nodiscard]] bool fits(const FabricResources& need) const {
    return need.luts <= luts && need.flip_flops <= flip_flops &&
           need.dsp_slices <= dsp_slices && need.bram_blocks <= bram_blocks;
  }
};

/// ZCU102 (XCZU9EG) fabric resources from the paper's evaluation setup.
FabricResources zcu102_resources();

struct FabricConfig {
  FabricResources resources = zcu102_resources();
  double clock_mhz = 300.0;
};

/// A deployed circuit's identity and footprint.
struct CircuitDescriptor {
  std::string name;
  FabricResources usage;
  /// IEEE-1735 style encryption: true for IP whose HDL (and any embedded
  /// secret, e.g. the RSA key) is opaque even to privileged software.
  bool encrypted = false;
};

/// Tracks deployments against the device's resource budget.
class Fabric {
 public:
  explicit Fabric(FabricConfig config = {});

  /// Deploy a circuit. Throws std::runtime_error if resources do not fit.
  void deploy(const CircuitDescriptor& circuit);
  /// Remove a deployed circuit by name; throws if not found.
  void remove(const std::string& name);

  [[nodiscard]] const FabricConfig& config() const { return config_; }
  [[nodiscard]] FabricResources used() const;
  [[nodiscard]] FabricResources available() const;
  [[nodiscard]] const std::vector<CircuitDescriptor>& deployed() const {
    return circuits_;
  }
  [[nodiscard]] bool is_deployed(const std::string& name) const;

 private:
  FabricConfig config_;
  std::vector<CircuitDescriptor> circuits_;
};

}  // namespace amperebleed::fpga
