#include "amperebleed/fpga/rsa_circuit.hpp"

#include <stdexcept>

#include "amperebleed/crypto/montgomery.hpp"

namespace amperebleed::fpga {

RsaCircuit::RsaCircuit(RsaCircuitConfig config, crypto::RsaKey key)
    : config_(config), key_(std::move(key)) {
  if (config_.clock_mhz <= 0.0) {
    throw std::invalid_argument("RsaCircuit: clock must be > 0");
  }
  if (key_.private_exponent.is_zero()) {
    throw std::invalid_argument(
        "RsaCircuit: the circuit does not support exponentiation by 0");
  }
  if (key_.private_exponent.bit_length() > config_.key_bits) {
    throw std::invalid_argument("RsaCircuit: exponent wider than key_bits");
  }
  if (key_.modulus.is_zero()) {
    throw std::invalid_argument("RsaCircuit: modulus must be nonzero");
  }
}

CircuitDescriptor RsaCircuit::descriptor() const {
  // Two 1024-bit modular multipliers plus control; logic-only implementation.
  return CircuitDescriptor{
      .name = "rsa1024",
      .usage =
          FabricResources{
              .luts = 31'000,
              .flip_flops = 9'500,
              .dsp_slices = 0,
              .bram_blocks = 8,
          },
      .encrypted = true,  // IEEE-1735; the key ships inside the bitstream
  };
}

sim::TimeNs RsaCircuit::iteration_duration() const {
  const double ns = static_cast<double>(config_.cycles_per_iteration) /
                    config_.clock_mhz * 1e3;
  return sim::TimeNs{static_cast<std::int64_t>(ns + 0.5)};
}

sim::TimeNs RsaCircuit::exponentiation_duration() const {
  return sim::TimeNs{iteration_duration().ns *
                     static_cast<std::int64_t>(config_.key_bits)};
}

std::size_t RsaCircuit::key_hamming_weight() const {
  return key_.private_exponent.hamming_weight();
}

double RsaCircuit::mean_encryption_current() const {
  const double multiply_duty = static_cast<double>(key_hamming_weight()) /
                               static_cast<double>(config_.key_bits);
  return config_.idle_current_amps + config_.controller_current_amps +
         config_.square_multiplier_current_amps +
         multiply_duty * config_.multiply_multiplier_current_amps;
}

RsaCircuit::Schedule RsaCircuit::schedule(sim::TimeNs start, sim::TimeNs end,
                                          RsaGranularity granularity) const {
  if (end < start) throw std::invalid_argument("RsaCircuit: end < start");

  Schedule out;
  auto& fpga = out.activity.on(power::Rail::FpgaLogic);
  fpga = sim::PiecewiseConstant(config_.idle_current_amps);

  const sim::TimeNs iter = iteration_duration();
  const sim::TimeNs exp_dur = exponentiation_duration();
  const double gap_ns = static_cast<double>(config_.cycles_between_encryptions) /
                        config_.clock_mhz * 1e3;
  const sim::TimeNs gap{static_cast<std::int64_t>(gap_ns + 0.5)};

  const double base_active =
      config_.idle_current_amps + config_.controller_current_amps +
      config_.square_multiplier_current_amps;
  const double with_multiply =
      base_active + config_.multiply_multiplier_current_amps;

  sim::TimeNs cursor = start;
  while (cursor + exp_dur <= end) {
    if (granularity == RsaGranularity::PerExponentiation) {
      fpga.append(cursor, mean_encryption_current());
    } else {
      // Bit-level amplitude modulation: the state machine walks all
      // key_bits bits; bits beyond the exponent's length are zero.
      sim::TimeNs t = cursor;
      for (std::size_t bit = 0; bit < config_.key_bits; ++bit) {
        const bool one = key_.private_exponent.bit(bit);
        fpga.append(t, one ? with_multiply : base_active);
        t += iter;
      }
    }
    cursor += exp_dur;
    fpga.append(cursor, config_.idle_current_amps);
    cursor += gap;
    ++out.encryption_count;
  }
  return out;
}

crypto::BigUInt RsaCircuit::encrypt(const crypto::BigUInt& plaintext) const {
  // Montgomery fast path for the (always odd) RSA modulus; the generic
  // shift-and-add reference covers the degenerate even case in tests.
  if (key_.modulus.is_odd()) {
    return crypto::MontgomeryContext(key_.modulus)
        .modexp(plaintext, key_.private_exponent);
  }
  return crypto::modexp(plaintext, key_.private_exponent, key_.modulus);
}

}  // namespace amperebleed::fpga
