#pragma once
// Power-virus workload (Gnad et al., FPL'17): 160k valid-bitstream toggling
// instances covering the routing fabric, grouped into 160 groups of 1k that
// the ARM side can activate at runtime — giving 161 controllable victim
// activity levels for the Fig 2 characterization.

#include <cstddef>

#include "amperebleed/fpga/fabric.hpp"
#include "amperebleed/power/activity.hpp"
#include "amperebleed/power/power_model.hpp"
#include "amperebleed/sim/time.hpp"

namespace amperebleed::fpga {

struct PowerVirusConfig {
  std::size_t instance_count = 160'000;
  std::size_t group_count = 160;
  /// Dynamic current per toggling instance: 40 uA -> 40 mA per 1k group,
  /// i.e. the ~40 current LSBs per activity level the paper measures.
  double dynamic_current_per_instance_amps = 40e-6;
  /// Leakage of a deployed-but-idle instance — why Fig 2's current axis does
  /// not start at zero ("static workloads" in the paper).
  double static_current_per_instance_amps = 4e-6;
  /// Footprint per instance (a registered combinational toggler).
  std::size_t luts_per_instance = 1;
  std::size_t flip_flops_per_instance = 1;
};

/// Deployable power virus with runtime-controlled group activation.
class PowerVirus {
 public:
  explicit PowerVirus(PowerVirusConfig config = {});

  [[nodiscard]] CircuitDescriptor descriptor() const;

  /// Record an activation command: from `at`, exactly `groups` groups run.
  /// Commands must be issued in increasing time order (like the ARM-side
  /// control register writes they model). Throws if groups > group_count
  /// or `at` is not after the previous command.
  void set_active_groups(sim::TimeNs at, std::size_t groups);

  /// Compile the command history into a per-rail activity schedule.
  /// The virus loads only the FPGA logic rail.
  [[nodiscard]] power::RailActivity activity() const;

  /// Steady-state FPGA rail current with `groups` groups active, including
  /// the static floor (exposed for calibration and tests).
  [[nodiscard]] double current_for_groups(std::size_t groups) const;
  [[nodiscard]] double static_current() const;
  [[nodiscard]] std::size_t instances_per_group() const;
  [[nodiscard]] const PowerVirusConfig& config() const { return config_; }

 private:
  PowerVirusConfig config_;
  struct Command {
    sim::TimeNs at;
    std::size_t groups;
  };
  std::vector<Command> commands_;
};

}  // namespace amperebleed::fpga
