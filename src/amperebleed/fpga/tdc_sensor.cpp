#include "amperebleed/fpga/tdc_sensor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace amperebleed::fpga {

TdcSensor::TdcSensor(TdcConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  if (config_.taps == 0) {
    throw std::invalid_argument("TdcSensor: taps must be > 0");
  }
  if (config_.nominal_taps < 0.0 ||
      config_.nominal_taps > static_cast<double>(config_.taps)) {
    throw std::invalid_argument("TdcSensor: nominal_taps outside the chain");
  }
  if (config_.taps_per_volt <= 0.0) {
    throw std::invalid_argument("TdcSensor: sensitivity must be > 0");
  }
}

CircuitDescriptor TdcSensor::descriptor() const {
  return CircuitDescriptor{
      .name = "tdc_sensor",
      .usage =
          FabricResources{
              .luts = config_.luts,
              .flip_flops = config_.flip_flops,
              .dsp_slices = 0,
              .bram_blocks = 0,
          },
      .encrypted = false,
  };
}

double TdcSensor::expected_taps(double voltage) const {
  const double taps = config_.nominal_taps +
                      config_.taps_per_volt * (voltage - config_.v_reference);
  return std::clamp(taps, 0.0, static_cast<double>(config_.taps));
}

double TdcSensor::sample(const sim::PiecewiseConstant& fpga_voltage,
                         sim::TimeNs t) {
  const double ideal = expected_taps(fpga_voltage.value_at(t));
  const double noisy = ideal + rng_.gaussian(0.0, config_.jitter_taps);
  return std::clamp(std::round(noisy), 0.0,
                    static_cast<double>(config_.taps));
}

}  // namespace amperebleed::fpga
