#include "amperebleed/fpga/aes_circuit.hpp"

#include <algorithm>
#include <stdexcept>

#include "amperebleed/util/rng.hpp"

namespace amperebleed::fpga {

namespace {
// Expected pipeline toggles per block: 10 register updates x 128 bits x 1/2.
constexpr double kExpectedTogglesPerBlock = 10.0 * 128.0 / 2.0;
}  // namespace

AesCircuit::AesCircuit(AesCircuitConfig config, crypto::Aes128::Key key)
    : config_(config), cipher_(key) {
  if (config_.clock_mhz <= 0.0 || config_.cycles_per_block == 0) {
    throw std::invalid_argument("AesCircuit: bad timing configuration");
  }
  if (config_.chunk.ns <= 0 || config_.sampled_blocks_per_chunk == 0) {
    throw std::invalid_argument("AesCircuit: bad chunking configuration");
  }
}

CircuitDescriptor AesCircuit::descriptor() const {
  return CircuitDescriptor{
      .name = "aes128",
      .usage =
          FabricResources{
              .luts = 3'600,
              .flip_flops = 2'950,
              .dsp_slices = 0,
              .bram_blocks = 0,
          },
      .encrypted = true,  // key embedded, as in the RSA victim
  };
}

sim::TimeNs AesCircuit::block_duration() const {
  const double ns = static_cast<double>(config_.cycles_per_block) /
                    config_.clock_mhz * 1e3;
  return sim::TimeNs{static_cast<std::int64_t>(ns + 0.5)};
}

double AesCircuit::blocks_per_second() const {
  return config_.clock_mhz * 1e6 /
         static_cast<double>(config_.cycles_per_block);
}

AesCircuit::Schedule AesCircuit::schedule(sim::TimeNs start, sim::TimeNs end,
                                          std::uint64_t plaintext_seed) const {
  if (end < start) throw std::invalid_argument("AesCircuit: end < start");

  Schedule out;
  auto& fpga = out.activity.on(power::Rail::FpgaLogic);
  fpga = sim::PiecewiseConstant(config_.idle_current_amps);

  util::Rng rng(plaintext_seed);
  sim::TimeNs cursor = start;
  while (cursor < end) {
    const sim::TimeNs chunk_end{
        std::min(cursor.ns + config_.chunk.ns, end.ns)};

    // Run a sample of the real plaintext stream through the real cipher to
    // measure this chunk's mean register activity.
    double toggles = 0.0;
    for (std::size_t b = 0; b < config_.sampled_blocks_per_chunk; ++b) {
      crypto::Aes128::Block pt{};
      for (auto& byte : pt) {
        byte = static_cast<std::uint8_t>(rng.uniform_below(256));
      }
      toggles += cipher_.encrypt_block_traced(pt).register_toggles;
    }
    const double mean_toggles =
        toggles / static_cast<double>(config_.sampled_blocks_per_chunk);
    const double current =
        config_.idle_current_amps +
        config_.core_current_amps * (mean_toggles / kExpectedTogglesPerBlock);
    fpga.append(cursor, current);

    out.blocks_encrypted += static_cast<std::uint64_t>(
        (chunk_end - cursor).seconds() * blocks_per_second());
    cursor = chunk_end;
  }
  fpga.append(end, config_.idle_current_amps);
  return out;
}

crypto::Aes128::Block AesCircuit::encrypt(
    const crypto::Aes128::Block& plaintext) const {
  return cipher_.encrypt_block(plaintext);
}

}  // namespace amperebleed::fpga
