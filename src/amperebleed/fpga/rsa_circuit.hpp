#pragma once
// Victim RSA-1024 circuit (after Zhao & Suh, modified per the paper to run
// at 100 MHz). Square-and-multiply with two dedicated modular multipliers
// and a state machine that walks the 1024-bit exponent LSB-first:
//   * every iteration the square multiplier runs;
//   * on a '1' bit the multiply multiplier runs in the same cycles,
//     doubling the switching activity of that iteration.
// Both multipliers complete in the same cycle count, so iterations have a
// fixed duration and only their current amplitude leaks the key bit. The
// private exponent is embedded in the (IEEE-1735 encrypted) bitstream and is
// not readable by any software, privileged or not.

#include "amperebleed/crypto/modexp.hpp"
#include "amperebleed/crypto/rsa.hpp"
#include "amperebleed/fpga/fabric.hpp"
#include "amperebleed/power/activity.hpp"
#include "amperebleed/sim/time.hpp"

namespace amperebleed::fpga {

struct RsaCircuitConfig {
  double clock_mhz = 100.0;      // paper's modified operating frequency
  std::size_t key_bits = 1024;   // exponent register width
  /// Cycles per state-machine iteration (both multipliers are synchronized
  /// to finish together).
  std::size_t cycles_per_iteration = 1056;
  /// Pipeline reload cycles between consecutive encryptions.
  std::size_t cycles_between_encryptions = 64;
  /// Current drawn by the always-active square multiplier while encrypting.
  double square_multiplier_current_amps = 0.150;
  /// Additional current when the multiply multiplier is active ('1' bits).
  double multiply_multiplier_current_amps = 0.160;
  /// State machine + operand registers while encrypting.
  double controller_current_amps = 0.020;
  /// Leakage of the deployed circuit (drawn even when idle).
  double idle_current_amps = 0.045;
};

/// Activity-schedule resolution. Per-exponentiation is sufficient for the
/// 35 ms hwmon channel (each conversion spans ~3 encryptions); per-iteration
/// exposes the bit-level amplitude modulation for fine-grained studies.
enum class RsaGranularity { PerExponentiation, PerIteration };

class RsaCircuit {
 public:
  /// Throws if the key's exponent is zero (unsupported by the hardware) or
  /// wider than key_bits.
  RsaCircuit(RsaCircuitConfig config, crypto::RsaKey key);

  [[nodiscard]] CircuitDescriptor descriptor() const;

  [[nodiscard]] sim::TimeNs iteration_duration() const;
  /// Fixed for all keys: the state machine always walks key_bits bits.
  [[nodiscard]] sim::TimeNs exponentiation_duration() const;

  /// Mean FPGA-rail current during one exponentiation (idle + controller +
  /// square + multiply * HW/key_bits) — the quantity Fig 4's distributions
  /// are centred on.
  [[nodiscard]] double mean_encryption_current() const;

  struct Schedule {
    power::RailActivity activity;
    std::size_t encryption_count = 0;
  };

  /// Back-to-back encryptions from `start` until the last one that finishes
  /// by `end` (the circuit then goes idle).
  [[nodiscard]] Schedule schedule(sim::TimeNs start, sim::TimeNs end,
                                  RsaGranularity granularity =
                                      RsaGranularity::PerExponentiation) const;

  /// Functional encryption m^d mod n via the same LSB-first square-and-
  /// multiply datapath the schedule models; used by tests to tie the power
  /// model to real arithmetic.
  [[nodiscard]] crypto::BigUInt encrypt(const crypto::BigUInt& plaintext) const;

  [[nodiscard]] std::size_t key_hamming_weight() const;
  [[nodiscard]] const RsaCircuitConfig& config() const { return config_; }

 private:
  RsaCircuitConfig config_;
  crypto::RsaKey key_;
};

}  // namespace amperebleed::fpga
