#include "amperebleed/fpga/power_virus.hpp"

#include <stdexcept>

namespace amperebleed::fpga {

PowerVirus::PowerVirus(PowerVirusConfig config) : config_(config) {
  if (config_.group_count == 0) {
    throw std::invalid_argument("PowerVirus: group_count must be > 0");
  }
  if (config_.instance_count % config_.group_count != 0) {
    throw std::invalid_argument(
        "PowerVirus: instance_count must divide evenly into groups");
  }
}

CircuitDescriptor PowerVirus::descriptor() const {
  return CircuitDescriptor{
      .name = "power_virus",
      .usage =
          FabricResources{
              .luts = config_.instance_count * config_.luts_per_instance,
              .flip_flops =
                  config_.instance_count * config_.flip_flops_per_instance,
              .dsp_slices = 0,
              .bram_blocks = 0,
          },
      .encrypted = false,
  };
}

std::size_t PowerVirus::instances_per_group() const {
  return config_.instance_count / config_.group_count;
}

double PowerVirus::static_current() const {
  return power::leakage_current_amps(
      static_cast<double>(config_.instance_count),
      config_.static_current_per_instance_amps);
}

double PowerVirus::current_for_groups(std::size_t groups) const {
  if (groups > config_.group_count) {
    throw std::invalid_argument("PowerVirus: groups out of range");
  }
  const double active_instances =
      static_cast<double>(groups * instances_per_group());
  return static_current() +
         active_instances * config_.dynamic_current_per_instance_amps;
}

void PowerVirus::set_active_groups(sim::TimeNs at, std::size_t groups) {
  if (groups > config_.group_count) {
    throw std::invalid_argument("PowerVirus: groups out of range");
  }
  if (!commands_.empty() && at <= commands_.back().at) {
    throw std::invalid_argument(
        "PowerVirus: activation commands must be time-ordered");
  }
  commands_.push_back(Command{at, groups});
}

power::RailActivity PowerVirus::activity() const {
  power::RailActivity out;
  auto& fpga = out.on(power::Rail::FpgaLogic);
  fpga = sim::PiecewiseConstant(current_for_groups(0));
  for (const auto& cmd : commands_) {
    fpga.append(cmd.at, current_for_groups(cmd.groups));
  }
  return out;
}

}  // namespace amperebleed::fpga
