#pragma once
// AES-128 victim circuit — the negative control to the RSA case study. A
// round-pipelined AES core's register switching depends on the evolving
// cipher state, which (by design of the cipher) averages to the same
// activity for every key once plaintexts vary. Consequently the 35 ms
// current channel, which breaks the RSA exponent's Hamming weight wide
// open, learns nothing about the AES key (bench/ablation_constant_time).
//
// The activity schedule is driven by the *real* cipher: per-chunk mean
// register-toggle counts come from crypto::Aes128::encrypt_block_traced on
// the actual plaintext stream.

#include <cstdint>

#include "amperebleed/crypto/aes128.hpp"
#include "amperebleed/fpga/fabric.hpp"
#include "amperebleed/power/activity.hpp"
#include "amperebleed/sim/time.hpp"

namespace amperebleed::fpga {

struct AesCircuitConfig {
  double clock_mhz = 250.0;
  /// Cycles per block in the iterated-round core (10 rounds + key load).
  std::size_t cycles_per_block = 11;
  double idle_current_amps = 0.012;  // deployed-core leakage
  /// Current at the cipher's average switching activity (half the pipeline
  /// registers toggling per cycle).
  double core_current_amps = 0.085;
  /// Current scales linearly with measured register toggles around the
  /// average: I = core * (toggles / expected_toggles).
  /// Resolution of the generated schedule: activity is aggregated over
  /// chunks of this duration using a sampled plaintext subset.
  sim::TimeNs chunk = sim::milliseconds(5);
  /// Blocks actually pushed through the real cipher per chunk to estimate
  /// the chunk's mean toggle count.
  std::size_t sampled_blocks_per_chunk = 8;
};

class AesCircuit {
 public:
  AesCircuit(AesCircuitConfig config, crypto::Aes128::Key key);

  [[nodiscard]] CircuitDescriptor descriptor() const;

  [[nodiscard]] sim::TimeNs block_duration() const;
  /// Blocks encrypted per second at full throughput.
  [[nodiscard]] double blocks_per_second() const;

  struct Schedule {
    power::RailActivity activity;
    std::uint64_t blocks_encrypted = 0;  // total (modelled) block count
  };

  /// Encrypt a random plaintext stream back-to-back over [start, end);
  /// `plaintext_seed` drives the stream (the attacker does not control it).
  [[nodiscard]] Schedule schedule(sim::TimeNs start, sim::TimeNs end,
                                  std::uint64_t plaintext_seed) const;

  /// Functional access to the underlying cipher.
  [[nodiscard]] crypto::Aes128::Block encrypt(
      const crypto::Aes128::Block& plaintext) const;

  [[nodiscard]] const AesCircuitConfig& config() const { return config_; }

 private:
  AesCircuitConfig config_;
  crypto::Aes128 cipher_;
};

}  // namespace amperebleed::fpga
