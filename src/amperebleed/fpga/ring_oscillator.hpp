#pragma once
// Ring-oscillator voltage sensor bank (Zhao & Suh, S&P'18) — the crafted-
// circuit baseline AmpereBleed is compared against in Fig 2. A combinational
// loop increments a counter whose rate tracks the PDN voltage (propagation
// delay falls as voltage rises); the counter is sampled at fixed intervals.
// On a stabilized PDN the observable voltage swing is tiny, which is why the
// RO's per-level variation ends up ~261x smaller than the hwmon current's.

#include <cstdint>

#include "amperebleed/fpga/fabric.hpp"
#include "amperebleed/sim/noise.hpp"
#include "amperebleed/sim/signal.hpp"
#include "amperebleed/sim/time.hpp"
#include "amperebleed/util/rng.hpp"

namespace amperebleed::fpga {

struct RingOscillatorConfig {
  /// Free-running frequency at the reference voltage.
  double base_frequency_mhz = 425.0;
  /// Fractional frequency change per volt of supply change (first-order
  /// delay/voltage model): f = f0 * (1 + kv * (V - Vref)).
  double voltage_sensitivity_per_volt = 3.1;
  double v_reference = 0.850;
  /// Counter sampling window (the paper's baseline samples at ~2 MHz; a
  /// 16 us window models counter accumulation between reads at ~62.5 kHz —
  /// slower reads accumulate more counts and partially average jitter).
  sim::TimeNs sample_window = sim::microseconds(16);
  /// 1-sigma cycle jitter per window, in counts, per chain.
  double jitter_counts = 2.0;
  /// Slow thermal drift of the RO frequency (counts, stationary sigma) —
  /// ROs are notoriously temperature-sensitive; this wander is what keeps
  /// the Fig 2 RO correlation at ~-0.996 instead of exactly -1.
  double thermal_drift_counts = 0.7;
  double thermal_drift_rate_hz = 0.05;
  /// Number of RO chains distributed across the board; readings are the
  /// mean of all chains (averages out placement-dependent effects).
  std::size_t chain_count = 32;
  /// Fabric footprint per chain (loop LUTs + counter FFs).
  std::size_t luts_per_chain = 13;
  std::size_t flip_flops_per_chain = 32;
};

/// A distributed bank of RO sensors sampled synchronously.
class RingOscillatorBank {
 public:
  RingOscillatorBank(RingOscillatorConfig config, std::uint64_t seed);

  [[nodiscard]] CircuitDescriptor descriptor() const;

  /// Mean over chains of the integer counter increment observed in
  /// [t, t + sample_window), given the FPGA rail voltage waveform.
  double sample(const sim::PiecewiseConstant& fpga_voltage, sim::TimeNs t);

  /// Deterministic expected (noise- and quantization-free) count for a
  /// constant voltage — exposed for calibration and tests.
  [[nodiscard]] double expected_count(double voltage) const;

  [[nodiscard]] const RingOscillatorConfig& config() const { return config_; }

 private:
  RingOscillatorConfig config_;
  util::Rng rng_;
  sim::OrnsteinUhlenbeck thermal_drift_;
  sim::TimeNs last_sample_time_{0};
};

}  // namespace amperebleed::fpga
