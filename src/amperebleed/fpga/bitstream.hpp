#pragma once
// Bitstream abstraction: a set of circuits configured onto the fabric in one
// programming operation. Mirrors the paper's deployment flow — the victim
// has full control of the FPGA and programs one bitstream containing its
// circuits; the RSA bitstream is encrypted (IEEE 1735) with the key embedded.

#include <string>
#include <vector>

#include "amperebleed/fpga/fabric.hpp"

namespace amperebleed::fpga {

class Bitstream {
 public:
  explicit Bitstream(std::string name) : name_(std::move(name)) {}

  /// Add a circuit to the bitstream (build time). Throws on duplicate name.
  void add(CircuitDescriptor circuit);

  /// Program every circuit onto the fabric atomically: either all circuits
  /// deploy or none do (resources are checked up front).
  void program(Fabric& fabric) const;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<CircuitDescriptor>& circuits() const {
    return circuits_;
  }
  [[nodiscard]] FabricResources total_usage() const;
  /// True when any contained circuit is IEEE-1735 encrypted.
  [[nodiscard]] bool contains_encrypted_ip() const;

 private:
  std::string name_;
  std::vector<CircuitDescriptor> circuits_;
};

}  // namespace amperebleed::fpga
