#include "amperebleed/fpga/fabric.hpp"

#include <algorithm>
#include <stdexcept>

namespace amperebleed::fpga {

FabricResources zcu102_resources() {
  return FabricResources{
      .luts = 274'080,
      .flip_flops = 548'160,
      .dsp_slices = 2'520,
      .bram_blocks = 912,
  };
}

Fabric::Fabric(FabricConfig config) : config_(config) {
  if (config_.clock_mhz <= 0.0) {
    throw std::invalid_argument("Fabric: clock must be > 0");
  }
}

FabricResources Fabric::used() const {
  FabricResources total;
  for (const auto& c : circuits_) total = total + c.usage;
  return total;
}

FabricResources Fabric::available() const {
  const FabricResources u = used();
  return FabricResources{
      config_.resources.luts - u.luts,
      config_.resources.flip_flops - u.flip_flops,
      config_.resources.dsp_slices - u.dsp_slices,
      config_.resources.bram_blocks - u.bram_blocks,
  };
}

void Fabric::deploy(const CircuitDescriptor& circuit) {
  if (is_deployed(circuit.name)) {
    throw std::runtime_error("Fabric::deploy: duplicate circuit name '" +
                             circuit.name + "'");
  }
  const FabricResources after = used() + circuit.usage;
  if (!config_.resources.fits(after)) {
    throw std::runtime_error("Fabric::deploy: insufficient resources for '" +
                             circuit.name + "'");
  }
  circuits_.push_back(circuit);
}

void Fabric::remove(const std::string& name) {
  const auto it =
      std::find_if(circuits_.begin(), circuits_.end(),
                   [&](const CircuitDescriptor& c) { return c.name == name; });
  if (it == circuits_.end()) {
    throw std::runtime_error("Fabric::remove: unknown circuit '" + name + "'");
  }
  circuits_.erase(it);
}

bool Fabric::is_deployed(const std::string& name) const {
  return std::any_of(circuits_.begin(), circuits_.end(),
                     [&](const CircuitDescriptor& c) { return c.name == name; });
}

}  // namespace amperebleed::fpga
