#include "amperebleed/fpga/bitstream.hpp"

#include <algorithm>
#include <stdexcept>

namespace amperebleed::fpga {

void Bitstream::add(CircuitDescriptor circuit) {
  const bool duplicate = std::any_of(
      circuits_.begin(), circuits_.end(),
      [&](const CircuitDescriptor& c) { return c.name == circuit.name; });
  if (duplicate) {
    throw std::runtime_error("Bitstream::add: duplicate circuit '" +
                             circuit.name + "'");
  }
  circuits_.push_back(std::move(circuit));
}

void Bitstream::program(Fabric& fabric) const {
  // Validate the whole set before touching the fabric so programming is
  // atomic.
  FabricResources needed = fabric.used() + total_usage();
  if (!fabric.config().resources.fits(needed)) {
    throw std::runtime_error("Bitstream::program: '" + name_ +
                             "' does not fit the device");
  }
  for (const auto& c : circuits_) {
    if (fabric.is_deployed(c.name)) {
      throw std::runtime_error("Bitstream::program: circuit '" + c.name +
                               "' already deployed");
    }
  }
  for (const auto& c : circuits_) fabric.deploy(c);
}

FabricResources Bitstream::total_usage() const {
  FabricResources total;
  for (const auto& c : circuits_) total = total + c.usage;
  return total;
}

bool Bitstream::contains_encrypted_ip() const {
  return std::any_of(circuits_.begin(), circuits_.end(),
                     [](const CircuitDescriptor& c) { return c.encrypted; });
}

}  // namespace amperebleed::fpga
