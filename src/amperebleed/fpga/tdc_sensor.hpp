#pragma once
// Time-to-digital converter (TDC) voltage sensor — the other family of
// crafted sensing circuits in the related work (Schellenberg et al.'s
// delay-line sensors, RDS). A launch signal races down a carry chain for
// one clock cycle; the number of taps it traverses measures propagation
// delay and hence supply voltage. Compared to an RO counter it has much
// finer temporal resolution (one sample per readout clock) but the same
// fundamental dependence on PDN voltage — so the stabilizer kills it the
// same way (see ablation_stabilizer).

#include <cstdint>

#include "amperebleed/fpga/fabric.hpp"
#include "amperebleed/sim/signal.hpp"
#include "amperebleed/sim/time.hpp"
#include "amperebleed/util/rng.hpp"

namespace amperebleed::fpga {

struct TdcConfig {
  /// Carry-chain length in taps.
  std::size_t taps = 128;
  /// Taps traversed during one clock period at the reference voltage
  /// (calibrated to mid-chain for maximum swing).
  double nominal_taps = 64.0;
  /// Sensitivity: taps gained per volt of supply increase (delay falls as
  /// voltage rises).
  double taps_per_volt = 220.0;
  double v_reference = 0.850;
  /// 1-sigma sampling jitter in taps.
  double jitter_taps = 0.8;
  /// Fabric footprint (carry chain + capture FFs + encoder).
  std::size_t luts = 96;
  std::size_t flip_flops = 160;
};

class TdcSensor {
 public:
  TdcSensor(TdcConfig config, std::uint64_t seed);

  [[nodiscard]] CircuitDescriptor descriptor() const;

  /// Noise-free expected tap reading at a constant voltage (clamped to the
  /// chain's [0, taps] range).
  [[nodiscard]] double expected_taps(double voltage) const;

  /// One readout: integer tap count captured at instant t (the launch pulse
  /// samples the voltage over ~one fabric clock cycle — effectively
  /// instantaneous next to PDN time constants).
  double sample(const sim::PiecewiseConstant& fpga_voltage, sim::TimeNs t);

  [[nodiscard]] const TdcConfig& config() const { return config_; }

 private:
  TdcConfig config_;
  util::Rng rng_;
};

}  // namespace amperebleed::fpga
