#include "amperebleed/fpga/ring_oscillator.hpp"

#include <cmath>
#include <stdexcept>

namespace amperebleed::fpga {

RingOscillatorBank::RingOscillatorBank(RingOscillatorConfig config,
                                       std::uint64_t seed)
    : config_(config),
      rng_(seed),
      thermal_drift_(
          0.0, config.thermal_drift_rate_hz <= 0.0 ? 1.0 : config.thermal_drift_rate_hz,
          config.thermal_drift_counts *
              std::sqrt(2.0 * (config.thermal_drift_rate_hz <= 0.0
                                   ? 1.0
                                   : config.thermal_drift_rate_hz)),
          util::hash_combine(seed, 0x7e)) {
  if (config_.base_frequency_mhz <= 0.0) {
    throw std::invalid_argument("RingOscillatorBank: base frequency <= 0");
  }
  if (config_.sample_window.ns <= 0) {
    throw std::invalid_argument("RingOscillatorBank: sample window <= 0");
  }
  if (config_.chain_count == 0) {
    throw std::invalid_argument("RingOscillatorBank: chain_count == 0");
  }
}

CircuitDescriptor RingOscillatorBank::descriptor() const {
  return CircuitDescriptor{
      .name = "ring_oscillator_bank",
      .usage =
          FabricResources{
              .luts = config_.chain_count * config_.luts_per_chain,
              .flip_flops =
                  config_.chain_count * config_.flip_flops_per_chain,
              .dsp_slices = 0,
              .bram_blocks = 0,
          },
      .encrypted = false,
  };
}

double RingOscillatorBank::expected_count(double voltage) const {
  const double f_hz = config_.base_frequency_mhz * 1e6 *
                      (1.0 + config_.voltage_sensitivity_per_volt *
                                 (voltage - config_.v_reference));
  return f_hz * config_.sample_window.seconds();
}

double RingOscillatorBank::sample(const sim::PiecewiseConstant& fpga_voltage,
                                  sim::TimeNs t) {
  // The oscillation count integrates frequency over the window; with the
  // first-order linear f(V) model that equals expected_count(mean voltage).
  const double v_mean = fpga_voltage.mean(t, t + config_.sample_window);
  // Advance the shared thermal wander by the elapsed time since the last
  // sample (all chains on one die drift together).
  const sim::TimeNs dt{t >= last_sample_time_
                           ? (t - last_sample_time_).ns
                           : (last_sample_time_ - t).ns};
  last_sample_time_ = t;
  const double drift = thermal_drift_.step(dt);
  const double ideal = expected_count(v_mean) + drift;
  double sum = 0.0;
  for (std::size_t chain = 0; chain < config_.chain_count; ++chain) {
    const double noisy = ideal + rng_.gaussian(0.0, config_.jitter_counts);
    sum += std::round(noisy);  // each chain's counter is an integer
  }
  return sum / static_cast<double>(config_.chain_count);
}

}  // namespace amperebleed::fpga
