#include "amperebleed/core/preprocess.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "amperebleed/core/trace.hpp"
#include "amperebleed/obs/obs.hpp"
#include "amperebleed/obs/quality.hpp"
#include "amperebleed/util/simd_kernels.hpp"

namespace amperebleed::core {

std::string_view gap_policy_name(GapPolicy p) {
  static_assert(kGapPolicyCount == 3,
                "new GapPolicy: add a case below and extend kAllGapPolicies");
  switch (p) {
    case GapPolicy::HoldLast:
      return "hold-last";
    case GapPolicy::LinearInterpolate:
      return "linear-interpolate";
    case GapPolicy::Drop:
      return "drop";
  }
  return "unknown";
}

std::optional<GapPolicy> gap_policy_from_name(std::string_view name) {
  for (GapPolicy p : kAllGapPolicies) {
    if (gap_policy_name(p) == name) return p;
  }
  return std::nullopt;
}

std::vector<double> fill_gaps(std::span<const double> values,
                              std::span<const std::uint8_t> validity,
                              GapPolicy policy) {
  if (validity.empty()) return {values.begin(), values.end()};
  if (validity.size() != values.size()) {
    throw std::invalid_argument("fill_gaps: validity/values length mismatch");
  }
  if (obs::quality_enabled()) {
    const auto filled = static_cast<std::size_t>(
        std::count(validity.begin(), validity.end(), std::uint8_t{0}));
    if (filled > 0) {
      obs::quality_hub().data_quality().note_gap_fill(filled);
      obs::count("quality.preprocess.gaps_filled",
                 static_cast<std::uint64_t>(filled));
    }
  }

  if (policy == GapPolicy::Drop) {
    std::vector<double> out;
    out.reserve(values.size());
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (validity[i] != 0) out.push_back(values[i]);
    }
    return out;
  }

  std::vector<double> out(values.begin(), values.end());
  // First valid index, for leading-gap backfill; npos when fully invalid.
  std::size_t first_valid = values.size();
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (validity[i] != 0) {
      first_valid = i;
      break;
    }
  }
  if (first_valid == values.size()) {
    // Nothing real to reconstruct from: zeros (the push_gap placeholder).
    std::fill(out.begin(), out.end(), 0.0);
    return out;
  }

  if (policy == GapPolicy::HoldLast) {
    for (std::size_t i = 0; i < first_valid; ++i) out[i] = out[first_valid];
    // Branchless forward fill: a pair of selects (cmov) instead of a
    // data-dependent branch per sample — same values, no mispredicts on
    // random gap patterns.
    double last = out[first_valid];
    for (std::size_t i = first_valid; i < out.size(); ++i) {
      const double v = out[i];
      last = validity[i] != 0 ? v : last;
      out[i] = last;
    }
    return out;
  }

  // LinearInterpolate: for every maximal run of gaps, connect the valid
  // neighbours with a straight line; edge runs clamp to the nearest valid.
  for (std::size_t i = 0; i < first_valid; ++i) out[i] = out[first_valid];
  std::size_t prev_valid = first_valid;
  std::size_t i = first_valid + 1;
  while (i < out.size()) {
    if (validity[i] != 0) {
      prev_valid = i;
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < out.size() && validity[j] == 0) ++j;
    if (j == out.size()) {
      // Trailing run: clamp to the last valid sample.
      for (std::size_t k = i; k < j; ++k) out[k] = out[prev_valid];
    } else {
      const double lo = out[prev_valid];
      const double hi = out[j];
      const double span_len = static_cast<double>(j - prev_valid);
      for (std::size_t k = i; k < j; ++k) {
        const double frac = static_cast<double>(k - prev_valid) / span_len;
        out[k] = lo * (1.0 - frac) + hi * frac;
      }
    }
    i = j;
  }
  return out;
}

std::vector<double> fill_gaps(const Trace& trace, GapPolicy policy) {
  // Gapless fast path: no validity mask was ever materialized, so skip the
  // policy dispatch / quality bookkeeping entirely and copy the samples
  // straight out.
  const auto values = trace.values();
  if (trace.validity().empty()) return {values.begin(), values.end()};
  return fill_gaps(values, trace.validity(), policy);
}

void detrend(std::vector<double>& xs) {
  if (xs.size() < 2) return;
  // Inline least-squares fit against t[i] = i, accumulated in exactly the
  // order stats::linear_fit uses — same slope/intercept bits — without
  // materializing the iota vector or paying linear_fit's r^2 pass.
  const auto n = static_cast<double>(xs.size());
  double mx = 0.0;
  double my = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    mx += static_cast<double>(i);
    my += xs[i];
  }
  mx /= n;
  my /= n;
  double sxy = 0.0;
  double sxx = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = static_cast<double>(i) - mx;
    const double dy = xs[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
  }
  double slope = 0.0;
  double intercept = my;
  if (sxx != 0.0) {
    slope = sxy / sxx;
    intercept = my - slope * mx;
  }
  util::simd::remove_trend(xs.data(), xs.size(), slope, intercept);
}

std::vector<double> resample(std::span<const double> xs,
                             std::size_t target_len) {
  if (xs.empty()) throw std::invalid_argument("resample: empty input");
  if (target_len == 0) throw std::invalid_argument("resample: zero target");
  std::vector<double> out(target_len);
  if (xs.size() == 1 || target_len == 1) {
    std::fill(out.begin(), out.end(), xs[0]);
    return out;
  }
  const double scale = static_cast<double>(xs.size() - 1) /
                       static_cast<double>(target_len - 1);
  for (std::size_t i = 0; i < target_len; ++i) {
    const double pos = static_cast<double>(i) * scale;
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, xs.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    out[i] = xs[lo] * (1.0 - frac) + xs[hi] * frac;
  }
  return out;
}

std::vector<double> deduplicate_runs(std::span<const double> xs) {
  std::vector<double> out;
  out.reserve(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i == 0 || xs[i] != xs[i - 1]) out.push_back(xs[i]);
  }
  return out;
}

int best_alignment_shift(std::span<const double> reference,
                         std::span<const double> probe,
                         std::size_t max_shift) {
  if (reference.size() < 4 || probe.size() < 4) return 0;
  const auto overlap_corr = [&](int lag) -> double {
    // Overlap of probe[i] with reference[i - lag]: a positive result means
    // the probe is the reference delayed by `lag` samples, i.e.
    // shift(reference, lag) ~ probe. The overlap is a contiguous index
    // range, so the Pearson accumulation runs straight over both spans —
    // same pairs in the same order as extracting them into temporaries and
    // calling stats::pearson, with zero allocations and vectorizable loops.
    const std::int64_t i0 = std::max<std::int64_t>(0, lag);
    const std::int64_t i1 =
        std::min<std::int64_t>(static_cast<std::int64_t>(probe.size()),
                               static_cast<std::int64_t>(reference.size()) + lag);
    if (i1 - i0 < 4) return -2.0;
    const auto n = static_cast<double>(i1 - i0);
    double mx = 0.0;
    double my = 0.0;
    for (std::int64_t i = i0; i < i1; ++i) {
      mx += reference[static_cast<std::size_t>(i - lag)];
      my += probe[static_cast<std::size_t>(i)];
    }
    mx /= n;
    my /= n;
    double sxy = 0.0;
    double sxx = 0.0;
    double syy = 0.0;
    for (std::int64_t i = i0; i < i1; ++i) {
      const double dx = reference[static_cast<std::size_t>(i - lag)] - mx;
      const double dy = probe[static_cast<std::size_t>(i)] - my;
      sxy += dx * dy;
      sxx += dx * dx;
      syy += dy * dy;
    }
    if (sxx == 0.0 || syy == 0.0) return 0.0;
    return sxy / std::sqrt(sxx * syy);
  };
  int best_lag = 0;
  double best = overlap_corr(0);
  for (int lag = 1; lag <= static_cast<int>(max_shift); ++lag) {
    for (int signed_lag : {lag, -lag}) {
      const double r = overlap_corr(signed_lag);
      if (r > best) {
        best = r;
        best_lag = signed_lag;
      }
    }
  }
  return best_lag;
}

std::vector<double> shift(std::span<const double> xs, int lag) {
  std::vector<double> out(xs.size());
  if (xs.empty()) return out;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const std::int64_t j = static_cast<std::int64_t>(i) - lag;
    const std::int64_t clamped = std::clamp<std::int64_t>(
        j, 0, static_cast<std::int64_t>(xs.size()) - 1);
    out[i] = xs[static_cast<std::size_t>(clamped)];
  }
  return out;
}

std::vector<double> sliding_mean(std::span<const double> xs,
                                 std::size_t window, std::size_t stride) {
  if (window == 0 || stride == 0) {
    throw std::invalid_argument("sliding_mean: window/stride must be >= 1");
  }
  if (window > xs.size()) return {};
  // O(n) rolling sum: roll the window by subtracting the samples that leave
  // and adding the ones that enter (stride-length folds) instead of
  // re-summing all `window` samples per output. To keep rounding error from
  // accumulating, re-anchor with a fresh full fold once per window's worth
  // of outputs — on inputs whose partial sums are exactly representable
  // (integer-grained hwmon counts, dyadic constants, denormals) every output
  // is bit-identical to the naive fold, which the regression test in
  // tests/core/preprocess_simd_test.cpp asserts.
  const std::size_t count = (xs.size() - window) / stride + 1;
  std::vector<double> out;
  out.reserve(count);
  const std::size_t refresh = (window + stride - 1) / stride;
  double sum = 0.0;
  for (std::size_t o = 0; o < count; ++o) {
    const std::size_t start = o * stride;
    if (o % refresh == 0) {
      sum = 0.0;
      for (std::size_t i = 0; i < window; ++i) sum += xs[start + i];
    } else {
      double leave = 0.0;
      double enter = 0.0;
      for (std::size_t i = 0; i < stride; ++i) {
        leave += xs[start - stride + i];
        enter += xs[start + window - stride + i];
      }
      sum = (sum - leave) + enter;
    }
    out.push_back(sum / static_cast<double>(window));
  }
  return out;
}

}  // namespace amperebleed::core
