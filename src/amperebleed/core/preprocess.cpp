#include "amperebleed/core/preprocess.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "amperebleed/core/trace.hpp"
#include "amperebleed/obs/obs.hpp"
#include "amperebleed/obs/quality.hpp"
#include "amperebleed/stats/correlation.hpp"
#include "amperebleed/stats/regression.hpp"

namespace amperebleed::core {

std::string_view gap_policy_name(GapPolicy p) {
  static_assert(kGapPolicyCount == 3,
                "new GapPolicy: add a case below and extend kAllGapPolicies");
  switch (p) {
    case GapPolicy::HoldLast:
      return "hold-last";
    case GapPolicy::LinearInterpolate:
      return "linear-interpolate";
    case GapPolicy::Drop:
      return "drop";
  }
  return "unknown";
}

std::optional<GapPolicy> gap_policy_from_name(std::string_view name) {
  for (GapPolicy p : kAllGapPolicies) {
    if (gap_policy_name(p) == name) return p;
  }
  return std::nullopt;
}

std::vector<double> fill_gaps(std::span<const double> values,
                              std::span<const std::uint8_t> validity,
                              GapPolicy policy) {
  if (validity.empty()) return {values.begin(), values.end()};
  if (validity.size() != values.size()) {
    throw std::invalid_argument("fill_gaps: validity/values length mismatch");
  }
  if (obs::quality_enabled()) {
    const auto filled = static_cast<std::size_t>(
        std::count(validity.begin(), validity.end(), std::uint8_t{0}));
    if (filled > 0) {
      obs::quality_hub().data_quality().note_gap_fill(filled);
      obs::count("quality.preprocess.gaps_filled",
                 static_cast<std::uint64_t>(filled));
    }
  }

  if (policy == GapPolicy::Drop) {
    std::vector<double> out;
    out.reserve(values.size());
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (validity[i] != 0) out.push_back(values[i]);
    }
    return out;
  }

  std::vector<double> out(values.begin(), values.end());
  // First valid index, for leading-gap backfill; npos when fully invalid.
  std::size_t first_valid = values.size();
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (validity[i] != 0) {
      first_valid = i;
      break;
    }
  }
  if (first_valid == values.size()) {
    // Nothing real to reconstruct from: zeros (the push_gap placeholder).
    std::fill(out.begin(), out.end(), 0.0);
    return out;
  }

  if (policy == GapPolicy::HoldLast) {
    for (std::size_t i = 0; i < first_valid; ++i) out[i] = out[first_valid];
    double last = out[first_valid];
    for (std::size_t i = first_valid; i < out.size(); ++i) {
      if (validity[i] != 0) {
        last = out[i];
      } else {
        out[i] = last;
      }
    }
    return out;
  }

  // LinearInterpolate: for every maximal run of gaps, connect the valid
  // neighbours with a straight line; edge runs clamp to the nearest valid.
  for (std::size_t i = 0; i < first_valid; ++i) out[i] = out[first_valid];
  std::size_t prev_valid = first_valid;
  std::size_t i = first_valid + 1;
  while (i < out.size()) {
    if (validity[i] != 0) {
      prev_valid = i;
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < out.size() && validity[j] == 0) ++j;
    if (j == out.size()) {
      // Trailing run: clamp to the last valid sample.
      for (std::size_t k = i; k < j; ++k) out[k] = out[prev_valid];
    } else {
      const double lo = out[prev_valid];
      const double hi = out[j];
      const double span_len = static_cast<double>(j - prev_valid);
      for (std::size_t k = i; k < j; ++k) {
        const double frac = static_cast<double>(k - prev_valid) / span_len;
        out[k] = lo * (1.0 - frac) + hi * frac;
      }
    }
    i = j;
  }
  return out;
}

std::vector<double> fill_gaps(const Trace& trace, GapPolicy policy) {
  return fill_gaps(trace.values(), trace.validity(), policy);
}

void detrend(std::vector<double>& xs) {
  if (xs.size() < 2) return;
  std::vector<double> t(xs.size());
  std::iota(t.begin(), t.end(), 0.0);
  const stats::LinearFit fit = stats::linear_fit(t, xs);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] -= fit.slope * static_cast<double>(i) + fit.intercept;
  }
}

std::vector<double> resample(std::span<const double> xs,
                             std::size_t target_len) {
  if (xs.empty()) throw std::invalid_argument("resample: empty input");
  if (target_len == 0) throw std::invalid_argument("resample: zero target");
  std::vector<double> out(target_len);
  if (xs.size() == 1 || target_len == 1) {
    std::fill(out.begin(), out.end(), xs[0]);
    return out;
  }
  const double scale = static_cast<double>(xs.size() - 1) /
                       static_cast<double>(target_len - 1);
  for (std::size_t i = 0; i < target_len; ++i) {
    const double pos = static_cast<double>(i) * scale;
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, xs.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    out[i] = xs[lo] * (1.0 - frac) + xs[hi] * frac;
  }
  return out;
}

std::vector<double> deduplicate_runs(std::span<const double> xs) {
  std::vector<double> out;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i == 0 || xs[i] != xs[i - 1]) out.push_back(xs[i]);
  }
  return out;
}

int best_alignment_shift(std::span<const double> reference,
                         std::span<const double> probe,
                         std::size_t max_shift) {
  if (reference.size() < 4 || probe.size() < 4) return 0;
  const auto overlap_corr = [&](int lag) -> double {
    // Overlap of probe[i] with reference[i - lag]: a positive result means
    // the probe is the reference delayed by `lag` samples, i.e.
    // shift(reference, lag) ~ probe.
    std::vector<double> a;
    std::vector<double> b;
    for (std::size_t i = 0; i < probe.size(); ++i) {
      const std::int64_t j = static_cast<std::int64_t>(i) - lag;
      if (j < 0 || j >= static_cast<std::int64_t>(reference.size())) continue;
      a.push_back(reference[static_cast<std::size_t>(j)]);
      b.push_back(probe[i]);
    }
    if (a.size() < 4) return -2.0;
    return stats::pearson(a, b);
  };
  int best_lag = 0;
  double best = overlap_corr(0);
  for (int lag = 1; lag <= static_cast<int>(max_shift); ++lag) {
    for (int signed_lag : {lag, -lag}) {
      const double r = overlap_corr(signed_lag);
      if (r > best) {
        best = r;
        best_lag = signed_lag;
      }
    }
  }
  return best_lag;
}

std::vector<double> shift(std::span<const double> xs, int lag) {
  std::vector<double> out(xs.size());
  if (xs.empty()) return out;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const std::int64_t j = static_cast<std::int64_t>(i) - lag;
    const std::int64_t clamped = std::clamp<std::int64_t>(
        j, 0, static_cast<std::int64_t>(xs.size()) - 1);
    out[i] = xs[static_cast<std::size_t>(clamped)];
  }
  return out;
}

std::vector<double> sliding_mean(std::span<const double> xs,
                                 std::size_t window, std::size_t stride) {
  if (window == 0 || stride == 0) {
    throw std::invalid_argument("sliding_mean: window/stride must be >= 1");
  }
  std::vector<double> out;
  for (std::size_t start = 0; start + window <= xs.size(); start += stride) {
    double sum = 0.0;
    for (std::size_t i = 0; i < window; ++i) sum += xs[start + i];
    out.push_back(sum / static_cast<double>(window));
  }
  return out;
}

}  // namespace amperebleed::core
