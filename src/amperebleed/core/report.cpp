#include "amperebleed/core/report.hpp"

#include <algorithm>
#include <stdexcept>

#include "amperebleed/util/strings.hpp"

namespace amperebleed::core {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("TextTable: need at least one column");
  }
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TextTable::add_row: column count mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += " " + row[c] + std::string(widths[c] - row[c].size(), ' ') + " |";
    }
    return line + "\n";
  };

  std::string sep = "+";
  for (std::size_t w : widths) sep += std::string(w + 2, '-') + "+";
  sep += "\n";

  std::string out = sep + render_row(headers_) + sep;
  for (const auto& row : rows_) out += render_row(row);
  out += sep;
  return out;
}

std::string fmt(double value, int decimals) {
  return util::format("%.*f", decimals, value);
}

}  // namespace amperebleed::core
