#pragma once
// Covert channel over the INA226 current sensor: a circuit on the FPGA (the
// sender, e.g. malicious IP inside an encrypted bitstream) modulates its
// power draw; an unprivileged CPU process (the receiver) demodulates it from
// /sys/class/hwmon current readings. This is the constructive twin of the
// eavesdropping attack and shows the channel's bandwidth is bounded by the
// sensor's 35 ms conversion interval, not by the fabric.
//
// Modulation: on-off keying with a calibration preamble (alternating 1/0)
// that the receiver uses to derive its decision threshold.

#include <cstdint>
#include <string>
#include <vector>

#include "amperebleed/core/trace.hpp"
#include "amperebleed/fpga/power_virus.hpp"
#include "amperebleed/sim/time.hpp"

namespace amperebleed::core {

struct CovertChannelConfig {
  /// One bit per period; needs >= 3 sensor conversions (~105 ms at the
  /// 35 ms default) for reliable decoding — the register lags by one full
  /// conversion interval.
  sim::TimeNs bit_period = sim::milliseconds(105);
  /// Power-virus groups activated for a '1' (0 groups encode '0').
  std::size_t groups_high = 80;
  /// Alternating 1,0,1,0,... calibration prefix.
  std::size_t preamble_bits = 8;

  [[nodiscard]] double raw_bits_per_second() const {
    return 1.0 / bit_period.seconds();
  }
};

/// Bit/byte packing helpers (MSB-first).
std::vector<bool> bytes_to_bits(const std::string& payload);
std::string bits_to_bytes(const std::vector<bool>& bits);

/// The sender: compile preamble + payload bits into a power-virus
/// activation schedule starting at `start`. The returned virus carries the
/// whole transmission; deploy it and add its activity to the SoC.
fpga::PowerVirus encode_transmission(const CovertChannelConfig& config,
                                     const std::vector<bool>& payload,
                                     sim::TimeNs start);

/// Total transmission span (preamble + payload).
sim::TimeNs transmission_duration(const CovertChannelConfig& config,
                                  std::size_t payload_bits);

struct DecodeResult {
  std::vector<bool> bits;       // decoded payload (preamble consumed)
  double threshold_ma = 0.0;    // decision threshold from the preamble
  double high_level_ma = 0.0;   // preamble '1' mean
  double low_level_ma = 0.0;    // preamble '0' mean
};

/// The receiver: demodulate `payload_bits` bits from a current trace that
/// covers the transmission. `tx_start` is the sender's start time (found in
/// practice by preamble correlation; passed explicitly here). The trace must
/// span the whole transmission; throws otherwise.
DecodeResult decode_transmission(const CovertChannelConfig& config,
                                 const Trace& trace, sim::TimeNs tx_start,
                                 std::size_t payload_bits);

/// Fraction of differing bits (compared up to the shorter length; length
/// mismatch counts as errors).
double bit_error_rate(const std::vector<bool>& sent,
                      const std::vector<bool>& received);

}  // namespace amperebleed::core
