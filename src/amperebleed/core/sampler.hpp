#pragma once
// The attacker: an unprivileged user-space process that polls hwmon text
// attributes at a fixed cadence. Everything it learns goes through
// VirtualFs::read() with privileged=false — the same permission gate a real
// /sys tree enforces — so the mitigation policy genuinely stops it.

#include <optional>
#include <stdexcept>
#include <vector>

#include "amperebleed/core/trace.hpp"
#include "amperebleed/soc/soc.hpp"

namespace amperebleed::core {

/// Raised when a hwmon read fails (e.g. the mitigation policy is active and
/// the sampler is unprivileged).
class SamplingError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct SamplerConfig {
  /// Polling period. The paper uses the default 35 ms conversion cadence for
  /// characterization/fingerprinting and 1 kHz polling for the RSA attack
  /// (reads between conversions return the latest completed registers).
  sim::TimeNs period = sim::milliseconds(35);
  std::size_t sample_count = 100;
  /// Unprivileged by assumption; set true only for root-tooling scenarios.
  bool privileged = false;
};

class Sampler {
 public:
  /// The SoC must be finalized.
  explicit Sampler(soc::Soc& soc);

  /// Read one channel once at the SoC's current time. Throws SamplingError
  /// on permission failure; throws std::runtime_error on malformed data.
  [[nodiscard]] double read_now(const Channel& channel, bool privileged = false);

  /// Poll one channel `sample_count` times starting at `start` (the SoC
  /// clock is advanced to each sample instant).
  [[nodiscard]] Trace collect(const Channel& channel, sim::TimeNs start,
                              const SamplerConfig& config);

  /// Poll several channels in lock-step (one pass over time, all channels
  /// read at each instant) — how the multi-sensor fingerprinting traces are
  /// gathered. Returns one trace per requested channel, in order.
  [[nodiscard]] std::vector<Trace> collect_multi(
      const std::vector<Channel>& channels, sim::TimeNs start,
      const SamplerConfig& config);

 private:
  soc::Soc& soc_;
};

}  // namespace amperebleed::core
