#pragma once
// The attacker: an unprivileged user-space process that polls hwmon text
// attributes at a fixed cadence. Everything it learns goes through
// VirtualFs::read() with the sampler's principal — the same permission gate
// a real /sys tree enforces — so the mitigation policy genuinely stops it.
//
// Privilege lives in exactly one place: the Principal the Sampler is
// constructed with. Single reads (read_now) and trace collection (collect /
// collect_multi) share the same identity, and both paths land identically in
// the obs access-audit log under that principal's name.

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "amperebleed/core/resilience.hpp"
#include "amperebleed/core/trace.hpp"
#include "amperebleed/hwmon/vfs.hpp"
#include "amperebleed/soc/soc.hpp"

namespace amperebleed::core {

/// Raised when a hwmon read fails (e.g. the mitigation policy is active and
/// the sampler is unprivileged).
class SamplingError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A SamplingError carrying acquisition context: which channel failed, the
/// hwmon path involved, and how many attempts the retry policy spent before
/// giving up (1 in strict mode — no retries ever fire there).
class DetailedSamplingError : public SamplingError {
 public:
  DetailedSamplingError(const std::string& what, Channel channel,
                        std::string path, std::size_t attempts)
      : SamplingError(what),
        channel_(channel),
        path_(std::move(path)),
        attempts_(attempts) {}

  [[nodiscard]] const Channel& channel() const { return channel_; }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::size_t attempts() const { return attempts_; }

 private:
  Channel channel_;
  std::string path_;
  std::size_t attempts_;
};

/// The read kept surfacing EAGAIN (or the retry budget/deadline ran out on a
/// retryable failure) — the canonical "try later" error.
class TransientError : public DetailedSamplingError {
 public:
  using DetailedSamplingError::DetailedSamplingError;
};

/// The attribute text read fine but never parsed as a number (garbage or
/// torn text that stayed corrupt across every attempt).
class MalformedData : public DetailedSamplingError {
 public:
  using DetailedSamplingError::DetailedSamplingError;
};

/// The attribute vanished (ENOENT — driver rebind / hwmon renumbering) and
/// stayed gone for every attempt.
class ChannelGone : public DetailedSamplingError {
 public:
  using DetailedSamplingError::DetailedSamplingError;
};

/// Who is reading the sensors. The name labels audit-log records (so the
/// detection study can tell an attacker from a health daemon); the flag is
/// the uid-0 bit the permission gate checks.
struct Principal {
  std::string name = "attacker";
  bool privileged = false;

  /// Unprivileged identity (the paper's threat model).
  static Principal unprivileged(std::string name = "attacker") {
    return Principal{std::move(name), false};
  }
  /// uid-0 identity for root-tooling scenarios (fleet monitors, admins).
  static Principal root(std::string name = "root") {
    return Principal{std::move(name), true};
  }
};

struct SamplerConfig {
  /// Polling period. The paper uses the default 35 ms conversion cadence for
  /// characterization/fingerprinting and 1 kHz polling for the RSA attack
  /// (reads between conversions return the latest completed registers).
  sim::TimeNs period = sim::milliseconds(35);
  std::size_t sample_count = 100;
};

/// Resilience bookkeeping, all-zero on a clean run.
struct SamplerStats {
  std::uint64_t retries = 0;        // backoff-and-retry rounds taken
  std::uint64_t gap_samples = 0;    // samples recorded as gaps
  std::uint64_t fallback_substitutions = 0;
  std::uint64_t deadline_failures = 0;  // samples failed by a deadline cap
  std::uint64_t probes = 0;         // quarantine recovery probes attempted
  std::uint64_t failed_samples = 0;  // samples that exhausted every attempt
};

class Sampler {
 public:
  /// The SoC must be finalized. The principal fixes this sampler's identity
  /// and privilege for every read it ever performs.
  explicit Sampler(soc::Soc& soc, Principal principal = {});

  /// Movable so benches can keep Samplers in vectors. The stale-read cache
  /// contents transfer; the mutex itself is not moved (the new object owns a
  /// fresh one). Moving while another thread concurrently reads through the
  /// source object is not supported.
  Sampler(Sampler&& other) noexcept;
  Sampler& operator=(Sampler&&) = delete;  // soc_ is a reference
  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Read one channel once at the SoC's current time. Throws SamplingError
  /// on permission failure; throws std::runtime_error on malformed data.
  [[nodiscard]] double read_now(const Channel& channel);

  /// Poll one channel `sample_count` times starting at `start` (the SoC
  /// clock is advanced to each sample instant).
  [[nodiscard]] Trace collect(const Channel& channel, sim::TimeNs start,
                              const SamplerConfig& config);

  /// Poll several channels in lock-step (one pass over time, all channels
  /// read at each instant) — how the multi-sensor fingerprinting traces are
  /// gathered. Returns one trace per requested channel, in order.
  [[nodiscard]] std::vector<Trace> collect_multi(
      const std::vector<Channel>& channels, sim::TimeNs start,
      const SamplerConfig& config);

  [[nodiscard]] const Principal& principal() const { return principal_; }

  /// Install the resilience policy. Disabled (the default) keeps the strict
  /// legacy semantics above; enabled, read_now retries retryable failures
  /// with deterministic backoff (advancing the virtual clock), and
  /// collect/collect_multi additionally run the per-channel health state
  /// machine, substitute fallback reads, and record gaps instead of
  /// throwing. With a fault-free board an enabled policy is an exact no-op.
  void set_resilience(ResilienceConfig config) {
    resilience_ = std::move(config);
  }
  [[nodiscard]] const ResilienceConfig& resilience() const {
    return resilience_;
  }

  /// Current acquisition health of a channel (Healthy when never observed).
  [[nodiscard]] ChannelHealth health(const Channel& channel) const;
  /// Resilience bookkeeping so far (all-zero on clean runs / strict mode).
  [[nodiscard]] SamplerStats stats() const;

  /// Number of attribute paths currently held by the stale-read detector
  /// cache. Never exceeds kStaleCacheCap (the cache is flushed when it
  /// would), so a long-running sampler cannot grow without bound.
  [[nodiscard]] std::size_t stale_cache_size() const;

  /// Upper bound on cached last-raw attribute texts — comfortably above the
  /// number of hwmon attributes one SoC exposes, small enough that a
  /// long-running service's memory stays bounded.
  static constexpr std::size_t kStaleCacheCap = 64;

 private:
  /// One raw single-shot read, fully classified but never throwing: the
  /// strict path, the retry loop, fallback substitution and recovery probes
  /// all share it, so every read — resilient or not — emits identical
  /// metrics and audit records.
  struct RawRead {
    bool ok = false;
    bool malformed = false;  // text arrived but did not parse as a number
    double value = 0.0;
    hwmon::VfsStatus status = hwmon::VfsStatus::Ok;
    std::string path;
  };
  RawRead read_raw(const Channel& channel);

  /// Retry loop around read_raw per resilience_.retry. Backoff waits
  /// advance the virtual clock. `trace_backoff_left` (may be null) is the
  /// shared per-trace backoff budget; exhausting it fails the sample fast.
  /// Sets *attempts_out to the attempts consumed.
  RawRead read_with_retry(const Channel& channel,
                          sim::TimeNs* trace_backoff_left,
                          std::size_t* attempts_out);

  /// Throw the typed error matching a failed RawRead.
  [[noreturn]] void throw_for(const RawRead& r, const Channel& channel,
                              std::size_t attempts) const;

  /// One resilient sample of `channel` appended to `trace`: quarantine
  /// gate / recovery probe, retry loop, fallback substitution, gap record.
  void sample_resilient(const Channel& channel, Trace& trace,
                        sim::TimeNs* trace_backoff_left);

  /// Per-channel health bookkeeping (keyed by (rail, quantity)).
  struct HealthState {
    ChannelHealth state = ChannelHealth::Healthy;
    std::size_t consecutive_failures = 0;
    std::size_t skipped = 0;  // instants skipped while Quarantined
  };
  using HealthKey = std::pair<int, int>;
  static HealthKey health_key(const Channel& c) {
    return {static_cast<int>(c.rail), static_cast<int>(c.quantity)};
  }
  /// Advance the health machine after a resolved sample; publishes the new
  /// state as an obs gauge when it changed. Caller holds res_mu_.
  void note_sample_result_locked(const Channel& channel, bool ok);
  void publish_health(const Channel& channel, ChannelHealth h) const;
  /// The channel's health slot, created on first touch. First creation also
  /// publishes the initial (Healthy) gauge so /healthz sees every observed
  /// channel in its denominator, not just ones that transitioned. Caller
  /// holds res_mu_.
  HealthState& health_state_locked(const Channel& channel);

  soc::Soc& soc_;
  Principal principal_;
  ResilienceConfig resilience_{};
  /// Guards stats_ and health_ (the sampler may be shared by concurrent
  /// readers in the online-service case; the simulation substrate below
  /// still requires external synchronization for clock advances).
  mutable std::mutex res_mu_;
  SamplerStats stats_;
  std::map<HealthKey, HealthState> health_;
  /// Last raw attribute text per path — only maintained while obs metrics
  /// are enabled, to count stale-register reads (polls faster than the
  /// 35 ms conversion cadence return the previous conversion's registers).
  /// Guarded by stale_mu_ so a sampler shared by concurrent readers (the
  /// online-service case) stays safe, and bounded by kStaleCacheCap.
  /// (The simulation substrate underneath — Soc::advance_to and the sensor
  /// conversion clocks — still requires external synchronization when the
  /// virtual clock is advanced concurrently.)
  mutable std::mutex stale_mu_;
  std::map<std::string, std::string> last_raw_;
};

}  // namespace amperebleed::core
