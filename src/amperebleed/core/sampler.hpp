#pragma once
// The attacker: an unprivileged user-space process that polls hwmon text
// attributes at a fixed cadence. Everything it learns goes through
// VirtualFs::read() with the sampler's principal — the same permission gate
// a real /sys tree enforces — so the mitigation policy genuinely stops it.
//
// Privilege lives in exactly one place: the Principal the Sampler is
// constructed with. Single reads (read_now) and trace collection (collect /
// collect_multi) share the same identity, and both paths land identically in
// the obs access-audit log under that principal's name.

#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "amperebleed/core/trace.hpp"
#include "amperebleed/soc/soc.hpp"

namespace amperebleed::core {

/// Raised when a hwmon read fails (e.g. the mitigation policy is active and
/// the sampler is unprivileged).
class SamplingError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Who is reading the sensors. The name labels audit-log records (so the
/// detection study can tell an attacker from a health daemon); the flag is
/// the uid-0 bit the permission gate checks.
struct Principal {
  std::string name = "attacker";
  bool privileged = false;

  /// Unprivileged identity (the paper's threat model).
  static Principal unprivileged(std::string name = "attacker") {
    return Principal{std::move(name), false};
  }
  /// uid-0 identity for root-tooling scenarios (fleet monitors, admins).
  static Principal root(std::string name = "root") {
    return Principal{std::move(name), true};
  }
};

struct SamplerConfig {
  /// Polling period. The paper uses the default 35 ms conversion cadence for
  /// characterization/fingerprinting and 1 kHz polling for the RSA attack
  /// (reads between conversions return the latest completed registers).
  sim::TimeNs period = sim::milliseconds(35);
  std::size_t sample_count = 100;
};

class Sampler {
 public:
  /// The SoC must be finalized. The principal fixes this sampler's identity
  /// and privilege for every read it ever performs.
  explicit Sampler(soc::Soc& soc, Principal principal = {});

  /// Movable so benches can keep Samplers in vectors. The stale-read cache
  /// contents transfer; the mutex itself is not moved (the new object owns a
  /// fresh one). Moving while another thread concurrently reads through the
  /// source object is not supported.
  Sampler(Sampler&& other) noexcept;
  Sampler& operator=(Sampler&&) = delete;  // soc_ is a reference
  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Read one channel once at the SoC's current time. Throws SamplingError
  /// on permission failure; throws std::runtime_error on malformed data.
  [[nodiscard]] double read_now(const Channel& channel);

  /// Poll one channel `sample_count` times starting at `start` (the SoC
  /// clock is advanced to each sample instant).
  [[nodiscard]] Trace collect(const Channel& channel, sim::TimeNs start,
                              const SamplerConfig& config);

  /// Poll several channels in lock-step (one pass over time, all channels
  /// read at each instant) — how the multi-sensor fingerprinting traces are
  /// gathered. Returns one trace per requested channel, in order.
  [[nodiscard]] std::vector<Trace> collect_multi(
      const std::vector<Channel>& channels, sim::TimeNs start,
      const SamplerConfig& config);

  [[nodiscard]] const Principal& principal() const { return principal_; }

  /// Number of attribute paths currently held by the stale-read detector
  /// cache. Never exceeds kStaleCacheCap (the cache is flushed when it
  /// would), so a long-running sampler cannot grow without bound.
  [[nodiscard]] std::size_t stale_cache_size() const;

  /// Upper bound on cached last-raw attribute texts — comfortably above the
  /// number of hwmon attributes one SoC exposes, small enough that a
  /// long-running service's memory stays bounded.
  static constexpr std::size_t kStaleCacheCap = 64;

 private:
  soc::Soc& soc_;
  Principal principal_;
  /// Last raw attribute text per path — only maintained while obs metrics
  /// are enabled, to count stale-register reads (polls faster than the
  /// 35 ms conversion cadence return the previous conversion's registers).
  /// Guarded by stale_mu_ so a sampler shared by concurrent readers (the
  /// online-service case) stays safe, and bounded by kStaleCacheCap.
  /// (The simulation substrate underneath — Soc::advance_to and the sensor
  /// conversion clocks — still requires external synchronization when the
  /// virtual clock is advanced concurrently.)
  mutable std::mutex stale_mu_;
  std::map<std::string, std::string> last_raw_;
};

}  // namespace amperebleed::core
