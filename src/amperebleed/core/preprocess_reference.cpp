#include "amperebleed/core/preprocess_reference.hpp"

#include <algorithm>
#include <cstdint>
#include <numeric>

#include "amperebleed/stats/correlation.hpp"
#include "amperebleed/stats/descriptive.hpp"
#include "amperebleed/stats/regression.hpp"

namespace amperebleed::core::reference {

std::vector<double> sliding_mean(std::span<const double> xs,
                                 std::size_t window, std::size_t stride) {
  std::vector<double> out;
  for (std::size_t start = 0; start + window <= xs.size(); start += stride) {
    double sum = 0.0;
    for (std::size_t i = 0; i < window; ++i) sum += xs[start + i];
    out.push_back(sum / static_cast<double>(window));
  }
  return out;
}

int best_alignment_shift(std::span<const double> reference,
                         std::span<const double> probe,
                         std::size_t max_shift) {
  if (reference.size() < 4 || probe.size() < 4) return 0;
  const auto overlap_corr = [&](int lag) -> double {
    std::vector<double> a;
    std::vector<double> b;
    for (std::size_t i = 0; i < probe.size(); ++i) {
      const std::int64_t j = static_cast<std::int64_t>(i) - lag;
      if (j < 0 || j >= static_cast<std::int64_t>(reference.size())) continue;
      a.push_back(reference[static_cast<std::size_t>(j)]);
      b.push_back(probe[i]);
    }
    if (a.size() < 4) return -2.0;
    return stats::pearson(a, b);
  };
  int best_lag = 0;
  double best = overlap_corr(0);
  for (int lag = 1; lag <= static_cast<int>(max_shift); ++lag) {
    for (int signed_lag : {lag, -lag}) {
      const double r = overlap_corr(signed_lag);
      if (r > best) {
        best = r;
        best_lag = signed_lag;
      }
    }
  }
  return best_lag;
}

void standardize(std::vector<double>& xs) {
  const auto s = stats::summarize(xs);
  if (s.stddev == 0.0) {
    for (double& x : xs) x = 0.0;
    return;
  }
  for (double& x : xs) x = (x - s.mean) / s.stddev;
}

void detrend(std::vector<double>& xs) {
  if (xs.size() < 2) return;
  std::vector<double> t(xs.size());
  std::iota(t.begin(), t.end(), 0.0);
  const stats::LinearFit fit = stats::linear_fit(t, xs);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] -= fit.slope * static_cast<double>(i) + fit.intercept;
  }
}

std::vector<double> fill_gaps(std::span<const double> values,
                              std::span<const std::uint8_t> validity,
                              GapPolicy policy) {
  if (validity.empty()) return {values.begin(), values.end()};

  if (policy == GapPolicy::Drop) {
    std::vector<double> out;
    out.reserve(values.size());
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (validity[i] != 0) out.push_back(values[i]);
    }
    return out;
  }

  std::vector<double> out(values.begin(), values.end());
  std::size_t first_valid = values.size();
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (validity[i] != 0) {
      first_valid = i;
      break;
    }
  }
  if (first_valid == values.size()) {
    std::fill(out.begin(), out.end(), 0.0);
    return out;
  }

  if (policy == GapPolicy::HoldLast) {
    for (std::size_t i = 0; i < first_valid; ++i) out[i] = out[first_valid];
    double last = out[first_valid];
    for (std::size_t i = first_valid; i < out.size(); ++i) {
      if (validity[i] != 0) {
        last = out[i];
      } else {
        out[i] = last;
      }
    }
    return out;
  }

  for (std::size_t i = 0; i < first_valid; ++i) out[i] = out[first_valid];
  std::size_t prev_valid = first_valid;
  std::size_t i = first_valid + 1;
  while (i < out.size()) {
    if (validity[i] != 0) {
      prev_valid = i;
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < out.size() && validity[j] == 0) ++j;
    if (j == out.size()) {
      for (std::size_t k = i; k < j; ++k) out[k] = out[prev_valid];
    } else {
      const double lo = out[prev_valid];
      const double hi = out[j];
      const double span_len = static_cast<double>(j - prev_valid);
      for (std::size_t k = i; k < j; ++k) {
        const double frac = static_cast<double>(k - prev_valid) / span_len;
        out[k] = lo * (1.0 - frac) + hi * frac;
      }
    }
    i = j;
  }
  return out;
}

}  // namespace amperebleed::core::reference
