#include "amperebleed/core/sampler.hpp"

#include <algorithm>

#include "amperebleed/obs/obs.hpp"
#include "amperebleed/obs/quality.hpp"
#include "amperebleed/util/rng.hpp"
#include "amperebleed/util/strings.hpp"

namespace amperebleed::core {

Sampler::Sampler(soc::Soc& soc, Principal principal)
    : soc_(soc), principal_(std::move(principal)) {
  if (!soc.finalized()) {
    throw std::logic_error("Sampler: SoC must be finalized first");
  }
}

Sampler::Sampler(Sampler&& other) noexcept
    : soc_(other.soc_), principal_(std::move(other.principal_)) {
  // Fresh mutexes for this object; the cached/accumulated state transfers.
  // Guarding the source keeps the handover well-defined if the source had
  // been shared (concurrent use of the source during the move is still
  // unsupported).
  {
    std::lock_guard<std::mutex> lock(other.res_mu_);
    resilience_ = std::move(other.resilience_);
    stats_ = other.stats_;
    health_ = std::move(other.health_);
  }
  std::lock_guard<std::mutex> lock(other.stale_mu_);
  last_raw_ = std::move(other.last_raw_);
}

Sampler::RawRead Sampler::read_raw(const Channel& channel) {
  // Label this read's audit records with the sampler's identity; every read
  // path — strict, retried, fallback, probe — comes through here, so all of
  // them are audit-logged and metered identically.
  std::optional<obs::PrincipalScope> scope;
  if (obs::audit_enabled()) scope.emplace(principal_.name);

  const bool instrumented = obs::metrics_enabled();
  const std::int64_t t0 = instrumented ? obs::tracer().wall_now_ns() : 0;

  RawRead out;
  const int index = soc_.hwmon_index(channel.rail);
  out.path = soc_.hwmon().attr_path(index, quantity_attr(channel.quantity));
  const auto result = soc_.hwmon().fs().read(out.path, principal_.privileged);
  out.status = result.status;

  if (instrumented) {
    obs::count("sampler.reads");
    obs::observe("sampler.poll_latency_ns",
                 static_cast<double>(obs::tracer().wall_now_ns() - t0));
  }
  if (result.status == hwmon::VfsStatus::PermissionDenied) {
    obs::count("sampler.denied");
    return out;
  }
  if (!result.ok()) {
    obs::count("sampler.read_failures");
    return out;
  }
  if (instrumented) {
    // Stale-register detection: polling faster than the sensor's conversion
    // cadence re-reads the latest completed conversion, so the raw text
    // repeats. (A genuine repeat of the measured value counts too — at mA
    // LSBs under board noise that is rare, so this is a faithful proxy.)
    // The cache is mutex-guarded (pool-shared samplers) and bounded: at
    // kStaleCacheCap entries it is flushed rather than growing forever,
    // costing at most one missed stale detection per flushed path.
    std::lock_guard<std::mutex> lock(stale_mu_);
    const auto it = last_raw_.find(out.path);
    if (it != last_raw_.end()) {
      if (it->second == result.data && !result.data.empty()) {
        obs::count("sampler.stale_reads");
      }
      it->second = result.data;
    } else {
      if (last_raw_.size() >= kStaleCacheCap) {
        last_raw_.clear();
        obs::count("sampler.stale_cache_flushes");
      }
      last_raw_.emplace(out.path, result.data);
    }
  }

  const auto value = util::parse_ll(result.data);
  if (!value) {
    obs::count("sampler.parse_failures");
    out.malformed = true;
    return out;
  }
  // Last raw reading as a gauge: a live scrape (/metrics) sees the current
  // sensor LSB value without touching the experiment's data path.
  obs::gauge_set("sampler.last_reading_lsb", static_cast<double>(*value));
  out.ok = true;
  out.value = static_cast<double>(*value);
  return out;
}

void Sampler::throw_for(const RawRead& r, const Channel& channel,
                        std::size_t attempts) const {
  // The mitigation-policy denial keeps its legacy type and text: the
  // ablation study distinguishes "the policy stopped me" from acquisition
  // flakiness by exactly this error.
  if (r.status == hwmon::VfsStatus::PermissionDenied) {
    throw SamplingError("hwmon read denied: " + r.path);
  }
  const std::string cname = channel_name(channel);
  if (r.malformed) {
    throw MalformedData(
        util::format("hwmon attribute not numeric: %s [channel=%s, %zu "
                     "attempt(s)]",
                     r.path.c_str(), cname.c_str(), attempts),
        channel, r.path, attempts);
  }
  if (r.status == hwmon::VfsStatus::NotFound) {
    throw ChannelGone(
        util::format("hwmon attribute gone (not-found): %s [channel=%s, %zu "
                     "attempt(s)]",
                     r.path.c_str(), cname.c_str(), attempts),
        channel, r.path, attempts);
  }
  if (r.status == hwmon::VfsStatus::TryAgain) {
    throw TransientError(
        util::format("hwmon read failed (try-again): %s [channel=%s, %zu "
                     "attempt(s)]",
                     r.path.c_str(), cname.c_str(), attempts),
        channel, r.path, attempts);
  }
  throw SamplingError("hwmon read failed (" +
                      std::string(vfs_status_name(r.status)) +
                      "): " + r.path);
}

Sampler::RawRead Sampler::read_with_retry(const Channel& channel,
                                          sim::TimeNs* trace_backoff_left,
                                          std::size_t* attempts_out) {
  const RetryPolicy& rp = resilience_.retry;
  const std::size_t max_attempts = std::max<std::size_t>(1, rp.max_attempts);
  const bool instrumented = obs::metrics_enabled();
  sim::TimeNs sample_spent{0};
  std::uint64_t stream = 0;

  RawRead r;
  for (std::size_t attempt = 1;; ++attempt) {
    r = read_raw(channel);
    *attempts_out = attempt;
    if (r.ok || attempt >= max_attempts) return r;

    // Jitter stream: stable per path, so retry schedules replay no matter
    // how channels interleave.
    if (stream == 0) stream = util::fnv1a(r.path);
    const sim::TimeNs wait = rp.backoff(attempt, stream);
    if (rp.per_sample_deadline.ns > 0 &&
        sample_spent.ns + wait.ns > rp.per_sample_deadline.ns) {
      std::lock_guard<std::mutex> lock(res_mu_);
      ++stats_.deadline_failures;
      if (instrumented) obs::count("sampler.deadline_failures");
      return r;
    }
    if (trace_backoff_left != nullptr && wait.ns > trace_backoff_left->ns) {
      // Per-trace backoff budget exhausted: fail this (and, in practice,
      // every later) sample fast instead of stretching the collection.
      std::lock_guard<std::mutex> lock(res_mu_);
      ++stats_.deadline_failures;
      if (instrumented) obs::count("sampler.deadline_failures");
      return r;
    }
    sample_spent.ns += wait.ns;
    if (trace_backoff_left != nullptr) trace_backoff_left->ns -= wait.ns;
    {
      std::lock_guard<std::mutex> lock(res_mu_);
      ++stats_.retries;
    }
    if (instrumented) {
      obs::count("sampler.retries");
      obs::observe("sampler.retry_backoff_ns", static_cast<double>(wait.ns));
    }
    // The backoff wait is virtual time: the board keeps running while the
    // attacker sleeps, exactly as on real silicon.
    if (wait.ns > 0) {
      soc_.advance_to(sim::TimeNs{soc_.now().ns + wait.ns});
    }
  }
}

void Sampler::publish_health(const Channel& channel, ChannelHealth h) const {
  if (!obs::metrics_enabled()) return;
  obs::metrics()
      .gauge(util::format("sampler.health.%s", channel_name(channel).c_str()))
      .set(static_cast<double>(static_cast<int>(h)));
}

Sampler::HealthState& Sampler::health_state_locked(const Channel& channel) {
  const auto [it, inserted] = health_.try_emplace(health_key(channel));
  if (inserted) publish_health(channel, it->second.state);
  return it->second;
}

void Sampler::note_sample_result_locked(const Channel& channel, bool ok) {
  HealthState& hs = health_state_locked(channel);
  const ChannelHealth before = hs.state;
  if (ok) {
    hs.consecutive_failures = 0;
    hs.skipped = 0;
    hs.state = ChannelHealth::Healthy;
  } else {
    ++stats_.failed_samples;
    ++hs.consecutive_failures;
    if (hs.consecutive_failures >= resilience_.health.quarantine_after) {
      if (hs.state != ChannelHealth::Quarantined) hs.skipped = 0;
      hs.state = ChannelHealth::Quarantined;
    } else if (hs.consecutive_failures >= resilience_.health.degrade_after) {
      hs.state = ChannelHealth::Degraded;
    }
  }
  if (hs.state != before) {
    publish_health(channel, hs.state);
    if (hs.state == ChannelHealth::Quarantined) {
      obs::count("sampler.quarantines");
    }
  }
}

ChannelHealth Sampler::health(const Channel& channel) const {
  std::lock_guard<std::mutex> lock(res_mu_);
  const auto it = health_.find(health_key(channel));
  return it == health_.end() ? ChannelHealth::Healthy : it->second.state;
}

SamplerStats Sampler::stats() const {
  std::lock_guard<std::mutex> lock(res_mu_);
  return stats_;
}

double Sampler::read_now(const Channel& channel) {
  if (!resilience_.enabled) {
    // Strict legacy semantics: one attempt, any failure throws.
    RawRead r = read_raw(channel);
    if (!r.ok) throw_for(r, channel, 1);
    return r.value;
  }
  std::size_t attempts = 0;
  RawRead r = read_with_retry(channel, nullptr, &attempts);
  if (obs::metrics_enabled() && attempts > 1) {
    obs::observe("sampler.retry_attempts", static_cast<double>(attempts));
  }
  {
    std::lock_guard<std::mutex> lock(res_mu_);
    note_sample_result_locked(channel, r.ok);
  }
  if (!r.ok) throw_for(r, channel, attempts);
  return r.value;
}

void Sampler::sample_resilient(const Channel& channel, Trace& trace,
                               sim::TimeNs* trace_backoff_left) {
  const bool instrumented = obs::metrics_enabled();

  // Quarantine gate: a quarantined channel is not polled at all until its
  // probe window elapses — stop hammering a dead attribute.
  enum class Action { Poll, Probe, Skip };
  Action action = Action::Poll;
  {
    std::lock_guard<std::mutex> lock(res_mu_);
    HealthState& hs = health_state_locked(channel);
    if (hs.state == ChannelHealth::Quarantined) {
      ++hs.skipped;
      if (hs.skipped >= resilience_.health.probe_after) {
        hs.skipped = 0;
        hs.state = ChannelHealth::Probing;
        publish_health(channel, ChannelHealth::Probing);
        action = Action::Probe;
      } else {
        action = Action::Skip;
      }
    }
  }

  bool have_value = false;
  double value = 0.0;
  if (action == Action::Poll) {
    std::size_t attempts = 0;
    RawRead r = read_with_retry(channel, trace_backoff_left, &attempts);
    if (instrumented && attempts > 1) {
      obs::observe("sampler.retry_attempts", static_cast<double>(attempts));
    }
    {
      std::lock_guard<std::mutex> lock(res_mu_);
      note_sample_result_locked(channel, r.ok);
    }
    have_value = r.ok;
    value = r.value;
  } else if (action == Action::Probe) {
    // Single-shot recovery probe; success re-opens the channel, failure
    // re-quarantines it for another probe window.
    RawRead r = read_raw(channel);
    {
      std::lock_guard<std::mutex> lock(res_mu_);
      ++stats_.probes;
      HealthState& hs = health_state_locked(channel);
      if (r.ok) {
        hs.state = ChannelHealth::Healthy;
        hs.consecutive_failures = 0;
      } else {
        hs.state = ChannelHealth::Quarantined;
      }
      publish_health(channel, hs.state);
    }
    if (instrumented) obs::count("sampler.probes");
    have_value = r.ok;
    value = r.value;
  }

  if (have_value) {
    trace.push(value);
    return;
  }

  // Primary failed (or is quarantined): substitute the best available
  // fallback channel (Table III accuracy order), else record a gap.
  if (resilience_.fallback_enabled) {
    for (const Channel& fb : fallback_chain(channel)) {
      RawRead r = read_raw(fb);
      if (r.ok) {
        {
          std::lock_guard<std::mutex> lock(res_mu_);
          ++stats_.fallback_substitutions;
        }
        if (instrumented) obs::count("sampler.fallback_substitutions");
        trace.push(r.value);
        return;
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(res_mu_);
    ++stats_.gap_samples;
  }
  if (instrumented) obs::count("sampler.gap_samples");
  trace.push_gap();
}

std::size_t Sampler::stale_cache_size() const {
  std::lock_guard<std::mutex> lock(stale_mu_);
  return last_raw_.size();
}

Trace Sampler::collect(const Channel& channel, sim::TimeNs start,
                       const SamplerConfig& config) {
  auto traces = collect_multi({channel}, start, config);
  return std::move(traces.front());
}

std::vector<Trace> Sampler::collect_multi(const std::vector<Channel>& channels,
                                          sim::TimeNs start,
                                          const SamplerConfig& config) {
  auto span = obs::span("sampler.collect", "sampler");
  span.set_arg("channels", static_cast<double>(channels.size()));
  span.set_arg("samples", static_cast<double>(config.sample_count));
  span.set_arg("period_ms", config.period.millis());
  if (span.active() && !channels.empty()) {
    std::string joined = channel_name(channels.front());
    for (std::size_t c = 1; c < channels.size(); ++c) {
      joined += "," + channel_name(channels[c]);
    }
    span.set_attr("channel", std::move(joined));
  }

  const bool instrumented = obs::metrics_enabled();
  const std::int64_t entry_now_ns = instrumented ? soc_.now().ns : 0;
  const bool resilient = resilience_.enabled;
  std::int64_t prev_poll_ns = -1;

  // Shared per-trace backoff budget (0 deadline = unlimited → no budget).
  sim::TimeNs trace_budget = resilience_.retry.per_trace_deadline;
  sim::TimeNs* trace_backoff_left =
      resilient && trace_budget.ns > 0 ? &trace_budget : nullptr;

  std::vector<Trace> traces;
  traces.reserve(channels.size());
  for (const auto& c : channels) {
    traces.emplace_back(c, start, config.period);
    traces.back().reserve(config.sample_count);
  }
  for (std::size_t i = 0; i < config.sample_count; ++i) {
    const sim::TimeNs t{start.ns +
                        config.period.ns * static_cast<std::int64_t>(i)};
    // Backoff waits may already have pushed the virtual clock past this
    // instant; the poll then simply happens late (cadence slip, exactly as
    // on a real board). Strict mode keeps the legacy unclamped call — and
    // with it the legacy backwards-time error for bad start times.
    if (!resilient || t.ns > soc_.now().ns) soc_.advance_to(t);
    if (instrumented) {
      // Host-side cadence jitter: wall time between successive poll rounds.
      const std::int64_t now_ns = obs::tracer().wall_now_ns();
      if (prev_poll_ns >= 0) {
        obs::observe("sampler.poll_interval_wall_ns",
                     static_cast<double>(now_ns - prev_poll_ns));
      }
      prev_poll_ns = now_ns;
    }
    for (std::size_t c = 0; c < channels.size(); ++c) {
      // Virtual nanoseconds this one sample consumed beyond the scheduled
      // cadence — 0 on a clean read, the summed backoff waits when faults
      // forced retries. This is the acquire-latency SLI: deterministic (it
      // measures the simulation clock, not the host), so SLO compliance is
      // bit-reproducible for a given seed and fault plan.
      const std::int64_t sample_v0 = instrumented ? soc_.now().ns : 0;
      if (resilient) {
        sample_resilient(channels[c], traces[c], trace_backoff_left);
      } else {
        traces[c].push(read_now(channels[c]));
      }
      if (instrumented) {
        obs::observe("sampler.sample_acquire_vns",
                     static_cast<double>(soc_.now().ns - sample_v0));
      }
    }
  }
  if (instrumented) {
    obs::count("sampler.collections");
    // Feed the SLO engine's virtual clock with the simulated time this
    // collection spanned, so burn-rate windows advance in virtual seconds.
    const std::int64_t consumed_ns = soc_.now().ns - entry_now_ns;
    if (consumed_ns > 0) {
      obs::slos().advance(static_cast<double>(consumed_ns) * 1e-9);
    }
  }
  if (obs::quality_enabled()) {
    // Data-quality pass: per-channel gap/clip/freeze tallies, correlated
    // with the health tracker's current verdict. Channels are visited in
    // collection order, so the quality snapshot is deterministic.
    for (std::size_t c = 0; c < channels.size(); ++c) {
      obs::quality_hub().data_quality().note_trace(
          channel_name(channels[c]), traces[c].values(), traces[c].validity(),
          static_cast<int>(health(channels[c])));
    }
  }
  span.set_virtual_ns(soc_.now());
  return traces;
}

}  // namespace amperebleed::core
