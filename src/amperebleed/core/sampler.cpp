#include "amperebleed/core/sampler.hpp"

#include "amperebleed/obs/obs.hpp"
#include "amperebleed/util/strings.hpp"

namespace amperebleed::core {

Sampler::Sampler(soc::Soc& soc, Principal principal)
    : soc_(soc), principal_(std::move(principal)) {
  if (!soc.finalized()) {
    throw std::logic_error("Sampler: SoC must be finalized first");
  }
}

Sampler::Sampler(Sampler&& other) noexcept
    : soc_(other.soc_), principal_(std::move(other.principal_)) {
  // Fresh mutex for this object; the cache contents transfer. Guarding the
  // source keeps the handover well-defined if the source had been shared
  // (concurrent use of the source during the move is still unsupported).
  std::lock_guard<std::mutex> lock(other.stale_mu_);
  last_raw_ = std::move(other.last_raw_);
}

double Sampler::read_now(const Channel& channel) {
  // Label this read's audit records with the sampler's identity; read_now
  // and collect_multi both come through here, so single reads and trace
  // collection are audit-logged identically.
  std::optional<obs::PrincipalScope> scope;
  if (obs::audit_enabled()) scope.emplace(principal_.name);

  const bool instrumented = obs::metrics_enabled();
  const std::int64_t t0 = instrumented ? obs::tracer().wall_now_ns() : 0;

  const int index = soc_.hwmon_index(channel.rail);
  const std::string path =
      soc_.hwmon().attr_path(index, quantity_attr(channel.quantity));
  const auto result = soc_.hwmon().fs().read(path, principal_.privileged);

  if (instrumented) {
    obs::count("sampler.reads");
    obs::observe("sampler.poll_latency_ns",
                 static_cast<double>(obs::tracer().wall_now_ns() - t0));
  }
  if (result.status == hwmon::VfsStatus::PermissionDenied) {
    obs::count("sampler.denied");
    throw SamplingError("hwmon read denied: " + path);
  }
  if (!result.ok()) {
    obs::count("sampler.read_failures");
    throw SamplingError("hwmon read failed (" +
                        std::string(vfs_status_name(result.status)) +
                        "): " + path);
  }
  if (instrumented) {
    // Stale-register detection: polling faster than the sensor's conversion
    // cadence re-reads the latest completed conversion, so the raw text
    // repeats. (A genuine repeat of the measured value counts too — at mA
    // LSBs under board noise that is rare, so this is a faithful proxy.)
    // The cache is mutex-guarded (pool-shared samplers) and bounded: at
    // kStaleCacheCap entries it is flushed rather than growing forever,
    // costing at most one missed stale detection per flushed path.
    std::lock_guard<std::mutex> lock(stale_mu_);
    const auto it = last_raw_.find(path);
    if (it != last_raw_.end()) {
      if (it->second == result.data && !result.data.empty()) {
        obs::count("sampler.stale_reads");
      }
      it->second = result.data;
    } else {
      if (last_raw_.size() >= kStaleCacheCap) {
        last_raw_.clear();
        obs::count("sampler.stale_cache_flushes");
      }
      last_raw_.emplace(path, result.data);
    }
  }

  const auto value = util::parse_ll(result.data);
  if (!value) {
    obs::count("sampler.parse_failures");
    throw std::runtime_error("hwmon attribute not numeric: " + path);
  }
  // Last raw reading as a gauge: a live scrape (/metrics) sees the current
  // sensor LSB value without touching the experiment's data path.
  obs::gauge_set("sampler.last_reading_lsb", static_cast<double>(*value));
  return static_cast<double>(*value);
}

std::size_t Sampler::stale_cache_size() const {
  std::lock_guard<std::mutex> lock(stale_mu_);
  return last_raw_.size();
}

Trace Sampler::collect(const Channel& channel, sim::TimeNs start,
                       const SamplerConfig& config) {
  auto traces = collect_multi({channel}, start, config);
  return std::move(traces.front());
}

std::vector<Trace> Sampler::collect_multi(const std::vector<Channel>& channels,
                                          sim::TimeNs start,
                                          const SamplerConfig& config) {
  auto span = obs::span("sampler.collect", "sampler");
  span.set_arg("channels", static_cast<double>(channels.size()));
  span.set_arg("samples", static_cast<double>(config.sample_count));
  span.set_arg("period_ms", config.period.millis());

  const bool instrumented = obs::metrics_enabled();
  std::int64_t prev_poll_ns = -1;

  std::vector<Trace> traces;
  traces.reserve(channels.size());
  for (const auto& c : channels) {
    traces.emplace_back(c, start, config.period);
    traces.back().reserve(config.sample_count);
  }
  for (std::size_t i = 0; i < config.sample_count; ++i) {
    const sim::TimeNs t{start.ns +
                        config.period.ns * static_cast<std::int64_t>(i)};
    soc_.advance_to(t);
    if (instrumented) {
      // Host-side cadence jitter: wall time between successive poll rounds.
      const std::int64_t now_ns = obs::tracer().wall_now_ns();
      if (prev_poll_ns >= 0) {
        obs::observe("sampler.poll_interval_wall_ns",
                     static_cast<double>(now_ns - prev_poll_ns));
      }
      prev_poll_ns = now_ns;
    }
    for (std::size_t c = 0; c < channels.size(); ++c) {
      traces[c].push(read_now(channels[c]));
    }
  }
  if (instrumented) {
    obs::count("sampler.collections");
  }
  span.set_virtual_ns(soc_.now());
  return traces;
}

}  // namespace amperebleed::core
