#include "amperebleed/core/sampler.hpp"

#include "amperebleed/util/strings.hpp"

namespace amperebleed::core {

Sampler::Sampler(soc::Soc& soc) : soc_(soc) {
  if (!soc.finalized()) {
    throw std::logic_error("Sampler: SoC must be finalized first");
  }
}

double Sampler::read_now(const Channel& channel, bool privileged) {
  const int index = soc_.hwmon_index(channel.rail);
  const std::string path =
      soc_.hwmon().attr_path(index, quantity_attr(channel.quantity));
  const auto result = soc_.hwmon().fs().read(path, privileged);
  if (result.status == hwmon::VfsStatus::PermissionDenied) {
    throw SamplingError("hwmon read denied: " + path);
  }
  if (!result.ok()) {
    throw SamplingError("hwmon read failed (" +
                        std::string(vfs_status_name(result.status)) +
                        "): " + path);
  }
  const auto value = util::parse_ll(result.data);
  if (!value) {
    throw std::runtime_error("hwmon attribute not numeric: " + path);
  }
  return static_cast<double>(*value);
}

Trace Sampler::collect(const Channel& channel, sim::TimeNs start,
                       const SamplerConfig& config) {
  auto traces = collect_multi({channel}, start, config);
  return std::move(traces.front());
}

std::vector<Trace> Sampler::collect_multi(const std::vector<Channel>& channels,
                                          sim::TimeNs start,
                                          const SamplerConfig& config) {
  std::vector<Trace> traces;
  traces.reserve(channels.size());
  for (const auto& c : channels) {
    traces.emplace_back(c, start, config.period);
    traces.back().reserve(config.sample_count);
  }
  for (std::size_t i = 0; i < config.sample_count; ++i) {
    const sim::TimeNs t{start.ns +
                        config.period.ns * static_cast<std::int64_t>(i)};
    soc_.advance_to(t);
    for (std::size_t c = 0; c < channels.size(); ++c) {
      traces[c].push(read_now(channels[c], config.privileged));
    }
  }
  return traces;
}

}  // namespace amperebleed::core
