#pragma once
// The deployable form of the fingerprinting attack, mirroring the paper's
// two phases as a stateful service:
//   * offline: enroll labelled traces of known accelerators, train once;
//   * online:  classify black-box traces, with open-set rejection so that a
//     model outside the enrolled zoo yields "unknown" rather than a
//     confidently wrong answer.

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "amperebleed/core/trace.hpp"
#include "amperebleed/ml/dataset.hpp"
#include "amperebleed/ml/random_forest.hpp"
#include "amperebleed/obs/drift.hpp"

namespace amperebleed::core {

struct OnlineFingerprinterConfig {
  ml::ForestConfig forest{};
  /// Reject when the winner's averaged forest probability is below this.
  double min_confidence = 0.30;
  /// Reject when (top1 - top2) probability margin is below this.
  double min_margin = 0.05;
  /// Drift monitoring (off by default). With drift.enabled, train() captures
  /// an obs::ReferenceProfile from the enrollment dataset and classify /
  /// classify_many feed every prediction to an obs::DriftMonitor — pure
  /// observation, verdicts are unchanged.
  obs::DriftConfig drift{};
};

class OnlineFingerprinter {
 public:
  explicit OnlineFingerprinter(OnlineFingerprinterConfig config = {});

  /// Everything a persisted fingerprinter needs to come back bit-identical
  /// (persist/state.hpp carries this across restarts).
  struct RestoredState {
    std::size_t feature_count = 0;
    std::vector<std::string> class_names;
    ml::Dataset data;
    bool trained = false;
    ml::ForestArena arena;  // the fitted forest; non-empty when trained
    /// Drift reference captured at train time. The monitor is rebuilt with
    /// an EMPTY observation window — drift state is observation-only, so
    /// classify verdicts are unchanged either way.
    std::optional<obs::ReferenceProfile> drift_reference;
  };

  /// Rebuild a fingerprinter from persisted state. Classify verdicts on the
  /// restored instance are bit-identical to the original (the forest arena
  /// round-trips doubles exactly). Throws std::invalid_argument on
  /// inconsistent state (trained without a forest, class/label mismatch).
  [[nodiscard]] static OnlineFingerprinter restore(
      OnlineFingerprinterConfig config, RestoredState state);

  /// Offline phase: add one labelled trace. The first enrollment fixes the
  /// feature width; later traces must be at least as long (extra samples
  /// are ignored). Throws after train().
  void enroll(const Trace& trace, const std::string& model_name);

  /// Fit the forest. Throws if fewer than 2 classes are enrolled.
  void train();

  struct Verdict {
    bool known = false;       // false = rejected as outside the enrolled set
    std::string model_name;   // winner (also set when rejected, for triage)
    double confidence = 0.0;  // winner's probability
    double margin = 0.0;      // top1 - top2 probability
    /// Full (name, probability) ranking, most probable first.
    std::vector<std::pair<std::string, double>> ranking;
  };

  /// Online phase: classify one observed trace. Throws if not trained or
  /// the trace is shorter than the enrolled feature width.
  [[nodiscard]] Verdict classify(const Trace& trace) const;

  /// Classify a batch of observed traces in one pass. Forest inference for
  /// the whole batch runs through RandomForest::predict_proba_many, so the
  /// rows are scored in parallel on the util::ThreadPool while the verdicts
  /// come back in input order, identical to calling classify() per trace.
  [[nodiscard]] std::vector<Verdict> classify_many(
      const std::vector<Trace>& traces) const;

  /// Same batched path over borrowed traces — no copies of the inputs. The
  /// serving layer coalesces queued requests into one sweep through here.
  /// Every pointer must be non-null and outlive the call.
  [[nodiscard]] std::vector<Verdict> classify_many(
      std::span<const Trace* const> traces) const;

  [[nodiscard]] bool trained() const { return trained_; }
  [[nodiscard]] std::size_t enrolled_traces() const { return data_.size(); }
  [[nodiscard]] std::size_t feature_count() const { return feature_count_; }
  [[nodiscard]] const std::vector<std::string>& class_names() const {
    return class_names_;
  }
  /// The enrollment dataset (persisted so a recovered tenant can keep
  /// enrolling / retrain exactly where it left off).
  [[nodiscard]] const ml::Dataset& enrollment_data() const { return data_; }
  /// The fitted forest (meaningful once trained()).
  [[nodiscard]] const ml::RandomForest& forest() const { return forest_; }

  /// The drift monitor (nullptr unless config.drift.enabled and trained).
  [[nodiscard]] obs::DriftMonitor* drift_monitor() { return monitor_.get(); }
  [[nodiscard]] const obs::DriftMonitor* drift_monitor() const {
    return monitor_.get();
  }
  /// Clear the monitor's window and state (reference kept). No-op untrained
  /// or with drift disabled. Used between evaluation legs.
  void reset_drift_window();

 private:
  /// Shared verdict construction: rank classes by probability and apply the
  /// open-set rejection thresholds. classify and classify_many both funnel
  /// through here so single and batched paths agree bit-for-bit.
  [[nodiscard]] Verdict verdict_from_proba(std::span<const double> proba) const;

  /// Feed one classified observation to the drift monitor (caller checks
  /// monitor_ is live).
  void feed_monitor(std::span<const double> features,
                    const Verdict& verdict) const;

  OnlineFingerprinterConfig config_;
  std::size_t feature_count_ = 0;
  std::vector<std::string> class_names_;
  ml::Dataset data_;
  ml::RandomForest forest_;
  bool trained_ = false;
  /// Owned drift monitor; mutable because feeding observations is logically
  /// const classification (the monitor is observation-only state).
  mutable std::unique_ptr<obs::DriftMonitor> monitor_;
};

}  // namespace amperebleed::core
