#pragma once
// Turning Fig 4's distributions into an attack primitive: a calibrated
// estimator that maps an observed FPGA-current trace to the Hamming weight
// of the victim's RSA exponent, plus the search-space arithmetic behind the
// paper's claim that "knowledge of the Hamming weight can greatly reduce
// the search space of RSA's key brute force attack".
//
// Calibration is realistic: the attacker deploys probe keys with known
// weights on an identical board (or the same board at another time), fits
// the linear current-vs-HW response, and inverts it for the victim trace.

#include <cstddef>
#include <span>
#include <vector>

#include "amperebleed/stats/descriptive.hpp"

namespace amperebleed::core {

struct HwCalibrationPoint {
  std::size_t hamming_weight = 0;
  double mean_current_ma = 0.0;
};

/// Linear current(HW) model fitted from probe keys.
class HammingWeightEstimator {
 public:
  /// Least-squares fit. Throws if fewer than 2 points or all weights equal
  /// or the fitted slope is not positive (no usable leakage).
  static HammingWeightEstimator fit(
      std::span<const HwCalibrationPoint> points, std::size_t key_bits = 1024);

  /// Expected trace mean for a hypothetical weight.
  [[nodiscard]] double predict_current_ma(double hamming_weight) const;

  struct Estimate {
    double hamming_weight = 0.0;  // point estimate, clamped to [0, key_bits]
    double ci_low = 0.0;          // 95% interval bounds (clamped)
    double ci_high = 0.0;
  };

  /// Invert the calibration for an observed trace. `independent_samples`
  /// is the number of *distinct sensor conversions* in the trace (polling
  /// faster than the update interval repeats register values and must not
  /// shrink the interval).
  [[nodiscard]] Estimate estimate(const stats::Summary& trace_summary,
                                  std::size_t independent_samples) const;

  [[nodiscard]] double slope_ma_per_bit() const { return slope_; }
  [[nodiscard]] double intercept_ma() const { return intercept_; }
  [[nodiscard]] std::size_t key_bits() const { return key_bits_; }

 private:
  HammingWeightEstimator(double slope, double intercept, std::size_t key_bits)
      : slope_(slope), intercept_(intercept), key_bits_(key_bits) {}
  double slope_;
  double intercept_;
  std::size_t key_bits_;
};

/// log2(C(n, k)); exact via lgamma. Throws if k > n.
double log2_binomial(std::size_t n, std::size_t k);

/// log2 of the number of n-bit exponents whose Hamming weight lies in
/// [hw_low, hw_high] — the attacker's residual brute-force space after the
/// side channel constrains the weight. Bounds are clamped into [0, n].
double log2_search_space(std::size_t bits, double hw_low, double hw_high);

}  // namespace amperebleed::core
