#include "amperebleed/core/hw_estimate.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "amperebleed/stats/regression.hpp"

namespace amperebleed::core {

HammingWeightEstimator HammingWeightEstimator::fit(
    std::span<const HwCalibrationPoint> points, std::size_t key_bits) {
  if (points.size() < 2) {
    throw std::invalid_argument(
        "HammingWeightEstimator: need at least 2 calibration points");
  }
  std::vector<double> hw;
  std::vector<double> ma;
  hw.reserve(points.size());
  ma.reserve(points.size());
  for (const auto& p : points) {
    hw.push_back(static_cast<double>(p.hamming_weight));
    ma.push_back(p.mean_current_ma);
  }
  const stats::LinearFit f = stats::linear_fit(hw, ma);
  if (f.slope <= 0.0) {
    throw std::invalid_argument(
        "HammingWeightEstimator: no positive current/HW response");
  }
  return HammingWeightEstimator(f.slope, f.intercept, key_bits);
}

double HammingWeightEstimator::predict_current_ma(double hamming_weight) const {
  return slope_ * hamming_weight + intercept_;
}

HammingWeightEstimator::Estimate HammingWeightEstimator::estimate(
    const stats::Summary& trace_summary,
    std::size_t independent_samples) const {
  if (independent_samples == 0) {
    throw std::invalid_argument(
        "HammingWeightEstimator: need at least one independent sample");
  }
  const auto clamp_hw = [this](double hw) {
    return std::clamp(hw, 0.0, static_cast<double>(key_bits_));
  };
  Estimate e;
  e.hamming_weight = clamp_hw((trace_summary.mean - intercept_) / slope_);
  // 95% interval on the trace mean, mapped through the linear inverse.
  const double se_mean = trace_summary.stddev /
                         std::sqrt(static_cast<double>(independent_samples));
  const double hw_halfwidth = 1.96 * se_mean / slope_;
  e.ci_low = clamp_hw(e.hamming_weight - hw_halfwidth);
  e.ci_high = clamp_hw(e.hamming_weight + hw_halfwidth);
  return e;
}

double log2_binomial(std::size_t n, std::size_t k) {
  if (k > n) throw std::invalid_argument("log2_binomial: k > n");
  const double ln_c = std::lgamma(static_cast<double>(n) + 1.0) -
                      std::lgamma(static_cast<double>(k) + 1.0) -
                      std::lgamma(static_cast<double>(n - k) + 1.0);
  return ln_c / std::log(2.0);
}

double log2_search_space(std::size_t bits, double hw_low, double hw_high) {
  const auto lo = static_cast<std::size_t>(
      std::clamp(std::ceil(hw_low), 0.0, static_cast<double>(bits)));
  const auto hi = static_cast<std::size_t>(
      std::clamp(std::floor(hw_high), 0.0, static_cast<double>(bits)));
  if (lo > hi) {
    // Empty interval: by convention the caller rounded past each other;
    // fall back to the nearest single weight.
    return log2_binomial(bits, std::min(lo, bits));
  }
  // log2(sum C(bits, k)) via log-sum-exp for numerical stability.
  double max_term = -1e300;
  std::vector<double> terms;
  terms.reserve(hi - lo + 1);
  for (std::size_t k = lo; k <= hi; ++k) {
    terms.push_back(log2_binomial(bits, k));
    max_term = std::max(max_term, terms.back());
  }
  double sum = 0.0;
  for (double t : terms) sum += std::exp2(t - max_term);
  return max_term + std::log2(sum);
}

}  // namespace amperebleed::core
