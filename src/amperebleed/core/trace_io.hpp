#pragma once
// Trace persistence: CSV with a self-describing header so collected traces
// can be archived, diffed, and re-analyzed offline (the offline/online split
// of the fingerprinting attack in practice spans machines and days).

#include <string>

#include "amperebleed/core/trace.hpp"

namespace amperebleed::core {

/// Write a trace as CSV: a `# amperebleed-trace ...` metadata line followed
/// by `index,time_ms,value` rows. A gapless trace writes the legacy
/// 3-column format byte-for-byte (archived artifacts stay diffable); a
/// trace with gaps writes `index,time_ms,value,valid` rows instead, so the
/// validity mask round-trips. Throws std::runtime_error on I/O failure.
void save_trace_csv(const Trace& trace, const std::string& path);

/// Load a trace written by save_trace_csv (metadata line restores channel,
/// start and period exactly; a 4th `valid` column restores the gap mask,
/// and legacy 3-column files load as fully valid). Throws
/// std::runtime_error on malformed input.
Trace load_trace_csv(const std::string& path);

}  // namespace amperebleed::core
