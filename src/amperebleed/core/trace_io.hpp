#pragma once
// Trace persistence: CSV with a self-describing header so collected traces
// can be archived, diffed, and re-analyzed offline (the offline/online split
// of the fingerprinting attack in practice spans machines and days).

#include <string>

#include "amperebleed/core/trace.hpp"

namespace amperebleed::core {

/// Write a trace as CSV: a `# amperebleed-trace ...` metadata line followed
/// by `index,time_ms,value` rows. Throws std::runtime_error on I/O failure.
void save_trace_csv(const Trace& trace, const std::string& path);

/// Load a trace written by save_trace_csv (metadata line restores channel,
/// start and period exactly). Throws std::runtime_error on malformed input.
Trace load_trace_csv(const std::string& path);

}  // namespace amperebleed::core
