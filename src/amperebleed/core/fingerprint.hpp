#pragma once
// DPU model-fingerprinting attack (Fig 3 + Table III). Offline phase:
// collect labelled traces of every zoo model from the six observation
// channels. Online phase (modelled by cross-validation, as in the paper):
// classify held-out traces with a random forest per channel and duration.

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "amperebleed/core/preprocess.hpp"
#include "amperebleed/core/resilience.hpp"
#include "amperebleed/core/trace.hpp"
#include "amperebleed/dpu/dpu.hpp"
#include "amperebleed/faults/faults.hpp"
#include "amperebleed/ml/dataset.hpp"
#include "amperebleed/ml/kfold.hpp"
#include "amperebleed/soc/process.hpp"

namespace amperebleed::core {

/// The six rows of Table III, in the paper's order: FPD current, LPD
/// current, DRAM current, FPGA current, FPGA voltage, FPGA power.
const std::vector<Channel>& table3_channels();

struct FingerprintConfig {
  /// Traces recorded per model (per channel). The paper's 10-fold CV needs
  /// at least `folds` traces per model.
  std::size_t traces_per_model = 20;
  sim::TimeNs trace_duration = sim::seconds(5);
  sim::TimeNs sample_period = sim::milliseconds(35);
  /// Observation windows evaluated (Table III columns), in seconds.
  std::vector<double> durations_s = {1.0, 2.0, 3.0, 4.0, 5.0};
  /// Random start offset (uniform in [0, max)) between the inference loop
  /// starting and the attacker's first sample — trigger latency.
  sim::TimeNs max_trigger_jitter = sim::milliseconds(30);
  /// RF classifier: 100 trees, depth 32, Gini, bootstrap (paper settings).
  ml::ForestConfig forest{};
  std::size_t folds = 10;
  dpu::DpuConfig dpu{};
  /// Background OS activity running alongside the victim (timer ticks,
  /// housekeeping bursts); set rate to 0 for a sterile board.
  soc::BackgroundActivityParams background{};
  /// Override every sensor's averaging count (root-only reconfiguration;
  /// used by the update-interval ablation). Keep sample_period consistent:
  /// avg * 2.2 ms.
  std::optional<std::uint16_t> sensor_avg_override;
  /// Limit to the first N zoo models (0 = all 39). Tests use small subsets.
  std::size_t model_limit = 0;
  /// Chaos schedule installed on every victim run's hwmon read path (the
  /// plan's seed is combined with the per-run seed, so runs draw
  /// independent but exactly reproducible fault schedules). Unset: clean
  /// acquisition, bit-identical to the pre-fault pipeline.
  std::optional<faults::FaultPlan> fault_plan;
  /// Acquisition resilience policy for the per-run samplers (disabled =
  /// strict legacy semantics: any failed read aborts the run).
  ResilienceConfig resilience{};
  /// How gap samples are reconstructed before traces become feature
  /// vectors (only holey traces take this path).
  GapPolicy gap_policy = GapPolicy::HoldLast;
  std::uint64_t seed = 0xdf3;
  /// Worker threads for collection/evaluation (0 = hardware concurrency).
  std::size_t threads = 0;
};

/// Labelled full-length traces for every channel.
struct FingerprintTraceSet {
  std::vector<std::string> model_names;  // label -> name
  /// One dataset per table3_channels() entry; features are the full-length
  /// trace in hwmon units.
  std::vector<ml::Dataset> per_channel;
  std::size_t samples_per_trace = 0;
  sim::TimeNs sample_period{0};
};

/// Offline phase: simulate every (model, repetition) run and record traces.
FingerprintTraceSet collect_fingerprint_traces(const FingerprintConfig& config);

struct Table3Cell {
  double top1 = 0.0;
  double top5 = 0.0;
};

struct Table3Result {
  std::vector<std::string> channel_names;         // rows
  std::vector<double> durations_s;                // columns
  std::vector<std::vector<Table3Cell>> cells;     // [channel][duration]
  std::size_t class_count = 0;
  [[nodiscard]] double random_guess_top1() const {
    return class_count == 0 ? 0.0 : 1.0 / static_cast<double>(class_count);
  }
};

/// Classification phase: per-channel, per-duration 10-fold CV.
Table3Result evaluate_fingerprint(const FingerprintTraceSet& traces,
                                  const FingerprintConfig& config);

/// Fig 3: raw current traces of the six example models on the four current
/// sensors (one repetition each).
struct Fig3Trace {
  std::string model_name;
  std::uint64_t model_size_bytes = 0;  // INT8 parameter bytes (Fig 3 labels)
  std::vector<Trace> rail_current;     // one per power::kAllRails, in order
};

std::vector<Fig3Trace> collect_fig3_traces(const FingerprintConfig& config);

}  // namespace amperebleed::core
