#include "amperebleed/core/covert.hpp"

#include <algorithm>
#include <stdexcept>

#include "amperebleed/stats/descriptive.hpp"

namespace amperebleed::core {

std::vector<bool> bytes_to_bits(const std::string& payload) {
  std::vector<bool> bits;
  bits.reserve(payload.size() * 8);
  for (unsigned char byte : payload) {
    for (int b = 7; b >= 0; --b) {
      bits.push_back(((byte >> b) & 1u) != 0);
    }
  }
  return bits;
}

std::string bits_to_bytes(const std::vector<bool>& bits) {
  std::string out;
  for (std::size_t i = 0; i + 8 <= bits.size(); i += 8) {
    unsigned char byte = 0;
    for (int b = 0; b < 8; ++b) {
      byte = static_cast<unsigned char>((byte << 1) | (bits[i + static_cast<std::size_t>(b)] ? 1 : 0));
    }
    out.push_back(static_cast<char>(byte));
  }
  return out;
}

sim::TimeNs transmission_duration(const CovertChannelConfig& config,
                                  std::size_t payload_bits) {
  return sim::TimeNs{config.bit_period.ns *
                     static_cast<std::int64_t>(config.preamble_bits +
                                               payload_bits)};
}

fpga::PowerVirus encode_transmission(const CovertChannelConfig& config,
                                     const std::vector<bool>& payload,
                                     sim::TimeNs start) {
  if (config.bit_period.ns <= 0) {
    throw std::invalid_argument("covert: bit_period must be > 0");
  }
  fpga::PowerVirus virus;
  if (config.groups_high > virus.config().group_count) {
    throw std::invalid_argument("covert: groups_high exceeds virus groups");
  }

  std::vector<bool> frame;
  frame.reserve(config.preamble_bits + payload.size());
  for (std::size_t i = 0; i < config.preamble_bits; ++i) {
    frame.push_back(i % 2 == 0);  // 1,0,1,0,...
  }
  frame.insert(frame.end(), payload.begin(), payload.end());

  bool level = false;  // virus starts inactive
  for (std::size_t i = 0; i < frame.size(); ++i) {
    if (frame[i] == level) continue;  // PiecewiseConstant coalesces anyway
    const sim::TimeNs at{start.ns +
                         config.bit_period.ns * static_cast<std::int64_t>(i)};
    virus.set_active_groups(at, frame[i] ? config.groups_high : 0);
    level = frame[i];
  }
  // Return to idle after the frame.
  if (level) {
    virus.set_active_groups(
        sim::TimeNs{start.ns + config.bit_period.ns *
                                   static_cast<std::int64_t>(frame.size())},
        0);
  }
  return virus;
}

namespace {

// Mean of the samples whose timestamps fall in the second half of bit i's
// window. hwmon registers lag by one conversion interval (~35 ms), so the
// late part of the bit is where readings reflect conversions fully inside
// the bit — provided bit_period >= 2 conversion intervals.
double bit_window_mean(const CovertChannelConfig& config, const Trace& trace,
                       sim::TimeNs tx_start, std::size_t bit_index) {
  const sim::TimeNs bit_start{
      tx_start.ns +
      config.bit_period.ns * static_cast<std::int64_t>(bit_index)};
  const sim::TimeNs lo{bit_start.ns + config.bit_period.ns / 2};
  const sim::TimeNs hi{bit_start.ns + config.bit_period.ns};
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const sim::TimeNs t = trace.time_of(i);
    if (t < lo || t >= hi) continue;
    sum += trace[i];
    ++n;
  }
  if (n == 0) {
    throw std::invalid_argument(
        "covert: trace does not cover a bit window (sample too sparse or "
        "trace too short)");
  }
  return sum / static_cast<double>(n);
}

}  // namespace

DecodeResult decode_transmission(const CovertChannelConfig& config,
                                 const Trace& trace, sim::TimeNs tx_start,
                                 std::size_t payload_bits) {
  if (config.preamble_bits < 2) {
    throw std::invalid_argument("covert: need at least 2 preamble bits");
  }
  DecodeResult result;

  // Calibrate on the alternating preamble.
  std::vector<double> highs;
  std::vector<double> lows;
  for (std::size_t i = 0; i < config.preamble_bits; ++i) {
    const double level = bit_window_mean(config, trace, tx_start, i);
    if (i % 2 == 0) {
      highs.push_back(level);
    } else {
      lows.push_back(level);
    }
  }
  result.high_level_ma = stats::mean(highs);
  result.low_level_ma = stats::mean(lows);
  result.threshold_ma = 0.5 * (result.high_level_ma + result.low_level_ma);

  result.bits.reserve(payload_bits);
  for (std::size_t i = 0; i < payload_bits; ++i) {
    const double level = bit_window_mean(config, trace, tx_start,
                                         config.preamble_bits + i);
    result.bits.push_back(level > result.threshold_ma);
  }
  return result;
}

double bit_error_rate(const std::vector<bool>& sent,
                      const std::vector<bool>& received) {
  if (sent.empty() && received.empty()) return 0.0;
  const std::size_t n = std::max(sent.size(), received.size());
  std::size_t errors = n - std::min(sent.size(), received.size());
  for (std::size_t i = 0; i < std::min(sent.size(), received.size()); ++i) {
    if (sent[i] != received[i]) ++errors;
  }
  return static_cast<double>(errors) / static_cast<double>(n);
}

}  // namespace amperebleed::core
