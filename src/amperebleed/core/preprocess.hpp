#pragma once
// Trace preprocessing: the attacker-side cleanup steps between raw hwmon
// polls and analysis/classification. All functions are pure and operate on
// plain sample vectors so they compose freely.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

namespace amperebleed::core {

class Trace;

/// How to reconstruct gap samples (failed reads the resilient sampler
/// recorded as invalid placeholders) before a trace reaches features/ml.
///
///   HoldLast          — forward-fill from the last valid sample (what a
///                       frozen hwmon register would have shown; matches the
///                       FrozenRegister fault's physics). Leading gaps
///                       backfill from the first valid sample.
///   LinearInterpolate — straight line between the valid neighbours; edge
///                       gaps clamp to the nearest valid sample.
///   Drop              — remove invalid samples (shortens the series; only
///                       safe for consumers that tolerate length changes).
enum class GapPolicy { HoldLast, LinearInterpolate, Drop };

inline constexpr std::size_t kGapPolicyCount = 3;
inline constexpr GapPolicy kAllGapPolicies[] = {
    GapPolicy::HoldLast,
    GapPolicy::LinearInterpolate,
    GapPolicy::Drop,
};

std::string_view gap_policy_name(GapPolicy p);
/// Inverse of gap_policy_name; nullopt for unknown names.
std::optional<GapPolicy> gap_policy_from_name(std::string_view name);

/// Reconstruct the invalid samples of `values` (validity[i] == 0) per the
/// policy. An empty validity mask means "all valid" (the gapless fast
/// path): the input is returned unchanged. An all-invalid series
/// reconstructs to zeros (HoldLast/LinearInterpolate) or empty (Drop).
/// Throws if a non-empty mask's length mismatches `values`.
std::vector<double> fill_gaps(std::span<const double> values,
                              std::span<const std::uint8_t> validity,
                              GapPolicy policy);

/// Convenience overload pulling values/validity from a Trace.
std::vector<double> fill_gaps(const Trace& trace, GapPolicy policy);

/// Remove the least-squares linear trend (slow thermal drift) in place.
void detrend(std::vector<double>& xs);

/// Linear-interpolation resample to `target_len` points spanning the same
/// duration. Throws on empty input or target_len == 0.
std::vector<double> resample(std::span<const double> xs,
                             std::size_t target_len);

/// Collapse runs of repeated register values (polling faster than the
/// sensor's update interval) to one sample per run — recovers the distinct
/// conversion sequence from an oversampled trace.
std::vector<double> deduplicate_runs(std::span<const double> xs);

/// Delay of `probe` relative to `reference` in [-max_shift, +max_shift]:
/// the lag maximizing normalized cross-correlation of the overlapping
/// region, such that shift(reference, result) ~ probe. Returns 0 for
/// degenerate inputs.
int best_alignment_shift(std::span<const double> reference,
                         std::span<const double> probe, std::size_t max_shift);

/// Shift a series by `lag` samples (positive = delay), padding with the
/// edge value, preserving length.
std::vector<double> shift(std::span<const double> xs, int lag);

/// Sliding-window means with the given window and stride (window >= 1,
/// stride >= 1); windows are full (truncated tail dropped).
std::vector<double> sliding_mean(std::span<const double> xs,
                                 std::size_t window, std::size_t stride);

}  // namespace amperebleed::core
