#pragma once
// Trace preprocessing: the attacker-side cleanup steps between raw hwmon
// polls and analysis/classification. All functions are pure and operate on
// plain sample vectors so they compose freely.

#include <cstddef>
#include <span>
#include <vector>

namespace amperebleed::core {

/// Remove the least-squares linear trend (slow thermal drift) in place.
void detrend(std::vector<double>& xs);

/// Linear-interpolation resample to `target_len` points spanning the same
/// duration. Throws on empty input or target_len == 0.
std::vector<double> resample(std::span<const double> xs,
                             std::size_t target_len);

/// Collapse runs of repeated register values (polling faster than the
/// sensor's update interval) to one sample per run — recovers the distinct
/// conversion sequence from an oversampled trace.
std::vector<double> deduplicate_runs(std::span<const double> xs);

/// Delay of `probe` relative to `reference` in [-max_shift, +max_shift]:
/// the lag maximizing normalized cross-correlation of the overlapping
/// region, such that shift(reference, result) ~ probe. Returns 0 for
/// degenerate inputs.
int best_alignment_shift(std::span<const double> reference,
                         std::span<const double> probe, std::size_t max_shift);

/// Shift a series by `lag` samples (positive = delay), padding with the
/// edge value, preserving length.
std::vector<double> shift(std::span<const double> xs, int lag);

/// Sliding-window means with the given window and stride (window >= 1,
/// stride >= 1); windows are full (truncated tail dropped).
std::vector<double> sliding_mean(std::span<const double> xs,
                                 std::size_t window, std::size_t stride);

}  // namespace amperebleed::core
