#include "amperebleed/core/fingerprint.hpp"

#include <stdexcept>

#include "amperebleed/core/features.hpp"
#include "amperebleed/core/sampler.hpp"
#include "amperebleed/dnn/zoo.hpp"
#include "amperebleed/obs/obs.hpp"
#include "amperebleed/util/parallel.hpp"
#include "amperebleed/util/rng.hpp"

namespace amperebleed::core {

const std::vector<Channel>& table3_channels() {
  static const std::vector<Channel> channels = {
      {power::Rail::FpdCpu, Quantity::Current},
      {power::Rail::LpdCpu, Quantity::Current},
      {power::Rail::Ddr, Quantity::Current},
      {power::Rail::FpgaLogic, Quantity::Current},
      {power::Rail::FpgaLogic, Quantity::Voltage},
      {power::Rail::FpgaLogic, Quantity::Power},
  };
  return channels;
}

namespace {

std::vector<dnn::Model> limited_zoo(std::size_t limit) {
  auto zoo = dnn::build_zoo();
  if (limit != 0 && limit < zoo.size()) {
    zoo.resize(limit);
  }
  return zoo;
}

/// One victim run: fresh SoC, DPU inference loop of `model`, traces from all
/// table3 channels starting at a jittered trigger offset.
std::vector<Trace> record_run(const dnn::Model& model,
                              const FingerprintConfig& config,
                              std::size_t n_samples, std::uint64_t run_seed) {
  // Acquire stage: the whole victim run — SoC build, DPU schedule, sensor
  // polling — is one acquisition unit in the pipeline timeline.
  obs::StageSpan stage(obs::Stage::Acquire);
  stage.span().set_attr("model_id", model.name);

  util::Rng rng(run_seed);
  const sim::TimeNs jitter{static_cast<std::int64_t>(
      rng.uniform() *
      static_cast<double>(config.max_trigger_jitter.ns))};

  dpu::DpuAccelerator dpu(config.dpu);
  // The victim keeps inferring a little past the observation window.
  const sim::TimeNs run_end{config.trace_duration.ns + jitter.ns +
                            sim::milliseconds(200).ns};
  auto run = dpu.run(model, sim::TimeNs{0}, run_end,
                     util::hash_combine(run_seed, 0xd9));
  const power::RailActivity background = soc::make_background_os_activity(
      config.background, run_end, util::hash_combine(run_seed, 0x05));

  soc::SocConfig soc_config =
      soc::zcu102_config(util::hash_combine(run_seed, 0x50c));
  if (config.sensor_avg_override) {
    for (auto& sensor : soc_config.sensor) {
      sensor.avg_count = *config.sensor_avg_override;
    }
  }
  soc::Soc soc(soc_config);
  soc.fabric().deploy(dpu.descriptor());
  soc.add_activity(run.activity);
  soc.add_activity(background);
  soc.finalize();

  // Per-run chaos: the injector's seed mixes the plan seed with the run
  // seed, so every run replays its own schedule regardless of which worker
  // thread records it.
  std::optional<faults::FaultInjector> injector;
  if (config.fault_plan && config.fault_plan->any()) {
    faults::FaultPlan plan = *config.fault_plan;
    plan.seed = util::hash_combine(plan.seed, run_seed);
    injector.emplace(plan);
    injector->attach(soc.hwmon().fs());
  }

  Sampler sampler(soc);
  sampler.set_resilience(config.resilience);
  SamplerConfig sc;
  sc.period = config.sample_period;
  sc.sample_count = n_samples;
  return sampler.collect_multi(table3_channels(), jitter, sc);
}

}  // namespace

FingerprintTraceSet collect_fingerprint_traces(
    const FingerprintConfig& config) {
  if (config.traces_per_model < config.folds) {
    throw std::invalid_argument(
        "fingerprint: traces_per_model must be >= folds for stratified CV");
  }
  const auto zoo = limited_zoo(config.model_limit);
  if (zoo.empty()) throw std::invalid_argument("fingerprint: empty zoo");

  FingerprintTraceSet out;
  out.sample_period = config.sample_period;
  out.samples_per_trace =
      samples_for_duration(config.trace_duration, config.sample_period);
  for (const auto& m : zoo) out.model_names.push_back(m.name);

  const std::size_t runs = zoo.size() * config.traces_per_model;
  // Record runs in parallel into pre-sized slots, then assemble datasets in
  // deterministic order.
  std::vector<std::vector<Trace>> recorded(runs);
  util::parallel_for(
      runs,
      [&](std::size_t r) {
        const std::size_t model_idx = r / config.traces_per_model;
        recorded[r] = record_run(zoo[model_idx], config, out.samples_per_trace,
                                 util::hash_combine(config.seed, r));
      },
      config.threads);

  out.per_channel.assign(table3_channels().size(),
                         ml::Dataset(out.samples_per_trace));
  for (std::size_t r = 0; r < runs; ++r) {
    // Features stage: one recorded run folded into the per-channel datasets
    // (gap preprocessing happens inside add_trace when a trace has holes).
    obs::StageSpan stage(obs::Stage::Features);
    stage.span().set_arg("run", static_cast<double>(r));
    stage.span().set_attr("model_id",
                          out.model_names[r / config.traces_per_model]);
    const int label = static_cast<int>(r / config.traces_per_model);
    for (std::size_t c = 0; c < out.per_channel.size(); ++c) {
      add_trace(out.per_channel[c], recorded[r][c], label,
                out.samples_per_trace, config.gap_policy);
    }
  }
  return out;
}

Table3Result evaluate_fingerprint(const FingerprintTraceSet& traces,
                                  const FingerprintConfig& config) {
  Table3Result result;
  result.durations_s = config.durations_s;
  result.class_count = traces.model_names.size();
  for (const auto& c : table3_channels()) {
    result.channel_names.push_back(channel_name(c));
  }

  const std::size_t n_channels = traces.per_channel.size();
  const std::size_t n_durations = config.durations_s.size();
  result.cells.assign(n_channels,
                      std::vector<Table3Cell>(n_durations));

  // Each (channel, duration) cell is an independent CV job.
  util::parallel_for(
      n_channels * n_durations,
      [&](std::size_t job) {
        const std::size_t c = job / n_durations;
        const std::size_t d = job % n_durations;
        // Classify stage: one (channel, duration) cross-validation cell.
        obs::StageSpan stage(obs::Stage::Classify);
        stage.span().set_attr("channel", result.channel_names[c]);
        stage.span().set_arg("duration_s", config.durations_s[d]);
        const std::size_t features = samples_for_duration(
            sim::from_seconds(config.durations_s[d]), traces.sample_period);
        if (features == 0 || features > traces.samples_per_trace) {
          throw std::invalid_argument("fingerprint: bad duration");
        }
        const ml::Dataset data =
            traces.per_channel[c].truncated_features(features);
        ml::ForestConfig fc = config.forest;
        fc.seed = util::hash_combine(config.seed, 0xf0 + job);
        const auto cv = ml::cross_validate(
            data, fc, config.folds, util::hash_combine(config.seed, job));
        result.cells[c][d] = Table3Cell{cv.top1_accuracy, cv.top5_accuracy};
      },
      config.threads);

  return result;
}

std::vector<Fig3Trace> collect_fig3_traces(const FingerprintConfig& config) {
  const auto names = dnn::fig3_model_names();
  const std::size_t n_samples =
      samples_for_duration(config.trace_duration, config.sample_period);

  // One victim run per model, recorded in parallel into pre-sized slots.
  // Every per-model seed is a pure function of (config.seed, m) — the same
  // values the former serial loop derived from out.size() — so the traces
  // are bit-identical at any thread count.
  std::vector<Fig3Trace> out(names.size());
  util::parallel_for(
      names.size(),
      [&](std::size_t m) {
        const dnn::Model model = dnn::build_model(names[m]);

        dpu::DpuAccelerator dpu(config.dpu);
        const sim::TimeNs run_end{config.trace_duration.ns +
                                  sim::milliseconds(200).ns};
        auto run = dpu.run(model, sim::TimeNs{0}, run_end,
                           util::hash_combine(config.seed, model.total_macs()));

        soc::Soc soc(
            soc::zcu102_config(util::hash_combine(config.seed, 0xf13 + m)));
        soc.fabric().deploy(dpu.descriptor());
        soc.add_activity(run.activity);
        soc.add_activity(soc::make_background_os_activity(
            config.background, run_end,
            util::hash_combine(config.seed, 0xb05 + m)));
        soc.finalize();

        Sampler sampler(soc);
        SamplerConfig sc;
        sc.period = config.sample_period;
        sc.sample_count = n_samples;

        std::vector<Channel> channels;
        for (power::Rail rail : power::kAllRails) {
          channels.push_back(Channel{rail, Quantity::Current});
        }
        Fig3Trace& ft = out[m];
        ft.model_name = names[m];
        ft.model_size_bytes = model.total_weight_bytes();
        ft.rail_current = sampler.collect_multi(channels, sim::TimeNs{0}, sc);
      },
      config.threads);
  return out;
}

}  // namespace amperebleed::core
