#include "amperebleed/core/online.hpp"

#include <algorithm>
#include <stdexcept>

#include "amperebleed/obs/obs.hpp"

namespace amperebleed::core {

OnlineFingerprinter::OnlineFingerprinter(OnlineFingerprinterConfig config)
    : config_(config), forest_(config.forest) {}

OnlineFingerprinter OnlineFingerprinter::restore(
    OnlineFingerprinterConfig config, RestoredState state) {
  if (state.trained && state.arena.empty()) {
    throw std::invalid_argument(
        "OnlineFingerprinter::restore: trained state without a forest");
  }
  if (!state.data.empty() &&
      state.data.feature_count() != state.feature_count) {
    throw std::invalid_argument(
        "OnlineFingerprinter::restore: dataset width disagrees with "
        "feature_count");
  }
  for (const int label : state.data.labels()) {
    if (label < 0 ||
        static_cast<std::size_t>(label) >= state.class_names.size()) {
      throw std::invalid_argument(
          "OnlineFingerprinter::restore: label outside class_names");
    }
  }
  OnlineFingerprinter fp(config);
  fp.feature_count_ = state.feature_count;
  fp.class_names_ = std::move(state.class_names);
  fp.data_ = std::move(state.data);
  if (fp.feature_count_ != 0 && fp.data_.empty() &&
      fp.data_.feature_count() != fp.feature_count_) {
    fp.data_ = ml::Dataset(fp.feature_count_);
  }
  if (state.trained) {
    fp.forest_ =
        ml::RandomForest::from_arena(config.forest, std::move(state.arena));
    fp.trained_ = true;
    if (config.drift.enabled && state.drift_reference.has_value()) {
      // Rebuilt with an empty observation window: drift monitoring is
      // observation-only, so restored classify verdicts stay bit-identical.
      fp.monitor_ = std::make_unique<obs::DriftMonitor>(
          std::move(*state.drift_reference), config.drift);
    }
  }
  return fp;
}

void OnlineFingerprinter::enroll(const Trace& trace,
                                 const std::string& model_name) {
  if (trained_) {
    throw std::logic_error("OnlineFingerprinter: already trained");
  }
  if (trace.empty()) {
    throw std::invalid_argument("OnlineFingerprinter: empty trace");
  }
  if (feature_count_ == 0) {
    feature_count_ = trace.size();
    data_ = ml::Dataset(feature_count_);
  }
  const auto it =
      std::find(class_names_.begin(), class_names_.end(), model_name);
  int label = 0;
  if (it == class_names_.end()) {
    label = static_cast<int>(class_names_.size());
    class_names_.push_back(model_name);
  } else {
    label = static_cast<int>(std::distance(class_names_.begin(), it));
  }
  data_.add(trace.prefix(feature_count_), label);
}

void OnlineFingerprinter::train() {
  if (trained_) throw std::logic_error("OnlineFingerprinter: already trained");
  if (class_names_.size() < 2) {
    throw std::logic_error(
        "OnlineFingerprinter: need at least 2 enrolled classes");
  }
  forest_ = ml::RandomForest(config_.forest);
  forest_.fit(data_);
  trained_ = true;
  if (config_.drift.enabled) {
    monitor_ = std::make_unique<obs::DriftMonitor>(
        obs::ReferenceProfile::from_dataset(data_, config_.drift.sketch_bins),
        config_.drift);
  }
}

void OnlineFingerprinter::reset_drift_window() {
  if (monitor_) monitor_->reset_window();
}

OnlineFingerprinter::Verdict OnlineFingerprinter::verdict_from_proba(
    std::span<const double> proba) const {
  Verdict verdict;
  verdict.ranking.reserve(proba.size());
  for (std::size_t c = 0; c < proba.size(); ++c) {
    verdict.ranking.emplace_back(class_names_[c], proba[c]);
  }
  std::stable_sort(verdict.ranking.begin(), verdict.ranking.end(),
                   [](const auto& a, const auto& b) {
                     return a.second > b.second;
                   });
  verdict.model_name = verdict.ranking[0].first;
  verdict.confidence = verdict.ranking[0].second;
  verdict.margin = verdict.ranking.size() > 1
                       ? verdict.confidence - verdict.ranking[1].second
                       : verdict.confidence;
  verdict.known = verdict.confidence >= config_.min_confidence &&
                  verdict.margin >= config_.min_margin;
  return verdict;
}

OnlineFingerprinter::Verdict OnlineFingerprinter::classify(
    const Trace& trace) const {
  if (!trained_) throw std::logic_error("OnlineFingerprinter: not trained");
  // Classify stage: one online request, the unit the SLO engine meters.
  obs::StageSpan stage(obs::Stage::Classify);
  stage.span().set_attr("channel", channel_name(trace.channel()));
  const auto features = trace.prefix(feature_count_);
  Verdict verdict = verdict_from_proba(forest_.predict_proba(features));
  if (monitor_) feed_monitor(features, verdict);
  return verdict;
}

std::vector<OnlineFingerprinter::Verdict> OnlineFingerprinter::classify_many(
    const std::vector<Trace>& traces) const {
  std::vector<const Trace*> rows;
  rows.reserve(traces.size());
  for (const Trace& trace : traces) rows.push_back(&trace);
  return classify_many(std::span<const Trace* const>(rows));
}

std::vector<OnlineFingerprinter::Verdict> OnlineFingerprinter::classify_many(
    std::span<const Trace* const> traces) const {
  if (!trained_) throw std::logic_error("OnlineFingerprinter: not trained");
  obs::StageSpan stage(obs::Stage::Classify);
  stage.span().set_arg("batch", static_cast<double>(traces.size()));
  // Materialize feature rows first (prefix() copies), then hand the whole
  // batch to the forest in one predict_proba_many call: the cache-blocked
  // SoA arena kernel streams the packed trees once per block of rows (no
  // per-tree pointer chasing), blocks run in parallel on the thread pool,
  // and results come back in input order.
  std::vector<std::vector<double>> rows;
  rows.reserve(traces.size());
  for (const Trace* trace : traces) {
    rows.push_back(trace->prefix(feature_count_));
  }
  std::vector<std::span<const double>> row_spans;
  row_spans.reserve(rows.size());
  for (const auto& row : rows) row_spans.emplace_back(row);

  const auto probas = forest_.predict_proba_many(row_spans);
  std::vector<Verdict> verdicts;
  verdicts.reserve(probas.size());
  for (std::size_t i = 0; i < probas.size(); ++i) {
    verdicts.push_back(verdict_from_proba(probas[i]));
    // Feed the monitor serially in input order — drift evaluation is a pure
    // function of the observation sequence, so batch classification stays
    // bit-identical to per-trace classify() at any pool size.
    if (monitor_) feed_monitor(rows[i], verdicts.back());
  }
  return verdicts;
}

void OnlineFingerprinter::feed_monitor(std::span<const double> features,
                                       const Verdict& verdict) const {
  // Winner index = position of the verdict's model in enrollment order;
  // matches verdict_from_proba's stable_sort first-max tie-break.
  const auto it = std::find(class_names_.begin(), class_names_.end(),
                            verdict.model_name);
  const int winner =
      static_cast<int>(std::distance(class_names_.begin(), it));
  monitor_->observe(features, winner, verdict.confidence);
}

}  // namespace amperebleed::core
