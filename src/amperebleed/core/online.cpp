#include "amperebleed/core/online.hpp"

#include <algorithm>
#include <stdexcept>

namespace amperebleed::core {

OnlineFingerprinter::OnlineFingerprinter(OnlineFingerprinterConfig config)
    : config_(config), forest_(config.forest) {}

void OnlineFingerprinter::enroll(const Trace& trace,
                                 const std::string& model_name) {
  if (trained_) {
    throw std::logic_error("OnlineFingerprinter: already trained");
  }
  if (trace.empty()) {
    throw std::invalid_argument("OnlineFingerprinter: empty trace");
  }
  if (feature_count_ == 0) {
    feature_count_ = trace.size();
    data_ = ml::Dataset(feature_count_);
  }
  const auto it =
      std::find(class_names_.begin(), class_names_.end(), model_name);
  int label = 0;
  if (it == class_names_.end()) {
    label = static_cast<int>(class_names_.size());
    class_names_.push_back(model_name);
  } else {
    label = static_cast<int>(std::distance(class_names_.begin(), it));
  }
  data_.add(trace.prefix(feature_count_), label);
}

void OnlineFingerprinter::train() {
  if (trained_) throw std::logic_error("OnlineFingerprinter: already trained");
  if (class_names_.size() < 2) {
    throw std::logic_error(
        "OnlineFingerprinter: need at least 2 enrolled classes");
  }
  forest_ = ml::RandomForest(config_.forest);
  forest_.fit(data_);
  trained_ = true;
}

OnlineFingerprinter::Verdict OnlineFingerprinter::classify(
    const Trace& trace) const {
  if (!trained_) throw std::logic_error("OnlineFingerprinter: not trained");
  const auto features = trace.prefix(feature_count_);
  const auto proba = forest_.predict_proba(features);

  Verdict verdict;
  verdict.ranking.reserve(proba.size());
  for (std::size_t c = 0; c < proba.size(); ++c) {
    verdict.ranking.emplace_back(class_names_[c], proba[c]);
  }
  std::stable_sort(verdict.ranking.begin(), verdict.ranking.end(),
                   [](const auto& a, const auto& b) {
                     return a.second > b.second;
                   });
  verdict.model_name = verdict.ranking[0].first;
  verdict.confidence = verdict.ranking[0].second;
  verdict.margin = verdict.ranking.size() > 1
                       ? verdict.confidence - verdict.ranking[1].second
                       : verdict.confidence;
  verdict.known = verdict.confidence >= config_.min_confidence &&
                  verdict.margin >= config_.min_margin;
  return verdict;
}

}  // namespace amperebleed::core
