#include "amperebleed/core/features.hpp"

#include <cmath>
#include <stdexcept>

#include "amperebleed/obs/obs.hpp"
#include "amperebleed/stats/descriptive.hpp"

namespace amperebleed::core {

std::size_t samples_for_duration(sim::TimeNs duration, sim::TimeNs period) {
  if (period.ns <= 0) return 0;
  return static_cast<std::size_t>(duration.ns / period.ns);
}

void standardize(std::vector<double>& xs) {
  const auto s = stats::summarize(xs);
  if (s.stddev == 0.0) {
    for (double& x : xs) x = 0.0;
    return;
  }
  for (double& x : xs) x = (x - s.mean) / s.stddev;
}

void add_trace(ml::Dataset& dataset, const Trace& trace, int label,
               std::size_t feature_count) {
  dataset.add(trace.prefix(feature_count), label);
}

void add_trace(ml::Dataset& dataset, const Trace& trace, int label,
               std::size_t feature_count, GapPolicy policy) {
  if (trace.fully_valid()) {
    add_trace(dataset, trace, label, feature_count);
    return;
  }
  if (policy == GapPolicy::Drop) {
    throw std::invalid_argument(
        "add_trace: GapPolicy::Drop would change the feature length; use "
        "hold-last or linear-interpolate");
  }
  // Preprocess stage: only holey traces pay it — gapless traces take the
  // fast path above, so clean runs report a (correctly) empty stage.
  obs::StageSpan stage(obs::Stage::Preprocess);
  stage.span().set_arg("samples", static_cast<double>(trace.size()));
  std::vector<double> filled = fill_gaps(trace, policy);
  if (filled.size() < feature_count) {
    throw std::invalid_argument("add_trace: trace too short");
  }
  filled.resize(feature_count);
  dataset.add(filled, label);
}

ml::Dataset build_dataset(
    const std::vector<std::vector<Trace>>& traces_by_label,
    std::size_t feature_count) {
  ml::Dataset dataset(feature_count);
  for (std::size_t label = 0; label < traces_by_label.size(); ++label) {
    for (const auto& trace : traces_by_label[label]) {
      add_trace(dataset, trace, static_cast<int>(label), feature_count);
    }
  }
  return dataset;
}

}  // namespace amperebleed::core
