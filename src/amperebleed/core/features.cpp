#include "amperebleed/core/features.hpp"

#include <cmath>
#include <stdexcept>

#include "amperebleed/obs/obs.hpp"
#include "amperebleed/util/simd_kernels.hpp"

namespace amperebleed::core {

std::size_t samples_for_duration(sim::TimeNs duration, sim::TimeNs period) {
  if (period.ns <= 0) return 0;
  return static_cast<std::size_t>(duration.ns / period.ns);
}

void standardize(std::vector<double>& xs) {
  if (xs.empty()) return;
  // Mean and sum-of-squares accumulate in exactly stats::summarize's order
  // (sum += x, then ss += d*d over the same sequence), so mean/stddev — and
  // hence every standardized bit — match the pre-PR9 summarize-based
  // version; we just skip its min/max bookkeeping. The transform itself
  // goes through the dispatched elementwise kernel (sub + div only, so all
  // SIMD tiers agree exactly; see DESIGN.md §14).
  double sum = 0.0;
  for (double x : xs) sum += x;
  const double mean = sum / static_cast<double>(xs.size());
  double ss = 0.0;
  for (double x : xs) {
    const double d = x - mean;
    ss += d * d;
  }
  const double stddev = std::sqrt(ss / static_cast<double>(xs.size()));
  if (stddev == 0.0) {
    for (double& x : xs) x = 0.0;
    return;
  }
  util::simd::normalize(xs.data(), xs.size(), mean, stddev);
}

void add_trace(ml::Dataset& dataset, const Trace& trace, int label,
               std::size_t feature_count) {
  // Hand the prefix to the dataset as a subspan of the trace's own storage:
  // Trace::prefix() would materialize a temporary vector only for add() to
  // copy it again.
  const auto values = trace.values();
  if (feature_count > values.size()) {
    throw std::invalid_argument("Trace::prefix: trace too short");
  }
  dataset.add(values.first(feature_count), label);
}

void add_trace(ml::Dataset& dataset, const Trace& trace, int label,
               std::size_t feature_count, GapPolicy policy) {
  if (trace.fully_valid()) {
    add_trace(dataset, trace, label, feature_count);
    return;
  }
  if (policy == GapPolicy::Drop) {
    throw std::invalid_argument(
        "add_trace: GapPolicy::Drop would change the feature length; use "
        "hold-last or linear-interpolate");
  }
  // Preprocess stage: only holey traces pay it — gapless traces take the
  // fast path above, so clean runs report a (correctly) empty stage.
  obs::StageSpan stage(obs::Stage::Preprocess);
  stage.span().set_arg("samples", static_cast<double>(trace.size()));
  std::vector<double> filled = fill_gaps(trace, policy);
  if (filled.size() < feature_count) {
    throw std::invalid_argument("add_trace: trace too short");
  }
  filled.resize(feature_count);
  dataset.add(filled, label);
}

ml::Dataset build_dataset(
    const std::vector<std::vector<Trace>>& traces_by_label,
    std::size_t feature_count) {
  ml::Dataset dataset(feature_count);
  std::size_t total = 0;
  for (const auto& group : traces_by_label) total += group.size();
  dataset.reserve(total);
  for (std::size_t label = 0; label < traces_by_label.size(); ++label) {
    for (const auto& trace : traces_by_label[label]) {
      add_trace(dataset, trace, static_cast<int>(label), feature_count);
    }
  }
  return dataset;
}

}  // namespace amperebleed::core
