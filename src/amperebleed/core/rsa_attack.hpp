#pragma once
// RSA Hamming-weight attack (Fig 4): while the victim circuit repeatedly
// encrypts, an unprivileged 1 kHz sampler records the FPGA rail's current
// and power from hwmon. The per-key current distributions separate all 17
// Hamming-weight classes; the 25 mW power LSB collapses them into ~5 groups.

#include <cstdint>
#include <vector>

#include "amperebleed/core/hw_estimate.hpp"
#include "amperebleed/fpga/rsa_circuit.hpp"
#include "amperebleed/sim/time.hpp"
#include "amperebleed/stats/descriptive.hpp"

namespace amperebleed::core {

struct RsaAttackConfig {
  /// 1 kHz x 100k samples = 100 s per key (paper settings). Defaults are
  /// reduced for the bench; pass the paper values to reproduce exactly.
  std::size_t sample_count = 20'000;
  sim::TimeNs sample_period = sim::milliseconds(1);
  /// Hamming weights of the probed keys; default is the paper's schedule
  /// 1, 64, 128, ..., 1024.
  std::vector<std::size_t> hamming_weights;
  fpga::RsaCircuitConfig circuit{};
  /// Threshold-classifier accuracy above which two key classes count as
  /// separable when grouping distributions.
  double separability_accuracy = 0.95;
  std::uint64_t seed = 0xf164;
};

struct RsaKeyObservation {
  std::size_t hamming_weight = 0;
  stats::Summary current_ma;  // distribution of curr1_input readings
  stats::Summary power_mw;    // power1_input scaled to mW
  std::vector<double> current_samples_ma;
  std::vector<double> power_samples_mw;
  std::size_t encryptions_observed = 0;
  /// Leave-one-out Hamming-weight estimate: the estimator is calibrated on
  /// every *other* key's trace, then inverted on this one — the realistic
  /// "victim key is unknown" evaluation.
  HammingWeightEstimator::Estimate loo_estimate;
  /// log2 of the residual brute-force space given the estimate's 95% CI.
  double log2_residual_search_space = 0.0;
};

struct RsaAttackResult {
  std::vector<RsaKeyObservation> keys;  // ordered by hamming weight
  /// Group ids from stats::group_indistinguishable over the key order.
  std::vector<std::size_t> current_group_ids;
  std::vector<std::size_t> power_group_ids;
  std::size_t current_groups = 0;  // paper: 17 (all separable)
  std::size_t power_groups = 0;    // paper: ~5
  /// log2 of the unconstrained exponent space (= key_bits).
  double log2_full_search_space = 0.0;
  /// Number of distinct sensor conversions per trace (what the HW
  /// estimator's confidence interval is based on).
  std::size_t independent_samples_per_key = 0;
};

RsaAttackResult run_rsa_attack(const RsaAttackConfig& config);

/// The default (paper) Hamming-weight schedule for convenience.
std::vector<std::size_t> default_hamming_weights();

}  // namespace amperebleed::core
