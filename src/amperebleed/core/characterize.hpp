#pragma once
// Fig 2 experiment: characterize how the four observation channels (hwmon
// current/voltage/power of the FPGA rail + a distributed RO sensor bank)
// respond to 161 victim activity levels produced by the power virus, and
// quantify the per-level variation of each channel in units of its own LSB
// — the basis of the paper's "261x greater variation than RO" claim.

#include <cstdint>
#include <optional>
#include <vector>

#include "amperebleed/fpga/power_virus.hpp"
#include "amperebleed/fpga/ring_oscillator.hpp"
#include "amperebleed/fpga/tdc_sensor.hpp"
#include "amperebleed/sim/time.hpp"
#include "amperebleed/soc/soc.hpp"
#include "amperebleed/stats/regression.hpp"

namespace amperebleed::core {

struct CharacterizationConfig {
  /// Activity levels 0..levels-1 (paper: 161, i.e. 0..160 active groups).
  std::size_t levels = 161;
  /// hwmon samples averaged per level (paper collects 10k; the default is
  /// reduced because repeated reads of the same conversion add no
  /// information in simulation — see EXPERIMENTS.md).
  std::size_t samples_per_level = 1000;
  /// RO counter reads averaged per level.
  std::size_t ro_samples_per_level = 1000;
  sim::TimeNs sample_period = sim::milliseconds(35);
  /// Conversions discarded after each level switch (settling).
  std::size_t settle_samples = 2;
  fpga::PowerVirusConfig virus{};
  fpga::RingOscillatorConfig ro{};
  /// Also deploy a TDC delay-line sensor (second crafted-circuit baseline,
  /// sampled at the RO cadence).
  bool with_tdc = false;
  fpga::TdcConfig tdc{};
  /// Override the FPGA rail's PDN stabilizer gain (0 = legacy unstabilized
  /// PDN, 1 = ideal regulation). Used by the stabilizer ablation.
  std::optional<double> stabilizer_gain_override;
  std::uint64_t seed = 0xf162;
};

/// One channel's response across levels.
struct ChannelSeries {
  std::vector<double> mean_per_level;  // hwmon units (mA/mV/uW) or RO counts
  double pearson_vs_level = 0.0;
  stats::LinearFit fit;  // mean vs level
  double lsb = 1.0;      // channel LSB in the series' unit
  /// |fitted response slope| per activity level, in units of the channel's
  /// own LSB — the paper's "variation per setting" (~40 LSB for current,
  /// ~0.006 LSB for voltage, 1-2 LSB for power).
  double variation_lsb_per_level = 0.0;
  /// Mean |delta| between consecutive level means in LSBs (response plus
  /// level-to-level noise); diagnostic companion to the fitted variation.
  double noisy_variation_lsb_per_level = 0.0;
};

struct CharacterizationResult {
  std::vector<double> level_axis;  // 0..levels-1
  ChannelSeries current;           // mA, LSB 1 mA
  ChannelSeries voltage;           // mV, LSB 1.25 mV
  ChannelSeries power;             // uW, LSB 25 mW
  ChannelSeries ro;                // counts, LSB 1 count
  /// Present when config.with_tdc is set; taps, LSB 1 tap.
  std::optional<ChannelSeries> tdc;
  /// current.variation / ro.variation — the paper reports ~261x.
  double current_over_ro_variation = 0.0;
};

CharacterizationResult run_characterization(const CharacterizationConfig& config);

}  // namespace amperebleed::core
