#pragma once
// Acquisition resilience policy: bounded retries with deterministic
// exponential backoff + seeded jitter, per-sample/per-trace backoff
// deadlines, and a per-channel health state machine with graceful
// degradation to fallback channels. The Sampler consumes all of this; the
// policy types live here so benches, tests and the fingerprint pipeline can
// configure chaos runs without pulling in the sampler.

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <string_view>
#include <vector>

#include "amperebleed/core/trace.hpp"
#include "amperebleed/sim/time.hpp"

namespace amperebleed::core {

/// Bounded retry with deterministic exponential backoff. The jitter for
/// retry `attempt` of decision stream `stream` is a pure function of
/// (jitter_seed, stream, attempt), so identical seeds replay identical
/// backoff schedules — chaos runs stay byte-reproducible.
struct RetryPolicy {
  /// Total tries per sample (1 = no retries).
  std::size_t max_attempts = 4;
  sim::TimeNs initial_backoff = sim::microseconds(200);
  double multiplier = 2.0;
  sim::TimeNs max_backoff = sim::milliseconds(8);
  /// Backoff is scaled by a seeded uniform draw in [1-jitter, 1+jitter).
  double jitter = 0.25;
  std::uint64_t jitter_seed = 0x5eed;
  /// Cap on the cumulative backoff spent on one sample (0 = unlimited).
  sim::TimeNs per_sample_deadline{0};
  /// Cap on the cumulative backoff spent across one collect/collect_multi
  /// call (0 = unlimited). Exhausting it fails remaining samples fast.
  sim::TimeNs per_trace_deadline{0};

  /// Backoff before retry `attempt` (1-based: the wait after the
  /// attempt-th failure).
  [[nodiscard]] sim::TimeNs backoff(std::size_t attempt,
                                    std::uint64_t stream) const;
};

/// Per-channel acquisition health.
///
///   Healthy ──consecutive failures──▶ Degraded ──more──▶ Quarantined
///      ▲                                                     │
///      └────────── Probing ◀──── skip probe_after instants ──┘
///            (probe ok → Healthy; probe fails → Quarantined)
enum class ChannelHealth { Healthy, Degraded, Quarantined, Probing };

inline constexpr std::size_t kChannelHealthCount = 4;
inline constexpr ChannelHealth kAllChannelHealths[] = {
    ChannelHealth::Healthy,
    ChannelHealth::Degraded,
    ChannelHealth::Quarantined,
    ChannelHealth::Probing,
};
static_assert(std::size(kAllChannelHealths) == kChannelHealthCount,
              "kAllChannelHealths must enumerate every state exactly once");

std::string_view channel_health_name(ChannelHealth h);

/// Thresholds driving the state machine (counts of *samples*, each of
/// which already exhausted its retry budget).
struct HealthPolicy {
  /// Consecutive failed samples before Healthy -> Degraded.
  std::size_t degrade_after = 2;
  /// Consecutive failed samples before -> Quarantined.
  std::size_t quarantine_after = 4;
  /// Sample instants skipped while Quarantined before a recovery probe.
  std::size_t probe_after = 8;
};

/// The sampler's complete resilience configuration. Disabled (the default)
/// preserves the strict legacy semantics: any failed read throws. Enabled
/// with a zero-fault board it is an exact no-op — no retry ever fires, no
/// gap is ever recorded, and traces stay bit-identical.
struct ResilienceConfig {
  bool enabled = false;
  RetryPolicy retry{};
  HealthPolicy health{};
  /// When a sample ultimately fails, substitute a single-shot read of the
  /// best available fallback channel (Table III accuracy order) instead of
  /// recording a gap.
  bool fallback_enabled = false;
};

/// Fallback channels for `primary`, ordered by Table III fingerprinting
/// accuracy (FPGA current 0.997 → FPGA power 0.989 → DRAM current 0.958),
/// with the primary itself removed.
std::vector<Channel> fallback_chain(const Channel& primary);

}  // namespace amperebleed::core
