#pragma once
// Feature engineering for the fingerprinting classifier. The paper feeds the
// (fixed-cadence) hwmon traces to a random forest directly; we keep the raw
// prefix as the feature vector and provide the helpers to assemble labelled
// datasets and to evaluate shorter observation windows by truncation.

#include <vector>

#include "amperebleed/core/preprocess.hpp"
#include "amperebleed/core/trace.hpp"
#include "amperebleed/ml/dataset.hpp"

namespace amperebleed::core {

/// Number of samples that fit in `duration` at `period` (floor).
std::size_t samples_for_duration(sim::TimeNs duration, sim::TimeNs period);

/// Z-score standardization in place; constant vectors become all zeros.
void standardize(std::vector<double>& xs);

/// Append a labelled trace (first `feature_count` samples) to a dataset.
void add_trace(ml::Dataset& dataset, const Trace& trace, int label,
               std::size_t feature_count);

/// Gap-aware variant: reconstruct any gap samples per `policy` before
/// truncation, so holey traces never leak 0.0 placeholders into features.
/// A gapless trace takes the exact plain-add path (bit-identical features).
/// GapPolicy::Drop is rejected — feature vectors are fixed-length.
void add_trace(ml::Dataset& dataset, const Trace& trace, int label,
               std::size_t feature_count, GapPolicy policy);

/// Assemble a dataset from per-label trace groups, using each trace's first
/// `feature_count` samples. Throws if any trace is too short.
ml::Dataset build_dataset(const std::vector<std::vector<Trace>>& traces_by_label,
                          std::size_t feature_count);

}  // namespace amperebleed::core
