#include "amperebleed/core/trace.hpp"

#include <algorithm>
#include <stdexcept>

namespace amperebleed::core {

std::string_view quantity_name(Quantity q) {
  switch (q) {
    case Quantity::Current:
      return "current";
    case Quantity::Voltage:
      return "voltage";
    case Quantity::Power:
      return "power";
  }
  return "unknown";
}

std::string_view quantity_attr(Quantity q) {
  switch (q) {
    case Quantity::Current:
      return "curr1_input";
    case Quantity::Voltage:
      return "in1_input";
    case Quantity::Power:
      return "power1_input";
  }
  return "unknown";
}

std::string_view quantity_unit(Quantity q) {
  switch (q) {
    case Quantity::Current:
      return "mA";
    case Quantity::Voltage:
      return "mV";
    case Quantity::Power:
      return "uW";
  }
  return "?";
}

std::string channel_name(const Channel& c) {
  return std::string(quantity_name(c.quantity)) + "(" +
         std::string(power::rail_name(c.rail)) + ")";
}

Trace::Trace(Channel channel, sim::TimeNs start, sim::TimeNs period)
    : channel_(channel), start_(start), period_(period) {
  if (period.ns <= 0) throw std::invalid_argument("Trace: period must be > 0");
}

std::size_t Trace::gap_count() const {
  if (validity_.empty()) return 0;
  return static_cast<std::size_t>(
      std::count(validity_.begin(), validity_.end(), std::uint8_t{0}));
}

std::vector<double> Trace::prefix(std::size_t count) const {
  if (count > values_.size()) {
    throw std::invalid_argument("Trace::prefix: trace too short");
  }
  return {values_.begin(),
          values_.begin() + static_cast<std::ptrdiff_t>(count)};
}

}  // namespace amperebleed::core
