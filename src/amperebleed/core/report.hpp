#pragma once
// Fixed-width text tables for the bench binaries, so each reproduces the
// paper's tables/figures as aligned terminal output.

#include <string>
#include <vector>

namespace amperebleed::core {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Throws std::invalid_argument on column-count mismatch.
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const { return headers_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with `decimals` places (helper for table cells).
std::string fmt(double value, int decimals = 3);

}  // namespace amperebleed::core
