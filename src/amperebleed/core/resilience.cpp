#include "amperebleed/core/resilience.hpp"

#include <algorithm>
#include <cmath>

#include "amperebleed/util/rng.hpp"

namespace amperebleed::core {

sim::TimeNs RetryPolicy::backoff(std::size_t attempt,
                                 std::uint64_t stream) const {
  if (attempt == 0) return sim::TimeNs{0};
  // Exponential growth, clamped before jitter so the cap is a true cap.
  double base = static_cast<double>(initial_backoff.ns);
  for (std::size_t i = 1; i < attempt; ++i) {
    base *= multiplier;
    if (base >= static_cast<double>(max_backoff.ns)) break;
  }
  base = std::min(base, static_cast<double>(max_backoff.ns));

  double scale = 1.0;
  if (jitter > 0.0) {
    // One seeded draw per (stream, attempt): fully deterministic, no
    // shared rng state to race on or to perturb across thread counts.
    util::Rng rng(util::hash_combine(util::hash_combine(jitter_seed, stream),
                                     attempt));
    scale = rng.uniform(1.0 - jitter, 1.0 + jitter);
  }
  const double jittered = std::max(0.0, base * scale);
  return sim::TimeNs{static_cast<std::int64_t>(std::llround(jittered))};
}

std::string_view channel_health_name(ChannelHealth h) {
  static_assert(kChannelHealthCount == 4,
                "new ChannelHealth: add a case below and extend "
                "kAllChannelHealths");
  switch (h) {
    case ChannelHealth::Healthy:
      return "healthy";
    case ChannelHealth::Degraded:
      return "degraded";
    case ChannelHealth::Quarantined:
      return "quarantined";
    case ChannelHealth::Probing:
      return "probing";
  }
  return "unknown";
}

std::vector<Channel> fallback_chain(const Channel& primary) {
  // Table III accuracy ordering (5 s window, top-1): FPGA current 0.997,
  // FPGA power 0.989, DRAM current 0.958.
  static const Channel kPreferred[] = {
      {power::Rail::FpgaLogic, Quantity::Current},
      {power::Rail::FpgaLogic, Quantity::Power},
      {power::Rail::Ddr, Quantity::Current},
  };
  std::vector<Channel> chain;
  for (const Channel& c : kPreferred) {
    if (!(c == primary)) chain.push_back(c);
  }
  return chain;
}

}  // namespace amperebleed::core
