#include "amperebleed/core/rsa_attack.hpp"

#include <algorithm>

#include "amperebleed/core/sampler.hpp"
#include "amperebleed/crypto/rsa.hpp"
#include "amperebleed/sensors/ina226.hpp"
#include "amperebleed/soc/soc.hpp"
#include "amperebleed/stats/separability.hpp"
#include "amperebleed/util/rng.hpp"

namespace amperebleed::core {

std::vector<std::size_t> default_hamming_weights() {
  return crypto::paper_hamming_weight_schedule(1024);
}

RsaAttackResult run_rsa_attack(const RsaAttackConfig& config) {
  RsaAttackResult result;
  const std::vector<std::size_t> weights = config.hamming_weights.empty()
                                               ? default_hamming_weights()
                                               : config.hamming_weights;

  for (std::size_t k = 0; k < weights.size(); ++k) {
    const std::size_t hw = weights[k];

    crypto::RsaKey key;
    key.modulus = crypto::rsa1024_test_modulus();
    key.private_exponent = crypto::exponent_with_hamming_weight(
        config.circuit.key_bits, hw, util::hash_combine(config.seed, hw));
    fpga::RsaCircuit circuit(config.circuit, std::move(key));

    // Victim: encrypt back-to-back for the whole observation window. The
    // attacker starts polling only once the sensor registers reflect
    // steady-state encryption (a few conversion intervals after the circuit
    // starts), as in the paper's "during the current collecting" setup.
    const sim::TimeNs circuit_start = sim::milliseconds(50);
    const sim::TimeNs start = sim::milliseconds(200);
    const sim::TimeNs end{
        start.ns +
        config.sample_period.ns *
            static_cast<std::int64_t>(config.sample_count) +
        sim::milliseconds(100).ns};
    auto schedule = circuit.schedule(circuit_start, end);

    soc::Soc soc(soc::zcu102_config(util::hash_combine(config.seed, k)));
    soc.fabric().deploy(circuit.descriptor());
    soc.add_activity(schedule.activity);
    soc.finalize();

    // Attacker: 1 kHz unprivileged polling of current and power.
    Sampler sampler(soc);
    SamplerConfig sc;
    sc.period = config.sample_period;
    sc.sample_count = config.sample_count;
    const auto traces = sampler.collect_multi(
        {{power::Rail::FpgaLogic, Quantity::Current},
         {power::Rail::FpgaLogic, Quantity::Power}},
        start, sc);

    RsaKeyObservation obs;
    obs.hamming_weight = hw;
    obs.encryptions_observed = schedule.encryption_count;
    obs.current_samples_ma.assign(traces[0].values().begin(),
                                  traces[0].values().end());
    for (double uw : traces[1].values()) {
      obs.power_samples_mw.push_back(uw * 1e-3);
    }
    obs.current_ma = stats::summarize(obs.current_samples_ma);
    obs.power_mw = stats::summarize(obs.power_samples_mw);
    result.keys.push_back(std::move(obs));
  }

  // Leave-one-out Hamming-weight estimation + residual search space.
  const sensors::Ina226Config sensor_defaults{};
  const double update_interval_s =
      static_cast<double>(sensor_defaults.avg_count) *
      (sensor_defaults.shunt_conv_time.seconds() +
       sensor_defaults.bus_conv_time.seconds());
  const double trace_span_s =
      config.sample_period.seconds() * static_cast<double>(config.sample_count);
  result.independent_samples_per_key = std::max<std::size_t>(
      1, static_cast<std::size_t>(trace_span_s / update_interval_s));
  result.log2_full_search_space =
      static_cast<double>(config.circuit.key_bits);
  if (result.keys.size() >= 3) {
    for (std::size_t k = 0; k < result.keys.size(); ++k) {
      std::vector<HwCalibrationPoint> calibration;
      for (std::size_t j = 0; j < result.keys.size(); ++j) {
        if (j == k) continue;
        calibration.push_back(HwCalibrationPoint{
            result.keys[j].hamming_weight, result.keys[j].current_ma.mean});
      }
      const auto estimator = HammingWeightEstimator::fit(
          calibration, config.circuit.key_bits);
      auto& key = result.keys[k];
      key.loo_estimate = estimator.estimate(
          key.current_ma, result.independent_samples_per_key);
      key.log2_residual_search_space = log2_search_space(
          config.circuit.key_bits, key.loo_estimate.ci_low,
          key.loo_estimate.ci_high);
    }
  }

  std::vector<std::vector<double>> current_classes;
  std::vector<std::vector<double>> power_classes;
  for (const auto& k : result.keys) {
    current_classes.push_back(k.current_samples_ma);
    power_classes.push_back(k.power_samples_mw);
  }
  result.current_group_ids = stats::group_indistinguishable(
      current_classes, config.separability_accuracy);
  result.power_group_ids = stats::group_indistinguishable(
      power_classes, config.separability_accuracy);
  result.current_groups =
      result.current_group_ids.empty() ? 0 : result.current_group_ids.back() + 1;
  result.power_groups =
      result.power_group_ids.empty() ? 0 : result.power_group_ids.back() + 1;
  return result;
}

}  // namespace amperebleed::core
