#include "amperebleed/core/characterize.hpp"

#include <cmath>
#include <numeric>

#include "amperebleed/core/sampler.hpp"
#include "amperebleed/sensors/ina226.hpp"
#include "amperebleed/stats/correlation.hpp"
#include "amperebleed/stats/descriptive.hpp"
#include "amperebleed/util/rng.hpp"

namespace amperebleed::core {

namespace {

ChannelSeries finish_series(std::vector<double> means,
                            const std::vector<double>& level_axis,
                            double lsb) {
  ChannelSeries s;
  s.mean_per_level = std::move(means);
  s.lsb = lsb;
  s.pearson_vs_level = stats::pearson(level_axis, s.mean_per_level);
  s.fit = stats::linear_fit(level_axis, s.mean_per_level);
  s.variation_lsb_per_level = std::abs(s.fit.slope) / lsb;
  s.noisy_variation_lsb_per_level =
      stats::mean_abs_successive_diff(s.mean_per_level) / lsb;
  return s;
}

}  // namespace

CharacterizationResult run_characterization(
    const CharacterizationConfig& config) {
  if (config.levels < 2) {
    throw std::invalid_argument("characterization: need at least 2 levels");
  }
  if (config.levels > config.virus.group_count + 1) {
    throw std::invalid_argument(
        "characterization: more levels than virus groups + 1");
  }

  // --- Victim side: deploy the virus and schedule one level per window. ---
  fpga::PowerVirus virus(config.virus);
  fpga::RingOscillatorBank ro(config.ro,
                              util::hash_combine(config.seed, 0x20));
  std::optional<fpga::TdcSensor> tdc;
  if (config.with_tdc) {
    tdc.emplace(config.tdc, util::hash_combine(config.seed, 0x7dc));
  }

  const sim::TimeNs window{
      config.sample_period.ns *
      static_cast<std::int64_t>(config.samples_per_level +
                                config.settle_samples + 1)};
  for (std::size_t level = 1; level < config.levels; ++level) {
    virus.set_active_groups(
        sim::TimeNs{window.ns * static_cast<std::int64_t>(level)}, level);
  }

  soc::SocConfig soc_config = soc::zcu102_config(config.seed);
  if (config.stabilizer_gain_override) {
    soc_config.pdn[power::rail_index(power::Rail::FpgaLogic)]
        .stabilizer_gain = *config.stabilizer_gain_override;
  }
  soc::Soc soc(soc_config);
  soc.fabric().deploy(virus.descriptor());
  soc.fabric().deploy(ro.descriptor());
  if (tdc) soc.fabric().deploy(tdc->descriptor());
  soc.add_activity(virus.activity());
  soc.finalize();

  // --- Attacker side: poll hwmon per level; RO sampled on-fabric. ---
  Sampler sampler(soc);
  const std::vector<Channel> channels = {
      {power::Rail::FpgaLogic, Quantity::Current},
      {power::Rail::FpgaLogic, Quantity::Voltage},
      {power::Rail::FpgaLogic, Quantity::Power},
  };

  CharacterizationResult result;
  std::vector<double> mean_current;
  std::vector<double> mean_voltage;
  std::vector<double> mean_power;
  std::vector<double> mean_ro;
  std::vector<double> mean_tdc;

  const auto& voltage_signal = soc.rail_voltage(power::Rail::FpgaLogic);

  for (std::size_t level = 0; level < config.levels; ++level) {
    const sim::TimeNs level_start{window.ns *
                                  static_cast<std::int64_t>(level)};
    const sim::TimeNs sampling_start{
        level_start.ns + config.sample_period.ns *
                             static_cast<std::int64_t>(config.settle_samples)};

    SamplerConfig sc;
    sc.period = config.sample_period;
    sc.sample_count = config.samples_per_level;
    const auto traces = sampler.collect_multi(channels, sampling_start, sc);
    mean_current.push_back(stats::mean(traces[0].values()));
    mean_voltage.push_back(stats::mean(traces[1].values()));
    mean_power.push_back(stats::mean(traces[2].values()));

    // Crafted-circuit sensors, spread evenly across the level window.
    double ro_sum = 0.0;
    double tdc_sum = 0.0;
    const sim::TimeNs level_sampling_span{
        config.sample_period.ns *
        static_cast<std::int64_t>(config.samples_per_level)};
    for (std::size_t i = 0; i < config.ro_samples_per_level; ++i) {
      const sim::TimeNs t{
          sampling_start.ns +
          static_cast<std::int64_t>(
              (static_cast<double>(i) /
               static_cast<double>(config.ro_samples_per_level)) *
              static_cast<double>(level_sampling_span.ns))};
      ro_sum += ro.sample(voltage_signal, t);
      if (tdc) tdc_sum += tdc->sample(voltage_signal, t);
    }
    mean_ro.push_back(ro_sum /
                      static_cast<double>(config.ro_samples_per_level));
    if (tdc) {
      mean_tdc.push_back(tdc_sum /
                         static_cast<double>(config.ro_samples_per_level));
    }

    result.level_axis.push_back(static_cast<double>(level));
  }

  const double power_lsb_uw =
      soc.sensor(power::Rail::FpgaLogic).power_lsb_watts() * 1e6;
  result.current = finish_series(std::move(mean_current), result.level_axis,
                                 /*lsb=*/1.0);  // trace unit mA, LSB 1 mA
  result.voltage = finish_series(std::move(mean_voltage), result.level_axis,
                                 /*lsb=*/1.25);  // mV unit, LSB 1.25 mV
  result.power = finish_series(std::move(mean_power), result.level_axis,
                               power_lsb_uw);  // uW unit, LSB 25 mW
  result.ro = finish_series(std::move(mean_ro), result.level_axis,
                            /*lsb=*/1.0);  // one counter tick
  if (config.with_tdc) {
    result.tdc = finish_series(std::move(mean_tdc), result.level_axis,
                               /*lsb=*/1.0);  // one tap
  }

  result.current_over_ro_variation =
      result.ro.variation_lsb_per_level > 0.0
          ? result.current.variation_lsb_per_level /
                result.ro.variation_lsb_per_level
          : 0.0;
  return result;
}

}  // namespace amperebleed::core
