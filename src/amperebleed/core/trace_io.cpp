#include "amperebleed/core/trace_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "amperebleed/util/strings.hpp"

namespace amperebleed::core {

namespace {

constexpr const char* kMagic = "# amperebleed-trace";

Quantity quantity_from_name(std::string_view name) {
  if (name == "current") return Quantity::Current;
  if (name == "voltage") return Quantity::Voltage;
  if (name == "power") return Quantity::Power;
  throw std::runtime_error("trace_io: unknown quantity '" +
                           std::string(name) + "'");
}

power::Rail rail_from_name(std::string_view name) {
  for (power::Rail rail : power::kAllRails) {
    if (power::rail_name(rail) == name) return rail;
  }
  throw std::runtime_error("trace_io: unknown rail '" + std::string(name) +
                           "'");
}

}  // namespace

void save_trace_csv(const Trace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("trace_io: cannot open " + path);
  out << kMagic << " quantity=" << quantity_name(trace.channel().quantity)
      << " rail=" << power::rail_name(trace.channel().rail)
      << " start_ns=" << trace.start().ns
      << " period_ns=" << trace.period().ns << "\n";
  // Gapless traces keep the legacy 3-column format byte-for-byte; only a
  // trace that actually holds gaps grows the `valid` column.
  const bool with_validity = !trace.fully_valid();
  out << (with_validity ? "index,time_ms,value,valid\n"
                        : "index,time_ms,value\n");
  for (std::size_t i = 0; i < trace.size(); ++i) {
    out << i << ',' << util::format("%.3f", trace.time_of(i).millis()) << ','
        << util::format("%.17g", trace[i]);
    if (with_validity) out << ',' << (trace.valid(i) ? 1 : 0);
    out << "\n";
  }
  if (!out) throw std::runtime_error("trace_io: write failed for " + path);
}

Trace load_trace_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("trace_io: cannot open " + path);

  std::string header;
  if (!std::getline(in, header) || !util::starts_with(header, kMagic)) {
    throw std::runtime_error("trace_io: missing trace header in " + path);
  }
  Channel channel;
  sim::TimeNs start{0};
  sim::TimeNs period{0};
  for (const auto& token : util::split(header, ' ')) {
    const auto eq = token.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "quantity") {
      channel.quantity = quantity_from_name(value);
    } else if (key == "rail") {
      channel.rail = rail_from_name(value);
    } else if (key == "start_ns") {
      start = sim::TimeNs{util::parse_ll(value).value_or(0)};
    } else if (key == "period_ns") {
      period = sim::TimeNs{util::parse_ll(value).value_or(0)};
    }
  }
  if (period.ns <= 0) {
    throw std::runtime_error("trace_io: invalid period in " + path);
  }

  Trace trace(channel, start, period);
  std::string line;
  std::getline(in, line);  // column header
  // Rows start after the magic header (line 1) and column header (line 2);
  // every parse failure names its exact file:line so replay of archived
  // (possibly hand-edited or truncated) acquisitions is diagnosable.
  std::size_t line_number = 2;
  std::size_t expected_cells = 0;  // locked by the first data row
  while (std::getline(in, line)) {
    ++line_number;
    if (util::trim(line).empty()) continue;
    const auto cells = util::split(line, ',');
    if (cells.size() != 3 && cells.size() != 4) {
      throw std::runtime_error(
          util::format("trace_io: malformed row at %s:%zu (%zu cells)",
                       path.c_str(), line_number, cells.size()));
    }
    // The first data row fixes the file's shape (3-column legacy or
    // 4-column gap-aware); a mid-file switch means a truncated rewrite or
    // a botched concatenation, and silently mixing the two would misread
    // validity flags as values (or vice versa).
    if (expected_cells == 0) {
      expected_cells = cells.size();
    } else if (cells.size() != expected_cells) {
      throw std::runtime_error(util::format(
          "trace_io: column count changed from %zu to %zu at %s:%zu",
          expected_cells, cells.size(), path.c_str(), line_number));
    }
    // Legacy 3-column rows are fully valid; a 4th column of 0 marks a gap
    // placeholder (its value cell is ignored on reconstruction anyway).
    if (cells.size() == 4 && util::trim(cells[3]) == "0") {
      trace.push_gap();
    } else {
      std::size_t consumed = 0;
      double value = 0.0;
      try {
        value = std::stod(cells[2], &consumed);
      } catch (const std::exception&) {
        throw std::runtime_error(util::format(
            "trace_io: bad value cell '%s' at %s:%zu", cells[2].c_str(),
            path.c_str(), line_number));
      }
      if (consumed != cells[2].size()) {
        throw std::runtime_error(util::format(
            "trace_io: bad value cell '%s' at %s:%zu", cells[2].c_str(),
            path.c_str(), line_number));
      }
      trace.push(value);
    }
  }
  return trace;
}

}  // namespace amperebleed::core
