#pragma once
// Naive reference implementations of the preprocess/feature kernels that PR 9
// rewrote for speed (DESIGN.md §14). These are the pre-rewrite loops, kept
// verbatim as oracles: the property tests in
// tests/core/preprocess_simd_test.cpp pit every optimized kernel against its
// reference over adversarial inputs, and bench/micro_primitives uses them as
// the slow side of the A/B speedup ratios. Not for production use.

#include <cstdint>
#include <span>
#include <vector>

#include "amperebleed/core/preprocess.hpp"

namespace amperebleed::core::reference {

/// O(n * window) per-window fold (the pre-PR9 sliding_mean).
std::vector<double> sliding_mean(std::span<const double> xs,
                                 std::size_t window, std::size_t stride);

/// Allocation-per-lag overlap extraction + stats::pearson (the pre-PR9
/// best_alignment_shift).
int best_alignment_shift(std::span<const double> reference,
                         std::span<const double> probe, std::size_t max_shift);

/// stats::summarize + scalar transform loop (the pre-PR9 standardize).
void standardize(std::vector<double>& xs);

/// Materialized iota + stats::linear_fit + scalar subtraction (the pre-PR9
/// detrend).
void detrend(std::vector<double>& xs);

/// Branchy per-sample gap reconstruction (the pre-PR9 fill_gaps). Same
/// semantics for every GapPolicy; no obs/quality side effects.
std::vector<double> fill_gaps(std::span<const double> values,
                              std::span<const std::uint8_t> validity,
                              GapPolicy policy);

}  // namespace amperebleed::core::reference
