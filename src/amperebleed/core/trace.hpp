#pragma once
// Side-channel traces: uniformly sampled hwmon readings from one observation
// channel. Values are kept in hwmon units (mA / mV / uW) so quantization
// artifacts stay visible — they are the whole point of the paper's
// current-vs-voltage-vs-power comparison.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "amperebleed/power/rails.hpp"
#include "amperebleed/sim/time.hpp"

namespace amperebleed::core {

enum class Quantity { Current, Voltage, Power };

std::string_view quantity_name(Quantity q);
/// hwmon attribute file for a quantity (curr1_input / in1_input /
/// power1_input).
std::string_view quantity_attr(Quantity q);
/// Scale from the attribute's integer unit to the trace unit (identity: we
/// keep hwmon units; exposed for documentation value).
std::string_view quantity_unit(Quantity q);

/// One observation channel: a rail's sensor and which measurement is read.
struct Channel {
  power::Rail rail = power::Rail::FpgaLogic;
  Quantity quantity = Quantity::Current;

  friend bool operator==(const Channel&, const Channel&) = default;
};

std::string channel_name(const Channel& c);

/// Uniformly sampled series.
class Trace {
 public:
  Trace(Channel channel, sim::TimeNs start, sim::TimeNs period);

  void push(double value) { values_.push_back(value); }
  void reserve(std::size_t n) { values_.reserve(n); }

  [[nodiscard]] std::span<const double> values() const { return values_; }
  [[nodiscard]] std::size_t size() const { return values_.size(); }
  [[nodiscard]] bool empty() const { return values_.empty(); }
  [[nodiscard]] double operator[](std::size_t i) const { return values_.at(i); }

  [[nodiscard]] const Channel& channel() const { return channel_; }
  [[nodiscard]] sim::TimeNs start() const { return start_; }
  [[nodiscard]] sim::TimeNs period() const { return period_; }
  /// Timestamp of sample i.
  [[nodiscard]] sim::TimeNs time_of(std::size_t i) const {
    return sim::TimeNs{start_.ns + period_.ns * static_cast<std::int64_t>(i)};
  }
  /// Total covered duration.
  [[nodiscard]] sim::TimeNs duration() const {
    return sim::TimeNs{period_.ns * static_cast<std::int64_t>(values_.size())};
  }

  /// The first `count` samples as a feature vector; throws if short.
  [[nodiscard]] std::vector<double> prefix(std::size_t count) const;

 private:
  Channel channel_;
  sim::TimeNs start_;
  sim::TimeNs period_;
  std::vector<double> values_;
};

}  // namespace amperebleed::core
