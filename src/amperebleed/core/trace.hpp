#pragma once
// Side-channel traces: uniformly sampled hwmon readings from one observation
// channel. Values are kept in hwmon units (mA / mV / uW) so quantization
// artifacts stay visible — they are the whole point of the paper's
// current-vs-voltage-vs-power comparison.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "amperebleed/power/rails.hpp"
#include "amperebleed/sim/time.hpp"

namespace amperebleed::core {

enum class Quantity { Current, Voltage, Power };

std::string_view quantity_name(Quantity q);
/// hwmon attribute file for a quantity (curr1_input / in1_input /
/// power1_input).
std::string_view quantity_attr(Quantity q);
/// Scale from the attribute's integer unit to the trace unit (identity: we
/// keep hwmon units; exposed for documentation value).
std::string_view quantity_unit(Quantity q);

/// One observation channel: a rail's sensor and which measurement is read.
struct Channel {
  power::Rail rail = power::Rail::FpgaLogic;
  Quantity quantity = Quantity::Current;

  friend bool operator==(const Channel&, const Channel&) = default;
};

std::string channel_name(const Channel& c);

/// Uniformly sampled series, gap-aware: every sample is either valid (a
/// real hwmon reading) or a gap (the resilient sampler exhausted its retry
/// budget at that instant). Gapless traces — the overwhelmingly common case
/// — carry no mask at all: the validity vector is only materialized on the
/// first push_gap(), so the fault-free fast path stays bit- and
/// allocation-identical to the pre-gap-aware Trace.
class Trace {
 public:
  Trace(Channel channel, sim::TimeNs start, sim::TimeNs period);

  void push(double value) {
    values_.push_back(value);
    if (!validity_.empty()) validity_.push_back(1);
  }
  /// Record a gap: a placeholder value (0.0) marked invalid. Consumers
  /// reconstruct via preprocess::fill_gaps / a GapPolicy — never feed raw
  /// gap placeholders to features/ml.
  void push_gap() {
    if (validity_.empty()) validity_.assign(values_.size(), 1);
    values_.push_back(0.0);
    validity_.push_back(0);
  }
  void reserve(std::size_t n) { values_.reserve(n); }

  [[nodiscard]] std::span<const double> values() const { return values_; }
  [[nodiscard]] std::size_t size() const { return values_.size(); }
  [[nodiscard]] bool empty() const { return values_.empty(); }
  [[nodiscard]] double operator[](std::size_t i) const { return values_.at(i); }

  /// True when sample i holds a real reading (false: gap placeholder).
  [[nodiscard]] bool valid(std::size_t i) const {
    return validity_.empty() || validity_.at(i) != 0;
  }
  /// Per-sample validity mask; empty means "all valid" (gapless fast path).
  [[nodiscard]] std::span<const std::uint8_t> validity() const {
    return validity_;
  }
  [[nodiscard]] bool fully_valid() const { return gap_count() == 0; }
  [[nodiscard]] std::size_t gap_count() const;

  [[nodiscard]] const Channel& channel() const { return channel_; }
  [[nodiscard]] sim::TimeNs start() const { return start_; }
  [[nodiscard]] sim::TimeNs period() const { return period_; }
  /// Timestamp of sample i.
  [[nodiscard]] sim::TimeNs time_of(std::size_t i) const {
    return sim::TimeNs{start_.ns + period_.ns * static_cast<std::int64_t>(i)};
  }
  /// Total covered duration.
  [[nodiscard]] sim::TimeNs duration() const {
    return sim::TimeNs{period_.ns * static_cast<std::int64_t>(values_.size())};
  }

  /// The first `count` samples as a feature vector; throws if short.
  [[nodiscard]] std::vector<double> prefix(std::size_t count) const;

 private:
  Channel channel_;
  sim::TimeNs start_;
  sim::TimeNs period_;
  std::vector<double> values_;
  /// Lazily materialized: empty while the trace is gapless (the common
  /// case), first push_gap() backfills it with 1s. Parallel to values_.
  std::vector<std::uint8_t> validity_;
};

}  // namespace amperebleed::core
