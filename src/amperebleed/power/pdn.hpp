#pragma once
// Equation 1 of the paper: V_drop = I*R + L*dI/dt — the PDN voltage droop
// that crafted sensing circuits (ROs, TDCs) historically observed, and the
// stabilizer that modern boards add to clamp the FPGA supply into a narrow
// band (0.825-0.876 V on Zynq UltraScale+). The stabilizer is exactly what
// breaks voltage-based attacks and what AmpereBleed's current channel
// sidesteps.

#include "amperebleed/sim/signal.hpp"
#include "amperebleed/sim/time.hpp"

namespace amperebleed::power {

struct PdnConfig {
  double v_nominal = 0.850;  // regulator setpoint, volts
  double v_min = 0.825;      // stabilized band (Table I, Zynq UltraScale+)
  double v_max = 0.876;
  /// Effective steady-state PDN resistance (ohms) before stabilization;
  /// determines the raw I*R droop a crafted circuit would have seen.
  double r_effective_ohms = 0.015;
  /// Effective PDN inductance (henries) for the L*dI/dt transient term.
  double l_effective_henries = 0.5e-9;
  /// Fraction of the steady-state droop the on-board regulator cancels
  /// (0 = legacy unstabilized PDN, 1 = ideal stabilizer). ZCU102-class
  /// boards are close to ideal; the residual droop is what is left for a
  /// voltage channel to observe. Default calibrated so the Fig 2 voltage
  /// slope is ~0.006 LSB (7.5 uV) per 40 mA activity level.
  double stabilizer_gain = 0.9875;
  /// Reference current at which the droop is zero (the regulator trims its
  /// setpoint at the board's idle draw).
  double idle_current_amps = 0.0;
  /// Duration for which an L*dI/dt transient spike is visible after a load
  /// step, before the regulator recovers.
  sim::TimeNs transient_width = sim::microseconds(2);
};

/// Steady-state + transient PDN voltage model with stabilizer clamping.
class PdnModel {
 public:
  explicit PdnModel(PdnConfig config = {});

  /// Steady-state stabilized voltage at a given rail current (Eq 1, I*R term
  /// scaled by the residual stabilizer error, clamped into the band).
  [[nodiscard]] double steady_voltage(double current_amps) const;

  /// Raw (unstabilized) droop I*R + L*dI/dt — what a legacy PDN exposes.
  [[nodiscard]] double raw_droop(double current_amps,
                                 double di_dt_amps_per_s) const;

  /// Compile a rail current schedule into the stabilized voltage the bus-
  /// voltage ADC (and any on-fabric sensor) sees. Each load step contributes
  /// a `transient_width`-long L*dI/dt spike followed by the new steady level.
  [[nodiscard]] sim::PiecewiseConstant voltage_signal(
      const sim::PiecewiseConstant& rail_current) const;

  [[nodiscard]] const PdnConfig& config() const { return config_; }

 private:
  [[nodiscard]] double clamp_to_band(double v) const;
  PdnConfig config_;
};

}  // namespace amperebleed::power
