#include "amperebleed/power/thermal.hpp"

#include <cmath>
#include <stdexcept>

namespace amperebleed::power {

ThermalModel::ThermalModel(ThermalConfig config) : config_(config) {
  if (config_.r_th_c_per_w < 0.0) {
    throw std::invalid_argument("ThermalModel: negative R_th");
  }
  if (config_.tau_seconds <= 0.0) {
    throw std::invalid_argument("ThermalModel: tau must be > 0");
  }
  if (config_.step.ns <= 0) {
    throw std::invalid_argument("ThermalModel: step must be > 0");
  }
}

double ThermalModel::steady_temperature(double watts) const {
  return config_.ambient_celsius + config_.r_th_c_per_w * watts;
}

sim::PiecewiseConstant ThermalModel::temperature_signal(
    const sim::PiecewiseConstant& power_watts, sim::TimeNs end) const {
  if (end.ns < 0) {
    throw std::invalid_argument("ThermalModel: negative end time");
  }
  double temperature =
      steady_temperature(power_watts.value_at(sim::TimeNs{0}));
  sim::PiecewiseConstant out(temperature);

  const double decay =
      std::exp(-config_.step.seconds() / config_.tau_seconds);
  for (sim::TimeNs t{config_.step}; t < end; t += config_.step) {
    // Mean power over the elapsed step drives the target temperature.
    const double p = power_watts.mean(t - config_.step, t);
    const double target = steady_temperature(p);
    temperature = target + (temperature - target) * decay;
    out.append(t, temperature);
  }
  return out;
}

}  // namespace amperebleed::power
