#pragma once
// Equation 2 of the paper: P_dyn = V_dd * sum I(LE, RAM, DSP, Clocks, ...).
// Circuits report per-component currents; this module aggregates them into
// the rail current the INA226 shunt actually sees, and computes the dynamic
// power that even a perfectly stabilized voltage cannot hide.

#include "amperebleed/power/rails.hpp"

namespace amperebleed::power {

/// Current drawn by each class of FPGA computing element, in amps (Eq 2).
struct ComponentCurrents {
  double logic_elements = 0.0;  // LUT/FF switching
  double block_ram = 0.0;       // BRAM access
  double dsp = 0.0;             // DSP slices
  double clocks = 0.0;          // clock tree
  double other = 0.0;           // routing, IO, misc.

  [[nodiscard]] double total() const {
    return logic_elements + block_ram + dsp + clocks + other;
  }

  friend ComponentCurrents operator+(const ComponentCurrents& a,
                                     const ComponentCurrents& b) {
    return ComponentCurrents{
        a.logic_elements + b.logic_elements, a.block_ram + b.block_ram,
        a.dsp + b.dsp, a.clocks + b.clocks, a.other + b.other};
  }

  friend ComponentCurrents operator*(double k, const ComponentCurrents& c) {
    return ComponentCurrents{k * c.logic_elements, k * c.block_ram, k * c.dsp,
                             k * c.clocks, k * c.other};
  }
};

/// Dynamic power from supply voltage and aggregate component current (Eq 2).
double dynamic_power_watts(double v_dd, const ComponentCurrents& currents);

/// First-order CMOS dynamic current estimate for a switching circuit:
/// I = alpha * C_eff * V_dd * f / V_dd ... folded into an effective
/// current-per-toggling-element coefficient. Used by circuit models to turn
/// utilization numbers into amps.
///
/// @param toggling_elements  number of elements switching each cycle
/// @param current_per_element_per_mhz  amps drawn per element per MHz
/// @param clock_mhz  clock frequency
double switching_current_amps(double toggling_elements,
                              double current_per_element_per_mhz,
                              double clock_mhz);

/// Static (leakage) current for deployed-but-idle logic — the reason the
/// Fig 2 current axis "does not start from 0".
double leakage_current_amps(double deployed_elements,
                            double leakage_per_element_amps);

}  // namespace amperebleed::power
