#include "amperebleed/power/noise_model.hpp"

#include <cmath>

namespace amperebleed::power {

namespace {

// OU diffusion sigma that yields the requested stationary standard
// deviation at the given mean-reversion rate: sigma_st = sigma/sqrt(2 theta).
double diffusion_for_stationary(double stationary_sigma, double theta) {
  return stationary_sigma * std::sqrt(2.0 * theta);
}

}  // namespace

RailNoiseProcess::RailNoiseProcess(const RailNoiseConfig& config,
                                   std::uint64_t seed)
    : config_(config),
      current_drift_(0.0, config.current_drift_rate_hz,
                     diffusion_for_stationary(config.current_drift_fraction,
                                              config.current_drift_rate_hz),
                     util::hash_combine(seed, 0xc0ffee)),
      voltage_drift_(0.0, config.voltage_drift_rate_hz,
                     diffusion_for_stationary(config.voltage_drift_volts,
                                              config.voltage_drift_rate_hz),
                     util::hash_combine(seed, 0x70f7)),
      white_(util::hash_combine(seed, 0xfade)) {}

RailNoiseProcess::Sample RailNoiseProcess::step(sim::TimeNs dt) {
  Sample s;
  s.current_gain = 1.0 + current_drift_.step(dt);
  s.current_offset_amps = white_.gaussian(0.0, config_.current_white_amps);
  s.voltage_offset_volts = voltage_drift_.step(dt) +
                           white_.gaussian(0.0, config_.voltage_white_volts);
  return s;
}

}  // namespace amperebleed::power
