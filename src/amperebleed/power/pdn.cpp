#include "amperebleed/power/pdn.hpp"

#include <algorithm>
#include <stdexcept>

#include "amperebleed/obs/obs.hpp"

namespace amperebleed::power {

PdnModel::PdnModel(PdnConfig config) : config_(config) {
  if (config_.v_min > config_.v_max) {
    throw std::invalid_argument("PdnModel: v_min > v_max");
  }
  if (config_.stabilizer_gain < 0.0 || config_.stabilizer_gain > 1.0) {
    throw std::invalid_argument("PdnModel: stabilizer_gain not in [0,1]");
  }
  if (config_.r_effective_ohms < 0.0 || config_.l_effective_henries < 0.0) {
    throw std::invalid_argument("PdnModel: negative R or L");
  }
  if (config_.transient_width.ns <= 0) {
    throw std::invalid_argument("PdnModel: transient_width must be > 0");
  }
}

double PdnModel::clamp_to_band(double v) const {
  return std::clamp(v, config_.v_min, config_.v_max);
}

double PdnModel::steady_voltage(double current_amps) const {
  const double residual_r =
      config_.r_effective_ohms * (1.0 - config_.stabilizer_gain);
  const double droop =
      residual_r * (current_amps - config_.idle_current_amps);
  return clamp_to_band(config_.v_nominal - droop);
}

double PdnModel::raw_droop(double current_amps,
                           double di_dt_amps_per_s) const {
  return current_amps * config_.r_effective_ohms +
         config_.l_effective_henries * di_dt_amps_per_s;
}

sim::PiecewiseConstant PdnModel::voltage_signal(
    const sim::PiecewiseConstant& rail_current) const {
  // Signal compilation happens once per finalize(); the step count tracks
  // how large the compiled voltage waveform is (memory/time proxy).
  obs::count("pdn.compiles");
  obs::count("pdn.voltage_steps", rail_current.segments().size());
  sim::PiecewiseConstant v(steady_voltage(rail_current.initial_value()));
  double prev_current = rail_current.initial_value();
  const auto& segs = rail_current.segments();
  for (std::size_t i = 0; i < segs.size(); ++i) {
    const auto& seg = segs[i];
    const double delta_i = seg.value - prev_current;
    // The regulator's loop bandwidth is too low to cancel the inductive
    // transient: expose an L*dI/dt spike for transient_width, then settle.
    const double di_dt = delta_i / config_.transient_width.seconds();
    const double spike =
        config_.l_effective_henries * di_dt;  // sign follows the load step
    v.append(seg.start, clamp_to_band(steady_voltage(seg.value) - spike));
    // Settle back to steady state unless the next load step arrives first
    // (then its own spike supersedes the recovery).
    const sim::TimeNs settle = seg.start + config_.transient_width;
    if (i + 1 >= segs.size() || segs[i + 1].start > settle) {
      v.append(settle, steady_voltage(seg.value));
    }
    prev_current = seg.value;
  }
  return v;
}

}  // namespace amperebleed::power
