#include "amperebleed/power/power_model.hpp"

#include <stdexcept>

namespace amperebleed::power {

double dynamic_power_watts(double v_dd, const ComponentCurrents& currents) {
  if (v_dd < 0.0) throw std::invalid_argument("dynamic_power: v_dd < 0");
  return v_dd * currents.total();
}

double switching_current_amps(double toggling_elements,
                              double current_per_element_per_mhz,
                              double clock_mhz) {
  if (toggling_elements < 0.0 || current_per_element_per_mhz < 0.0 ||
      clock_mhz < 0.0) {
    throw std::invalid_argument("switching_current: negative parameter");
  }
  return toggling_elements * current_per_element_per_mhz * clock_mhz;
}

double leakage_current_amps(double deployed_elements,
                            double leakage_per_element_amps) {
  if (deployed_elements < 0.0 || leakage_per_element_amps < 0.0) {
    throw std::invalid_argument("leakage_current: negative parameter");
  }
  return deployed_elements * leakage_per_element_amps;
}

}  // namespace amperebleed::power
