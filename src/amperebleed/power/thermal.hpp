#pragma once
// First-order thermal model of the SoC die: junction temperature follows
// dissipated power through a single thermal RC (R_th to ambient, time
// constant tau). This backs the SYSMON temperature channel — the companion
// side channel the paper's related work (ThermalScope/ThermalBleed) exploits
// — and lets the repo quantify how much slower temperature is than current.

#include "amperebleed/sim/signal.hpp"
#include "amperebleed/sim/time.hpp"

namespace amperebleed::power {

struct ThermalConfig {
  double ambient_celsius = 35.0;  // board ambient inside an enclosure
  double r_th_c_per_w = 2.2;      // junction-to-ambient with the stock sink
  double tau_seconds = 8.0;       // thermal time constant
  /// Discretization step for the exponential response (the output is a
  /// piecewise-constant approximation).
  sim::TimeNs step = sim::milliseconds(5);
};

class ThermalModel {
 public:
  explicit ThermalModel(ThermalConfig config = {});

  /// Equilibrium junction temperature at constant dissipation.
  [[nodiscard]] double steady_temperature(double watts) const;

  /// Junction-temperature trace for a power trace over [0, end), starting
  /// from thermal equilibrium with the power at t=0. Exact exponential
  /// update per step, so accuracy does not depend on input segmentation.
  [[nodiscard]] sim::PiecewiseConstant temperature_signal(
      const sim::PiecewiseConstant& power_watts, sim::TimeNs end) const;

  [[nodiscard]] const ThermalConfig& config() const { return config_; }

 private:
  ThermalConfig config_;
};

}  // namespace amperebleed::power
