#pragma once
// Workload activity representation: every victim workload (power virus, DPU
// inference, RSA circuit) compiles to a per-rail current-draw schedule in
// amps. The SoC sums schedules from all deployed workloads plus the board's
// static baseline.

#include <array>

#include "amperebleed/power/rails.hpp"
#include "amperebleed/sim/signal.hpp"

namespace amperebleed::power {

/// Per-rail current draw (amps) as piecewise-constant functions of time.
struct RailActivity {
  std::array<sim::PiecewiseConstant, kRailCount> current;

  sim::PiecewiseConstant& on(Rail r) { return current[rail_index(r)]; }
  [[nodiscard]] const sim::PiecewiseConstant& on(Rail r) const {
    return current[rail_index(r)];
  }

  /// Pointwise sum of two activities.
  friend RailActivity operator+(const RailActivity& a, const RailActivity& b) {
    RailActivity out;
    for (std::size_t i = 0; i < kRailCount; ++i) {
      out.current[i] = a.current[i] + b.current[i];
    }
    return out;
  }
};

}  // namespace amperebleed::power
