#pragma once
// Monitored power rails of the ZCU102-class SoC. Each rail corresponds to
// one of the "sensitive" INA226 monitoring points of Table II.

#include <array>
#include <cstddef>
#include <string_view>

namespace amperebleed::power {

/// The four monitored supply domains (Table II).
enum class Rail : std::size_t {
  FpdCpu = 0,     // ina226_u76: full-power domain of the ARM cores
  LpdCpu = 1,     // ina226_u77: low-power domain of the ARM cores
  FpgaLogic = 2,  // ina226_u79: FPGA logic & processing elements
  Ddr = 3,        // ina226_u93: DDR memory
};

inline constexpr std::size_t kRailCount = 4;

inline constexpr std::array<Rail, kRailCount> kAllRails{
    Rail::FpdCpu, Rail::LpdCpu, Rail::FpgaLogic, Rail::Ddr};

constexpr std::string_view rail_name(Rail r) {
  switch (r) {
    case Rail::FpdCpu:
      return "fpd_cpu";
    case Rail::LpdCpu:
      return "lpd_cpu";
    case Rail::FpgaLogic:
      return "fpga_logic";
    case Rail::Ddr:
      return "ddr";
  }
  return "unknown";
}

/// INA226 designator on the ZCU102 (Table II).
constexpr std::string_view rail_sensor_designator(Rail r) {
  switch (r) {
    case Rail::FpdCpu:
      return "ina226_u76";
    case Rail::LpdCpu:
      return "ina226_u77";
    case Rail::FpgaLogic:
      return "ina226_u79";
    case Rail::Ddr:
      return "ina226_u93";
  }
  return "unknown";
}

constexpr std::size_t rail_index(Rail r) { return static_cast<std::size_t>(r); }

}  // namespace amperebleed::power
