#pragma once
// Board-level noise: what separates the ideal schedules of the workload
// models from what the INA226 ADCs actually digitize. Two ingredients per
// rail:
//   * white measurement noise on each ADC sub-conversion,
//   * slow multiplicative drift of the rail current (thermal/leakage wander,
//     proportional to the load) and additive drift of the regulator voltage.
// The drift terms are Ornstein-Uhlenbeck processes so their statistics are
// independent of the sensor's conversion cadence.

#include <cstdint>

#include "amperebleed/sim/noise.hpp"
#include "amperebleed/sim/time.hpp"

namespace amperebleed::power {

struct RailNoiseConfig {
  /// White noise (amps, 1 sigma) added to every shunt-ADC sub-conversion.
  double current_white_amps = 0.002;
  /// Stationary sigma of the multiplicative current drift (fraction of the
  /// instantaneous load): I_obs = I * (1 + drift) + white.
  double current_drift_fraction = 0.002;
  /// Mean-reversion rate of the current drift (1/s).
  double current_drift_rate_hz = 0.1;
  /// Deterministic self-heating nonlinearity: leakage grows with load, so
  /// the observed rail current bends mildly upward,
  /// I_obs = I * (1 + alpha * I). This is what keeps Fig 2's current/power
  /// Pearson at ~0.999 instead of exactly 1.
  double thermal_nonlinearity_per_amp = 0.004;
  /// White noise (volts, 1 sigma) on every bus-voltage sub-conversion; also
  /// the dither that lets multi-sample averages beat the 1.25 mV LSB.
  double voltage_white_volts = 0.00060;
  /// Stationary sigma (volts) of the regulator setpoint wander.
  double voltage_drift_volts = 0.00010;
  /// Mean-reversion rate of the voltage drift (1/s).
  double voltage_drift_rate_hz = 0.05;
};

/// Stateful per-rail noise process. One instance per sensor; `step(dt)`
/// advances the drift processes and returns the corruption to apply to the
/// next sub-conversion.
class RailNoiseProcess {
 public:
  RailNoiseProcess(const RailNoiseConfig& config, std::uint64_t seed);

  struct Sample {
    double current_gain = 1.0;          // multiplies true rail current
    double current_offset_amps = 0.0;   // added after the gain
    double voltage_offset_volts = 0.0;  // added to the true bus voltage
  };

  /// Advance by dt and sample. dt == 0 re-samples white noise only.
  Sample step(sim::TimeNs dt);

  [[nodiscard]] const RailNoiseConfig& config() const { return config_; }

 private:
  RailNoiseConfig config_;
  sim::OrnsteinUhlenbeck current_drift_;
  sim::OrnsteinUhlenbeck voltage_drift_;
  util::Rng white_;
};

}  // namespace amperebleed::power
