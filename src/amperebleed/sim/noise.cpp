#include "amperebleed/sim/noise.hpp"

#include <cmath>
#include <stdexcept>

namespace amperebleed::sim {

OrnsteinUhlenbeck::OrnsteinUhlenbeck(double mu, double theta, double sigma,
                                     std::uint64_t seed)
    : mu_(mu), theta_(theta), sigma_(sigma), x_(mu), rng_(seed) {
  if (theta <= 0.0) throw std::invalid_argument("OU: theta must be > 0");
  if (sigma < 0.0) throw std::invalid_argument("OU: sigma must be >= 0");
}

double OrnsteinUhlenbeck::step(TimeNs dt) {
  if (dt.ns < 0) throw std::invalid_argument("OU: dt must be >= 0");
  if (dt.ns == 0) return x_;
  const double dts = dt.seconds();
  // Exact update: x' = mu + (x - mu) e^{-theta dt} + N(0, var)
  // with var = sigma^2/(2 theta) (1 - e^{-2 theta dt}).
  const double decay = std::exp(-theta_ * dts);
  const double var =
      sigma_ * sigma_ / (2.0 * theta_) * (1.0 - std::exp(-2.0 * theta_ * dts));
  x_ = mu_ + (x_ - mu_) * decay + rng_.gaussian(0.0, std::sqrt(var));
  return x_;
}

double OrnsteinUhlenbeck::stationary_stddev() const {
  return sigma_ / std::sqrt(2.0 * theta_);
}

}  // namespace amperebleed::sim
