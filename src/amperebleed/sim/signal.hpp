#pragma once
// Piecewise-constant signals: the canonical representation of workload
// activity (per-rail current draw as a function of time). Sensor models
// integrate these analytically over their conversion windows, which keeps
// multi-second simulations cheap regardless of circuit clock rates.

#include <cstddef>
#include <vector>

#include "amperebleed/sim/time.hpp"

namespace amperebleed::sim {

/// A right-open piecewise-constant function of time.
///
/// The value at time t is the value of the last segment whose start is <= t;
/// before the first segment the signal is `initial_value` (default 0).
/// Segments must be appended in strictly increasing start-time order.
class PiecewiseConstant {
 public:
  struct Segment {
    TimeNs start;
    double value;
  };

  explicit PiecewiseConstant(double initial_value = 0.0)
      : initial_value_(initial_value) {}

  /// Append a new segment starting at `start`. Throws std::invalid_argument
  /// if `start` is not after the previous segment's start. Appending the
  /// same value as the current tail is accepted and coalesced.
  void append(TimeNs start, double value);

  /// Value at time t (right-open semantics).
  [[nodiscard]] double value_at(TimeNs t) const;

  /// Exact integral of the signal over [t0, t1). Precondition: t0 <= t1.
  /// Units: value-units * seconds.
  [[nodiscard]] double integrate(TimeNs t0, TimeNs t1) const;

  /// Mean value over [t0, t1); returns value_at(t0) when the window is empty.
  [[nodiscard]] double mean(TimeNs t0, TimeNs t1) const;

  /// Minimum / maximum value attained over [t0, t1).
  [[nodiscard]] double min_over(TimeNs t0, TimeNs t1) const;
  [[nodiscard]] double max_over(TimeNs t0, TimeNs t1) const;

  [[nodiscard]] std::size_t segment_count() const { return segments_.size(); }
  [[nodiscard]] const std::vector<Segment>& segments() const { return segments_; }
  [[nodiscard]] double initial_value() const { return initial_value_; }

  /// End of the last segment's start time; TimeNs{0} if empty.
  [[nodiscard]] TimeNs last_change() const {
    return segments_.empty() ? TimeNs{0} : segments_.back().start;
  }

  /// Pointwise sum of two signals.
  friend PiecewiseConstant operator+(const PiecewiseConstant& a,
                                     const PiecewiseConstant& b);

  /// Multiply every value (including the initial value) by `factor`.
  void scale(double factor);

 private:
  // Index of the segment active at t, or npos if t precedes all segments.
  [[nodiscard]] std::size_t index_at(TimeNs t) const;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  double initial_value_;
  std::vector<Segment> segments_;
};

}  // namespace amperebleed::sim
