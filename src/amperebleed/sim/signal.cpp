#include "amperebleed/sim/signal.hpp"

#include <algorithm>
#include <stdexcept>

namespace amperebleed::sim {

void PiecewiseConstant::append(TimeNs start, double value) {
  const double current_tail =
      segments_.empty() ? initial_value_ : segments_.back().value;
  if (value == current_tail) return;  // coalesce no-op changes
  if (!segments_.empty() && start <= segments_.back().start) {
    throw std::invalid_argument(
        "PiecewiseConstant::append: segment starts must strictly increase");
  }
  segments_.push_back(Segment{start, value});
}

std::size_t PiecewiseConstant::index_at(TimeNs t) const {
  // Last segment with start <= t.
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), t,
      [](TimeNs lhs, const Segment& seg) { return lhs < seg.start; });
  if (it == segments_.begin()) return npos;
  return static_cast<std::size_t>(std::distance(segments_.begin(), it)) - 1;
}

double PiecewiseConstant::value_at(TimeNs t) const {
  const std::size_t i = index_at(t);
  return i == npos ? initial_value_ : segments_[i].value;
}

double PiecewiseConstant::integrate(TimeNs t0, TimeNs t1) const {
  if (t1 < t0) throw std::invalid_argument("integrate: t1 < t0");
  if (t0 == t1) return 0.0;
  double total = 0.0;
  TimeNs cursor = t0;
  std::size_t i = index_at(t0);
  while (cursor < t1) {
    const std::size_t next = (i == npos) ? 0 : i + 1;
    const TimeNs segment_end =
        next < segments_.size() ? std::min(segments_[next].start, t1) : t1;
    const double value = (i == npos) ? initial_value_ : segments_[i].value;
    total += value * (segment_end - cursor).seconds();
    cursor = segment_end;
    i = next;
    if (next >= segments_.size() && cursor < t1) {
      // Tail extends past the last segment: it keeps the last value.
      total += segments_.empty()
                   ? initial_value_ * (t1 - cursor).seconds()
                   : segments_.back().value * (t1 - cursor).seconds();
      break;
    }
  }
  return total;
}

double PiecewiseConstant::mean(TimeNs t0, TimeNs t1) const {
  if (t1 <= t0) return value_at(t0);
  return integrate(t0, t1) / (t1 - t0).seconds();
}

double PiecewiseConstant::min_over(TimeNs t0, TimeNs t1) const {
  double best = value_at(t0);
  for (const auto& seg : segments_) {
    if (seg.start >= t1) break;
    if (seg.start > t0) best = std::min(best, seg.value);
  }
  return best;
}

double PiecewiseConstant::max_over(TimeNs t0, TimeNs t1) const {
  double best = value_at(t0);
  for (const auto& seg : segments_) {
    if (seg.start >= t1) break;
    if (seg.start > t0) best = std::max(best, seg.value);
  }
  return best;
}

PiecewiseConstant operator+(const PiecewiseConstant& a,
                            const PiecewiseConstant& b) {
  PiecewiseConstant out(a.initial_value_ + b.initial_value_);
  std::size_t ia = 0;
  std::size_t ib = 0;
  double va = a.initial_value_;
  double vb = b.initial_value_;
  while (ia < a.segments_.size() || ib < b.segments_.size()) {
    const bool take_a =
        ib >= b.segments_.size() ||
        (ia < a.segments_.size() &&
         a.segments_[ia].start <= b.segments_[ib].start);
    TimeNs t{};
    if (take_a) {
      t = a.segments_[ia].start;
      va = a.segments_[ia].value;
      ++ia;
      // Consume a simultaneous change in b at the same instant.
      if (ib < b.segments_.size() && b.segments_[ib].start == t) {
        vb = b.segments_[ib].value;
        ++ib;
      }
    } else {
      t = b.segments_[ib].start;
      vb = b.segments_[ib].value;
      ++ib;
    }
    out.append(t, va + vb);
  }
  return out;
}

void PiecewiseConstant::scale(double factor) {
  initial_value_ *= factor;
  for (auto& seg : segments_) seg.value *= factor;
}

}  // namespace amperebleed::sim
