#pragma once
// Simulation time. All models in the library run on a shared virtual clock
// with nanosecond resolution; nothing reads the host wall clock, which keeps
// every experiment deterministic and much faster than real time.

#include <cstdint>

namespace amperebleed::sim {

/// A point on (or duration along) the virtual timeline, in nanoseconds.
/// A plain strong alias: cheap, ordered, and explicit at interfaces.
struct TimeNs {
  std::int64_t ns = 0;

  constexpr TimeNs() = default;
  constexpr explicit TimeNs(std::int64_t nanoseconds) : ns(nanoseconds) {}

  [[nodiscard]] constexpr double seconds() const { return static_cast<double>(ns) * 1e-9; }
  [[nodiscard]] constexpr double millis() const { return static_cast<double>(ns) * 1e-6; }
  [[nodiscard]] constexpr double micros() const { return static_cast<double>(ns) * 1e-3; }

  friend constexpr bool operator==(TimeNs a, TimeNs b) { return a.ns == b.ns; }
  friend constexpr bool operator!=(TimeNs a, TimeNs b) { return a.ns != b.ns; }
  friend constexpr bool operator<(TimeNs a, TimeNs b) { return a.ns < b.ns; }
  friend constexpr bool operator<=(TimeNs a, TimeNs b) { return a.ns <= b.ns; }
  friend constexpr bool operator>(TimeNs a, TimeNs b) { return a.ns > b.ns; }
  friend constexpr bool operator>=(TimeNs a, TimeNs b) { return a.ns >= b.ns; }
  friend constexpr TimeNs operator+(TimeNs a, TimeNs b) { return TimeNs{a.ns + b.ns}; }
  friend constexpr TimeNs operator-(TimeNs a, TimeNs b) { return TimeNs{a.ns - b.ns}; }
  TimeNs& operator+=(TimeNs d) {
    ns += d.ns;
    return *this;
  }
};

constexpr TimeNs nanoseconds(std::int64_t v) { return TimeNs{v}; }
constexpr TimeNs microseconds(std::int64_t v) { return TimeNs{v * 1'000}; }
constexpr TimeNs milliseconds(std::int64_t v) { return TimeNs{v * 1'000'000}; }
constexpr TimeNs seconds(std::int64_t v) { return TimeNs{v * 1'000'000'000}; }

/// Convert a floating-point second count (e.g. "5.0 s of sampling") to ns,
/// rounding to nearest.
constexpr TimeNs from_seconds(double s) {
  return TimeNs{static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5))};
}

}  // namespace amperebleed::sim
