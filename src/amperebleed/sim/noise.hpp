#pragma once
// Noise processes used by the board model: white measurement noise for
// sensor ADCs and a slow Ornstein-Uhlenbeck drift for thermal/regulator
// wander. Both are seeded and deterministic.

#include "amperebleed/sim/time.hpp"
#include "amperebleed/util/rng.hpp"

namespace amperebleed::sim {

/// Zero-mean white Gaussian noise with fixed standard deviation.
class WhiteNoise {
 public:
  WhiteNoise(double stddev, std::uint64_t seed)
      : stddev_(stddev), rng_(seed) {}

  double sample() { return rng_.gaussian(0.0, stddev_); }
  [[nodiscard]] double stddev() const { return stddev_; }

 private:
  double stddev_;
  util::Rng rng_;
};

/// Ornstein-Uhlenbeck process: dx = theta*(mu - x)*dt + sigma*dW.
/// step(dt) advances the process by dt using the exact discretization, so the
/// statistics do not depend on the step size used by the caller.
class OrnsteinUhlenbeck {
 public:
  /// @param mu     long-run mean
  /// @param theta  mean-reversion rate (1/s); larger = faster reversion
  /// @param sigma  diffusion strength
  OrnsteinUhlenbeck(double mu, double theta, double sigma, std::uint64_t seed);

  /// Advance by dt (must be >= 0) and return the new value.
  double step(TimeNs dt);

  [[nodiscard]] double value() const { return x_; }
  /// Stationary standard deviation sigma / sqrt(2*theta).
  [[nodiscard]] double stationary_stddev() const;
  void reset(double x0) { x_ = x0; }

 private:
  double mu_;
  double theta_;
  double sigma_;
  double x_;
  util::Rng rng_;
};

}  // namespace amperebleed::sim
