#pragma once
// The victim model zoo: 39 image-recognition architectures over 7 families,
// standing in for the Vitis AI Library suite the paper fingerprints. The
// exact published weights are irrelevant to the coarse current channel; what
// matters (and what these definitions reproduce) is each architecture's
// layer-level compute/traffic schedule, which is what shapes its current
// signature on the FPGA/DRAM/CPU rails.

#include <string_view>
#include <vector>

#include "amperebleed/dnn/model.hpp"

namespace amperebleed::dnn {

/// All 39 zoo models, in a fixed order (the class label of model i is i).
std::vector<Model> build_zoo();

/// Names of the zoo models, in label order.
std::vector<std::string> zoo_model_names();

/// Build one model by zoo name; throws std::invalid_argument if unknown.
Model build_model(std::string_view name);

/// The six example models of Fig 3, in the paper's order: MobileNet-V1,
/// SqueezeNet, EfficientNet-Lite, Inception-V3, ResNet-50, VGG-19.
std::vector<std::string> fig3_model_names();

}  // namespace amperebleed::dnn
