#include "amperebleed/dnn/layer.hpp"

#include <stdexcept>

namespace amperebleed::dnn {

std::string_view layer_kind_name(LayerKind kind) {
  switch (kind) {
    case LayerKind::Conv:
      return "conv";
    case LayerKind::DepthwiseConv:
      return "dwconv";
    case LayerKind::FullyConnected:
      return "fc";
    case LayerKind::Pool:
      return "pool";
    case LayerKind::GlobalPool:
      return "gpool";
    case LayerKind::EltwiseAdd:
      return "add";
    case LayerKind::Concat:
      return "concat";
  }
  return "unknown";
}

std::uint64_t Layer::macs() const {
  const std::uint64_t out_elems = output.elements();
  const auto k2 =
      static_cast<std::uint64_t>(kernel) * static_cast<std::uint64_t>(kernel);
  switch (kind) {
    case LayerKind::Conv:
      return out_elems * k2 * static_cast<std::uint64_t>(input.channels);
    case LayerKind::DepthwiseConv:
      return out_elems * k2;
    case LayerKind::FullyConnected:
      return input.elements() * static_cast<std::uint64_t>(output.channels);
    case LayerKind::Pool:
      // comparisons/adds, counted as one op per kernel element
      return out_elems * k2;
    case LayerKind::GlobalPool:
      return input.elements();
    case LayerKind::EltwiseAdd:
      return output.elements();
    case LayerKind::Concat:
      return 0;
  }
  return 0;
}

std::uint64_t Layer::weight_bytes() const {
  const auto k2 =
      static_cast<std::uint64_t>(kernel) * static_cast<std::uint64_t>(kernel);
  switch (kind) {
    case LayerKind::Conv:
      return k2 * static_cast<std::uint64_t>(input.channels) *
             static_cast<std::uint64_t>(output.channels);
    case LayerKind::DepthwiseConv:
      return k2 * static_cast<std::uint64_t>(output.channels);
    case LayerKind::FullyConnected:
      return input.elements() * static_cast<std::uint64_t>(output.channels);
    case LayerKind::Pool:
    case LayerKind::GlobalPool:
    case LayerKind::EltwiseAdd:
    case LayerKind::Concat:
      return 0;
  }
  return 0;
}

std::uint64_t Layer::activation_bytes() const {
  // EltwiseAdd reads two operands of the output shape.
  if (kind == LayerKind::EltwiseAdd) {
    return 2 * input.elements() + output.elements();
  }
  return input.elements() + output.elements();
}

double Layer::arithmetic_intensity() const {
  const std::uint64_t bytes = dram_bytes();
  if (bytes == 0) return 0.0;
  return static_cast<double>(macs()) / static_cast<double>(bytes);
}

namespace {

int ceil_div(int a, int b) { return (a + b - 1) / b; }

TensorShape strided_shape(TensorShape in, int out_channels, int stride) {
  if (stride <= 0) throw std::invalid_argument("Layer: stride must be > 0");
  return TensorShape{ceil_div(in.height, stride), ceil_div(in.width, stride),
                     out_channels};
}

}  // namespace

Layer make_conv(std::string name, TensorShape input, int out_channels,
                int kernel, int stride) {
  if (out_channels <= 0 || kernel <= 0) {
    throw std::invalid_argument("make_conv: bad parameters");
  }
  return Layer{std::move(name), LayerKind::Conv, input,
               strided_shape(input, out_channels, stride), kernel, stride};
}

Layer make_depthwise(std::string name, TensorShape input, int kernel,
                     int stride) {
  if (kernel <= 0) throw std::invalid_argument("make_depthwise: bad kernel");
  return Layer{std::move(name), LayerKind::DepthwiseConv, input,
               strided_shape(input, input.channels, stride), kernel, stride};
}

Layer make_fc(std::string name, TensorShape input, int out_features) {
  if (out_features <= 0) throw std::invalid_argument("make_fc: bad width");
  return Layer{std::move(name),          LayerKind::FullyConnected,
               input,                    TensorShape{1, 1, out_features},
               /*kernel=*/1,             /*stride=*/1};
}

Layer make_pool(std::string name, TensorShape input, int kernel, int stride) {
  if (kernel <= 0) throw std::invalid_argument("make_pool: bad kernel");
  return Layer{std::move(name), LayerKind::Pool, input,
               strided_shape(input, input.channels, stride), kernel, stride};
}

Layer make_global_pool(std::string name, TensorShape input) {
  return Layer{std::move(name),
               LayerKind::GlobalPool,
               input,
               TensorShape{1, 1, input.channels},
               /*kernel=*/1,
               /*stride=*/1};
}

Layer make_eltwise_add(std::string name, TensorShape shape) {
  return Layer{std::move(name), LayerKind::EltwiseAdd, shape, shape, 1, 1};
}

Layer make_concat(std::string name, TensorShape input, int added_channels) {
  if (added_channels <= 0) {
    throw std::invalid_argument("make_concat: bad channel count");
  }
  TensorShape out = input;
  out.channels += added_channels;
  return Layer{std::move(name), LayerKind::Concat, input, out, 1, 1};
}

}  // namespace amperebleed::dnn
