#include "amperebleed/dnn/model.hpp"

#include <algorithm>

#include "amperebleed/util/strings.hpp"

namespace amperebleed::dnn {

std::string_view family_name(Family f) {
  switch (f) {
    case Family::MobileNet:
      return "MobileNet";
    case Family::SqueezeNet:
      return "SqueezeNet";
    case Family::EfficientNet:
      return "EfficientNet";
    case Family::Inception:
      return "Inception";
    case Family::ResNet:
      return "ResNet";
    case Family::Vgg:
      return "VGG";
    case Family::DenseNet:
      return "DenseNet";
  }
  return "unknown";
}

std::uint64_t Model::total_macs() const {
  std::uint64_t total = 0;
  for (const auto& l : layers) total += l.macs();
  return total;
}

std::uint64_t Model::total_weight_bytes() const {
  std::uint64_t total = 0;
  for (const auto& l : layers) total += l.weight_bytes();
  return total;
}

std::uint64_t Model::total_dram_bytes() const {
  std::uint64_t total = 0;
  for (const auto& l : layers) total += l.dram_bytes();
  return total;
}

ModelBuilder::ModelBuilder(std::string name, Family family, TensorShape input)
    : cursor_(input) {
  model_.name = std::move(name);
  model_.family = family;
  model_.input = input;
}

ModelBuilder& ModelBuilder::push(Layer layer) {
  cursor_ = layer.output;
  model_.layers.push_back(std::move(layer));
  return *this;
}

ModelBuilder& ModelBuilder::conv(int out_channels, int kernel, int stride) {
  return push(make_conv(util::format("conv%d", next_id_++), cursor_,
                        out_channels, kernel, stride));
}

ModelBuilder& ModelBuilder::depthwise(int kernel, int stride) {
  return push(
      make_depthwise(util::format("dw%d", next_id_++), cursor_, kernel, stride));
}

ModelBuilder& ModelBuilder::separable(int out_channels, int kernel,
                                      int stride) {
  depthwise(kernel, stride);
  return conv(out_channels, 1, 1);
}

ModelBuilder& ModelBuilder::inverted_residual(int out_channels, int expansion,
                                              int stride) {
  const TensorShape entry = cursor_;
  conv(entry.channels * expansion, 1, 1);
  depthwise(3, stride);
  conv(out_channels, 1, 1);
  if (stride == 1 && entry.channels == out_channels) {
    push(make_eltwise_add(util::format("add%d", next_id_++), cursor_));
  }
  return *this;
}

ModelBuilder& ModelBuilder::bottleneck(int mid_channels, int stride) {
  conv(mid_channels, 1, 1);
  conv(mid_channels, 3, stride);
  conv(mid_channels * 4, 1, 1);
  return push(make_eltwise_add(util::format("add%d", next_id_++), cursor_));
}

ModelBuilder& ModelBuilder::basic_block(int channels, int stride) {
  conv(channels, 3, stride);
  conv(channels, 3, 1);
  return push(make_eltwise_add(util::format("add%d", next_id_++), cursor_));
}

ModelBuilder& ModelBuilder::fire(int squeeze_channels, int expand_channels) {
  conv(squeeze_channels, 1, 1);
  // Two expand branches executed sequentially, then fused by concat.
  conv(expand_channels, 1, 1);
  const TensorShape after_1x1 = cursor_;
  cursor_.channels = squeeze_channels;  // the 3x3 branch reads the squeeze out
  conv(expand_channels, 3, 1);
  return push(make_concat(util::format("cat%d", next_id_++), cursor_,
                          after_1x1.channels));
}

ModelBuilder& ModelBuilder::inception_mixed(int b1x1, int b3x3_reduce,
                                            int b3x3, int b5x5_reduce,
                                            int b5x5, int pool_proj) {
  const TensorShape entry = cursor_;
  conv(b1x1, 1, 1);
  cursor_ = entry;
  conv(b3x3_reduce, 1, 1);
  conv(b3x3, 3, 1);
  cursor_ = entry;
  conv(b5x5_reduce, 1, 1);
  conv(b5x5, 5, 1);
  cursor_ = entry;
  pool(3, 1);
  conv(pool_proj, 1, 1);
  // Fused output: channel concatenation of the four branches.
  cursor_ = TensorShape{entry.height, entry.width,
                        b1x1 + b3x3 + b5x5 + pool_proj};
  return *this;
}

ModelBuilder& ModelBuilder::dense_layer(int growth) {
  const TensorShape entry = cursor_;
  conv(growth * 4, 1, 1);
  conv(growth, 3, 1);
  return push(
      make_concat(util::format("cat%d", next_id_++), cursor_, entry.channels));
}

ModelBuilder& ModelBuilder::se_block(int reduction) {
  const TensorShape entry = cursor_;
  global_pool();
  fc(std::max(1, entry.channels / reduction));
  fc(entry.channels);
  // Channel-wise rescale of the saved feature map.
  cursor_ = entry;
  return push(make_eltwise_add(util::format("scale%d", next_id_++), cursor_));
}

ModelBuilder& ModelBuilder::pool(int kernel, int stride) {
  return push(
      make_pool(util::format("pool%d", next_id_++), cursor_, kernel, stride));
}

ModelBuilder& ModelBuilder::global_pool() {
  return push(make_global_pool(util::format("gpool%d", next_id_++), cursor_));
}

ModelBuilder& ModelBuilder::fc(int out_features) {
  return push(make_fc(util::format("fc%d", next_id_++), cursor_, out_features));
}

Model ModelBuilder::build() && { return std::move(model_); }

}  // namespace amperebleed::dnn
