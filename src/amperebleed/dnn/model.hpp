#pragma once
// Whole-model container and a fluent builder that tracks shapes so the zoo
// definitions stay readable.

#include <cstdint>
#include <string>
#include <vector>

#include "amperebleed/dnn/layer.hpp"

namespace amperebleed::dnn {

/// The seven architecture families of the fingerprinting study.
enum class Family {
  MobileNet,
  SqueezeNet,
  EfficientNet,
  Inception,
  ResNet,
  Vgg,
  DenseNet,
};

std::string_view family_name(Family f);

struct Model {
  std::string name;
  Family family = Family::ResNet;
  TensorShape input;
  std::vector<Layer> layers;

  [[nodiscard]] std::uint64_t total_macs() const;
  [[nodiscard]] std::uint64_t total_weight_bytes() const;
  [[nodiscard]] std::uint64_t total_dram_bytes() const;
  [[nodiscard]] std::size_t layer_count() const { return layers.size(); }
};

/// Builder with a shape cursor: each call appends a layer whose input is the
/// previous layer's output. Residual/branch structures are modelled as the
/// sequential layer stream the DPU actually executes.
class ModelBuilder {
 public:
  ModelBuilder(std::string name, Family family, TensorShape input);

  ModelBuilder& conv(int out_channels, int kernel, int stride = 1);
  ModelBuilder& depthwise(int kernel, int stride = 1);
  /// Depthwise-separable block: depthwise(k, s) + pointwise 1x1 conv.
  ModelBuilder& separable(int out_channels, int kernel, int stride = 1);
  /// Inverted residual (MobileNet-V2 style): 1x1 expand, depthwise,
  /// 1x1 project, plus the residual add when shapes allow.
  ModelBuilder& inverted_residual(int out_channels, int expansion, int stride);
  /// ResNet bottleneck: 1x1 reduce, 3x3, 1x1 expand (4x), residual add.
  ModelBuilder& bottleneck(int mid_channels, int stride);
  /// ResNet basic block: two 3x3 convs + residual add.
  ModelBuilder& basic_block(int channels, int stride);
  /// SqueezeNet fire module: 1x1 squeeze then 1x1 + 3x3 expands (concat).
  ModelBuilder& fire(int squeeze_channels, int expand_channels);
  /// Inception-style mixed block approximated as its sequential branches.
  ModelBuilder& inception_mixed(int b1x1, int b3x3_reduce, int b3x3,
                                int b5x5_reduce, int b5x5, int pool_proj);
  /// DenseNet layer: 1x1 (4*growth) + 3x3 (growth), concatenated.
  ModelBuilder& dense_layer(int growth);
  /// Squeeze-and-excitation block: global pool + two FCs + channel rescale;
  /// the spatial feature map continues unchanged afterwards.
  ModelBuilder& se_block(int reduction = 16);
  ModelBuilder& pool(int kernel, int stride);
  ModelBuilder& global_pool();
  ModelBuilder& fc(int out_features);

  [[nodiscard]] const TensorShape& shape() const { return cursor_; }
  [[nodiscard]] Model build() &&;

 private:
  ModelBuilder& push(Layer layer);
  Model model_;
  TensorShape cursor_;
  int next_id_ = 0;
};

}  // namespace amperebleed::dnn
