#pragma once
// Layer-level IR for the DNN workloads the DPU executes. The fingerprinting
// side channel only depends on each layer's compute intensity (MACs) and
// memory traffic (weight + activation bytes), so that is exactly what the IR
// captures. Weights/activations are INT8, as deployed by Vitis AI.

#include <cstdint>
#include <string>

namespace amperebleed::dnn {

struct TensorShape {
  int height = 1;
  int width = 1;
  int channels = 1;

  [[nodiscard]] std::uint64_t elements() const {
    return static_cast<std::uint64_t>(height) *
           static_cast<std::uint64_t>(width) *
           static_cast<std::uint64_t>(channels);
  }
  friend bool operator==(const TensorShape&, const TensorShape&) = default;
};

enum class LayerKind {
  Conv,           // standard convolution
  DepthwiseConv,  // per-channel convolution (MobileNet/EfficientNet)
  FullyConnected,
  Pool,        // max/avg pooling
  GlobalPool,  // global average pooling
  EltwiseAdd,  // residual addition
  Concat,      // channel concatenation (Inception/DenseNet)
};

std::string_view layer_kind_name(LayerKind kind);

/// One executable layer. Shapes are fully resolved; derived quantities
/// (MACs, bytes) are computed on demand.
struct Layer {
  std::string name;
  LayerKind kind = LayerKind::Conv;
  TensorShape input;
  TensorShape output;
  int kernel = 1;
  int stride = 1;

  /// Multiply-accumulate operations performed by the layer.
  [[nodiscard]] std::uint64_t macs() const;
  /// Parameter bytes streamed from DRAM (INT8 weights; biases ignored).
  [[nodiscard]] std::uint64_t weight_bytes() const;
  /// Activation bytes moved (read input + write output, INT8).
  [[nodiscard]] std::uint64_t activation_bytes() const;
  /// Total DRAM traffic for the layer.
  [[nodiscard]] std::uint64_t dram_bytes() const {
    return weight_bytes() + activation_bytes();
  }
  /// MACs per byte of DRAM traffic — decides whether the layer is compute-
  /// or bandwidth-bound on the accelerator.
  [[nodiscard]] double arithmetic_intensity() const;
};

/// Convenience constructors that resolve output shapes. All use SAME-style
/// padding: out = ceil(in / stride).
Layer make_conv(std::string name, TensorShape input, int out_channels,
                int kernel, int stride);
Layer make_depthwise(std::string name, TensorShape input, int kernel,
                     int stride);
Layer make_fc(std::string name, TensorShape input, int out_features);
Layer make_pool(std::string name, TensorShape input, int kernel, int stride);
Layer make_global_pool(std::string name, TensorShape input);
Layer make_eltwise_add(std::string name, TensorShape shape);
Layer make_concat(std::string name, TensorShape input, int added_channels);

}  // namespace amperebleed::dnn
