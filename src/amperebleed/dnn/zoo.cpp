#include "amperebleed/dnn/zoo.hpp"

#include <cmath>
#include <stdexcept>

namespace amperebleed::dnn {

namespace {

constexpr TensorShape kImageNet224{224, 224, 3};
constexpr TensorShape kImageNet299{299, 299, 3};

int scaled(int channels, double width_mult) {
  const int c = static_cast<int>(std::lround(channels * width_mult));
  return std::max(c, 8);
}

int repeats(int base, double depth_mult) {
  return std::max(1, static_cast<int>(std::lround(base * depth_mult)));
}

// ---------------------------------------------------------------- MobileNet

Model mobilenet_v1(const std::string& name, double width) {
  ModelBuilder b(name, Family::MobileNet, kImageNet224);
  b.conv(scaled(32, width), 3, 2);
  b.separable(scaled(64, width), 3, 1);
  b.separable(scaled(128, width), 3, 2);
  b.separable(scaled(128, width), 3, 1);
  b.separable(scaled(256, width), 3, 2);
  b.separable(scaled(256, width), 3, 1);
  b.separable(scaled(512, width), 3, 2);
  for (int i = 0; i < 5; ++i) b.separable(scaled(512, width), 3, 1);
  b.separable(scaled(1024, width), 3, 2);
  b.separable(scaled(1024, width), 3, 1);
  b.global_pool().fc(1000);
  return std::move(b).build();
}

Model mobilenet_v2(const std::string& name, double width) {
  ModelBuilder b(name, Family::MobileNet, kImageNet224);
  b.conv(scaled(32, width), 3, 2);
  b.inverted_residual(scaled(16, width), 1, 1);
  b.inverted_residual(scaled(24, width), 6, 2);
  b.inverted_residual(scaled(24, width), 6, 1);
  for (int i = 0; i < 3; ++i) {
    b.inverted_residual(scaled(32, width), 6, i == 0 ? 2 : 1);
  }
  for (int i = 0; i < 4; ++i) {
    b.inverted_residual(scaled(64, width), 6, i == 0 ? 2 : 1);
  }
  for (int i = 0; i < 3; ++i) b.inverted_residual(scaled(96, width), 6, 1);
  for (int i = 0; i < 3; ++i) {
    b.inverted_residual(scaled(160, width), 6, i == 0 ? 2 : 1);
  }
  b.inverted_residual(scaled(320, width), 6, 1);
  b.conv(scaled(1280, std::max(1.0, width)), 1, 1);
  b.global_pool().fc(1000);
  return std::move(b).build();
}

Model mobilenet_v3_large(const std::string& name) {
  ModelBuilder b(name, Family::MobileNet, kImageNet224);
  b.conv(16, 3, 2);
  b.inverted_residual(16, 1, 1);
  b.inverted_residual(24, 4, 2);
  b.inverted_residual(24, 3, 1);
  b.inverted_residual(40, 3, 2);
  b.inverted_residual(40, 3, 1);
  b.inverted_residual(40, 3, 1);
  b.inverted_residual(80, 6, 2);
  for (int i = 0; i < 3; ++i) b.inverted_residual(80, 3, 1);
  b.inverted_residual(112, 6, 1);
  b.inverted_residual(112, 6, 1);
  b.inverted_residual(160, 6, 2);
  b.inverted_residual(160, 6, 1);
  b.inverted_residual(160, 6, 1);
  b.conv(960, 1, 1);
  b.global_pool().fc(1280).fc(1000);
  return std::move(b).build();
}

// --------------------------------------------------------------- SqueezeNet

Model squeezenet(const std::string& name, bool v11) {
  ModelBuilder b(name, Family::SqueezeNet, kImageNet224);
  if (v11) {
    b.conv(64, 3, 2);
    b.pool(3, 2);
    b.fire(16, 64).fire(16, 64);
    b.pool(3, 2);
    b.fire(32, 128).fire(32, 128);
    b.pool(3, 2);
    b.fire(48, 192).fire(48, 192).fire(64, 256).fire(64, 256);
  } else {
    b.conv(96, 7, 2);
    b.pool(3, 2);
    b.fire(16, 64).fire(16, 64).fire(32, 128);
    b.pool(3, 2);
    b.fire(32, 128).fire(48, 192).fire(48, 192).fire(64, 256);
    b.pool(3, 2);
    b.fire(64, 256);
  }
  b.conv(1000, 1, 1);
  b.global_pool();
  return std::move(b).build();
}

// ------------------------------------------------------------- EfficientNet

Model efficientnet(const std::string& name, double width, double depth,
                   int resolution, bool squeeze_excite = false) {
  // The -Lite variants strip squeeze-and-excitation (not DPU-friendly);
  // the original B0 keeps it.
  ModelBuilder b(name, Family::EfficientNet,
                 TensorShape{resolution, resolution, 3});
  b.conv(scaled(32, width), 3, 2);
  struct Stage {
    int channels;
    int base_repeats;
    int kernel;
    int stride;
    int expansion;
  };
  const Stage stages[] = {
      {16, 1, 3, 1, 1},  {24, 2, 3, 2, 6}, {40, 2, 5, 2, 6},
      {80, 3, 3, 2, 6},  {112, 3, 5, 1, 6}, {192, 4, 5, 2, 6},
      {320, 1, 3, 1, 6},
  };
  for (const auto& s : stages) {
    const int n = repeats(s.base_repeats, depth);
    for (int i = 0; i < n; ++i) {
      b.inverted_residual(scaled(s.channels, width), s.expansion,
                          i == 0 ? s.stride : 1);
      if (squeeze_excite) b.se_block(4);
    }
  }
  b.conv(scaled(1280, width), 1, 1);
  b.global_pool().fc(1000);
  return std::move(b).build();
}

// ---------------------------------------------------------------- Inception

Model inception_v1(const std::string& name) {
  ModelBuilder b(name, Family::Inception, kImageNet224);
  b.conv(64, 7, 2).pool(3, 2);
  b.conv(64, 1, 1).conv(192, 3, 1).pool(3, 2);
  b.inception_mixed(64, 96, 128, 16, 32, 32);
  b.inception_mixed(128, 128, 192, 32, 96, 64);
  b.pool(3, 2);
  b.inception_mixed(192, 96, 208, 16, 48, 64);
  b.inception_mixed(160, 112, 224, 24, 64, 64);
  b.inception_mixed(128, 128, 256, 24, 64, 64);
  b.inception_mixed(112, 144, 288, 32, 64, 64);
  b.inception_mixed(256, 160, 320, 32, 128, 128);
  b.pool(3, 2);
  b.inception_mixed(256, 160, 320, 32, 128, 128);
  b.inception_mixed(384, 192, 384, 48, 128, 128);
  b.global_pool().fc(1000);
  return std::move(b).build();
}

Model inception_deep(const std::string& name, int blocks_a, int blocks_b,
                     int blocks_c, double width, TensorShape input,
                     bool residual) {
  ModelBuilder b(name, Family::Inception, input);
  b.conv(scaled(32, width), 3, 2);
  b.conv(scaled(32, width), 3, 1);
  b.conv(scaled(64, width), 3, 1);
  b.pool(3, 2);
  b.conv(scaled(80, width), 1, 1);
  b.conv(scaled(192, width), 3, 1);
  b.pool(3, 2);
  for (int i = 0; i < blocks_a; ++i) {
    b.inception_mixed(scaled(64, width), scaled(48, width), scaled(64, width),
                      scaled(64, width), scaled(96, width), scaled(64, width));
    if (residual) {
      // Residual variant fuses each block back into its input width.
      b.conv(scaled(288, width), 1, 1);
    }
  }
  b.pool(3, 2);
  for (int i = 0; i < blocks_b; ++i) {
    b.inception_mixed(scaled(192, width), scaled(128, width),
                      scaled(192, width), scaled(128, width),
                      scaled(192, width), scaled(192, width));
    if (residual) b.conv(scaled(768, width), 1, 1);
  }
  b.pool(3, 2);
  for (int i = 0; i < blocks_c; ++i) {
    b.inception_mixed(scaled(320, width), scaled(384, width),
                      scaled(384, width), scaled(448, width),
                      scaled(384, width), scaled(192, width));
    if (residual) b.conv(scaled(1280, width), 1, 1);
  }
  b.global_pool().fc(1000);
  return std::move(b).build();
}

// ------------------------------------------------------------------- ResNet

Model resnet_basic(const std::string& name, int s1, int s2, int s3, int s4) {
  ModelBuilder b(name, Family::ResNet, kImageNet224);
  b.conv(64, 7, 2).pool(3, 2);
  for (int i = 0; i < s1; ++i) b.basic_block(64, 1);
  for (int i = 0; i < s2; ++i) b.basic_block(128, i == 0 ? 2 : 1);
  for (int i = 0; i < s3; ++i) b.basic_block(256, i == 0 ? 2 : 1);
  for (int i = 0; i < s4; ++i) b.basic_block(512, i == 0 ? 2 : 1);
  b.global_pool().fc(1000);
  return std::move(b).build();
}

Model resnet_bottleneck(const std::string& name, int s1, int s2, int s3,
                        int s4, double width_mult = 1.0) {
  ModelBuilder b(name, Family::ResNet, kImageNet224);
  b.conv(64, 7, 2).pool(3, 2);
  for (int i = 0; i < s1; ++i) b.bottleneck(scaled(64, width_mult), 1);
  for (int i = 0; i < s2; ++i) {
    b.bottleneck(scaled(128, width_mult), i == 0 ? 2 : 1);
  }
  for (int i = 0; i < s3; ++i) {
    b.bottleneck(scaled(256, width_mult), i == 0 ? 2 : 1);
  }
  for (int i = 0; i < s4; ++i) {
    b.bottleneck(scaled(512, width_mult), i == 0 ? 2 : 1);
  }
  b.global_pool().fc(1000);
  return std::move(b).build();
}

Model se_resnet50(const std::string& name) {
  // SE blocks add a squeeze (global pool) + two FC layers per bottleneck;
  // modelled at stage granularity to keep the schedule faithful in traffic.
  ModelBuilder b(name, Family::ResNet, kImageNet224);
  b.conv(64, 7, 2).pool(3, 2);
  const int stages[4] = {3, 4, 6, 3};
  const int mids[4] = {64, 128, 256, 512};
  for (int s = 0; s < 4; ++s) {
    for (int i = 0; i < stages[s]; ++i) {
      b.bottleneck(mids[s], (s > 0 && i == 0) ? 2 : 1);
      b.se_block();
    }
  }
  b.global_pool().fc(1000);
  return std::move(b).build();
}

// -------------------------------------------------------------------- VGG

Model vgg(const std::string& name, const std::vector<int>& stage_convs,
          bool batch_norm) {
  ModelBuilder b(name, Family::Vgg, kImageNet224);
  const int channels[5] = {64, 128, 256, 512, 512};
  for (std::size_t s = 0; s < stage_convs.size(); ++s) {
    for (int i = 0; i < stage_convs[s]; ++i) {
      b.conv(channels[s], 3, 1);
      if (batch_norm) {
        // Fused scale/shift: negligible MACs, extra activation traffic.
        b.conv(channels[s], 1, 1);
      }
    }
    b.pool(2, 2);
  }
  b.fc(4096).fc(4096).fc(1000);
  return std::move(b).build();
}

// ----------------------------------------------------------------- DenseNet

Model densenet(const std::string& name, int growth,
               const std::vector<int>& block_layers, int stem_channels) {
  ModelBuilder b(name, Family::DenseNet, kImageNet224);
  b.conv(stem_channels, 7, 2).pool(3, 2);
  for (std::size_t blk = 0; blk < block_layers.size(); ++blk) {
    for (int i = 0; i < block_layers[blk]; ++i) b.dense_layer(growth);
    if (blk + 1 < block_layers.size()) {
      b.conv(b.shape().channels / 2, 1, 1);  // transition compression
      b.pool(2, 2);
    }
  }
  b.global_pool().fc(1000);
  return std::move(b).build();
}

}  // namespace

std::vector<Model> build_zoo() {
  std::vector<Model> zoo;
  zoo.reserve(39);

  // MobileNet family (6)
  zoo.push_back(mobilenet_v1("MobileNet-V1", 1.0));
  zoo.push_back(mobilenet_v1("MobileNet-V1-0.5", 0.5));
  zoo.push_back(mobilenet_v1("MobileNet-V1-0.25", 0.25));
  zoo.push_back(mobilenet_v2("MobileNet-V2", 1.0));
  zoo.push_back(mobilenet_v2("MobileNet-V2-1.4", 1.4));
  zoo.push_back(mobilenet_v3_large("MobileNet-V3-Large"));

  // SqueezeNet family (2)
  zoo.push_back(squeezenet("SqueezeNet", false));
  zoo.push_back(squeezenet("SqueezeNet-1.1", true));

  // EfficientNet family (6)
  zoo.push_back(efficientnet("EfficientNet-Lite", 1.0, 1.0, 224));
  zoo.push_back(efficientnet("EfficientNet-Lite1", 1.0, 1.1, 240));
  zoo.push_back(efficientnet("EfficientNet-Lite2", 1.1, 1.2, 260));
  zoo.push_back(efficientnet("EfficientNet-Lite3", 1.2, 1.4, 280));
  zoo.push_back(efficientnet("EfficientNet-Lite4", 1.4, 1.8, 300));
  zoo.push_back(efficientnet("EfficientNet-B0", 1.0, 1.0, 224,
                             /*squeeze_excite=*/true));

  // Inception family (5)
  zoo.push_back(inception_v1("Inception-V1"));
  zoo.push_back(inception_deep("Inception-V2", 3, 4, 2, 0.85, kImageNet224,
                               /*residual=*/false));
  zoo.push_back(inception_deep("Inception-V3", 3, 4, 2, 1.0, kImageNet299,
                               /*residual=*/false));
  zoo.push_back(inception_deep("Inception-V4", 4, 7, 3, 1.1, kImageNet299,
                               /*residual=*/false));
  zoo.push_back(inception_deep("Inception-ResNet-V2", 5, 10, 5, 0.9,
                               kImageNet299, /*residual=*/true));

  // ResNet family (8)
  zoo.push_back(resnet_basic("ResNet-18", 2, 2, 2, 2));
  zoo.push_back(resnet_basic("ResNet-34", 3, 4, 6, 3));
  zoo.push_back(resnet_bottleneck("ResNet-26", 2, 2, 2, 2));
  zoo.push_back(resnet_bottleneck("ResNet-50", 3, 4, 6, 3));
  zoo.push_back(resnet_bottleneck("ResNet-101", 3, 4, 23, 3));
  zoo.push_back(resnet_bottleneck("ResNet-152", 3, 8, 36, 3));
  zoo.push_back(resnet_bottleneck("WideResNet-50", 3, 4, 6, 3, 2.0));
  zoo.push_back(se_resnet50("SE-ResNet-50"));

  // VGG family (6)
  zoo.push_back(vgg("VGG-11", {1, 1, 2, 2, 2}, false));
  zoo.push_back(vgg("VGG-13", {2, 2, 2, 2, 2}, false));
  zoo.push_back(vgg("VGG-16", {2, 2, 3, 3, 3}, false));
  zoo.push_back(vgg("VGG-19", {2, 2, 4, 4, 4}, false));
  zoo.push_back(vgg("VGG-16-BN", {2, 2, 3, 3, 3}, true));
  zoo.push_back(vgg("VGG-19-BN", {2, 2, 4, 4, 4}, true));

  // DenseNet family (6)
  zoo.push_back(densenet("DenseNet-121", 32, {6, 12, 24, 16}, 64));
  zoo.push_back(densenet("DenseNet-161", 48, {6, 12, 36, 24}, 96));
  zoo.push_back(densenet("DenseNet-169", 32, {6, 12, 32, 32}, 64));
  zoo.push_back(densenet("DenseNet-201", 32, {6, 12, 48, 32}, 64));
  zoo.push_back(densenet("DenseNet-264", 32, {6, 12, 64, 48}, 64));
  zoo.push_back(densenet("DenseNet-100-24", 24, {16, 16, 16}, 48));

  return zoo;
}

std::vector<std::string> zoo_model_names() {
  std::vector<std::string> names;
  for (const auto& m : build_zoo()) names.push_back(m.name);
  return names;
}

Model build_model(std::string_view name) {
  for (auto& m : build_zoo()) {
    if (m.name == name) return std::move(m);
  }
  throw std::invalid_argument("build_model: unknown model '" +
                              std::string(name) + "'");
}

std::vector<std::string> fig3_model_names() {
  return {"MobileNet-V1", "SqueezeNet",  "EfficientNet-Lite",
          "Inception-V3", "ResNet-50",   "VGG-19"};
}

}  // namespace amperebleed::dnn
