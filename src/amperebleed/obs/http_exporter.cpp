#include "amperebleed/obs/http_exporter.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "amperebleed/obs/prometheus.hpp"
#include "amperebleed/util/strings.hpp"

namespace amperebleed::obs {

namespace {

constexpr std::size_t kMaxRequestBytes = 8 * 1024;
constexpr int kPollIntervalMs = 100;
constexpr int kClientTimeoutMs = 2000;

std::string make_response(int status, const char* reason,
                          const char* content_type, const std::string& body) {
  std::string response = util::format(
      "HTTP/1.1 %d %s\r\n"
      "Content-Type: %s\r\n"
      "Content-Length: %zu\r\n"
      "Connection: close\r\n"
      "\r\n",
      status, reason, content_type, body.size());
  response += body;
  return response;
}

void send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && (errno == EINTR)) continue;
      return;  // client went away; nothing to salvage
    }
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

HttpExporter::HttpExporter(MetricsRegistry& registry)
    : HttpExporter(registry, Config{}) {}

HttpExporter::HttpExporter(MetricsRegistry& registry, Config config)
    : registry_(registry), config_(std::move(config)) {}

HttpExporter::~HttpExporter() { stop(); }

void HttpExporter::set_runrecord_provider(
    std::function<util::Json()> provider) {
  std::lock_guard<std::mutex> lock(provider_mu_);
  runrecord_provider_ = std::move(provider);
}

void HttpExporter::set_flamegraph_provider(
    std::function<std::string()> provider) {
  std::lock_guard<std::mutex> lock(provider_mu_);
  flamegraph_provider_ = std::move(provider);
}

void HttpExporter::set_slo_provider(std::function<util::Json()> provider) {
  std::lock_guard<std::mutex> lock(provider_mu_);
  slo_provider_ = std::move(provider);
}

void HttpExporter::set_quality_provider(std::function<util::Json()> provider) {
  std::lock_guard<std::mutex> lock(provider_mu_);
  quality_provider_ = std::move(provider);
}

void HttpExporter::start() {
  if (running_.load(std::memory_order_acquire)) return;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("HttpExporter: socket() failed");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("HttpExporter: bad bind address '" +
                             config_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(
        util::format("HttpExporter: bind to %s:%d failed (%s)",
                     config_.bind_address.c_str(), config_.port,
                     std::strerror(err)));
  }
  if (::listen(listen_fd_, 8) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("HttpExporter: listen() failed");
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = static_cast<int>(ntohs(bound.sin_port));
  } else {
    port_ = config_.port;
  }

  stop_requested_.store(false, std::memory_order_release);
  started_at_ = std::chrono::steady_clock::now();
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
}

void HttpExporter::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stop_requested_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

void HttpExporter::serve_loop() {
  while (!stop_requested_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, kPollIntervalMs);
    if (ready <= 0) continue;  // timeout / EINTR: re-check the stop flag
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    handle_connection(client);
    ::close(client);
  }
}

void HttpExporter::handle_connection(int client_fd) {
  timeval timeout{};
  timeout.tv_sec = kClientTimeoutMs / 1000;
  timeout.tv_usec = (kClientTimeoutMs % 1000) * 1000;
  ::setsockopt(client_fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(client_fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));

  std::string request;
  char buffer[1024];
  while (request.size() < kMaxRequestBytes &&
         request.find("\r\n\r\n") == std::string::npos &&
         request.find('\n') == std::string::npos) {
    const ssize_t n = ::recv(client_fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    request.append(buffer, static_cast<std::size_t>(n));
  }

  // Only the request line matters: "<METHOD> <path> HTTP/1.1".
  const std::size_t eol = request.find_first_of("\r\n");
  const std::string line =
      eol == std::string::npos ? request : request.substr(0, eol);
  const auto parts = util::split(line, ' ');
  if (parts.size() < 2) {
    send_all(client_fd, make_response(400, "Bad Request", "text/plain",
                                      "bad request\n"));
    return;
  }
  const std::string& method = parts[0];
  // Strip any query string; routes don't take parameters.
  std::string path = parts[1];
  const std::size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);

  requests_.fetch_add(1, std::memory_order_relaxed);
  registry_.counter("obs_http_requests_total").inc();
  send_all(client_fd, build_response(method, path));
}

std::string HttpExporter::build_response(const std::string& method,
                                         const std::string& path) {
  if (method != "GET" && method != "HEAD") {
    return make_response(405, "Method Not Allowed", "text/plain",
                         "only GET and HEAD are supported\n");
  }
  std::string response = build_get_response(path);
  if (method == "HEAD") {
    // Headers only — Content-Length still advertises the GET body's size,
    // which is the whole point of a HEAD probe.
    response.resize(response.find("\r\n\r\n") + 4);
  }
  return response;
}

std::string HttpExporter::build_get_response(const std::string& path) {
  if (path == "/metrics") {
    return make_response(200, "OK",
                         "text/plain; version=0.0.4; charset=utf-8",
                         to_prometheus_text(registry_));
  }
  if (path == "/healthz") {
    // Fold the sampler's per-channel health gauges (published as
    // sampler.health.<channel>, value = ChannelHealth ordinal) into
    // per-state counts. All-quarantined means no channel can produce
    // data: that is a 503, the signal an LB health check keys off.
    const auto channel_gauges =
        registry_.gauge_names_with_prefix("sampler.health.");
    static constexpr const char* kStateNames[] = {"healthy", "degraded",
                                                  "quarantined", "probing"};
    std::size_t counts[4] = {0, 0, 0, 0};
    for (const auto& name : channel_gauges) {
      const auto state =
          static_cast<std::int64_t>(registry_.gauge_value(name, 0.0));
      if (state >= 0 && state < 4) ++counts[static_cast<std::size_t>(state)];
    }
    const bool all_quarantined =
        !channel_gauges.empty() && counts[2] == channel_gauges.size();

    auto channels = util::Json::object();
    channels.set("total", util::Json::integer(static_cast<std::int64_t>(
                              channel_gauges.size())));
    for (std::size_t s = 0; s < 4; ++s) {
      channels.set(kStateNames[s], util::Json::integer(
                                       static_cast<std::int64_t>(counts[s])));
    }

    // Durable-storage health (published by serve:: when durability is on).
    // Degraded storage keeps classify serving, so it is a 200 with status
    // "degraded" — visible to operators, invisible to LB liveness.
    const auto storage_gauges =
        registry_.gauge_names_with_prefix("serve.storage.degraded");
    const bool storage_present = !storage_gauges.empty();
    const bool storage_degraded =
        storage_present &&
        registry_.gauge_value("serve.storage.degraded", 0.0) != 0.0;

    auto body = util::Json::object();
    body.set("status",
             util::Json::string(all_quarantined  ? "unhealthy"
                                : storage_degraded ? "degraded"
                                                   : "ok"));
    if (storage_present) {
      auto storage = util::Json::object();
      storage.set("degraded", util::Json::boolean(storage_degraded));
      storage.set("last_seq",
                  util::Json::integer(static_cast<std::int64_t>(
                      registry_.gauge_value("serve.storage.last_seq", 0.0))));
      body.set("storage", std::move(storage));
    }
    body.set("uptime_seconds",
             util::Json::number(std::chrono::duration<double>(
                                    std::chrono::steady_clock::now() -
                                    started_at_)
                                    .count()));
    body.set("requests_served",
             util::Json::integer(static_cast<std::int64_t>(
                 requests_.load(std::memory_order_relaxed))));
    body.set("channels", std::move(channels));
    if (all_quarantined) {
      return make_response(503, "Service Unavailable", "application/json",
                           body.dump(2) + "\n");
    }
    return make_response(200, "OK", "application/json",
                         body.dump(2) + "\n");
  }
  if (path == "/flamegraph") {
    std::function<std::string()> provider;
    {
      std::lock_guard<std::mutex> lock(provider_mu_);
      provider = flamegraph_provider_;
    }
    if (!provider) {
      return make_response(503, "Service Unavailable", "text/plain",
                           "no flamegraph provider wired\n");
    }
    return make_response(200, "OK", "text/plain; charset=utf-8", provider());
  }
  if (path == "/slo") {
    std::function<util::Json()> provider;
    {
      std::lock_guard<std::mutex> lock(provider_mu_);
      provider = slo_provider_;
    }
    if (!provider) {
      return make_response(503, "Service Unavailable", "application/json",
                           "{\"error\":\"no SLO registry wired\"}\n");
    }
    return make_response(200, "OK", "application/json",
                         provider().dump(2) + "\n");
  }
  if (path == "/quality") {
    std::function<util::Json()> provider;
    {
      std::lock_guard<std::mutex> lock(provider_mu_);
      provider = quality_provider_;
    }
    if (!provider) {
      return make_response(503, "Service Unavailable", "application/json",
                           "{\"error\":\"no quality hub wired\"}\n");
    }
    return make_response(200, "OK", "application/json",
                         provider().dump(2) + "\n");
  }
  if (path == "/runrecord") {
    std::function<util::Json()> provider;
    {
      std::lock_guard<std::mutex> lock(provider_mu_);
      provider = runrecord_provider_;
    }
    if (!provider) {
      return make_response(503, "Service Unavailable", "application/json",
                           "{\"error\":\"no run record wired\"}\n");
    }
    return make_response(200, "OK", "application/json",
                         provider().dump(2) + "\n");
  }
  return make_response(
      404, "Not Found", "text/plain",
      "unknown path; try /metrics /healthz /runrecord /flamegraph /slo "
      "/quality\n");
}

}  // namespace amperebleed::obs
