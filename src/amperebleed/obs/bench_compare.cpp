#include "amperebleed/obs/bench_compare.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <stdexcept>

#include "amperebleed/stats/hypothesis.hpp"
#include "amperebleed/util/strings.hpp"

namespace amperebleed::obs {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Loading

BenchRecord parse_bench_record(const util::Json& doc,
                               std::string source_path) {
  if (!doc.is_object() || doc.find("bench") == nullptr ||
      !doc.find("bench")->is_string()) {
    throw std::runtime_error("bench record" +
                             (source_path.empty() ? std::string()
                                                  : " '" + source_path + "'") +
                             ": missing \"bench\" name");
  }
  BenchRecord record;
  record.bench = doc.find("bench")->as_string();
  record.source_path = std::move(source_path);

  if (const util::Json* t = doc.find("unix_time");
      t != nullptr && t->is_number()) {
    record.unix_time = static_cast<std::int64_t>(t->as_number());
  }
  if (const util::Json* wall = doc.find("wall_seconds");
      wall != nullptr && wall->is_number()) {
    record.numbers["wall_seconds"] = wall->as_number();
  }
  if (const util::Json* numbers = doc.find("numbers");
      numbers != nullptr && numbers->is_object()) {
    for (const auto& key : numbers->keys()) {
      const util::Json* v = numbers->find(key);
      if (v != nullptr && v->is_number()) record.numbers[key] = v->as_number();
    }
  }
  if (const util::Json* text = doc.find("text");
      text != nullptr && text->is_object()) {
    for (const auto& key : text->keys()) {
      const util::Json* v = text->find(key);
      if (v != nullptr && v->is_string()) record.text[key] = v->as_string();
    }
  }
  if (const util::Json* env = doc.find("env");
      env != nullptr && env->is_object()) {
    for (const auto& key : env->keys()) {
      const util::Json* v = env->find(key);
      if (v != nullptr && v->is_string()) record.env[key] = v->as_string();
    }
  }
  if (const util::Json* samples = doc.find("samples");
      samples != nullptr && samples->is_object()) {
    for (const auto& key : samples->keys()) {
      const util::Json* arr = samples->find(key);
      if (arr == nullptr || !arr->is_array()) continue;
      std::vector<double>& values = record.samples[key];
      values.reserve(arr->size());
      for (std::size_t i = 0; i < arr->size(); ++i) {
        if (arr->at(i).is_number()) values.push_back(arr->at(i).as_number());
      }
    }
  }
  return record;
}

BenchRecord load_bench_record(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("bench_compare: cannot open '" + path + "'");
  }
  std::ostringstream text;
  text << in.rdbuf();
  return parse_bench_record(util::Json::parse(text.str()), path);
}

std::vector<BenchRecord> load_trajectory_dir(const std::string& dir) {
  std::vector<std::string> paths;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (util::starts_with(name, "BENCH_") && util::ends_with(name, ".json")) {
      paths.push_back(entry.path().string());
    }
  }
  if (ec) {
    throw std::runtime_error("bench_compare: cannot read directory '" + dir +
                             "': " + ec.message());
  }
  if (paths.empty()) {
    throw std::runtime_error("bench_compare: no BENCH_*.json records in '" +
                             dir + "'");
  }
  std::vector<BenchRecord> records;
  records.reserve(paths.size());
  for (const auto& path : paths) records.push_back(load_bench_record(path));
  std::sort(records.begin(), records.end(),
            [](const BenchRecord& a, const BenchRecord& b) {
              return a.bench < b.bench;
            });
  return records;
}

std::vector<BenchRecord> load_records(const std::string& path) {
  std::error_code ec;
  if (fs::is_directory(path, ec)) return load_trajectory_dir(path);
  return {load_bench_record(path)};
}

// ---------------------------------------------------------------------------
// Comparison

MetricDirection metric_direction(std::string_view key) {
  static constexpr std::string_view kLowerIsBetter[] = {
      "seconds", "latency", "time",    "_ns",     "_ms",     "_us",
      "error",   "denied",  "dropped", "failure", "stale",   "fpr",
      "loss",    "miss",    "overhead"};
  for (std::string_view marker : kLowerIsBetter) {
    if (key.find(marker) != std::string_view::npos) {
      return MetricDirection::LowerIsBetter;
    }
  }
  return MetricDirection::HigherIsBetter;
}

const char* verdict_name(Verdict verdict) {
  switch (verdict) {
    case Verdict::Unchanged:
      return "unchanged";
    case Verdict::Improvement:
      return "improvement";
    case Verdict::Regression:
      return "regression";
  }
  return "unknown";
}

namespace {

bool key_matches(const std::string& key,
                 const std::vector<std::string>& include,
                 const std::vector<std::string>& exclude) {
  for (const auto& marker : exclude) {
    if (key.find(marker) != std::string::npos) return false;
  }
  if (include.empty()) return true;
  for (const auto& marker : include) {
    if (key.find(marker) != std::string::npos) return true;
  }
  return false;
}

std::string env_value(const BenchRecord& record, const char* key) {
  const auto it = record.env.find(key);
  return it == record.env.end() ? std::string("unknown") : it->second;
}

void check_env(const BenchRecord& baseline, const BenchRecord& current,
               CompareReport& report) {
  // simd_tier: numbers from different dispatch tiers (e.g. a forced-scalar
  // leg vs auto) measure the kernel selection, not the code under test.
  for (const char* key : {"hostname", "build_type", "simd_tier"}) {
    const std::string b = env_value(baseline, key);
    const std::string c = env_value(current, key);
    if (b != c && b != "unknown" && c != "unknown") {
      report.env_mismatch = true;
      report.warnings.push_back(util::format(
          "%s: %s differs (baseline '%s' vs current '%s') — deltas measure "
          "the environment, not the code",
          baseline.bench.c_str(), key, b.c_str(), c.c_str()));
    }
  }
}

MetricComparison compare_metric(const BenchRecord& baseline,
                                const BenchRecord& current,
                                const std::string& key, double base_value,
                                double cur_value,
                                const CompareOptions& options) {
  MetricComparison comparison;
  comparison.bench = baseline.bench;
  comparison.key = key;
  comparison.baseline = base_value;
  comparison.current = cur_value;
  comparison.abs_delta = cur_value - base_value;
  comparison.rel_delta =
      base_value == 0.0 ? (cur_value == 0.0 ? 0.0
                                            : std::copysign(
                                                  std::numeric_limits<
                                                      double>::infinity(),
                                                  comparison.abs_delta))
                        : comparison.abs_delta / std::fabs(base_value);
  comparison.direction = metric_direction(key);

  // Signed "badness": positive when the metric moved in the bad direction.
  const double badness = comparison.direction == MetricDirection::LowerIsBetter
                             ? comparison.rel_delta
                             : -comparison.rel_delta;
  Verdict fast = Verdict::Unchanged;
  if (badness > options.threshold) {
    fast = Verdict::Regression;
  } else if (badness < -options.threshold) {
    fast = Verdict::Improvement;
  }

  // Noise-aware path: with repetition samples on both sides, a delta only
  // counts when Mann-Whitney rejects the null as well.
  const auto base_samples = baseline.samples.find(key);
  const auto cur_samples = current.samples.find(key);
  if (fast != Verdict::Unchanged && base_samples != baseline.samples.end() &&
      cur_samples != current.samples.end() &&
      !base_samples->second.empty() && !cur_samples->second.empty()) {
    const auto result =
        stats::mann_whitney_u(base_samples->second, cur_samples->second);
    comparison.used_mann_whitney = true;
    comparison.p_value = result.p_value;
    if (result.p_value >= options.alpha) fast = Verdict::Unchanged;
  }
  comparison.verdict = fast;
  return comparison;
}

}  // namespace

CompareReport compare_records(const std::vector<BenchRecord>& baseline,
                              const std::vector<BenchRecord>& current,
                              const CompareOptions& options) {
  CompareReport report;

  std::map<std::string, const BenchRecord*> base_by_name;
  for (const auto& record : baseline) base_by_name[record.bench] = &record;
  std::set<std::string> matched;

  for (const auto& cur : current) {
    const auto it = base_by_name.find(cur.bench);
    if (it == base_by_name.end()) {
      report.warnings.push_back(cur.bench +
                                ": no baseline record (new bench?)");
      continue;
    }
    matched.insert(cur.bench);
    const BenchRecord& base = *it->second;
    check_env(base, cur, report);

    for (const auto& [key, base_value] : base.numbers) {
      // stage_/slo_ keys are pipeline attribution and drift_/quality_ keys
      // are quality telemetry, not gated perf metrics: hidden unless
      // --stages / --quality, and informational (non-gating) even then.
      const bool stage_key =
          util::starts_with(key, "stage_") || util::starts_with(key, "slo_");
      const bool quality_key = util::starts_with(key, "drift_") ||
                               util::starts_with(key, "quality_");
      const bool informational = stage_key || quality_key;
      if (stage_key && !options.show_stages) continue;
      if (quality_key && !options.show_quality) continue;
      if (!key_matches(key, options.include, options.exclude)) continue;
      const auto cur_value = cur.numbers.find(key);
      if (cur_value == cur.numbers.end()) {
        // A record produced with obs off simply lacks stage keys — that is
        // not a comparability warning.
        if (!informational) {
          report.warnings.push_back(cur.bench + "." + key +
                                    ": metric missing from current record");
        }
        continue;
      }
      MetricComparison comparison = compare_metric(
          base, cur, key, base_value, cur_value->second, options);
      comparison.informational = informational;
      report.comparisons.push_back(std::move(comparison));
    }
  }
  for (const auto& [name, record] : base_by_name) {
    (void)record;
    if (matched.count(name) == 0) {
      report.warnings.push_back(name + ": baseline bench missing from "
                                       "current snapshot");
    }
  }
  return report;
}

// ---------------------------------------------------------------------------
// Reporting

std::size_t CompareReport::regressions() const {
  return static_cast<std::size_t>(
      std::count_if(comparisons.begin(), comparisons.end(),
                    [](const MetricComparison& c) {
                      return !c.informational &&
                             c.verdict == Verdict::Regression;
                    }));
}

std::size_t CompareReport::improvements() const {
  return static_cast<std::size_t>(
      std::count_if(comparisons.begin(), comparisons.end(),
                    [](const MetricComparison& c) {
                      return !c.informational &&
                             c.verdict == Verdict::Improvement;
                    }));
}

util::Json CompareReport::to_json() const {
  auto root = util::Json::object();
  auto list = util::Json::array();
  for (const auto& c : comparisons) {
    auto entry = util::Json::object();
    entry.set("bench", util::Json::string(c.bench));
    entry.set("metric", util::Json::string(c.key));
    entry.set("baseline", util::Json::number(c.baseline));
    entry.set("current", util::Json::number(c.current));
    entry.set("abs_delta", util::Json::number(c.abs_delta));
    entry.set("rel_delta", util::Json::number(std::isfinite(c.rel_delta)
                                                  ? c.rel_delta
                                                  : 1e308));
    entry.set("direction",
              util::Json::string(c.direction == MetricDirection::LowerIsBetter
                                     ? "lower_is_better"
                                     : "higher_is_better"));
    entry.set("verdict", util::Json::string(verdict_name(c.verdict)));
    if (c.informational) {
      entry.set("informational", util::Json::boolean(true));
    }
    if (c.used_mann_whitney) {
      entry.set("mann_whitney_p", util::Json::number(c.p_value));
    }
    list.push_back(std::move(entry));
  }
  root.set("comparisons", std::move(list));
  auto warn = util::Json::array();
  for (const auto& w : warnings) warn.push_back(util::Json::string(w));
  root.set("warnings", std::move(warn));
  root.set("env_mismatch", util::Json::boolean(env_mismatch));
  root.set("regressions",
           util::Json::integer(static_cast<std::int64_t>(regressions())));
  root.set("improvements",
           util::Json::integer(static_cast<std::int64_t>(improvements())));
  return root;
}

std::string CompareReport::to_table(bool verbose) const {
  std::string out;
  out += util::format("%-28s %-28s %14s %14s %9s %s\n", "bench", "metric",
                      "baseline", "current", "delta", "verdict");
  const auto row = [&out](const MetricComparison& c) {
    const std::string delta =
        std::isfinite(c.rel_delta)
            ? util::format("%+8.2f%%", c.rel_delta * 100.0)
            : std::string("     +inf");
    std::string verdict = verdict_name(c.verdict);
    if (c.used_mann_whitney) {
      verdict += util::format(" (MWU p=%.4g)", c.p_value);
    }
    out += util::format("%-28s %-28s %14.6g %14.6g %9s %s\n", c.bench.c_str(),
                        c.key.c_str(), c.baseline, c.current, delta.c_str(),
                        verdict.c_str());
  };
  // Interesting rows first; unchanged rows only in verbose mode.
  // Informational (stage_/slo_) rows go in their own non-gating section.
  for (const auto& c : comparisons) {
    if (!c.informational && c.verdict == Verdict::Regression) row(c);
  }
  for (const auto& c : comparisons) {
    if (!c.informational && c.verdict == Verdict::Improvement) row(c);
  }
  std::size_t unchanged = 0;
  for (const auto& c : comparisons) {
    if (!c.informational && c.verdict == Verdict::Unchanged) {
      if (verbose) row(c);
      ++unchanged;
    }
  }
  bool stage_header = false;
  for (const auto& c : comparisons) {
    if (!c.informational) continue;
    if (!stage_header) {
      out += "\nper-stage / SLO / quality metrics (informational, never "
             "gate):\n";
      stage_header = true;
    }
    row(c);
  }
  out += util::format(
      "\n%zu metric(s): %zu regression(s), %zu improvement(s), %zu "
      "unchanged%s\n",
      comparisons.size(), regressions(), improvements(), unchanged,
      verbose || unchanged == 0 ? "" : " (hidden; --verbose shows them)");
  for (const auto& w : warnings) out += "warning: " + w + "\n";
  return out;
}

}  // namespace amperebleed::obs
