#pragma once
// Process-wide observability context. Off by default: every instrumentation
// site first checks a relaxed atomic flag, so with ObsConfig{enabled=false}
// (the default) the whole layer costs one predicted-not-taken branch per
// site and experiments stay bit-identical to an uninstrumented build.
//
//   obs::init();                               // or init(config)
//   ... run experiment ...
//   obs::metrics().write_snapshot("m.json");
//   obs::tracer().write_chrome_trace("t.json");
//   obs::audit_log().write_json("audit.json");
//   obs::shutdown();
//
// The registries themselves always exist (so tests can poke them directly);
// the flags only gate whether the library's instrumentation records into
// them.

#include <atomic>
#include <cstdint>
#include <string>

#include "amperebleed/obs/audit.hpp"
#include "amperebleed/obs/context.hpp"
#include "amperebleed/obs/exporter.hpp"
#include "amperebleed/obs/metrics.hpp"
#include "amperebleed/obs/profile.hpp"
#include "amperebleed/obs/slo.hpp"
#include "amperebleed/obs/span.hpp"

namespace amperebleed::obs {

struct ObsConfig {
  bool enabled = false;  // master switch
  // Sub-layer switches (only effective while enabled).
  bool metrics = true;
  bool tracing = true;
  bool audit = true;
  // Quality monitoring (drift + data-quality, see quality.hpp) is strictly
  // opt-in: unlike the layers above it stays OFF even when enabled=true,
  // because it adds per-trace and per-classification work to hot paths.
  bool quality = false;
};

namespace detail {
extern std::atomic<bool> g_metrics_on;
extern std::atomic<bool> g_tracing_on;
extern std::atomic<bool> g_audit_on;
extern std::atomic<bool> g_quality_on;
}  // namespace detail

/// Apply `config` (default: everything on). Does not clear prior data —
/// call reset() for a clean slate.
void init(const ObsConfig& config = ObsConfig{.enabled = true});

/// Disable all recording (flags only; data stays readable).
void disable();

/// Disable and drop all recorded data (metrics, spans, audit events).
void shutdown();

/// Drop all recorded data but keep the current enable flags.
void reset_data();

[[nodiscard]] inline bool metrics_enabled() {
  return detail::g_metrics_on.load(std::memory_order_relaxed);
}
[[nodiscard]] inline bool tracing_enabled() {
  return detail::g_tracing_on.load(std::memory_order_relaxed);
}
[[nodiscard]] inline bool audit_enabled() {
  return detail::g_audit_on.load(std::memory_order_relaxed);
}
[[nodiscard]] inline bool quality_enabled() {
  return detail::g_quality_on.load(std::memory_order_relaxed);
}
[[nodiscard]] inline bool enabled() {
  return metrics_enabled() || tracing_enabled() || audit_enabled() ||
         quality_enabled();
}

/// Global registries (constructed on first use, never destroyed before
/// program exit).
MetricsRegistry& metrics();
SpanTracer& tracer();
AccessAuditLog& audit_log();

// ---------------------------------------------------------------------------
// Convenience helpers for instrumentation sites. All of them no-op when the
// corresponding layer is disabled.

inline void count(const char* name, std::uint64_t n = 1) {
  if (!metrics_enabled()) return;
  metrics().counter(name).inc(n);
  export_event(ExportEvent::Kind::CounterAdd, name, static_cast<double>(n));
}

inline void gauge_set(const char* name, double v) {
  if (!metrics_enabled()) return;
  metrics().gauge(name).set(v);
  export_event(ExportEvent::Kind::GaugeSet, name, v);
}

inline void observe(const char* name, double v) {
  if (!metrics_enabled()) return;
  metrics().histogram(name).observe(v);
  export_event(ExportEvent::Kind::HistogramObserve, name, v);
}

/// A wall-clock span against the global tracer; inert when tracing is off.
[[nodiscard]] inline ScopedSpan span(std::string name,
                                     std::string category = "") {
  if (!tracing_enabled()) return ScopedSpan();
  return ScopedSpan(&tracer(), std::move(name), std::move(category));
}

/// Record an instantaneous (zero-duration) wall event parented to the
/// calling thread's current span — fault injections, state transitions.
inline void instant(std::string name, std::string category = "") {
  if (!tracing_enabled()) return;
  ScopedSpan s(&tracer(), std::move(name), std::move(category));
  s.finish();
}

/// Record a cross-thread flow edge ('s' on the submitter, 'f' on a worker)
/// against the global tracer; inert when tracing is off.
inline void flow(char phase, std::uint64_t id, const char* name,
                 const char* category = "pool") {
  if (!tracing_enabled()) return;
  tracer().add_flow_event(phase, id, name, category);
}

/// Record a virtual-time span against the global tracer.
inline void virtual_span(
    std::string name, std::string category, sim::TimeNs start,
    sim::TimeNs duration,
    std::vector<std::pair<std::string, double>> args = {}) {
  if (!tracing_enabled()) return;
  tracer().add_virtual_span(std::move(name), std::move(category), start,
                            duration, std::move(args));
}

/// Audit one sensor-interface access (used by hwmon::VirtualFs).
inline void audit_access(std::string_view path, bool privileged,
                         AccessOutcome outcome) {
  if (!audit_enabled()) return;
  audit_log().record(path, privileged, outcome);
}

}  // namespace amperebleed::obs
