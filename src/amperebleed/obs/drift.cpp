#include "amperebleed/obs/drift.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "amperebleed/obs/obs.hpp"
#include "amperebleed/obs/quality.hpp"
#include "amperebleed/stats/hypothesis.hpp"
#include "amperebleed/util/strings.hpp"

namespace amperebleed::obs {

// ---------------------------------------------------------------------------
// StreamingSketch

StreamingSketch::StreamingSketch(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi) {
  if (bins == 0) {
    throw std::invalid_argument("StreamingSketch: need at least one bin");
  }
  if (!(lo < hi)) {
    // Degenerate range (constant feature): widen symmetrically so every
    // observation of the constant lands mid-histogram, not in an edge bin.
    const double pad = std::max(1e-9, std::fabs(lo) * 1e-9);
    lo_ = lo - pad;
    hi_ = hi + pad;
  }
  counts_.assign(bins, 0);
}

void StreamingSketch::observe(double v) {
  if (counts_.empty()) {
    throw std::logic_error("StreamingSketch::observe: default-constructed");
  }
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::int64_t>(std::floor((v - lo_) / width));
  idx = std::clamp<std::int64_t>(idx, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  if (n_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++n_;
  sum_ += v;
  sum_sq_ += v * v;
}

void StreamingSketch::merge(const StreamingSketch& other) {
  if (lo_ != other.lo_ || hi_ != other.hi_ ||
      counts_.size() != other.counts_.size()) {
    throw std::invalid_argument("StreamingSketch::merge: bin layout mismatch");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  if (other.n_ > 0) {
    if (n_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
  }
  n_ += other.n_;
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
}

void StreamingSketch::clear() {
  std::fill(counts_.begin(), counts_.end(), 0);
  n_ = 0;
  sum_ = 0.0;
  sum_sq_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

double StreamingSketch::mean() const {
  return n_ == 0 ? 0.0 : sum_ / static_cast<double>(n_);
}

double StreamingSketch::variance() const {
  if (n_ < 2) return 0.0;
  const double n = static_cast<double>(n_);
  const double m = sum_ / n;
  // Population variance; clamp the catastrophic-cancellation tail to zero.
  return std::max(0.0, sum_sq_ / n - m * m);
}

double StreamingSketch::min() const {
  return n_ == 0 ? std::numeric_limits<double>::infinity() : min_;
}

double StreamingSketch::max() const {
  return n_ == 0 ? -std::numeric_limits<double>::infinity() : max_;
}

std::vector<double> StreamingSketch::fractions(double epsilon) const {
  const double denom = static_cast<double>(n_) +
                       epsilon * static_cast<double>(counts_.size());
  std::vector<double> out(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out[i] = (static_cast<double>(counts_[i]) + epsilon) / denom;
  }
  return out;
}

util::Json StreamingSketch::to_json() const {
  auto doc = util::Json::object();
  doc.set("lo", util::Json::number(lo_));
  doc.set("hi", util::Json::number(hi_));
  auto counts = util::Json::array();
  for (std::uint64_t c : counts_) {
    counts.push_back(util::Json::integer(static_cast<std::int64_t>(c)));
  }
  doc.set("counts", std::move(counts));
  doc.set("n", util::Json::integer(static_cast<std::int64_t>(n_)));
  doc.set("sum", util::Json::number(sum_));
  doc.set("sum_sq", util::Json::number(sum_sq_));
  doc.set("min", util::Json::number(min_));
  doc.set("max", util::Json::number(max_));
  return doc;
}

StreamingSketch StreamingSketch::from_json(const util::Json& doc) {
  const auto* counts = doc.find("counts");
  if (counts == nullptr || !counts->is_array() || counts->size() == 0) {
    throw std::runtime_error("StreamingSketch::from_json: bad counts");
  }
  StreamingSketch s(doc.find("lo")->as_number(), doc.find("hi")->as_number(),
                    counts->size());
  // The padded-range constructor path must not fire for serialized sketches:
  // lo/hi round-trip verbatim, so restore them explicitly.
  s.lo_ = doc.find("lo")->as_number();
  s.hi_ = doc.find("hi")->as_number();
  for (std::size_t i = 0; i < counts->size(); ++i) {
    s.counts_[i] = static_cast<std::uint64_t>(counts->at(i).as_integer());
  }
  s.n_ = static_cast<std::uint64_t>(doc.find("n")->as_integer());
  s.sum_ = doc.find("sum")->as_number();
  s.sum_sq_ = doc.find("sum_sq")->as_number();
  s.min_ = doc.find("min")->as_number();
  s.max_ = doc.find("max")->as_number();
  return s;
}

StreamingSketch::Raw StreamingSketch::raw() const {
  Raw raw;
  raw.lo = lo_;
  raw.hi = hi_;
  raw.counts = counts_;
  raw.n = n_;
  raw.sum = sum_;
  raw.sum_sq = sum_sq_;
  raw.min = min_;
  raw.max = max_;
  return raw;
}

StreamingSketch StreamingSketch::from_raw(Raw raw) {
  if (raw.counts.empty()) {
    throw std::runtime_error("StreamingSketch::from_raw: no bins");
  }
  StreamingSketch s;
  s.lo_ = raw.lo;
  s.hi_ = raw.hi;
  s.counts_ = std::move(raw.counts);
  s.n_ = raw.n;
  s.sum_ = raw.sum;
  s.sum_sq_ = raw.sum_sq;
  s.min_ = raw.min;
  s.max_ = raw.max;
  return s;
}

// ---------------------------------------------------------------------------
// PSI

double population_stability_index(const StreamingSketch& reference,
                                  const StreamingSketch& current) {
  if (reference.bins() != current.bins() || reference.lo() != current.lo() ||
      reference.hi() != current.hi()) {
    throw std::invalid_argument(
        "population_stability_index: bin layout mismatch");
  }
  const std::vector<double> p = reference.fractions();
  const std::vector<double> q = current.fractions();
  double psi = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    psi += (q[i] - p[i]) * std::log(q[i] / p[i]);
  }
  return psi;
}

// ---------------------------------------------------------------------------
// ReferenceProfile

ReferenceProfile ReferenceProfile::from_dataset(const ml::Dataset& data,
                                                std::size_t bins) {
  if (data.empty()) {
    throw std::invalid_argument("ReferenceProfile: empty dataset");
  }
  ReferenceProfile profile;
  profile.rows = data.size();
  const std::size_t dims = data.feature_count();
  profile.feature_sketches.reserve(dims);
  profile.feature_samples.reserve(dims);

  // Deterministic row subsample: a fixed stride over row order, identical
  // for every dimension, so the profile is a pure function of the dataset.
  const std::size_t take = std::min<std::size_t>(kMaxSubsample, data.size());
  const std::size_t stride = std::max<std::size_t>(1, data.size() / take);

  for (std::size_t f = 0; f < dims; ++f) {
    const std::span<const double> col = data.column(f);
    const auto [lo_it, hi_it] = std::minmax_element(col.begin(), col.end());
    // Pad 5% so quantization-edge values on clean data stay mid-histogram.
    const double span_width = *hi_it - *lo_it;
    const double pad = span_width > 0.0
                           ? 0.05 * span_width
                           : std::max(1e-9, std::fabs(*lo_it) * 1e-9);
    StreamingSketch sketch(*lo_it - pad, *hi_it + pad, bins);
    for (double v : col) sketch.observe(v);
    profile.feature_sketches.push_back(std::move(sketch));

    std::vector<double> sample;
    sample.reserve(take);
    for (std::size_t r = 0; r < data.size() && sample.size() < take;
         r += stride) {
      sample.push_back(col[r]);
    }
    profile.feature_samples.push_back(std::move(sample));
  }

  profile.class_counts.assign(static_cast<std::size_t>(data.class_count()), 0);
  for (int label : data.labels()) {
    ++profile.class_counts[static_cast<std::size_t>(label)];
  }
  return profile;
}

util::Json ReferenceProfile::to_json() const {
  auto doc = util::Json::object();
  doc.set("rows", util::Json::integer(static_cast<std::int64_t>(rows)));
  auto sketches = util::Json::array();
  for (const auto& s : feature_sketches) sketches.push_back(s.to_json());
  doc.set("feature_sketches", std::move(sketches));
  auto samples = util::Json::array();
  for (const auto& dim : feature_samples) {
    auto values = util::Json::array();
    for (double v : dim) values.push_back(util::Json::number(v));
    samples.push_back(std::move(values));
  }
  doc.set("feature_samples", std::move(samples));
  auto classes = util::Json::array();
  for (std::uint64_t c : class_counts) {
    classes.push_back(util::Json::integer(static_cast<std::int64_t>(c)));
  }
  doc.set("class_counts", std::move(classes));
  return doc;
}

ReferenceProfile ReferenceProfile::from_json(const util::Json& doc) {
  ReferenceProfile profile;
  profile.rows = static_cast<std::uint64_t>(doc.find("rows")->as_integer());
  const auto* sketches = doc.find("feature_sketches");
  for (std::size_t i = 0; i < sketches->size(); ++i) {
    profile.feature_sketches.push_back(
        StreamingSketch::from_json(sketches->at(i)));
  }
  const auto* samples = doc.find("feature_samples");
  for (std::size_t i = 0; i < samples->size(); ++i) {
    const auto& dim = samples->at(i);
    std::vector<double> values;
    values.reserve(dim.size());
    for (std::size_t j = 0; j < dim.size(); ++j) {
      values.push_back(dim.at(j).as_number());
    }
    profile.feature_samples.push_back(std::move(values));
  }
  const auto* classes = doc.find("class_counts");
  for (std::size_t i = 0; i < classes->size(); ++i) {
    profile.class_counts.push_back(
        static_cast<std::uint64_t>(classes->at(i).as_integer()));
  }
  return profile;
}

// ---------------------------------------------------------------------------
// DriftMonitor

std::string_view drift_state_name(DriftState s) {
  switch (s) {
    case DriftState::Ok: return "ok";
    case DriftState::Warning: return "warning";
    case DriftState::Drifted: return "drifted";
  }
  return "unknown";
}

DriftMonitor::DriftMonitor(ReferenceProfile reference, DriftConfig config)
    : ref_(std::move(reference)), cfg_(std::move(config)) {
  if (ref_.empty()) {
    throw std::invalid_argument("DriftMonitor: empty reference profile");
  }
  if (cfg_.window == 0 || cfg_.stride == 0 || cfg_.confirm == 0) {
    throw std::invalid_argument(
        "DriftMonitor: window, stride and confirm must be positive");
  }
  rows_.assign(cfg_.window, std::vector<double>());
  classes_.assign(cfg_.window, -1);
  confidences_.assign(cfg_.window, 0.0);
  quality_hub().attach(this);
}

DriftMonitor::~DriftMonitor() { quality_hub().detach(this); }

void DriftMonitor::observe(std::span<const double> features,
                           int predicted_class, double confidence) {
  if (features.size() != ref_.dims()) {
    throw std::invalid_argument(
        "DriftMonitor::observe: feature width does not match reference");
  }
  std::lock_guard<std::mutex> lock(mu_);
  rows_[ring_pos_].assign(features.begin(), features.end());
  classes_[ring_pos_] = predicted_class;
  confidences_[ring_pos_] = confidence;
  ring_pos_ = (ring_pos_ + 1) % cfg_.window;
  if (ring_pos_ == 0) ring_full_ = true;
  ++observations_;
  if (ring_full_ && observations_ % cfg_.stride == 0) {
    evaluate_locked();
  }
}

void DriftMonitor::evaluate_locked() {
  const std::size_t dims = ref_.dims();
  DriftScores scores;

  // Per-dimension PSI over the reference bin layout, plus the KS test
  // against the reference subsample. Window values are gathered in ring
  // order — both tests are order-invariant, so ring phase cannot leak in.
  std::vector<double> window_dim(cfg_.window);
  double psi_sum = 0.0;
  for (std::size_t f = 0; f < dims; ++f) {
    const StreamingSketch& ref_sketch = ref_.feature_sketches[f];
    StreamingSketch cur(ref_sketch.lo(), ref_sketch.hi(), ref_sketch.bins());
    for (std::size_t r = 0; r < cfg_.window; ++r) {
      window_dim[r] = rows_[r][f];
      cur.observe(window_dim[r]);
    }
    const double psi = population_stability_index(ref_sketch, cur);
    psi_sum += psi;
    if (f == 0 || psi > scores.psi_max) {
      scores.psi_max = psi;
      scores.psi_argmax = f;
    }
    const stats::KsResult ks =
        stats::ks_test(ref_.feature_samples[f], window_dim);
    if (f == 0 || ks.p_value < scores.ks_min_p) {
      scores.ks_min_p = ks.p_value;
      scores.ks_argmin = f;
    }
    scores.ks_max_d = std::max(scores.ks_max_d, ks.d);
  }
  scores.psi_mean = psi_sum / static_cast<double>(dims);

  // Class-mix chi-square of the window's predicted classes vs the priors.
  const std::size_t class_count = ref_.class_counts.size();
  std::vector<double> observed(class_count, 0.0);
  double conf_sum = 0.0;
  for (std::size_t r = 0; r < cfg_.window; ++r) {
    const auto c = static_cast<std::size_t>(classes_[r]);
    if (c < class_count) observed[c] += 1.0;
    conf_sum += confidences_[r];
  }
  scores.confidence_mean = conf_sum / static_cast<double>(cfg_.window);
  std::vector<double> expected(class_count);
  for (std::size_t c = 0; c < class_count; ++c) {
    expected[c] = static_cast<double>(ref_.class_counts[c]);
  }
  const stats::ChiSquareResult mix = stats::chi_square_gof(observed, expected);
  scores.class_chi2 = mix.chi2;
  scores.class_p = mix.p_value;

  // Severity of this evaluation in isolation. KS alphas are
  // Bonferroni-corrected for the `dims` tests actually run.
  const double dims_d = static_cast<double>(dims);
  const double ks_warn = cfg_.ks_alpha_warning / dims_d;
  const double ks_drift = cfg_.ks_alpha_drifted / dims_d;
  scores.severity = DriftState::Ok;
  if (scores.psi_mean >= cfg_.psi_warning || scores.ks_min_p <= ks_warn ||
      scores.class_p <= cfg_.chi2_alpha_warning) {
    scores.severity = DriftState::Warning;
  }
  if (scores.psi_mean >= cfg_.psi_drifted || scores.ks_min_p <= ks_drift ||
      scores.class_p <= cfg_.chi2_alpha_drifted) {
    scores.severity = DriftState::Drifted;
  }

  ++evaluations_;
  last_ = scores;

  // State machine: escalation requires `confirm` consecutive breaching
  // evaluations at (or above) the target severity; de-escalation requires
  // `clear` consecutive clean ones. Drifted is sticky for the lifetime of
  // the window epoch: only reset_window() leaves it, so an operator can
  // always see that drift happened even if the stream recovers.
  if (scores.severity == DriftState::Ok) {
    breach_streak_ = 0;
    drift_streak_ = 0;
    ++clean_streak_;
    if (state_ == DriftState::Warning && clean_streak_ >= cfg_.clear) {
      state_ = DriftState::Ok;
    }
  } else {
    clean_streak_ = 0;
    ++breach_streak_;
    drift_streak_ =
        scores.severity == DriftState::Drifted ? drift_streak_ + 1 : 0;
    if (state_ == DriftState::Ok && breach_streak_ >= cfg_.confirm) {
      state_ = DriftState::Warning;
      ++warnings_;
      if (first_warning_obs_ < 0) {
        first_warning_obs_ = static_cast<std::int64_t>(observations_);
      }
    }
    if (state_ != DriftState::Drifted && drift_streak_ >= cfg_.confirm) {
      state_ = DriftState::Drifted;
      ++drifts_;
      if (first_drifted_obs_ < 0) {
        first_drifted_obs_ = static_cast<std::int64_t>(observations_);
      }
    }
  }

  publish_metrics_locked(scores);
}

void DriftMonitor::publish_metrics_locked(const DriftScores& scores) const {
  if (!metrics_enabled()) return;
  MetricsRegistry& reg = metrics();
  const std::string prefix = util::format("quality.drift.%s.", cfg_.name.c_str());
  reg.gauge(prefix + "state").set(static_cast<double>(state_));
  reg.gauge(prefix + "psi_mean").set(scores.psi_mean);
  reg.gauge(prefix + "psi_max").set(scores.psi_max);
  reg.gauge(prefix + "ks_min_p").set(scores.ks_min_p);
  reg.gauge(prefix + "class_p").set(scores.class_p);
  reg.gauge(prefix + "confidence_mean").set(scores.confidence_mean);
  reg.counter(prefix + "evaluations").inc();
  if (scores.severity != DriftState::Ok) {
    reg.counter(prefix + "breaches").inc();
  }
}

DriftState DriftMonitor::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

DriftReport DriftMonitor::report() const {
  std::lock_guard<std::mutex> lock(mu_);
  DriftReport report;
  report.name = cfg_.name;
  report.state = state_;
  report.observations = observations_;
  report.evaluations = evaluations_;
  report.warnings = warnings_;
  report.drifts = drifts_;
  report.first_warning_obs = first_warning_obs_;
  report.first_drifted_obs = first_drifted_obs_;
  report.last = last_;
  return report;
}

void DriftMonitor::reset_window() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& row : rows_) row.clear();
  std::fill(classes_.begin(), classes_.end(), -1);
  std::fill(confidences_.begin(), confidences_.end(), 0.0);
  ring_pos_ = 0;
  ring_full_ = false;
  state_ = DriftState::Ok;
  breach_streak_ = 0;
  drift_streak_ = 0;
  clean_streak_ = 0;
  observations_ = 0;
  evaluations_ = 0;
  warnings_ = 0;
  drifts_ = 0;
  first_warning_obs_ = -1;
  first_drifted_obs_ = -1;
  last_ = DriftScores{};
}

util::Json DriftReport::to_json() const {
  auto doc = util::Json::object();
  doc.set("name", util::Json::string(name));
  doc.set("state", util::Json::string(std::string(drift_state_name(state))));
  doc.set("observations",
          util::Json::integer(static_cast<std::int64_t>(observations)));
  doc.set("evaluations",
          util::Json::integer(static_cast<std::int64_t>(evaluations)));
  doc.set("warnings", util::Json::integer(static_cast<std::int64_t>(warnings)));
  doc.set("drifts", util::Json::integer(static_cast<std::int64_t>(drifts)));
  doc.set("first_warning_obs", util::Json::integer(first_warning_obs));
  doc.set("first_drifted_obs", util::Json::integer(first_drifted_obs));
  auto scores = util::Json::object();
  scores.set("psi_mean", util::Json::number(last.psi_mean));
  scores.set("psi_max", util::Json::number(last.psi_max));
  scores.set("psi_argmax",
             util::Json::integer(static_cast<std::int64_t>(last.psi_argmax)));
  scores.set("ks_min_p", util::Json::number(last.ks_min_p));
  scores.set("ks_max_d", util::Json::number(last.ks_max_d));
  scores.set("ks_argmin",
             util::Json::integer(static_cast<std::int64_t>(last.ks_argmin)));
  scores.set("class_chi2", util::Json::number(last.class_chi2));
  scores.set("class_p", util::Json::number(last.class_p));
  scores.set("confidence_mean", util::Json::number(last.confidence_mean));
  scores.set("severity",
             util::Json::string(std::string(drift_state_name(last.severity))));
  doc.set("last", std::move(scores));
  return doc;
}

}  // namespace amperebleed::obs
