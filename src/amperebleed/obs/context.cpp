#include "amperebleed/obs/context.hpp"

#include <atomic>

namespace amperebleed::obs {

namespace {

std::atomic<std::uint64_t> g_next_span_id{1};
std::atomic<std::uint64_t> g_next_region_id{1};
std::atomic<std::uint64_t> g_next_trace_id{1};

thread_local SpanContext t_context;
thread_local TaskSlot t_task_slot;

}  // namespace

std::uint64_t next_span_id() {
  return g_next_span_id.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t next_region_id() {
  return g_next_region_id.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t new_trace_id() {
  return g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
}

const SpanContext& current_context() { return t_context; }

const TaskSlot& current_task_slot() { return t_task_slot; }

namespace detail {

SpanContext exchange_context(const SpanContext& ctx) {
  const SpanContext prev = t_context;
  t_context = ctx;
  return prev;
}

TaskSlot exchange_task_slot(const TaskSlot& slot) {
  const TaskSlot prev = t_task_slot;
  t_task_slot = slot;
  return prev;
}

}  // namespace detail

TaskScope::TaskScope(const SpanContext& parent, std::uint64_t region_id,
                     std::uint64_t task_index) {
  prev_ctx_ = detail::exchange_context(parent);
  TaskSlot slot;
  slot.region_id = region_id;
  slot.task_index = task_index;
  slot.active = true;
  prev_slot_ = detail::exchange_task_slot(slot);
}

TaskScope::~TaskScope() {
  detail::exchange_context(prev_ctx_);
  detail::exchange_task_slot(prev_slot_);
}

}  // namespace amperebleed::obs
